//! End-to-end tests for the §VII-D extension monitors riding the unified
//! logging channel: the syscall-sequence IDS and the event-rate counters.

use hypertap::harness::TapVm;
use hypertap::prelude::*;
use hypertap_guestos::program::UserView;
use hypertap_hvsim::clock::Duration;
use hypertap_monitors::counters::EventCounters;
use hypertap_monitors::syscall_ids::{IdsPhase, SyscallIds};

/// Train the IDS on a normal file-copy workload, then let the exploit run:
/// its escalate-mid-I/O trace is flagged without any Ninja-style policy.
#[test]
fn syscall_ids_flags_the_exploit_trace() {
    let mut vm = TapVm::builder().build();
    vm.machine.hypervisor_mut().em.register(Box::new(SyscallIds::new()));

    let rk = vm.kernel.register_module(rootkit_by_name("FU").unwrap());
    let worker = vm.kernel.register_program(
        "worker",
        Box::new(|| {
            let mut n = 0u32;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                n += 1;
                match n % 4 {
                    1 => UserOp::sys(Sysno::Open, &[7]),
                    2 => UserOp::sys(Sysno::Read, &[0, 2048]),
                    3 => UserOp::sys(Sysno::Write, &[0, 2048]),
                    _ => UserOp::sys(Sysno::Close, &[0]),
                }
            }))
        }),
    );
    let attack = vm.kernel.register_program(
        "exploit",
        Box::new(move || Box::new(AttackProgram::new(AttackConfig::rootkit_combined(rk)))),
    );
    let (worker_raw, attack_raw) = (worker.0, attack.0);
    let init = vm.kernel.register_program(
        "init",
        Box::new(move || {
            let mut stage = 0;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                stage += 1;
                match stage {
                    1 => UserOp::sys(Sysno::Spawn, &[worker_raw, 1000]),
                    2 => UserOp::sys(Sysno::Nanosleep, &[1_000_000_000]),
                    3 => UserOp::sys(Sysno::Spawn, &[attack_raw, 1000]),
                    _ => UserOp::sys(Sysno::Waitpid, &[]),
                }
            }))
        }),
    );
    vm.kernel.set_init_program(init);

    // Phase 1: train on one second of normal behaviour.
    vm.run_for(Duration::from_millis(900));
    {
        let ids = vm.auditor_mut::<SyscallIds>().unwrap();
        assert!(ids.normal_ngrams() > 3, "training learned something");
        ids.set_phase(IdsPhase::Detecting);
    }
    // Phase 2: the attack launches at t = 1 s.
    vm.run_for(Duration::from_millis(600));
    let ids = vm.auditor::<SyscallIds>().unwrap();
    assert!(
        !ids.anomalies().is_empty(),
        "the exploit's vuln_escalate/install_module trace is unseen"
    );
    let findings = vm.drain_findings();
    assert!(findings.iter().any(|f| f.auditor == "syscall-ids"));
}

/// The event counters see a busy guest, and their per-vCPU switch counts
/// collapse when the guest hangs — the raw signal a Vigilant-style learned
/// detector would consume.
#[test]
fn event_counters_reflect_guest_health() {
    let mut vm = TapVm::builder().build();
    vm.machine
        .hypervisor_mut()
        .em
        .register(Box::new(EventCounters::new(Duration::from_millis(500), 2)));

    let w = vm.kernel.register_program(
        "writer",
        Box::new(|| Box::new(FnProgram(|_v: &UserView<'_>| UserOp::sys(Sysno::Write, &[0, 4096])))),
    );
    let init = hypertap::workloads::make::install_init_running(&mut vm.kernel, w);
    vm.kernel.set_init_program(init);
    vm.run_for(Duration::from_secs(3));

    let busy = {
        let counters = vm.auditor::<EventCounters>().unwrap();
        assert!(counters.samples().len() >= 4);
        counters.samples().last().unwrap().clone()
    };
    assert!(busy.total() > 100, "a busy guest generates a dense event stream");
    assert!(
        busy.class(hypertap_core::event::EventClass::Syscall) > 0,
        "syscall counts are populated"
    );

    // Now wedge the guest and watch the stream dry up.
    struct LeakAll;
    impl hypertap_guestos::fault::FaultHook for LeakAll {
        fn check(
            &mut self,
            _site: u32,
            acquire: bool,
        ) -> Option<hypertap_guestos::fault::FaultType> {
            (!acquire).then_some(hypertap_guestos::fault::FaultType::MissingUnlock)
        }
    }
    vm.kernel.set_fault_hook(Box::new(LeakAll));
    vm.run_for(Duration::from_secs(3));
    let wedged = vm.auditor::<EventCounters>().unwrap().samples().last().unwrap().clone();
    let busy_switches: u64 = busy.switches_per_vcpu.iter().sum();
    let wedged_switches: u64 = wedged.switches_per_vcpu.iter().sum();
    assert!(busy_switches >= 2, "the healthy guest scheduled: {busy_switches}");
    assert_eq!(
        wedged_switches, 0,
        "switch counters collapse on hang: {busy_switches} -> {wedged_switches}"
    );
}
