//! Integration tests for the remaining attack surfaces: TSS relocation
//! (Fig. 3C) and hidden kernel threads (the HRKD thread-level claim of
//! Table II).

use hypertap::harness::TapVm;
use hypertap::prelude::*;
use hypertap_core::event::EventClass;
use hypertap_guestos::program::UserView;
use hypertap_hvsim::clock::Duration;

/// A rootkit that relocates the TSS is caught by the integrity engine:
/// the saved-TR comparison on the next exit raises a `TssRelocated` event.
#[test]
fn tss_relocating_rootkit_is_caught() {
    let mut vm = TapVm::builder().build();
    vm.machine
        .hypervisor_mut()
        .em
        .register(Box::new(CountingAuditor::with_mask(EventMask::only(EventClass::Integrity))));
    let rk = vm.kernel.register_module(ModuleSpec::new(
        "tss-mover",
        "Linux",
        vec![HideMechanism::TssRelocate],
    ));
    let init = vm.kernel.register_program(
        "init",
        Box::new(move || {
            let mut stage = 0;
            Box::new(FnProgram(move |v: &UserView<'_>| {
                stage += 1;
                match stage {
                    1 => UserOp::sys(Sysno::Nanosleep, &[50_000_000]),
                    2 => UserOp::sys(Sysno::InstallModule, &[rk, v.pid]),
                    _ => UserOp::sys(Sysno::Nanosleep, &[3_600_000_000_000]),
                }
            }))
        }),
    );
    vm.kernel.set_init_program(init);
    vm.run_for(Duration::from_millis(300));
    let alerts = vm.auditor::<CountingAuditor>().unwrap().events_seen();
    assert_eq!(alerts, 1, "exactly one TSS-relocation integrity alarm");
}

/// HRKD's thread-level trusted set exposes a hidden *kernel thread*: DKOM
/// unlinks the daemon from the task list, but its kernel stack keeps
/// showing up in `TSS.RSP0`.
#[test]
fn hrkd_detects_hidden_kernel_thread() {
    let mut vm = TapVm::builder().hrkd().build();
    let rk = vm.kernel.register_module(rootkit_by_name("PhalanX").expect("table 2"));
    let init = vm.kernel.register_program(
        "init",
        Box::new(move || {
            let mut stage = 0;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                stage += 1;
                match stage {
                    // Let the daemons run so HRKD observes their stacks.
                    1 => UserOp::sys(Sysno::Nanosleep, &[400_000_000]),
                    // Hide kflushd/0 (pid 2 — init is 1, daemons follow).
                    2 => UserOp::sys(Sysno::InstallModule, &[rk, 2]),
                    _ => UserOp::sys(Sysno::Nanosleep, &[3_600_000_000_000]),
                }
            }))
        }),
    );
    vm.kernel.set_init_program(init);
    vm.run_for(Duration::from_secs(1));

    let now = vm.now();
    let (vmstate, kvm) = vm.machine.parts_mut();
    let hrkd = kvm.em.auditor_mut::<Hrkd>().expect("registered");
    let report = hrkd.cross_validate_vmi(vmstate, now);
    assert!(
        !report.hidden_kstacks.is_empty(),
        "the daemon's kernel stack is running but unlisted: {report:?}"
    );
    // Kernel threads have no address space of their own, so this is a
    // *thread*-level detection (the PDBA set may stay clean).
    let kstack = report.hidden_kstacks[0];
    let daemon = vm.kernel.task_by_pid(Pid(2)).expect("daemon still scheduled");
    assert_eq!(daemon.kstack_top.value(), kstack);
}

/// The side-channel-timed transient attack (paper §VIII-C1): the attacker
/// measures O-Ninja's schedule through `/proc`, then strikes right after a
/// check — evading even a short polling interval that random-phase attacks
/// would sometimes lose to.
#[test]
fn side_channel_timed_attack_evades_oninja() {
    use hypertap::harness::EngineSelection;
    use hypertap_guestos::kernel::ProcStat;
    use hypertap_monitors::ninja::oninja::{ONinja, DETECT_TAG};

    let mut vm = TapVm::builder().engines(EngineSelection::none()).build();
    // O-Ninja with a 100 ms interval: short enough that an untimed transient
    // attack would occasionally be caught.
    let ninja = vm.kernel.register_program(
        "ninja",
        Box::new(|| Box::new(ONinja::new(NinjaRules::new(), 100_000_000, false))),
    );
    // The timed attacker: watch the ninja's /proc stat; the moment it goes
    // back to sleep after a check, escalate, act and exit — the next check
    // is a full interval away.
    let attacker = vm.kernel.register_program(
        "timed-attacker",
        Box::new(|| {
            let mut last_state = None;
            let mut stage = 0u32;
            Box::new(FnProgram(move |v: &UserView<'_>| {
                const NINJA_PID: u64 = 4; // init=1, kflushd=2,3, ninja=4
                match stage {
                    0 => {
                        // Poll until we observe a run -> sleep transition.
                        if let Some(stat) = ProcStat::unpack(v.last_ret) {
                            if last_state == Some(0) && stat.state == 1 {
                                stage = 1;
                                return UserOp::sys(Sysno::VulnEscalate, &[]);
                            }
                            last_state = Some(stat.state);
                        }
                        UserOp::sys(Sysno::ReadProcStat, &[NINJA_PID])
                    }
                    1 => {
                        stage = 2;
                        UserOp::sys(Sysno::Write, &[0, 4096]) // the loot copy
                    }
                    2 => {
                        stage = 3;
                        UserOp::Emit(ATTACK_DONE_TAG.into(), String::new())
                    }
                    _ => UserOp::Exit(0),
                }
            }))
        }),
    );
    let (ninja_raw, attacker_raw) = (ninja.0, attacker.0);
    let init = vm.kernel.register_program(
        "init",
        Box::new(move || {
            let mut stage = 0;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                stage += 1;
                match stage {
                    1 => UserOp::sys(Sysno::Spawn, &[ninja_raw, 0]),
                    2 => UserOp::sys(Sysno::Spawn, &[attacker_raw, 1000]),
                    _ => UserOp::sys(Sysno::Nanosleep, &[3_600_000_000_000]),
                }
            }))
        }),
    );
    vm.kernel.set_init_program(init);
    vm.run_for(Duration::from_secs(2));
    let mails = vm.kernel.drain_all_mailboxes();
    assert!(mails.iter().any(|(_, e)| e.tag == ATTACK_DONE_TAG), "the attack completed");
    assert!(
        mails.iter().all(|(_, e)| e.tag != DETECT_TAG),
        "a perfectly timed transient attack is never caught by the poller"
    );
}
