//! Cross-crate integration tests: the full monitored-VM stack.
//!
//! These exercise the complete pipeline — guest kernel → architectural
//! operations → VM Exits → interception engines → Event Forwarder →
//! Event Multiplexer → auditors — end to end, the way the experiment
//! binaries use it.

use hypertap::harness::{EngineSelection, TapVm};
use hypertap::prelude::*;
use hypertap_guestos::program::UserView;
use hypertap_hvsim::clock::Duration;

/// Booting the default guest produces the expected event mix: process
/// switches (CR3), thread switches (TSS writes), syscalls (SYSENTER), I/O.
#[test]
fn boot_produces_all_event_classes() {
    let mut vm = TapVm::builder().build();
    // A workload that exercises syscalls and disk I/O.
    let w = vm.kernel.register_program(
        "writer",
        Box::new(|| Box::new(FnProgram(|_v: &UserView<'_>| UserOp::sys(Sysno::Write, &[0, 4096])))),
    );
    let init = hypertap_workloads::make::install_init_running(&mut vm.kernel, w);
    vm.kernel.set_init_program(init);
    vm.run_for(Duration::from_millis(500));

    assert!(vm.kernel.is_booted());
    let stats = vm.machine.vm().stats();
    assert!(stats.count_by_name("CR_ACCESS") > 0, "process switches");
    assert!(stats.count_by_name("EPT_VIOLATION") > 0, "TSS writes + sysenter");
    assert!(stats.count_by_name("IO_INST") > 0, "disk port I/O");
    assert!(stats.count_by_name("EXTERNAL_INT") > 0, "timer ticks");
    assert!(stats.count_by_name("WRMSR") > 0, "sysenter MSR setup");
    assert!(vm.machine.hypervisor().forwarded_events() > 0);
}

/// GOSHD stays silent on a healthy guest.
#[test]
fn goshd_no_false_alarms_on_healthy_guest() {
    let mut vm = TapVm::builder()
        .goshd(hypertap_monitors::goshd::GoshdConfig { threshold: Duration::from_secs(2) })
        .build();
    vm.run_for(Duration::from_secs(20));
    let goshd = vm.auditor::<Goshd>().unwrap();
    assert!(goshd.alarms().is_empty(), "healthy guest must not alarm: {:?}", goshd.alarms());
}

/// GOSHD detects a hang injected by leaking a hot kernel lock, and the
/// hang is partial (the other vCPU keeps scheduling).
#[test]
fn goshd_detects_injected_hang() {
    let mut vm = TapVm::builder()
        .goshd(hypertap_monitors::goshd::GoshdConfig { threshold: Duration::from_secs(2) })
        .build();
    // Two writers (they hammer the vfs/ext3/block paths) on 2 vCPUs.
    let w = vm.kernel.register_program(
        "writer",
        Box::new(|| Box::new(FnProgram(|_v: &UserView<'_>| UserOp::sys(Sysno::Write, &[0, 4096])))),
    );
    let w_raw = w.0;
    let init = vm.kernel.register_program(
        "init",
        Box::new(move || {
            let mut stage = 0;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                stage += 1;
                match stage {
                    1 | 2 => UserOp::sys(Sysno::Spawn, &[w_raw, 1000]),
                    _ => UserOp::sys(Sysno::Nanosleep, &[3_600_000_000_000]),
                }
            }))
        }),
    );
    vm.kernel.set_init_program(init);
    // Leak every vfs lock release persistently: the writers will hang.
    struct LeakVfs;
    impl hypertap_guestos::fault::FaultHook for LeakVfs {
        fn check(
            &mut self,
            site: u32,
            acquire: bool,
        ) -> Option<hypertap_guestos::fault::FaultType> {
            let table = hypertap_guestos::klocks::LockTable::new();
            if !acquire && table.site(site as usize).subsystem == "vfs" {
                Some(hypertap_guestos::fault::FaultType::MissingUnlock)
            } else {
                None
            }
        }
        fn activations(&self) -> u64 {
            1
        }
    }
    vm.kernel.set_fault_hook(Box::new(LeakVfs));
    vm.run_for(Duration::from_secs(30));
    let goshd = vm.auditor::<Goshd>().unwrap();
    assert!(!goshd.alarms().is_empty(), "hang must be detected");
    let findings = vm.drain_findings();
    assert!(findings.iter().any(|f| f.auditor == "goshd"));
}

/// HRKD sees through a DKOM rootkit: the hidden process stays in the
/// trusted (architectural) view while vanishing from VMI.
#[test]
fn hrkd_detects_dkom_hidden_process() {
    let mut vm = TapVm::builder().hrkd().build();
    let rk = vm.kernel.register_module(rootkit_by_name("SucKIT").expect("table 2 rootkit"));
    // A busy victim process that gets hidden.
    let victim = vm.kernel.register_program(
        "victim",
        Box::new(|| Box::new(FnProgram(|_v: &UserView<'_>| UserOp::Compute(100_000)))),
    );
    let victim_raw = victim.0;
    let init = vm.kernel.register_program(
        "init",
        Box::new(move || {
            let mut stage = 0;
            let mut vpid = 0u64;
            Box::new(FnProgram(move |v: &UserView<'_>| {
                stage += 1;
                match stage {
                    1 => UserOp::sys(Sysno::Spawn, &[victim_raw, 1000]),
                    2 => {
                        vpid = v.last_ret;
                        // Give the victim time to run (so HRKD observes its
                        // CR3), then hide it.
                        UserOp::sys(Sysno::Nanosleep, &[50_000_000])
                    }
                    3 => UserOp::sys(Sysno::InstallModule, &[rk, vpid]),
                    _ => UserOp::sys(Sysno::Nanosleep, &[3_600_000_000_000]),
                }
            }))
        }),
    );
    vm.kernel.set_init_program(init);
    vm.run_for(Duration::from_millis(500));

    // Manual cross-validation (the way the Table II experiment drives it).
    let now = vm.now();
    let (machine, _kernel) = (&mut vm.machine, &vm.kernel);
    let (vmstate, kvm) = machine.parts_mut();
    let hrkd = kvm.em.auditor_mut::<Hrkd>().unwrap();
    let report = hrkd.cross_validate_vmi(vmstate, now);
    assert!(
        !report.hidden_pdbas.is_empty(),
        "the hidden process's address space must be flagged: {report:?}"
    );
}

/// HT-Ninja catches a privilege escalation at its first unauthorized I/O
/// syscall, even though the process also hides with a rootkit.
#[test]
fn htninja_catches_escalation_despite_rootkit() {
    let mut vm = TapVm::builder().htninja(NinjaRules::new()).build();
    let rk = vm.kernel.register_module(rootkit_by_name("FU").expect("table 2 rootkit"));
    let attack = vm.kernel.register_program(
        "exploit",
        Box::new(move || Box::new(AttackProgram::new(AttackConfig::rootkit_combined(rk)))),
    );
    let attack_raw = attack.0;
    // The attacker's shell: an unprivileged user process that launches the
    // exploit (so the escalated process's parent is uid 1000, outside the
    // magic group — as in the paper's scenario).
    let shell = vm.kernel.register_program(
        "sh",
        Box::new(move || {
            let mut stage = 0;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                stage += 1;
                match stage {
                    1 => UserOp::sys(Sysno::Nanosleep, &[100_000_000]),
                    2 => UserOp::sys(Sysno::Spawn, &[attack_raw, u64::MAX]),
                    _ => UserOp::sys(Sysno::Waitpid, &[]),
                }
            }))
        }),
    );
    let init = hypertap_workloads::make::install_init_running(&mut vm.kernel, shell);
    vm.kernel.set_init_program(init);
    vm.run_for(Duration::from_millis(500));
    let ninja = vm.auditor::<HtNinja>().unwrap();
    assert_eq!(ninja.detections().len(), 1, "exactly one attack, one catch");
    let d = &ninja.detections()[0];
    assert_eq!(d.comm, "exploit");
    assert_eq!(d.euid, 0);
    assert_eq!(d.parent_uid, 1000, "parent is the user's shell");
    assert_eq!(d.via, "io-syscall", "caught at the sensitive-data copy");
}

/// The TSS-integrity engine raises an alarm if something relocates a TSS.
#[test]
fn tss_relocation_is_flagged() {
    let mut vm = TapVm::builder().build();
    vm.run_for(Duration::from_millis(100));
    // Simulate a malicious TR move on vCPU 1 (host-side stand-in for a
    // hypothetical in-guest LTR attack).
    vm.machine.vm_mut().vcpu_mut(VcpuId(1)).set_tr_base(Gva::new(0x3333_0000));
    let (vmstate, kvm) = vm.machine.parts_mut();
    kvm.em.register(Box::new(CountingAuditor::with_mask(EventMask::only(
        hypertap_core::event::EventClass::Integrity,
    ))));
    let _ = vmstate;
    vm.run_for(Duration::from_millis(100));
    let c = vm.auditor::<CountingAuditor>().unwrap();
    assert_eq!(c.events_seen(), 1, "one TssRelocated event");
}

/// Monitoring overhead exists but is small for an idle-ish guest, and the
/// baseline (no engines) is strictly faster in guest time per work.
#[test]
fn monitoring_costs_guest_time() {
    let run = |engines: EngineSelection| -> u64 {
        let mut vm = TapVm::builder().engines(engines).build();
        let w = vm.kernel.register_program(
            "writer",
            Box::new(|| {
                let mut n = 0u64;
                Box::new(FnProgram(move |_v: &UserView<'_>| {
                    n += 1;
                    if n > 2_000 {
                        UserOp::sys(Sysno::Reboot, &[])
                    } else {
                        UserOp::sys(Sysno::Write, &[0, 4096])
                    }
                }))
            }),
        );
        let init = hypertap_workloads::make::install_init_running(&mut vm.kernel, w);
        vm.kernel.set_init_program(init);
        vm.run_for(Duration::from_secs(60));
        vm.now().as_nanos()
    };
    let base = run(EngineSelection::none());
    let monitored = run(EngineSelection::all());
    assert!(monitored > base, "monitoring must cost something");
    let overhead = (monitored - base) as f64 / base as f64;
    assert!(overhead < 0.5, "but not half the machine: {overhead}");
}
