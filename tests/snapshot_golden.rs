//! Golden `.htsp` machine-snapshot regression and codec robustness.
//!
//! Three checked-in snapshots — an idle (unbooted) guest, a guest mid-hang
//! and a guest mid-rootkit-scan — must stay byte-identical to a freshly
//! captured snapshot of the same scenario at the same simulated time, must
//! restore into a recipe-fresh VM that continues exactly like an
//! uninterrupted run, and must fail with *structured* errors (never a
//! panic) under truncation, corruption and version skew.
//!
//! If a deliberate behaviour change breaks the byte regression, regenerate
//! with `cargo run --release -p hypertap-replay --bin record-golden` and
//! review the deltas in the commit.

use hypertap_core::prelude::VmId;
use hypertap_hvsim::clock::Duration;
use hypertap_hvsim::snap::SnapError;
use hypertap_replay::golden::{golden_snapshots, record_snapshot, snapshot_path};
use hypertap_replay::scenario::{build_scenario_vm, BASE};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn checked_in(name: &str) -> Vec<u8> {
    let path = snapshot_path(name);
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!("missing golden snapshot {} ({e}); run record-golden", path.display())
    })
}

#[test]
fn live_snapshots_match_checked_in_htsp_byte_for_byte() {
    for (name, scenario, at) in golden_snapshots() {
        let fixture = checked_in(&name);
        let fresh = record_snapshot(&scenario, at);
        assert_eq!(
            fresh,
            fixture,
            "{name}: live snapshot diverged from golden fixture ({} vs {} bytes); if the \
             behaviour change is intentional, regenerate with record-golden",
            fresh.len(),
            fixture.len()
        );
    }
}

#[test]
fn golden_snapshots_restore_and_continue_like_uninterrupted_runs() {
    for (name, scenario, at) in golden_snapshots() {
        let fixture = checked_in(&name);
        let rest = Duration::from_nanos(scenario.duration.as_nanos() - at.as_nanos());

        // The uninterrupted control: same recipe, same total schedule.
        let mut control = build_scenario_vm(&scenario, &BASE, VmId(0));
        if at > Duration::ZERO {
            control.run_for(at);
        }
        control.run_for(rest);

        // The restored run: recipe-fresh VM, state from the fixture.
        let mut restored = build_scenario_vm(&scenario, &BASE, VmId(0));
        restored.restore(&fixture).unwrap_or_else(|e| panic!("{name}: fixture restores: {e}"));
        restored.run_for(rest);

        assert_eq!(restored.now(), control.now(), "{name}");
        assert_eq!(restored.drain_findings(), control.drain_findings(), "{name}");
        assert_eq!(
            restored.machine.hypervisor().em.stats(),
            control.machine.hypervisor().em.stats(),
            "{name}: delivery counters must continue identically"
        );
        assert_eq!(
            restored.snapshot().unwrap(),
            control.snapshot().unwrap(),
            "{name}: final machine states must be byte-identical"
        );
    }
}

#[test]
fn truncated_snapshots_error_and_never_panic() {
    let (name, scenario, _) = &golden_snapshots()[0];
    let fixture = checked_in(name);
    // Every short prefix, then strided samples of the longer ones.
    let lens: Vec<usize> =
        (0..fixture.len().min(64)).chain((64..fixture.len()).step_by(997)).collect();
    for len in lens {
        let prefix = &fixture[..len];
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut vm = build_scenario_vm(scenario, &BASE, VmId(0));
            vm.restore(prefix)
        }));
        match outcome {
            Ok(result) => assert!(
                result.is_err(),
                "truncation to {len} bytes must be a structured error, got Ok"
            ),
            Err(_) => panic!("truncation to {len} bytes must not panic"),
        }
    }
}

#[test]
fn corrupted_snapshots_never_panic() {
    // A flipped byte may still decode (payload bytes are not checksummed),
    // but it must never panic the decoder — a structured error or a clean
    // decode of different state are both acceptable.
    let (name, scenario, _) = &golden_snapshots()[1];
    let fixture = checked_in(name);
    for pos in (0..fixture.len()).step_by(2011) {
        let mut bad = fixture.clone();
        bad[pos] ^= 0xA5;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut vm = build_scenario_vm(scenario, &BASE, VmId(0));
            let _ = vm.restore(&bad);
        }));
        assert!(outcome.is_ok(), "corruption at byte {pos} must not panic");
    }
}

#[test]
fn version_skew_is_a_structured_error() {
    let (name, scenario, _) = &golden_snapshots()[0];
    let mut skewed = checked_in(name);
    skewed[4] = 9; // the version varint follows the 4-byte magic
    let mut vm = build_scenario_vm(scenario, &BASE, VmId(0));
    assert_eq!(vm.restore(&skewed), Err(SnapError::UnsupportedVersion(9)));
    let mut wrong_magic = checked_in(name);
    wrong_magic[0] = b'X';
    assert_eq!(vm.restore(&wrong_magic), Err(SnapError::BadMagic));
}

#[test]
fn cross_recipe_restore_is_rejected() {
    // A snapshot of one golden scenario must not restore into a different
    // scenario's VM: the roster/congruence checks reject it structurally.
    let snaps = golden_snapshots();
    let mid_hang = checked_in(&snaps[1].0);
    let (_, rootkit_scenario, _) = &snaps[2];
    let mut vm = build_scenario_vm(rootkit_scenario, &BASE, VmId(0));
    assert!(
        vm.restore(&mid_hang).is_err(),
        "restoring mid_hang into the rootkit_hunt recipe must fail"
    );
}
