//! Golden-trace regression: the forwarded event stream for five fixed
//! scenarios — plus a 4-VM fleet archive — must stay byte-identical to
//! the checked-in fixtures, and replaying a fixture must reproduce the
//! live verdict.
//!
//! If a deliberate behaviour change breaks this test, regenerate the
//! fixtures with `cargo run --release -p hypertap-replay --bin
//! record-golden` and review the deltas in the commit.

use hypertap_replay::fleet::{
    decode_fleet_archive, encode_fleet_archive, fleet_traces, golden_fleet, run_scenario_fleet,
    GOLDEN_FLEET_NAME,
};
use hypertap_replay::golden::{golden_path, golden_scenarios};
use hypertap_replay::replay::replay_trace;
use hypertap_replay::scenario::{register_auditors, run_scenario, BASE};
use hypertap_replay::trace::{compress, decompress, Trace};

#[test]
fn live_runs_match_checked_in_golden_traces_byte_for_byte() {
    for scenario in golden_scenarios() {
        let path = golden_path(&scenario.name);
        let checked_in = std::fs::read(&path).unwrap_or_else(|e| {
            panic!("missing golden fixture {} ({e}); run record-golden", path.display())
        });
        let (trace, _) = run_scenario(&scenario, &BASE);
        let fresh = compress(&trace.encode());
        assert_eq!(
            fresh,
            checked_in,
            "{}: live trace diverged from golden fixture ({} vs {} bytes); if the \
             behaviour change is intentional, regenerate with record-golden",
            scenario.name,
            fresh.len(),
            checked_in.len()
        );
    }
}

#[test]
fn replaying_golden_traces_reproduces_live_verdicts() {
    for scenario in golden_scenarios() {
        let bytes = decompress(&std::fs::read(golden_path(&scenario.name)).expect("fixture"))
            .expect("golden fixture decompresses");
        let golden = Trace::decode(&bytes).expect("golden fixture decodes");
        let (_, live) = run_scenario(&scenario, &BASE);
        let replayed = replay_trace(&golden, |em| register_auditors(em, scenario.vcpus));
        assert_eq!(
            replayed, live,
            "{}: replaying the golden trace must reproduce the live verdict",
            scenario.name
        );
    }
}

#[test]
fn fleet_run_matches_checked_in_golden_archive_byte_for_byte() {
    let path = golden_path(GOLDEN_FLEET_NAME);
    let checked_in = std::fs::read(&path).unwrap_or_else(|e| {
        panic!("missing golden fleet fixture {} ({e}); run record-golden", path.display())
    });
    let (fleet, vms) = golden_fleet();
    // A worker count the recorder did not use: the archive bytes must
    // not depend on sharding.
    let report = run_scenario_fleet(&fleet, vms, 3);
    let traces = fleet_traces(&report).expect("fleet payloads decode");
    let fresh = compress(&encode_fleet_archive(&traces));
    assert_eq!(
        fresh,
        checked_in,
        "fleet archive diverged from golden fixture ({} vs {} bytes); if the behaviour \
         change is intentional, regenerate with record-golden",
        fresh.len(),
        checked_in.len()
    );
    let decoded = decode_fleet_archive(&decompress(&checked_in).expect("fixture decompresses"))
        .expect("fixture decodes");
    assert_eq!(decoded.len(), vms);
    assert!(decoded.iter().all(|t| t.event_count() > 0), "every fleet VM logged events");
}
