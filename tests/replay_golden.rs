//! Golden-trace regression: the forwarded event stream for five fixed
//! scenarios — plus a 4-VM fleet archive — must stay byte-identical to
//! the checked-in fixtures, and replaying a fixture must reproduce the
//! live verdict.
//!
//! If a deliberate behaviour change breaks this test, regenerate the
//! fixtures with `cargo run --release -p hypertap-replay --bin
//! record-golden` and review the deltas in the commit.

use hypertap_hvsim::clock::SimTime;
use hypertap_replay::fleet::{
    decode_fleet_archive, encode_fleet_archive, fleet_traces, golden_fleet, run_scenario_fleet,
    GOLDEN_FLEET_NAME,
};
use hypertap_replay::golden::{golden_path, golden_scenarios};
use hypertap_replay::replay::{replay_trace, validate_provenance};
use hypertap_replay::scenario::{register_auditors, run_scenario, BASE};
use hypertap_replay::trace::{compress, decompress, Trace, TraceRecord};

#[test]
fn live_runs_match_checked_in_golden_traces_byte_for_byte() {
    for scenario in golden_scenarios() {
        let path = golden_path(&scenario.name);
        let checked_in = std::fs::read(&path).unwrap_or_else(|e| {
            panic!("missing golden fixture {} ({e}); run record-golden", path.display())
        });
        let (trace, _) = run_scenario(&scenario, &BASE);
        let fresh = compress(&trace.encode());
        assert_eq!(
            fresh,
            checked_in,
            "{}: live trace diverged from golden fixture ({} vs {} bytes); if the \
             behaviour change is intentional, regenerate with record-golden",
            scenario.name,
            fresh.len(),
            checked_in.len()
        );
    }
}

#[test]
fn replaying_golden_traces_reproduces_live_verdicts() {
    for scenario in golden_scenarios() {
        let bytes = decompress(&std::fs::read(golden_path(&scenario.name)).expect("fixture"))
            .expect("golden fixture decompresses");
        let golden = Trace::decode(&bytes).expect("golden fixture decodes");
        let (_, live) = run_scenario(&scenario, &BASE);
        let replayed = replay_trace(&golden, |em| register_auditors(em, scenario.vcpus));
        assert_eq!(
            replayed, live,
            "{}: replaying the golden trace must reproduce the live verdict",
            scenario.name
        );
    }
}

#[test]
fn golden_replay_reproduces_finding_provenance_bit_for_bit() {
    // Causal provenance is part of the verdict: replaying a golden trace
    // must cite exactly the exit ordinals the live run cited, and every
    // cited ordinal must exist in the trace.
    for scenario in golden_scenarios() {
        let bytes = decompress(&std::fs::read(golden_path(&scenario.name)).expect("fixture"))
            .expect("golden fixture decompresses");
        let golden = Trace::decode(&bytes).expect("golden fixture decodes");
        let (_, live) = run_scenario(&scenario, &BASE);
        let replayed = replay_trace(&golden, |em| register_auditors(em, scenario.vcpus));
        assert_eq!(
            replayed.findings_provenance, live.findings_provenance,
            "{}: replayed provenance must match the live run bit-for-bit",
            scenario.name
        );
        validate_provenance(&replayed, &golden).unwrap_or_else(|e| {
            panic!("{}: provenance does not resolve against the trace: {e}", scenario.name)
        });
    }
}

#[test]
fn hang_extended_golden_trace_yields_explained_alarms() {
    // The golden scenarios are healthy guests, so they raise no alarms of
    // their own. Append silent EM ticks far past the GOSHD threshold to
    // the first golden trace: replay must now alarm, and every alarm must
    // be explained by exit ordinals the trace actually contains.
    let scenario = &golden_scenarios()[0];
    let bytes = decompress(&std::fs::read(golden_path(&scenario.name)).expect("fixture"))
        .expect("golden fixture decompresses");
    let mut trace = Trace::decode(&bytes).expect("golden fixture decodes");
    for sec in 10..=20u64 {
        trace.records.push(TraceRecord::Tick(SimTime::from_secs(sec)));
    }
    let replayed = replay_trace(&trace, |em| register_auditors(em, scenario.vcpus));
    assert!(!replayed.goshd_alarms.is_empty(), "silence past the threshold must alarm");
    assert!(!replayed.findings.is_empty());
    assert!(
        replayed.findings_provenance.iter().all(|refs| !refs.is_empty()),
        "every hang finding must cite the exit that last proved the vCPU alive: {:?}",
        replayed.findings_provenance
    );
    validate_provenance(&replayed, &trace).expect("alarm provenance resolves against the trace");
}

#[test]
fn fleet_run_matches_checked_in_golden_archive_byte_for_byte() {
    let path = golden_path(GOLDEN_FLEET_NAME);
    let checked_in = std::fs::read(&path).unwrap_or_else(|e| {
        panic!("missing golden fleet fixture {} ({e}); run record-golden", path.display())
    });
    let (fleet, vms) = golden_fleet();
    // A worker count the recorder did not use: the archive bytes must
    // not depend on sharding.
    let report = run_scenario_fleet(&fleet, vms, 3);
    let traces = fleet_traces(&report).expect("fleet payloads decode");
    let fresh = compress(&encode_fleet_archive(&traces));
    assert_eq!(
        fresh,
        checked_in,
        "fleet archive diverged from golden fixture ({} vs {} bytes); if the behaviour \
         change is intentional, regenerate with record-golden",
        fresh.len(),
        checked_in.len()
    );
    let decoded = decode_fleet_archive(&decompress(&checked_in).expect("fixture decompresses"))
        .expect("fixture decodes");
    assert_eq!(decoded.len(), vms);
    assert!(decoded.iter().all(|t| t.event_count() > 0), "every fleet VM logged events");
}
