//! Golden-trace regression: the forwarded event stream for five fixed
//! scenarios must stay byte-identical to the checked-in fixtures, and
//! replaying a fixture must reproduce the live verdict.
//!
//! If a deliberate behaviour change breaks this test, regenerate the
//! fixtures with `cargo run --release -p hypertap-replay --bin
//! record-golden` and review the deltas in the commit.

use hypertap_replay::golden::{golden_path, golden_scenarios};
use hypertap_replay::replay::replay_trace;
use hypertap_replay::scenario::{register_auditors, run_scenario, BASE};
use hypertap_replay::trace::{compress, decompress, Trace};

#[test]
fn live_runs_match_checked_in_golden_traces_byte_for_byte() {
    for scenario in golden_scenarios() {
        let path = golden_path(&scenario.name);
        let checked_in = std::fs::read(&path).unwrap_or_else(|e| {
            panic!("missing golden fixture {} ({e}); run record-golden", path.display())
        });
        let (trace, _) = run_scenario(&scenario, &BASE);
        let fresh = compress(&trace.encode());
        assert_eq!(
            fresh,
            checked_in,
            "{}: live trace diverged from golden fixture ({} vs {} bytes); if the \
             behaviour change is intentional, regenerate with record-golden",
            scenario.name,
            fresh.len(),
            checked_in.len()
        );
    }
}

#[test]
fn replaying_golden_traces_reproduces_live_verdicts() {
    for scenario in golden_scenarios() {
        let bytes = decompress(&std::fs::read(golden_path(&scenario.name)).expect("fixture"))
            .expect("golden fixture decompresses");
        let golden = Trace::decode(&bytes).expect("golden fixture decodes");
        let (_, live) = run_scenario(&scenario, &BASE);
        let replayed = replay_trace(&golden, |em| register_auditors(em, scenario.vcpus));
        assert_eq!(
            replayed, live,
            "{}: replaying the golden trace must reproduce the live verdict",
            scenario.name
        );
    }
}
