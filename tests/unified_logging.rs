//! Integration tests for the paper's *unified logging* claims (§IV-A) and
//! the enforcement/containment features of the framework.

use hypertap::harness::{EngineSelection, TapVm};
use hypertap::prelude::*;
use hypertap_core::em::ContainerAuditor;
use hypertap_core::event::EventClass;
use hypertap_guestos::layout;
use hypertap_guestos::program::UserView;
use hypertap_hvsim::clock::Duration;

/// GOSHD (reliability) and HRKD (security) consume the *same* logged
/// context-switch events: with both registered, the number of events
/// forwarded by the Event Forwarder does not change — only the fan-out.
#[test]
fn one_logging_channel_feeds_reliability_and_security() {
    let run = |goshd: bool, hrkd: bool| -> (u64, u64) {
        let mut builder = TapVm::builder().engines(EngineSelection::context_switch_only());
        if goshd {
            builder = builder.goshd(GoshdConfig::paper_default());
        }
        if hrkd {
            builder = builder.hrkd();
        }
        let mut vm = builder.build();
        vm.run_for(Duration::from_secs(2));
        let forwarded = vm.machine.hypervisor().forwarded_events();
        let delivered = vm.machine.hypervisor().em.stats().sync_delivered;
        (forwarded, delivered)
    };
    let (f_one, d_one) = run(true, false);
    let (f_both, d_both) = run(true, true);
    assert_eq!(f_one, f_both, "logging volume is independent of the auditor count");
    assert_eq!(d_both, 2 * d_one, "each auditor gets its own delivery of the shared stream");
}

/// A containerised auditor receives the stream off the guest's back and its
/// crashes are contained and restarted — the Fig. 2 deployment.
#[test]
fn audit_containers_receive_and_survive_panics() {
    struct Flaky {
        seen: u64,
    }
    impl ContainerAuditor for Flaky {
        fn name(&self) -> &str {
            "flaky"
        }
        fn subscriptions(&self) -> EventMask {
            EventMask::only(EventClass::ProcessSwitch).with(EventClass::ThreadSwitch)
        }
        fn on_event(&mut self, event: &Event) -> Vec<Finding> {
            self.seen += 1;
            if self.seen.is_multiple_of(5) {
                panic!("auditor bug");
            }
            vec![Finding::new("flaky", event.time, Severity::Info, "seen")]
        }
    }

    let mut vm = TapVm::builder().engines(EngineSelection::context_switch_only()).build();
    vm.machine.hypervisor_mut().em.register_container(Box::new(|| Box::new(Flaky { seen: 0 })));
    vm.run_for(Duration::from_secs(2));

    let enqueued = vm.machine.hypervisor().em.stats().container_enqueued;
    assert!(enqueued > 0, "events flowed to the container");
    let restarts = vm.machine.hypervisor_mut().em.shutdown_containers();
    assert_eq!(restarts.len(), 1);
    assert!(restarts[0].1 > 0, "the container absorbed at least one panic");
    let findings = vm.drain_findings();
    assert!(!findings.is_empty(), "findings from before/after crashes survive");
}

/// The kernel-integrity auditor blocks an in-guest attempt to patch kernel
/// text: the write raises an EPT violation, the blocking auditor requests
/// suppression, and the text is unchanged.
#[test]
fn kernel_integrity_blocks_code_patching() {
    let mut vm = TapVm::builder().build();
    // Boot, then arm the protection on the kernel text page and register
    // the configured auditor.
    vm.run_for(Duration::from_millis(100));
    let kernel_pd = vm.kernel.kernel_pd();
    {
        let (vmstate, kvm) = vm.machine.parts_mut();
        let mut integrity = KernelIntegrity::new(true);
        integrity
            .protect_text(vmstate, kvm, kernel_pd, layout::KERNEL_TEXT)
            .expect("kernel text mapped after boot");
        kvm.em.register(Box::new(integrity));
    }
    let read_text = |vm: &TapVm| {
        let vmstate = vm.machine.vm();
        let gpa = hypertap_hvsim::paging::walk(&vmstate.mem, kernel_pd, layout::KERNEL_TEXT)
            .expect("mapped");
        vmstate.mem.read_u64(gpa)
    };
    let before = read_text(&vm);

    // The attacker: a kernel-memory write primitive aimed at the syscall
    // entry code (what a code-injecting rootkit does).
    let mut patcher = PatcherGuest;
    vm.machine.run_steps(&mut patcher, 1);

    assert_eq!(before, read_text(&vm), "the patch was suppressed");
    let attempts =
        vm.machine.hypervisor().em.auditor::<KernelIntegrity>().expect("registered").attempts();
    assert_eq!(attempts.len(), 1, "the attempt was recorded");
    assert!(attempts[0].blocked);
    assert_eq!(attempts[0].value, Some(0xBADC0DE));
}

/// HT-Ninja's pause-on-detect enforcement stops the VM before the attack
/// finishes exfiltrating.
#[test]
fn htninja_pause_stops_the_attack() {
    let mut vm = TapVm::builder().htninja_pausing(NinjaRules::new()).build();
    let rk = vm.kernel.register_module(rootkit_by_name("FU").unwrap());
    let attack = vm.kernel.register_program(
        "exploit",
        Box::new(move || Box::new(AttackProgram::new(AttackConfig::rootkit_combined(rk)))),
    );
    let attack_raw = attack.0;
    let shell = vm.kernel.register_program(
        "sh",
        Box::new(move || {
            let mut stage = 0;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                stage += 1;
                match stage {
                    1 => UserOp::sys(Sysno::Nanosleep, &[50_000_000]),
                    2 => UserOp::sys(Sysno::Spawn, &[attack_raw, u64::MAX]),
                    _ => UserOp::sys(Sysno::Waitpid, &[]),
                }
            }))
        }),
    );
    let init = hypertap::workloads::make::install_init_running(&mut vm.kernel, shell);
    vm.kernel.set_init_program(init);

    let exit = vm.run_for(Duration::from_secs(2));
    assert_eq!(exit, hypertap_hvsim::machine::RunExit::Paused, "the auditor froze the VM");
    let ninja = vm.auditor::<HtNinja>().unwrap();
    assert_eq!(ninja.detections().len(), 1);
    // The attack never completed: no attack-done mail.
    let mails = vm.kernel.drain_all_mailboxes();
    assert!(mails.iter().all(|(_, e)| e.tag != ATTACK_DONE_TAG));
}

/// Stand-in for a code-injecting rootkit: one raw write into kernel text.
struct PatcherGuest;
impl hypertap_hvsim::machine::GuestProgram for PatcherGuest {
    fn step(
        &mut self,
        cpu: &mut hypertap_hvsim::cpu::CpuCtx<'_>,
    ) -> hypertap_hvsim::cpu::StepOutcome {
        let _ = cpu.write_u64_gva(layout::KERNEL_TEXT, 0xBADC0DE);
        hypertap_hvsim::cpu::StepOutcome::Shutdown
    }
}

/// The Remote Health Checker notices when the monitored stack goes silent:
/// heartbeats flow while the guest runs, and a check after the VM stops
/// raises the liveness alarm (the in-process transport variant; the
/// `remote_health` example does the same over TCP).
#[test]
fn rhc_alarms_when_the_event_stream_stops() {
    use hypertap_core::rhc::{InProcTransport, RemoteHealthChecker};
    use std::cell::RefCell;
    use std::rc::Rc;

    let checker = Rc::new(RefCell::new(RemoteHealthChecker::new(1_000_000_000)));
    let mut vm = TapVm::builder().build();
    vm.machine.hypervisor_mut().em.attach_rhc(Box::new(InProcTransport::new(checker.clone())), 32);
    vm.run_for(Duration::from_secs(2));

    let now_ns = vm.now().as_nanos();
    {
        let mut c = checker.borrow_mut();
        assert!(c.received() > 10, "heartbeats flowed: {}", c.received());
        assert!(c.check(now_ns).is_none(), "healthy while running");
    }
    // The monitoring stack dies with the VM; 5 simulated seconds later the
    // external checker alarms.
    let mut c = checker.borrow_mut();
    let alert = c.check(now_ns + 5_000_000_000).expect("silence alarm");
    assert!(alert.last_heartbeat_ns.is_some());
}
