//! # hypertap — reliability and security monitoring of virtual machines
//! using hardware architectural invariants
//!
//! Umbrella crate of the HyperTap reproduction (Pham et al., DSN 2014).
//! It re-exports the workspace crates under stable names and provides the
//! [`harness`] used by the examples, integration tests and experiment
//! binaries to assemble a fully monitored virtual machine in a few lines:
//!
//! ```
//! use hypertap::harness::TapVm;
//! use hypertap_hvsim::clock::Duration;
//!
//! let mut vm = TapVm::builder()
//!     .vcpus(2)
//!     .goshd(Default::default())
//!     .hrkd()
//!     .build();
//! vm.run_for(Duration::from_millis(500));
//! assert!(vm.kernel.is_booted());
//! assert!(vm.machine.hypervisor().forwarded_events() > 0);
//! ```
//!
//! Layer map (bottom-up):
//!
//! | crate | role |
//! |---|---|
//! | [`hvsim`] | hardware + HAV simulator (vCPUs, EPT, VM Exits) |
//! | [`guestos`] | simulated guest kernel (scheduler, tasks, syscalls, locks) |
//! | [`framework`] | HyperTap core: Event Forwarder/Multiplexer, interception engines, VMI, derivation, RHC |
//! | [`monitors`] | GOSHD, HRKD, the three Ninjas |
//! | [`attacks`] | rootkit models, exploits, side channels |
//! | [`faultinject`] | the hang-failure fault-injection campaign |
//! | [`workloads`] | Hanoi / make / HTTP / UnixBench-style workloads |

pub use hypertap_attacks as attacks;
pub use hypertap_core as framework;
pub use hypertap_faultinject as faultinject;
pub use hypertap_guestos as guestos;
pub use hypertap_hvsim as hvsim;
pub use hypertap_monitors as monitors;
pub use hypertap_workloads as workloads;

/// The assembly harness (re-exported from `hypertap-monitors`).
pub use hypertap_monitors::harness;

/// One-stop import for examples and tests.
pub mod prelude {

    pub use hypertap_attacks::prelude::*;
    pub use hypertap_core::prelude::*;
    pub use hypertap_guestos::prelude::*;
    pub use hypertap_hvsim::prelude::*;
    pub use hypertap_monitors::prelude::*;
}
