//! Derive macros for the in-tree `serde` shim.
//!
//! Implemented with a hand-rolled token walk (no `syn`/`quote`, which the
//! hermetic build cannot fetch). Supports exactly the shapes the workspace
//! derives on: structs with named fields, and enums whose variants are all
//! unit variants. Anything else panics at expansion time with a clear
//! message rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the item a derive was applied to.
enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Skips attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(...)`) at the current position.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then the bracketed attribute body.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other:?}"),
    };
    i += 1;

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(_) => panic!("serde derive: generics and where-clauses are not supported"),
        None => panic!("serde derive: missing braced body for `{name}`"),
    };

    match kind.as_str() {
        "struct" => Item::Struct { name, fields: parse_struct_fields(body.stream()) },
        "enum" => Item::Enum { name, variants: parse_enum_variants(body.stream()) },
        other => panic!("serde derive: cannot derive on `{other}` items"),
    }
}

fn parse_struct_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(tt) = tokens.get(i) else { break };
        let field = match tt {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde derive: tuple structs are not supported (field `{field}`)"),
        }
        // Skip the type: everything up to the next comma outside angle
        // brackets.
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

fn parse_enum_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(tt) = tokens.get(i) else { break };
        let variant = match tt {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected variant name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                panic!("serde derive: only unit enum variants are supported (`{variant}`)")
            }
            Some(other) => panic!("serde derive: unexpected token after `{variant}`: {other:?}"),
        }
        variants.push(variant);
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((\"{f}\".to_owned(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String =
                variants.iter().map(|v| format!("{name}::{v} => \"{v}\",\n")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let variant = match self {{\n{arms}}};\n\
                         ::serde::Value::Str(variant.to_owned())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde derive: generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         value.get(\"{f}\").unwrap_or(&::serde::Value::Null))?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let ::serde::Value::Str(s) = value else {{\n\
                             return ::std::result::Result::Err(\
                                 ::serde::Error::custom(\"expected enum variant string\"));\n\
                         }};\n\
                         match s.as_str() {{\n\
                             {arms}\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde derive: generated invalid Rust")
}
