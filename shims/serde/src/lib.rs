//! A minimal stand-in for the subset of `serde` this workspace uses.
//!
//! The workspace builds hermetically, so serialization is provided in-tree
//! through a simple self-describing [`Value`] tree: `Serialize` renders a
//! type into a `Value`, `Deserialize` rebuilds the type from one, and the
//! companion `serde_json` shim maps `Value` to and from JSON text.
//!
//! Supported shapes match what the codebase derives on: structs with named
//! fields of primitive / `String` / `Option` / `Vec` type, and unit-only
//! enums. The derive macros live in the `serde_derive` shim.

/// Self-describing data tree used as the serialization interchange format.
///
/// Objects preserve field order so JSON output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Value {
    /// Looks up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Conversion-time failure (wrong shape, missing field, unknown variant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn custom(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(v) => Ok(*v),
            Value::U64(v) => Ok(*v as f64),
            Value::I64(v) => Ok(*v as f64),
            _ => Err(Error::custom("expected f64")),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(v) => Ok(*v),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(v) => Ok(v.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let some: Option<u64> = Some(7);
        let none: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&some.to_value()), Ok(Some(7)));
        assert_eq!(Option::<u64>::from_value(&none.to_value()), Ok(None));
    }

    #[test]
    fn object_get_finds_fields() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a"), Some(&Value::U64(1)));
        assert_eq!(v.get("b"), None);
    }

    #[test]
    fn signed_and_unsigned_cross_decode() {
        assert_eq!(i64::from_value(&Value::U64(9)), Ok(9));
        assert_eq!(u64::from_value(&Value::I64(9)), Ok(9));
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
