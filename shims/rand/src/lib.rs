//! A minimal, deterministic subset of the `rand` 0.8 API.
//!
//! The workspace builds hermetically — no network, no registry — so the few
//! pieces of `rand` the simulator actually uses are provided in-tree:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`]
//! over integer and `f64` half-open ranges.
//!
//! The generator is a SplitMix64, not upstream's ChaCha12. That is a
//! deliberate trade: the experiments only require that a fixed `--seed`
//! reproduces the same stream run after run, not that the stream matches
//! upstream `rand` bit-for-bit.

use std::ops::Range;

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((self.start as i128) + (v as i128)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniformly random mantissa bits give a value in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Chosen for its tiny state and strong statistical behaviour; every
    /// stream is a pure function of the seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&v));
        }
    }
}
