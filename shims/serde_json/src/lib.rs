//! JSON text front-end for the in-tree `serde` shim.
//!
//! Provides `to_string` / `to_string_pretty` / `from_str` over the shim's
//! [`serde::Value`] interchange tree. The parser accepts standard JSON;
//! the writer emits deterministic output (object fields in declaration
//! order, which the shim's `Value::Object` preserves).

use serde::{Deserialize, Serialize, Value};

/// Serialization or parse failure.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error { message: e.to_string() }
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders `value` as indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if v.is_finite() {
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, v, d| {
                write_value(o, v, indent, d)
            })
        }
        Value::Object(fields) => {
            write_seq(out, fields.iter(), indent, depth, ('{', '}'), |o, (k, v), d| {
                write_escaped(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, v, indent, d);
            })
        }
    }
}

fn write_seq<I, T>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, usize),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(brackets.0);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if !empty {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
    out.push(brackets.1);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error { message: format!("{message} at byte {}", self.pos) }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<()> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{literal}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| Value::Null),
            Some(b't') => self.eat_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(hex).ok_or_else(|| self.error("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if float {
            text.parse::<f64>().map(Value::F64).map_err(|_| self.error("invalid number"))
        } else if negative {
            text.parse::<i64>().map(Value::I64).map_err(|_| self.error("invalid number"))
        } else {
            text.parse::<u64>().map(Value::U64).map_err(|_| self.error("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\none\t\"quoted\" \\ back".to_owned();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>("[1,2,3]").unwrap(), v);
        assert_eq!(to_string(&Option::<u64>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn whitespace_is_tolerated() {
        assert_eq!(from_str::<Vec<u64>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1u64, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn float_roundtrip() {
        let json = to_string(&1.5f64).unwrap();
        assert_eq!(json, "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
    }
}
