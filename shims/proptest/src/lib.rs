//! A minimal, deterministic subset of the `proptest` API.
//!
//! The workspace builds hermetically, so the property-testing surface the
//! test suites use — `proptest!`, `prop_assert*`, `any::<T>()`, integer-range
//! strategies, `prop::collection::vec`, `prop::sample::select`, and tuple
//! composition — is provided in-tree.
//!
//! Differences from upstream worth knowing:
//!
//! - Cases are generated from a fixed per-test seed (deterministic across
//!   runs); set `PROPTEST_CASES` to change the case count (default 64).
//! - There is no shrinking. A failing case reports its inputs via the
//!   panic message and its case index, which is stable, so failures are
//!   reproducible as-is.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Produces one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    ((self.start as i128) + (v as i128)) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    ((lo as i128) + (v as i128)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy wrapper produced by [`crate::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any { _marker: std::marker::PhantomData }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Generates any value of `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Builds a [`VecStrategy`] (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed set of values.
    pub struct Select<T> {
        choices: Vec<T>,
    }

    /// Builds a [`Select`] (mirrors `proptest::sample::select`).
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "cannot select from an empty set");
        Select { choices }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() as usize) % self.choices.len();
            self.choices[idx].clone()
        }
    }
}

pub mod test_runner {
    /// Deterministic per-test random source (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Stream for one numbered case of one named test.
        pub fn for_case(test_seed: u64, case: u64) -> Self {
            TestRng { state: test_seed ^ case.wrapping_mul(0xA076_1D64_78BD_642F) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// A failed property check (carries the formatted assertion message).
    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    /// Drives the case loop for one `proptest!` property.
    pub struct TestRunner {
        cases: u64,
        seed: u64,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
            TestRunner { cases, seed: 0 }
        }
    }

    impl TestRunner {
        /// Deterministic seed derived from the test name.
        pub fn for_test(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRunner { seed, ..TestRunner::default() }
        }

        pub fn cases(&self) -> u64 {
            self.cases
        }

        pub fn rng_for(&self, case: u64) -> TestRng {
            TestRng::for_case(self.seed, case)
        }
    }

    /// Runs one property body, surfacing `prop_assert!` failures as `Err`.
    ///
    /// Exists so the `proptest!` expansion calls a named function instead of
    /// an immediately-invoked closure.
    pub fn run_case<F>(body: F) -> Result<(), TestCaseError>
    where
        F: FnOnce() -> Result<(), TestCaseError>,
    {
        body()
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors upstream's `prop` facade module (`prop::collection::vec`,
    /// `prop::sample::select`).
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Defines property tests. Each `fn name(inputs) { body }` becomes a `#[test]`
/// that runs the body over many generated inputs.
///
/// Parameters take either form upstream allows:
/// `x in strategy_expr` or `x: Type` (shorthand for `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::__proptest_run!(@accum [] $name $body $($params)*);
            }
        )*
    };
}

/// Internal tt-muncher: parses the parameter list into `[name, strategy]`
/// pairs, then emits the case loop.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    // `x in strategy,` — trailing params follow.
    (@accum [$($acc:tt)*] $name:ident $body:block $p:ident in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_run!(@accum [$($acc)* [$p, $s]] $name $body $($rest)*)
    };
    // `x in strategy` — final param.
    (@accum [$($acc:tt)*] $name:ident $body:block $p:ident in $s:expr) => {
        $crate::__proptest_run!(@emit [$($acc)* [$p, $s]] $name $body)
    };
    // `x: Type,` — trailing params follow.
    (@accum [$($acc:tt)*] $name:ident $body:block $p:ident: $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_run!(@accum [$($acc)* [$p, $crate::any::<$ty>()]] $name $body $($rest)*)
    };
    // `x: Type` — final param.
    (@accum [$($acc:tt)*] $name:ident $body:block $p:ident: $ty:ty) => {
        $crate::__proptest_run!(@emit [$($acc)* [$p, $crate::any::<$ty>()]] $name $body)
    };
    // Empty parameter list.
    (@accum [$($acc:tt)*] $name:ident $body:block) => {
        $crate::__proptest_run!(@emit [$($acc)*] $name $body)
    };
    (@emit [$([$p:ident, $s:expr])*] $name:ident $body:block) => {{
        use $crate::strategy::Strategy as _;
        let runner = $crate::test_runner::TestRunner::for_test(stringify!($name));
        for case in 0..runner.cases() {
            let mut rng = runner.rng_for(case);
            $(let $p = ($s).generate(&mut rng);)*
            #[allow(unreachable_code)]
            let result = $crate::test_runner::run_case(|| {
                $body
                Ok(())
            });
            if let Err(e) = result {
                panic!(
                    "proptest {} failed at case {}: {}",
                    stringify!($name),
                    case,
                    e.message
                );
            }
        }
    }};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0i32..5) {
            prop_assert!((10..20).contains(&x), "x out of range: {x}");
            prop_assert!((0..5).contains(&y));
        }

        fn bare_type_params_work(v: u64, flag: bool) {
            let _ = flag;
            prop_assert_eq!(v, v);
        }

        fn vec_strategy_respects_len(
            items in prop::collection::vec((0u64..512, 0u64..4096), 1..40),
        ) {
            prop_assert!(!items.is_empty() && items.len() < 40);
            for (a, b) in items {
                prop_assert!(a < 512 && b < 4096);
            }
        }

        fn select_picks_from_choices(v in prop::sample::select(vec![1u8, 3, 5])) {
            prop_assert_ne!(v, 0);
            prop_assert!(v == 1 || v == 3 || v == 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let runner = crate::test_runner::TestRunner::for_test("some_test");
        let a: Vec<u64> = (0..10).map(|c| (0u64..1000).generate(&mut runner.rng_for(c))).collect();
        let b: Vec<u64> = (0..10).map(|c| (0u64..1000).generate(&mut runner.rng_for(c))).collect();
        assert_eq!(a, b);
    }
}
