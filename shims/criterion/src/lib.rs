//! A minimal stand-in for the `criterion` benchmarking API.
//!
//! The workspace builds hermetically, so the bench harness surface the
//! `crates/bench` benches use — `Criterion::benchmark_group`,
//! `BenchmarkGroup::bench_function`/`sample_size`/`finish`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros — is provided in-tree.
//!
//! Measurement is simpler than upstream: each benchmark is warmed up, then
//! timed over `sample_size` batches whose iteration count is calibrated to
//! a per-batch wall-time floor; the median per-iteration time is reported.
//! That is plenty to compare before/after on the same machine, which is all
//! the hot-path work needs.

use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(150);
const BATCH_FLOOR: Duration = Duration::from_millis(10);
const DEFAULT_SAMPLES: usize = 30;

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    /// Median ns/iter, filled in by [`Bencher::iter`].
    result_ns: f64,
}

impl Bencher {
    /// Runs `body` repeatedly and records the median per-iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        // Warm up and discover a batch size that runs long enough for the
        // clock to resolve well.
        let mut iters_per_batch: u64 = 1;
        let warmup_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..iters_per_batch {
                std::hint::black_box(body());
            }
            let took = t.elapsed();
            if warmup_start.elapsed() >= WARMUP && took >= BATCH_FLOOR {
                break;
            }
            if took < BATCH_FLOOR {
                iters_per_batch = iters_per_batch.saturating_mul(2);
            }
        }

        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters_per_batch {
                    std::hint::black_box(body());
                }
                t.elapsed().as_nanos() as f64 / iters_per_batch as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = per_iter[per_iter.len() / 2];
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, name.into());
        let mut bencher = Bencher { samples: self.sample_size, result_ns: 0.0 };
        f(&mut bencher);
        println!("{:<50} {}", id, format_ns(bencher.result_ns));
        self.criterion.results.push((id, bencher.result_ns));
        self
    }

    /// Ends the group (upstream renders summaries here; we print as we go).
    pub fn finish(&mut self) {}
}

/// Entry point handed to each `criterion_group!` target function.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: DEFAULT_SAMPLES, criterion: self }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let id = name.into();
        let mut bencher = Bencher { samples: DEFAULT_SAMPLES, result_ns: 0.0 };
        f(&mut bencher);
        println!("{:<50} {}", id, format_ns(bencher.result_ns));
        self.results.push((id, bencher.result_ns));
        self
    }

    /// All `(benchmark id, median ns/iter)` pairs recorded so far.
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1_000_000_000.0 {
        format!("{:>10.3} s/iter", ns / 1_000_000_000.0)
    } else if ns >= 1_000_000.0 {
        format!("{:>10.3} ms/iter", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:>10.3} µs/iter", ns / 1_000.0)
    } else {
        format!("{:>10.1} ns/iter", ns)
    }
}

/// Re-export matching upstream's path; benches may use either this or
/// `std::hint::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group: a named function that runs each listed
/// benchmark function against a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_positive_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_function("add", |b| b.iter(|| 1u64.wrapping_add(2)));
        group.finish();
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].1 > 0.0);
    }
}
