//! Hidden rootkit detection by cross-view validation (paper §VII-B).
//!
//! ```sh
//! cargo run --example rootkit_hunt
//! ```
//!
//! A SucKIT-style rootkit unlinks a running process from the guest's task
//! list (DKOM via kmem). The in-guest `ps` and traditional VMI both lose
//! sight of it — but the process still has to be scheduled, so its address
//! space keeps appearing in CR3 and its kernel stack in `TSS.RSP0`. HRKD
//! compares the architectural (trusted) view against the corruptible views
//! and flags the discrepancy.

use hypertap::harness::TapVm;
use hypertap::prelude::*;
use hypertap_guestos::layout;
use hypertap_guestos::program::UserView;
use hypertap_hvsim::clock::Duration;

fn main() {
    let metrics = MetricsArg::from_env();
    let mut vm = TapVm::builder().hrkd().metrics(metrics.is_some()).build();
    let rk = vm.kernel.register_module(rootkit_by_name("SucKIT").expect("in Table II"));

    // The malware: a busy process the attacker wants invisible.
    let malware = vm.kernel.register_program(
        "cryptominer",
        Box::new(|| Box::new(FnProgram(|_v: &UserView<'_>| UserOp::Compute(100_000)))),
    );
    let malware_raw = malware.0;
    let init = vm.kernel.register_program(
        "init",
        Box::new(move || {
            let mut stage = 0;
            let mut pid = 0u64;
            Box::new(FnProgram(move |v: &UserView<'_>| {
                stage += 1;
                match stage {
                    1 => UserOp::sys(Sysno::Spawn, &[malware_raw, 1000]),
                    2 => {
                        pid = v.last_ret;
                        UserOp::sys(Sysno::Nanosleep, &[100_000_000])
                    }
                    3 => UserOp::sys(Sysno::InstallModule, &[rk, pid]),
                    _ => UserOp::sys(Sysno::Nanosleep, &[3_600_000_000_000]),
                }
            }))
        }),
    );
    vm.kernel.set_init_program(init);
    vm.run_for(Duration::from_millis(400));

    // The two untrusted views.
    let profile = layout::os_profile();
    let cr3 = vm.machine.vm().vcpu(VcpuId(0)).cr3();
    let vmi_view = hypertap::framework::vmi::list_tasks(&vm.machine.vm().mem, cr3, &profile, 8192)
        .expect("guest task list readable");
    println!("traditional VMI sees {} tasks:", vmi_view.len());
    for t in &vmi_view {
        println!("  pid {:<3} uid {:<5} {}", t.pid, t.uid, t.comm);
    }

    // The kernel's own scheduler still runs the hidden process.
    println!("\nscheduler-live pids (ground truth): {:?}", vm.kernel.alive_pids());

    // HRKD's cross-view validation.
    let now = vm.now();
    let (vmstate, kvm) = vm.machine.parts_mut();
    let hrkd = kvm.em.auditor_mut::<Hrkd>().expect("registered");
    let report = hrkd.cross_validate_vmi(vmstate, now);
    println!("\nHRKD cross-view report at {now}:");
    println!("  address spaces running but missing from the task list: {:?}", report.hidden_pdbas);
    println!(
        "  kernel stacks running but missing from the task list:  {:?}",
        report.hidden_kstacks
    );
    println!(
        "\nverdict: {}",
        if report.is_clean() {
            "clean (unexpected!)"
        } else {
            "HIDDEN TASK DETECTED — a rootkit is unlinking kernel objects"
        }
    );

    if let Some(arg) = metrics {
        arg.emit(&vm.metrics_snapshot());
    }
}
