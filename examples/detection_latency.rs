//! End-to-end detection-latency SLOs: from injected fault to raised
//! finding, per auditor — the paper's Fig. 5 summarized as a table.
//!
//! ```sh
//! cargo run --release --example detection_latency
//! cargo run --release --example detection_latency -- --trials 8 --assert
//! ```
//!
//! Each trial injects a persistent missing-unlock fault at a different
//! lock site under a compilation workload, runs until GOSHD alarms, then
//! correlates three timestamps per finding:
//!
//! * the **activation** instant from the kernel's fault-activation log
//!   (exact simulated time the fault first fired),
//! * the **trigger** event the finding's provenance cites (the last
//!   process switch before silence), resolved through the flight
//!   recorder's dump, and
//! * the **finding** time itself.
//!
//! GOSHD's SLO is sharp: the trigger latency must land in
//! `(threshold, threshold + em_tick]` — the auditor fires on the first
//! host-timer tick after the silence crosses the hang threshold. With
//! `--assert` the example enforces that bound on the median and exits
//! non-zero on violation (the CI telemetry job runs it that way).

use hypertap::framework::latency::{DetectionLatency, EventIndex, InjectionRecord};
use hypertap::framework::prelude::{FlightDump, MetricsRegistry, VmId};
use hypertap::guestos::fault::{FaultType, SingleFault};
use hypertap::guestos::kpath;
use hypertap::hvsim::clock::{Duration, SimTime};
use hypertap::monitors::goshd::{Goshd, GoshdConfig};
use hypertap::monitors::harness::{EngineSelection, TapVm};
use hypertap_bench::cli::Args;

/// One hang trial: inject, run to the first alarm, correlate.
fn run_trial(trial: u64, threshold: Duration, lat: &mut DetectionLatency) -> bool {
    let mut vm = TapVm::builder()
        .vcpus(2)
        .engines(EngineSelection::context_switch_only())
        .goshd(GoshdConfig { threshold })
        .flight_capacity(8192)
        .build();
    let make = hypertap::workloads::make::install(&mut vm.kernel, 2, 24);
    let init = hypertap::workloads::make::install_init_running(&mut vm.kernel, make);
    vm.kernel.set_init_program(init);
    let site = kpath::site_for("ext3", trial) as u32;
    vm.kernel.set_fault_hook(Box::new(SingleFault::new(site, FaultType::MissingUnlock, true)));

    for _ in 0..400 {
        vm.run_for(Duration::from_millis(50));
        if vm.auditor::<Goshd>().map(|g| !g.alarms().is_empty()).unwrap_or(false) {
            break;
        }
    }

    let findings = vm.drain_findings();
    let dump =
        FlightDump::decode(&vm.flight_dump("detection-latency trial")).expect("own dump decodes");
    let index = EventIndex::from_dump(&dump);
    let injection = vm.kernel.fault_activation_log().first().map(|a| InjectionRecord {
        label: format!("missing-unlock@site{}", a.site),
        vm: VmId(0),
        time: SimTime::from_nanos(a.time_ns),
    });
    let goshd_findings: Vec<_> = findings.iter().filter(|f| f.auditor == "goshd").collect();
    let detected = !goshd_findings.is_empty();
    for f in &goshd_findings {
        lat.record(f, injection.as_ref(), Some(&index));
    }
    eprintln!(
        "trial {trial}: site {site}, activation {}, {} goshd finding(s)",
        injection.map(|i| i.time.to_string()).unwrap_or_else(|| "-".to_owned()),
        goshd_findings.len(),
    );
    detected
}

fn main() {
    let args = Args::parse();
    let trials: u64 = args.get("trials", 5);
    let threshold = Duration::from_secs(2);
    let em_tick = Duration::from_millis(1); // TapVm builder default

    println!("== detection latency: {trials} missing-unlock hang trials ==");
    println!(
        "GOSHD threshold {threshold}, EM tick {em_tick} -> SLO: trigger latency in (threshold, threshold + tick]\n"
    );

    let mut lat = DetectionLatency::new();
    let mut detected = 0u64;
    for trial in 0..trials {
        if run_trial(trial, threshold, &mut lat) {
            detected += 1;
        }
    }

    println!("\n{}", lat.render_table());

    let mut reg = MetricsRegistry::new();
    lat.collect_metrics(&mut reg);
    let scrape = reg.to_prometheus();
    let hist_lines = scrape.lines().filter(|l| l.contains("detection_latency")).count();
    println!("exported {hist_lines} detection-latency metric lines (scrape via /metrics)");

    let median = lat.median_trigger_ns("goshd");
    let e2e = lat.median_e2e_ns("goshd");
    println!(
        "goshd: {detected}/{trials} detected, median trigger {}, median e2e {}",
        median.map(|v| Duration::from_nanos(v).to_string()).unwrap_or_else(|| "-".to_owned()),
        e2e.map(|v| Duration::from_nanos(v).to_string()).unwrap_or_else(|| "-".to_owned()),
    );

    if args.has("assert") {
        assert_eq!(detected, trials, "every injected hang must be detected");
        let median = median.expect("detected hangs yield trigger latencies");
        let lo = threshold.as_nanos();
        let hi = threshold.as_nanos() + em_tick.as_nanos();
        assert!(
            median > lo && median <= hi,
            "goshd median trigger latency {median} ns outside SLO ({lo}, {hi}] ns"
        );
        println!("SLO assert: goshd median trigger within one EM tick of its threshold ✓");
    }
}
