//! The three Ninjas, head to head (paper §VIII-C).
//!
//! ```sh
//! cargo run --release --example three_ninjas
//! ```
//!
//! Launches the same rootkit-combined privilege-escalation attack against
//! each Ninja implementation and prints the observed timeline: the passive
//! versions race the attack's ~4 ms window, the active version does not
//! race anything.

use hypertap::prelude::MetricsArg;
use hypertap_bench::ninja_scenarios::{
    run_ninja_trial_instrumented, run_ninja_trial_traced, AttackStyle, NinjaVariant,
};
use hypertap_hvsim::clock::Duration;

fn show(title: &str, variant: NinjaVariant, seed: u64) {
    let (events, detected) =
        run_ninja_trial_traced(variant, 26, AttackStyle::RootkitCombined, seed);
    println!("=== {title} ===");
    for e in &events {
        println!("  {:>10.3} ms  {}", e.time_ns as f64 / 1e6, e.what);
    }
    println!("  -> attack {}\n", if detected { "DETECTED" } else { "went unnoticed" });
}

fn main() {
    let metrics = MetricsArg::from_env();
    println!("One attack, three monitors (26 innocent processes, same attack shape)\n");
    show(
        "O-Ninja: in-guest, continuous /proc scanning",
        NinjaVariant::ONinja { interval_ns: 0 },
        11,
    );
    show(
        "H-Ninja: hypervisor VMI, polling every 20 ms",
        NinjaVariant::HNinja { interval: Duration::from_millis(20) },
        11,
    );
    show("HT-Ninja: HyperTap active monitoring", NinjaVariant::HtNinja, 11);
    println!(
        "The passive monitors race the attack's visibility window; HT-Ninja is\n\
         invoked by the hardware at the attack's own context switches and I/O\n\
         system calls, so there is no window to win."
    );

    if let Some(arg) = metrics {
        // Re-run the HT-Ninja trial with the observability layer on and
        // export the full pipeline snapshot for that run.
        let (_, _, reg) = run_ninja_trial_instrumented(
            NinjaVariant::HtNinja,
            26,
            AttackStyle::RootkitCombined,
            11,
        );
        arg.emit(&reg);
    }
}
