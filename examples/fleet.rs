//! Multi-VM fleet monitoring: many guests, sharded workers, one
//! aggregated view — with determinism across worker counts.
//!
//! ```sh
//! cargo run --example fleet
//! ```
//!
//! Builds a 16-VM fleet where each guest runs a sampled workload and
//! (for about half the fleet) hosts a privilege-escalation exploit,
//! possibly hidden by a DKOM rootkit, under the full monitor set
//! (GOSHD + periodic HRKD + HT-Ninja). The fleet is stepped twice — on
//! 1 worker thread and on 4 — and the per-VM findings are asserted
//! identical: sharding changes wall-clock, never what any VM's auditors
//! conclude. The aggregator then merges per-VM delivery stats, findings
//! and metrics into the fleet-wide report an operator would watch.

use hypertap::faultinject::fleet::{run_fleet_campaign, FleetCampaign, FleetScenario};
use hypertap::framework::fleet::FleetAggregator;
use hypertap::framework::prelude::VmId;

fn main() {
    let vms = 16;
    let campaign = FleetCampaign::quick(0xF1EE7);

    println!("== {vms}-VM fleet under sharded monitoring ==\n");
    for i in 0..vms {
        let s = FleetScenario::sample(campaign.base_seed, VmId(i as u32));
        println!(
            "  vm{i:<3} {:<10} fault: {:<12} attack: {}",
            format!("{:?}", s.workload),
            s.fault
                .map(|(site, p)| format!("site {site}{}", if p { "*" } else { "" }))
                .unwrap_or_else(|| "-".to_string()),
            s.attack.map(|a| format!("{a:?}")).unwrap_or_else(|| "-".to_string()),
        );
    }

    // The same campaign on one worker and on four: the per-VM results
    // must be bit-identical — parallelism is free of observable effect.
    let (serial, _) = run_fleet_campaign(&campaign, vms, 1);
    let (sharded, summary) = run_fleet_campaign(&campaign, vms, 4);
    for (a, b) in serial.per_vm.iter().zip(sharded.per_vm.iter()) {
        assert_eq!(a.vm, b.vm);
        assert_eq!(a.findings, b.findings, "vm {:?}: sharding changed findings!", a.vm);
        assert_eq!(a.stats, b.stats, "vm {:?}: sharding changed delivery stats!", a.vm);
    }
    println!("\ndeterminism: 4-worker run identical to 1-worker run, all {vms} VMs");

    // The operator's view: one aggregator over every VM's report.
    let mut agg = FleetAggregator::default();
    for report in &sharded.per_vm {
        agg.absorb(report);
    }
    println!(
        "\nfleet totals: {} VMs ({} halted), {} events into fan-out",
        agg.vm_count(),
        agg.halted_count(),
        agg.stats().events_in
    );
    println!("findings by auditor:");
    for (auditor, n) in &summary.findings_by_auditor {
        println!("  {auditor:<12} {n}");
    }
    for (vm, finding) in agg.findings().iter().take(5) {
        println!("  e.g. vm{} {}: {}", vm.0, finding.auditor, finding.message);
    }
    assert!(
        !summary.findings_by_auditor.is_empty(),
        "a fleet this size hosts attacks the monitors must catch"
    );
}
