//! Guest OS hang detection end to end (paper §VII-A / §VIII-A).
//!
//! ```sh
//! cargo run --example hang_detection
//! ```
//!
//! Boots a 2-vCPU guest running parallel compile jobs, injects a
//! missing-spinlock-release fault into a hot filesystem lock site, and
//! watches GOSHD detect first the partial hang and then the escalation to a
//! full hang — something heartbeat detectors structurally miss (their
//! heartbeat task keeps running on the healthy vCPU).

use hypertap::harness::{EngineSelection, TapVm};
use hypertap::prelude::*;
use hypertap_guestos::fault::SingleFault;
use hypertap_guestos::kpath;
use hypertap_hvsim::clock::Duration;

fn main() {
    let metrics = MetricsArg::from_env();
    let mut vm = TapVm::builder()
        .vcpus(2)
        .engines(EngineSelection::context_switch_only())
        .goshd(GoshdConfig::paper_default())
        .metrics(metrics.is_some())
        .build();

    // Workload: make -j2 (two compile jobs in flight).
    let make = hypertap::workloads::make::install(&mut vm.kernel, 2, 24);
    let init = hypertap::workloads::make::install_init_running(&mut vm.kernel, make);
    vm.kernel.set_init_program(init);

    // The fault: the ext3 lock used by the write path is never released
    // again after its next exit path runs (persistent missing unlock).
    let site = kpath::site_for("ext3", 1) as u32;
    vm.kernel.set_fault_hook(Box::new(SingleFault::new(site, FaultType::MissingUnlock, true)));
    println!("injected: missing spinlock release at catalogue site {site} (ext3)");

    // Let it run; poll GOSHD every simulated second.
    for sec in 1..=60u64 {
        vm.run_for(Duration::from_secs(1));
        let goshd = vm.auditor::<Goshd>().expect("registered");
        let hung: Vec<String> =
            (0..2).filter(|&v| goshd.is_hung(VcpuId(v))).map(|v| format!("vcpu{v}")).collect();
        let activations = vm.kernel.fault_hook().activations();
        println!(
            "t={sec:>2}s  fault activations: {activations:>3}  hung: [{}]  scope: {:?}",
            hung.join(", "),
            goshd.scope()
        );
        if goshd.scope() == Some(HangScope::Full) {
            break;
        }
    }

    let goshd = vm.auditor::<Goshd>().expect("registered");
    println!("\nGOSHD alarms:");
    for a in goshd.alarms() {
        println!(
            "  {} hung at {} (last context switch {}; {:?} hang at that point)",
            a.vcpu, a.detected_at, a.last_switch, a.scope
        );
    }
    match goshd.alarms() {
        [] => println!("no hang detected — try a longer run"),
        [first, ..] => {
            println!(
                "\nfirst detection {} after the last context switch (threshold: 4s)",
                first.detected_at.saturating_since(first.last_switch)
            );
        }
    }

    if let Some(arg) = metrics {
        arg.emit(&vm.metrics_snapshot());
    }
}
