//! Quickstart: assemble a monitored VM and watch the unified event stream.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds the standard HyperTap stack — the HAV simulator, the KVM model
//! with the Event Forwarder, all six interception engines, and the Event
//! Multiplexer — boots the simulated guest with a small workload, and
//! prints what the monitoring plane saw.
//!
//! Pass `--metrics` to print a full observability snapshot (JSON and
//! Prometheus text) at the end, or `--metrics=PATH` to write `PATH`
//! (JSON) and `PATH.prom` (Prometheus) instead.

use hypertap::harness::TapVm;
use hypertap::prelude::*;
use hypertap_guestos::program::UserView;
use hypertap_hvsim::clock::Duration;

fn main() {
    let metrics = MetricsArg::from_env();

    // 1. A 2-vCPU guest with every interception engine and two auditors.
    let mut vm = TapVm::builder()
        .vcpus(2)
        .goshd(GoshdConfig::paper_default())
        .hrkd()
        .metrics(metrics.is_some())
        .build();

    // 2. Give the guest something to do: a writer process.
    let writer = vm.kernel.register_program(
        "writer",
        Box::new(|| {
            let mut n = 0u32;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                n += 1;
                match n % 3 {
                    1 => UserOp::sys(Sysno::Open, &[7]),
                    2 => UserOp::sys(Sysno::Write, &[0, 4096]),
                    _ => UserOp::sys(Sysno::Close, &[0]),
                }
            }))
        }),
    );
    let init = hypertap::workloads::make::install_init_running(&mut vm.kernel, writer);
    vm.kernel.set_init_program(init);

    // 3. Run half a second of simulated time.
    vm.run_for(Duration::from_millis(500));

    // 4. What the hardware-invariant logging plane captured.
    println!("guest booted: {}", vm.kernel.is_booted());
    println!("simulated time: {}", vm.now());
    println!("\nVM Exits by reason:");
    for (reason, count) in vm.machine.vm().stats().iter() {
        println!("  {reason:<14} {count}");
    }
    println!(
        "\nevents forwarded to the Event Multiplexer: {}",
        vm.machine.hypervisor().forwarded_events()
    );
    println!(
        "context switches performed by the guest scheduler: {}",
        vm.kernel.stats().context_switches
    );

    // 5. Auditor state: GOSHD saw a healthy machine; HRKD counted processes.
    let goshd = vm.auditor::<Goshd>().expect("registered");
    println!("\nGOSHD alarms: {} (healthy guest)", goshd.alarms().len());
    let trusted = {
        let (vmstate, kvm) = vm.machine.parts_mut();
        let hrkd = kvm.em.auditor_mut::<Hrkd>().expect("registered");
        hrkd.trusted_process_count(vmstate)
    };
    println!("HRKD trusted process count (from CR3 loads): {trusted}");
    println!("guest's own view (live pids): {:?}", vm.kernel.alive_pids());

    let findings = vm.drain_findings();
    println!("\nfindings: {}", findings.len());
    for f in findings {
        println!("  {f}");
    }

    if let Some(arg) = metrics {
        arg.emit(&vm.metrics_snapshot());
    }
}
