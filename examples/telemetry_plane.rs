//! The live fleet telemetry plane: HTTP scrape endpoints, a streaming
//! findings feed, and the monitor self-watchdog — all host-side, with the
//! per-VM results provably untouched (see the `tlb-on/telemetry`
//! conformance pair).
//!
//! ```sh
//! cargo run --release --example telemetry_plane
//!
//! # keep serving for 30 s after the fleet finishes, and write the bound
//! # address to a file so scripts can curl it:
//! cargo run --release --example telemetry_plane -- \
//!     --serve-ms 30000 --addr-file /tmp/hypertap-telemetry.addr
//! ```
//!
//! While it runs (and for `--serve-ms` afterwards), scrape it:
//!
//! ```sh
//! curl http://$(cat /tmp/hypertap-telemetry.addr)/metrics       # Prometheus text
//! curl http://$(cat /tmp/hypertap-telemetry.addr)/metrics.json  # snapshot schema v1
//! curl http://$(cat /tmp/hypertap-telemetry.addr)/healthz       # 200 ok / 503 degraded
//! curl http://$(cat /tmp/hypertap-telemetry.addr)/vms           # per-VM lifecycle
//! curl -N http://$(cat /tmp/hypertap-telemetry.addr)/findings   # live NDJSON stream
//! ```

use hypertap::faultinject::fleet::{summarize, FleetCampaign};
use hypertap::framework::fleet::{FleetConfig, FleetHost};
use hypertap::framework::telemetry::{SelfWatch, TelemetryHub, TelemetryServer};
use hypertap_bench::cli::Args;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args = Args::parse();
    let vms: usize = args.get("vms", 8);
    let workers: usize = args.get("workers", 3);
    let serve_ms: u64 = args.get("serve-ms", 0);

    // The plane: hub (shared state + finding bus), HTTP server, watchdog.
    let hub = Arc::new(TelemetryHub::new());
    let mut server = TelemetryServer::start(Arc::clone(&hub)).expect("bind ephemeral loopback");
    let mut watchdog = SelfWatch::start(Arc::clone(&hub), Duration::from_millis(500));
    let subscriber = hub.subscribe(1024);

    println!("telemetry server on http://{}", server.addr());
    if let Some(path) = args.get_str("addr-file") {
        std::fs::write(path, server.addr().to_string()).expect("write addr file");
        println!("address written to {path}");
    }

    // The fleet: sampled fault/attack scenarios under the full monitor
    // set, stepped by a worker pool that reports into the hub.
    println!("launching {vms}-VM fleet on {workers} workers...");
    let campaign = FleetCampaign::quick(0x7E1E);
    let host = FleetHost::launch_with_telemetry(
        Arc::new(campaign),
        FleetConfig::new(vms, workers),
        Arc::clone(&hub),
    );
    let report = host.join();

    let summary = summarize(&report);
    println!(
        "\nfleet done: {} VMs ({} halted), {} events into fan-out",
        summary.vms, summary.halted, summary.events_in
    );
    for (auditor, n) in &summary.findings_by_auditor {
        println!("  {auditor:<10} {n} finding(s)");
    }

    let streamed = subscriber.drain();
    println!(
        "\nfinding stream: {} finding(s) delivered live, {} dropped (slow-subscriber policy)",
        streamed.len(),
        subscriber.dropped()
    );
    let (healthy, body) = hub.healthz();
    println!("healthz: {}", if healthy { "ok" } else { "DEGRADED" });
    for line in body.lines().take(4) {
        println!("  {line}");
    }

    if serve_ms > 0 {
        println!("\nserving scrapes for {serve_ms} ms (curl the endpoints above)...");
        std::thread::sleep(Duration::from_millis(serve_ms));
    }
    watchdog.stop();
    server.stop();
    println!("telemetry plane shut down cleanly");
}
