//! The Remote Health Checker over a real TCP connection (paper Fig. 2).
//!
//! ```sh
//! cargo run --example remote_health
//! ```
//!
//! The Event Multiplexer samples every 64th VM Exit and ships it as a
//! heartbeat over TCP to an RHC "on another machine" (here: another thread
//! with a real socket). While the guest runs, heartbeats flow; when the
//! monitoring stack stops (we shut the VM down), the RHC's gap check raises
//! the liveness alarm — the watcher that watches the watchers.

use hypertap::framework::rhc::{RhcServer, TcpTransport};
use hypertap::harness::TapVm;
use hypertap::prelude::*;
use hypertap_hvsim::clock::Duration;

fn main() {
    let metrics = MetricsArg::from_env();

    // The "separate machine": a TCP server with a 2-second (simulated)
    // silence threshold.
    let mut server = RhcServer::start(2_000_000_000).expect("bind RHC server");
    println!("RHC server listening on {}", server.addr());

    // The monitored host connects its Event Multiplexer to the RHC.
    let mut vm = TapVm::builder().metrics(metrics.is_some()).build();
    let transport = TcpTransport::connect(server.addr()).expect("connect to RHC");
    vm.machine.hypervisor_mut().em.attach_rhc(Box::new(transport), 64);

    // A steady workload so the exit stream flows.
    let w = vm.kernel.register_program(
        "writer",
        Box::new(|| {
            Box::new(hypertap_guestos::program::FnProgram(
                |_v: &hypertap_guestos::program::UserView<'_>| {
                    UserOp::sys(Sysno::Write, &[0, 4096])
                },
            ))
        }),
    );
    let init = hypertap::workloads::make::install_init_running(&mut vm.kernel, w);
    vm.kernel.set_init_program(init);

    vm.run_for(Duration::from_secs(3));
    let sent = vm.machine.hypervisor().em.stats().rhc_samples;
    println!("guest ran {}; EM sampled {sent} heartbeats to the RHC", vm.now());

    // Give the socket a moment to drain, then check liveness while healthy.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let checker = server.checker();
    {
        let mut c = checker.lock().expect("checker");
        println!("RHC received {} heartbeats", c.received());
        let now_ns = vm.now().as_nanos();
        match c.check(now_ns) {
            None => println!("RHC check at {:.1}s: healthy", now_ns as f64 / 1e9),
            Some(alert) => println!("RHC check: unexpected alert: {alert}"),
        }
    }

    // The monitoring stack dies (simulated-machine shutdown): the exit
    // stream stops and the next check past the threshold raises the alarm.
    println!("\n... monitoring stack goes silent ...");
    let later_ns = vm.now().as_nanos() + 5_000_000_000;
    {
        let mut c = checker.lock().expect("checker");
        match c.check(later_ns) {
            Some(alert) => println!("RHC ALARM: {alert}"),
            None => println!("no alarm (unexpected)"),
        }
    }

    if let Some(arg) = metrics {
        // Both ends of the wire in one snapshot: the monitored VM's stack
        // plus the remote checker's receive/gap/alert counters.
        let mut reg = vm.metrics_snapshot();
        checker.lock().expect("checker").collect_metrics(&mut reg);
        arg.emit(&reg);
    }
    server.stop();
}
