//! The flight recorder as a black box: explain an alarm after the fact.
//!
//! ```sh
//! cargo run --example black_box
//! ```
//!
//! Boots a monitored guest, injects a missing-spinlock-release fault, and
//! lets GOSHD catch the hang. Every finding carries causal provenance —
//! the pre-filter exit ordinals that triggered it — and the always-on
//! flight recorder retains the recent event/transition history, so the
//! alarm can be explained end to end from a `.htfr` dump long after the
//! run: which exits proved the vCPU alive last, when the liveness flip
//! happened, and what the pipeline was doing around it.

use hypertap::harness::{EngineSelection, TapVm};
use hypertap::prelude::*;
use hypertap_guestos::fault::SingleFault;
use hypertap_guestos::kpath;
use hypertap_hvsim::clock::Duration;

fn main() {
    let mut vm = TapVm::builder()
        .vcpus(2)
        .engines(EngineSelection::context_switch_only())
        .goshd(GoshdConfig::paper_default())
        .flight_capacity(1024)
        .build();

    let make = hypertap::workloads::make::install(&mut vm.kernel, 2, 24);
    let init = hypertap::workloads::make::install_init_running(&mut vm.kernel, make);
    vm.kernel.set_init_program(init);
    let site = kpath::site_for("ext3", 1) as u32;
    vm.kernel.set_fault_hook(Box::new(SingleFault::new(site, FaultType::MissingUnlock, true)));
    println!("injected: missing spinlock release at catalogue site {site} (ext3)");

    // Run in short slices; stop right after the first alarm so the causal
    // history is still in the ring.
    for _ in 0..300 {
        vm.run_for(Duration::from_millis(100));
        if vm.auditor::<Goshd>().map(|g| !g.alarms().is_empty()).unwrap_or(false) {
            break;
        }
    }

    println!("\nfindings, each explained by the exits that triggered it:");
    for finding in vm.drain_findings() {
        println!("  {}", finding.explain());
    }

    // The black box itself: a versioned, self-contained dump of the
    // recent history — the same bytes the EM writes on an auditor panic
    // and the fleet host writes when a worker dies.
    let bytes = vm.flight_dump("black_box example: post-alarm snapshot");
    let dump = FlightDump::decode(&bytes).expect("own dump decodes");
    println!(
        "\nflight dump: HTFR v{} | {} records retained, {} dropped, {} events total",
        dump.version,
        dump.records.len(),
        dump.dropped,
        dump.next_seq
    );
    let rendered = dump.render();
    let tail: Vec<&str> = rendered.lines().rev().take(8).collect();
    println!("last records (newest first):");
    for line in tail {
        println!("  {line}");
    }
    println!(
        "\ninspect offline: write the bytes to a .htfr file and run\n  \
         cargo run -p hypertap-bench --bin flightdump -- --in <file> [--export-chrome out.json]"
    );
}
