//! System-call numbers and classification.
//!
//! The numbering follows 32-bit Linux where a syscall has a classic
//! equivalent (`exit`=1, `fork`=2, `read`=3, `write`=4 ...); model-specific
//! calls (spawn-by-program-id, the deliberately vulnerable escalation path,
//! module loading) live above 200.

use std::fmt;

/// System calls implemented by the simulated kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum Sysno {
    /// Terminate the calling process (arg0 = exit code).
    Exit = 1,
    /// Read from a file descriptor (arg0 = fd, arg1 = len).
    Read = 3,
    /// Write to a file descriptor (arg0 = fd, arg1 = len).
    Write = 4,
    /// Open a file (arg0 = file id).
    Open = 5,
    /// Close a file descriptor (arg0 = fd).
    Close = 6,
    /// Wait for any child to exit; returns the reaped pid.
    Waitpid = 7,
    /// Reposition a file offset (arg0 = fd, arg1 = offset).
    Lseek = 19,
    /// Return the caller's pid.
    Getpid = 20,
    /// Set uid/euid (root only; arg0 = new uid).
    Setuid = 23,
    /// Return the caller's real uid.
    Getuid = 24,
    /// Send a kill signal (arg0 = pid).
    Kill = 37,
    /// Create a pipe; returns a pipe id.
    Pipe = 42,
    /// Return the caller's effective uid.
    Geteuid = 49,
    /// Power off the machine (init only).
    Reboot = 88,
    /// Enumerate processes (the `/proc` + `getdents` path used by `ps`).
    /// Results come from the kernel's walk of its **in-guest** task list.
    ListProcs = 141,
    /// Sleep (arg0 = nanoseconds).
    Nanosleep = 162,
    /// Read another process's `/proc/PID/stat` (arg0 = pid); returns the
    /// packed (state, rip) side-channel view.
    ReadProcStat = 201,
    /// Spawn a new process from a registered program (arg0 = program id,
    /// arg1 = uid or `u64::MAX` to inherit). Model-level `fork`+`execve`.
    Spawn = 202,
    /// The planted privilege-escalation kernel bug (models CVE-2013-1763 /
    /// CVE-2010-3847): grants euid 0 with no credential check.
    VulnEscalate = 203,
    /// Load a registered kernel module (arg0 = module id, arg1 = aux) —
    /// requires euid 0; this is how rootkits get into the kernel.
    InstallModule = 204,
    /// Acquire a user-level sleeping lock (arg0 = lock id).
    UserLock = 205,
    /// Release a user-level sleeping lock (arg0 = lock id).
    UserUnlock = 206,
    /// Receive from the network (blocks for a request); returns bytes.
    NetRecv = 207,
    /// Send to the network (arg0 = bytes).
    NetSend = 208,
    /// Write a byte to the console (arg0 = byte).
    ConsolePutc = 209,
}

impl Sysno {
    /// Decodes a raw syscall number.
    pub fn from_raw(raw: u64) -> Option<Sysno> {
        use Sysno::*;
        Some(match raw {
            1 => Exit,
            3 => Read,
            4 => Write,
            5 => Open,
            6 => Close,
            7 => Waitpid,
            19 => Lseek,
            20 => Getpid,
            23 => Setuid,
            24 => Getuid,
            37 => Kill,
            42 => Pipe,
            49 => Geteuid,
            88 => Reboot,
            141 => ListProcs,
            162 => Nanosleep,
            201 => ReadProcStat,
            202 => Spawn,
            203 => VulnEscalate,
            204 => InstallModule,
            205 => UserLock,
            206 => UserUnlock,
            207 => NetRecv,
            208 => NetSend,
            209 => ConsolePutc,
            _ => return None,
        })
    }

    /// The raw number (what lands in RAX).
    pub fn raw(self) -> u64 {
        self as u64
    }

    /// Whether this is one of the I/O-related calls HT-Ninja checks on
    /// (the paper lists open, read, write and lseek).
    pub fn is_io(self) -> bool {
        matches!(
            self,
            Sysno::Open
                | Sysno::Read
                | Sysno::Write
                | Sysno::Lseek
                | Sysno::NetRecv
                | Sysno::NetSend
        )
    }
}

impl fmt::Display for Sysno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Sysno::Exit => "exit",
            Sysno::Read => "read",
            Sysno::Write => "write",
            Sysno::Open => "open",
            Sysno::Close => "close",
            Sysno::Waitpid => "waitpid",
            Sysno::Lseek => "lseek",
            Sysno::Getpid => "getpid",
            Sysno::Setuid => "setuid",
            Sysno::Getuid => "getuid",
            Sysno::Kill => "kill",
            Sysno::Pipe => "pipe",
            Sysno::Geteuid => "geteuid",
            Sysno::Reboot => "reboot",
            Sysno::ListProcs => "listprocs",
            Sysno::Nanosleep => "nanosleep",
            Sysno::ReadProcStat => "readprocstat",
            Sysno::Spawn => "spawn",
            Sysno::VulnEscalate => "vuln_escalate",
            Sysno::InstallModule => "install_module",
            Sysno::UserLock => "user_lock",
            Sysno::UserUnlock => "user_unlock",
            Sysno::NetRecv => "net_recv",
            Sysno::NetSend => "net_send",
            Sysno::ConsolePutc => "console_putc",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_round_trip() {
        for s in [
            Sysno::Exit,
            Sysno::Read,
            Sysno::Write,
            Sysno::Open,
            Sysno::Close,
            Sysno::Waitpid,
            Sysno::Lseek,
            Sysno::Getpid,
            Sysno::Setuid,
            Sysno::Getuid,
            Sysno::Kill,
            Sysno::Pipe,
            Sysno::Geteuid,
            Sysno::Reboot,
            Sysno::ListProcs,
            Sysno::Nanosleep,
            Sysno::ReadProcStat,
            Sysno::Spawn,
            Sysno::VulnEscalate,
            Sysno::InstallModule,
            Sysno::UserLock,
            Sysno::UserUnlock,
            Sysno::NetRecv,
            Sysno::NetSend,
            Sysno::ConsolePutc,
        ] {
            assert_eq!(Sysno::from_raw(s.raw()), Some(s));
        }
        assert_eq!(Sysno::from_raw(9999), None);
    }

    #[test]
    fn linux_numbers_match() {
        assert_eq!(Sysno::Exit.raw(), 1);
        assert_eq!(Sysno::Read.raw(), 3);
        assert_eq!(Sysno::Write.raw(), 4);
        assert_eq!(Sysno::Lseek.raw(), 19);
        assert_eq!(Sysno::Nanosleep.raw(), 162);
    }

    #[test]
    fn io_classification_matches_paper() {
        for s in [Sysno::Open, Sysno::Read, Sysno::Write, Sysno::Lseek] {
            assert!(s.is_io(), "{s} is I/O-related per the paper");
        }
        assert!(!Sysno::Getpid.is_io());
        assert!(!Sysno::Nanosleep.is_io());
        assert!(!Sysno::ListProcs.is_io());
    }
}
