//! The fault-injection hook the kernel consults at every lock site.
//!
//! The four fault types are the hang causes identified by Cotroneo et al.
//! (the paper's reference 34) and used in the HyperTap Fig. 4/5 campaign. A fault is
//! *transient* (activated once, at the first execution of its site) or
//! *persistent* (activated at every execution).

use std::fmt;

/// The injected locking-discipline fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultType {
    /// The exit path forgets to release a spinlock: every later acquirer
    /// spins forever.
    MissingUnlock,
    /// The code acquires two locks in the wrong order, enabling an ABBA
    /// deadlock with a correctly ordered path.
    WrongOrder,
    /// A missing unlock/lock pair: the code believes it holds a lock it
    /// never (re-)acquired, so its later release corrupts someone else's
    /// critical section.
    MissingUnlockLockPair,
    /// `spin_unlock_irqrestore` forgets the restore: the vCPU's interrupts
    /// stay disabled, starving the scheduler tick.
    MissingIrqRestore,
}

impl FaultType {
    /// All fault types, in campaign order.
    pub const ALL: [FaultType; 4] = [
        FaultType::MissingUnlock,
        FaultType::WrongOrder,
        FaultType::MissingUnlockLockPair,
        FaultType::MissingIrqRestore,
    ];

    /// Whether the fault triggers on the acquire side of the site (versus
    /// the release side).
    pub fn triggers_on_acquire(self) -> bool {
        matches!(self, FaultType::WrongOrder | FaultType::MissingUnlockLockPair)
    }
}

impl fmt::Display for FaultType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultType::MissingUnlock => "missing-unlock",
            FaultType::WrongOrder => "wrong-order",
            FaultType::MissingUnlockLockPair => "missing-unlock-lock-pair",
            FaultType::MissingIrqRestore => "missing-irq-restore",
        })
    }
}

/// One observed activation of an injected fault: where and — crucially for
/// detection-latency accounting — *when* in simulated time it fired.
///
/// Recorded by the kernel into a host-side log (see
/// `Kernel::fault_activation_log`) that is **not** part of snapshot state:
/// the serialized format keeps only the activation *count* (so transient
/// faults stay one-shot across restore), and campaign drivers read the log
/// live from the injecting side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultActivation {
    /// The lock-site id the fault fired at.
    pub site: u32,
    /// Which fault fired.
    pub fault: FaultType,
    /// Whether it fired on the acquire side (versus release).
    pub acquire: bool,
    /// Simulated time of the activation, nanoseconds.
    pub time_ns: u64,
}

/// Consulted by the kernel at every lock-site execution.
pub trait FaultHook {
    /// Returns the fault to apply at this execution of `site` (`acquire`
    /// tells which side is executing), or `None` for correct behaviour.
    fn check(&mut self, site: u32, acquire: bool) -> Option<FaultType>;

    /// Number of times the fault actually activated.
    fn activations(&self) -> u64 {
        0
    }

    /// Restores the activation counter when a snapshot is loaded, so a
    /// transient fault that already fired before the snapshot does not fire
    /// again afterwards. Hooks without mutable state may ignore this.
    fn restore_activations(&mut self, _activations: u64) {}
}

/// The default hook: a correct kernel.
#[derive(Debug, Default, Clone)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    fn check(&mut self, _site: u32, _acquire: bool) -> Option<FaultType> {
        None
    }
}

/// One injected fault at one site.
#[derive(Debug, Clone)]
pub struct SingleFault {
    site: u32,
    fault: FaultType,
    persistent: bool,
    activations: u64,
}

impl SingleFault {
    /// A fault of `fault` type at catalogue site `site`.
    pub fn new(site: u32, fault: FaultType, persistent: bool) -> Self {
        SingleFault { site, fault, persistent, activations: 0 }
    }

    /// The fault type.
    pub fn fault(&self) -> FaultType {
        self.fault
    }

    /// The target site.
    pub fn site(&self) -> u32 {
        self.site
    }
}

impl FaultHook for SingleFault {
    fn check(&mut self, site: u32, acquire: bool) -> Option<FaultType> {
        if site != self.site || acquire != self.fault.triggers_on_acquire() {
            return None;
        }
        if !self.persistent && self.activations > 0 {
            return None;
        }
        self.activations += 1;
        Some(self.fault)
    }

    fn activations(&self) -> u64 {
        self.activations
    }

    fn restore_activations(&mut self, activations: u64) {
        self.activations = activations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_fires_once() {
        let mut f = SingleFault::new(10, FaultType::MissingUnlock, false);
        assert_eq!(f.check(10, false), Some(FaultType::MissingUnlock));
        assert_eq!(f.check(10, false), None);
        assert_eq!(f.activations(), 1);
    }

    #[test]
    fn persistent_fires_always() {
        let mut f = SingleFault::new(10, FaultType::MissingUnlock, true);
        assert!(f.check(10, false).is_some());
        assert!(f.check(10, false).is_some());
        assert_eq!(f.activations(), 2);
    }

    #[test]
    fn wrong_site_or_side_does_not_fire() {
        let mut f = SingleFault::new(10, FaultType::MissingUnlock, true);
        assert_eq!(f.check(11, false), None);
        assert_eq!(f.check(10, true), None, "missing-unlock triggers on release");
        let mut g = SingleFault::new(10, FaultType::WrongOrder, true);
        assert_eq!(g.check(10, false), None, "wrong-order triggers on acquire");
        assert!(g.check(10, true).is_some());
    }

    #[test]
    fn trigger_sides() {
        assert!(!FaultType::MissingUnlock.triggers_on_acquire());
        assert!(FaultType::WrongOrder.triggers_on_acquire());
        assert!(FaultType::MissingUnlockLockPair.triggers_on_acquire());
        assert!(!FaultType::MissingIrqRestore.triggers_on_acquire());
    }

    #[test]
    fn no_faults_is_silent() {
        let mut n = NoFaults;
        for s in 0..374 {
            assert_eq!(n.check(s, true), None);
            assert_eq!(n.check(s, false), None);
        }
        assert_eq!(n.activations(), 0);
    }
}
