//! The guest's emulated devices: disk, NIC and console.
//!
//! Device models are intentionally thin — what matters for the monitoring
//! experiments is that guest I/O goes through the architectural channels
//! (port I/O → `IO_INST` exits, interrupts → `EXTERNAL_INT` exits) with
//! realistic frequency, and that harnesses can read throughput counters.

use hypertap_hvsim::device::Device;
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};
use std::any::Any;
use std::collections::VecDeque;

/// Disk controller port range base.
pub const DISK_PORT_BASE: u16 = 0x1f0;
/// Disk data port (one access per sector transferred).
pub const DISK_PORT_DATA: u16 = 0x1f0;
/// NIC port range base.
pub const NIC_PORT_BASE: u16 = 0x300;
/// NIC data port.
pub const NIC_PORT_DATA: u16 = 0x300;
/// NIC rx-queue-length port.
pub const NIC_PORT_RXLEN: u16 = 0x301;
/// Console output port.
pub const CONSOLE_PORT: u16 = 0x3f8;
/// External interrupt vector used by the NIC.
pub const NIC_IRQ_VECTOR: u8 = 0x21;
/// Sector size: one data-port access moves this many bytes.
pub const SECTOR_SIZE: u64 = 512;

/// A simple programmed-I/O disk: counts sectors moved in each direction.
#[derive(Debug, Default)]
pub struct DiskDevice {
    /// Sectors written by the guest.
    pub sectors_written: u64,
    /// Sectors read by the guest.
    pub sectors_read: u64,
}

impl Device for DiskDevice {
    fn name(&self) -> &str {
        "disk"
    }

    fn pio_read(&mut self, _port: u16) -> u64 {
        self.sectors_read += 1;
        0xDA7A
    }

    fn pio_write(&mut self, _port: u16, _value: u64) {
        self.sectors_written += 1;
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.varint(self.sectors_written);
        w.varint(self.sectors_read);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        self.sectors_written = r.varint()?;
        self.sectors_read = r.varint()?;
        r.finish()
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// A NIC with a receive queue fed by the harness (the "external load
/// generator") and transmit counting.
#[derive(Debug, Default)]
pub struct NicDevice {
    /// Pending inbound requests (byte sizes).
    pub rx_queue: VecDeque<u64>,
    /// Bytes transmitted by the guest.
    pub tx_bytes: u64,
    /// Bytes received by the guest.
    pub rx_bytes: u64,
}

impl NicDevice {
    /// Enqueues an inbound request of `bytes` (the harness pairs this with
    /// scheduling [`NIC_IRQ_VECTOR`] on the VM).
    pub fn push_rx(&mut self, bytes: u64) {
        self.rx_queue.push_back(bytes);
    }
}

impl Device for NicDevice {
    fn name(&self) -> &str {
        "nic"
    }

    fn pio_read(&mut self, port: u16) -> u64 {
        match port {
            NIC_PORT_DATA => match self.rx_queue.pop_front() {
                Some(bytes) => {
                    self.rx_bytes += bytes;
                    bytes
                }
                None => 0,
            },
            NIC_PORT_RXLEN => self.rx_queue.len() as u64,
            _ => 0xFF,
        }
    }

    fn pio_write(&mut self, port: u16, value: u64) {
        if port == NIC_PORT_DATA {
            self.tx_bytes += value;
        }
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.varint(self.rx_queue.len() as u64);
        for b in &self.rx_queue {
            w.varint(*b);
        }
        w.varint(self.tx_bytes);
        w.varint(self.rx_bytes);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        let n = r.count(1 << 20, "nic rx queue")?;
        self.rx_queue.clear();
        for _ in 0..n {
            self.rx_queue.push_back(r.varint()?);
        }
        self.tx_bytes = r.varint()?;
        self.rx_bytes = r.varint()?;
        r.finish()
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Console device: collects bytes the guest prints.
#[derive(Debug, Default)]
pub struct ConsoleDevice {
    /// Everything printed so far.
    pub output: Vec<u8>,
}

impl Device for ConsoleDevice {
    fn name(&self) -> &str {
        "console"
    }

    fn pio_write(&mut self, _port: u16, value: u64) {
        self.output.push(value as u8);
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.bytes(&self.output);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        self.output = r.bytes()?.to_vec();
        r.finish()
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_counts_sectors() {
        let mut d = DiskDevice::default();
        d.pio_write(DISK_PORT_DATA, 0);
        d.pio_write(DISK_PORT_DATA, 0);
        let _ = d.pio_read(DISK_PORT_DATA);
        assert_eq!(d.sectors_written, 2);
        assert_eq!(d.sectors_read, 1);
    }

    #[test]
    fn nic_queue_fifo() {
        let mut n = NicDevice::default();
        n.push_rx(100);
        n.push_rx(200);
        assert_eq!(n.pio_read(NIC_PORT_RXLEN), 2);
        assert_eq!(n.pio_read(NIC_PORT_DATA), 100);
        assert_eq!(n.pio_read(NIC_PORT_DATA), 200);
        assert_eq!(n.pio_read(NIC_PORT_DATA), 0, "empty queue reads zero");
        assert_eq!(n.rx_bytes, 300);
        n.pio_write(NIC_PORT_DATA, 512);
        assert_eq!(n.tx_bytes, 512);
    }

    #[test]
    fn console_collects_output() {
        let mut c = ConsoleDevice::default();
        for b in b"ok" {
            c.pio_write(CONSOLE_PORT, *b as u64);
        }
        assert_eq!(c.output, b"ok");
    }
}
