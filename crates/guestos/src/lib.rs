//! # hypertap-guestos — a simulated multiprocessor guest kernel
//!
//! The guest operating system substrate of the HyperTap reproduction. It is
//! a deliberately Linux-shaped kernel that runs as a
//! [`hypertap_hvsim::machine::GuestProgram`] on the HAV simulator:
//!
//! * **Scheduling** — per-slice round robin over a shared runqueue with
//!   optional kernel preemption (CONFIG_PREEMPT), driven by a per-vCPU
//!   local-APIC timer tick; every dispatch rewrites `TSS.RSP0` (and CR3 for
//!   address-space changes), producing the architectural context-switch
//!   footprint HyperTap monitors.
//! * **Processes** — `task_struct`s serialized into guest memory as a
//!   doubly-linked list ([`layout`]), per-process page directories sharing
//!   the kernel mapping, per-task kernel stacks with `thread_info` at the
//!   base. User code is scripted through [`program::UserProgram`] and can
//!   only act via system calls through the real gates.
//! * **Locking** — explicit kernel lock sites ([`klocks`], [`kpath`]) whose
//!   discipline the fault injector corrupts to reproduce the paper's hang
//!   campaign (Fig. 4/5).
//! * **Attack surface** — a planted privilege-escalation bug
//!   (`vuln_escalate`), loadable process-hiding modules ([`module`]), a
//!   `/proc` side channel (`read_proc_stat`), and in-guest process
//!   enumeration that honestly walks the (corruptible) in-memory list.

pub mod devices;
pub mod fault;
pub mod kernel;
pub mod klocks;
pub mod kpath;
pub mod layout;
pub mod module;
pub mod program;
pub mod syscalls;
pub mod task;

/// Glob import of the commonly used guest types.
pub mod prelude {
    pub use crate::fault::{FaultHook, FaultType, NoFaults, SingleFault};
    pub use crate::kernel::{Kernel, KernelConfig, KernelStats, ProcStat, SyscallGateKind};
    pub use crate::layout::os_profile;
    pub use crate::module::{HideMechanism, ModuleSpec};
    pub use crate::program::{FnProgram, ProgId, ScriptProgram, UserOp, UserProgram, UserView};
    pub use crate::syscalls::Sysno;
    pub use crate::task::{Pid, ProcEntry, RunState, Task, UserEvent};
}

pub use prelude::*;
