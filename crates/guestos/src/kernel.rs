//! The simulated guest kernel.
//!
//! A multiprocessor, preemptible-or-not, Linux-shaped kernel that runs as a
//! [`GuestProgram`] on the HAV simulator. Everything the monitoring stack
//! relies on is performed through the architectural interface:
//!
//! * context switches write `TSS.RSP0` and (for address-space changes) CR3;
//! * system calls enter through `SYSENTER` or `INT 0x80`;
//! * device I/O uses port instructions; request arrival uses external
//!   interrupts; the scheduler tick is a local-APIC timer interrupt;
//! * all kernel data structures that describe processes are serialized into
//!   guest memory (see [`crate::layout`]), where VMI reads them and rootkits
//!   corrupt them.
//!
//! The kernel also carries the fault-injection surface for the hang
//! experiments: its syscall bodies execute lock-site paths
//! ([`crate::kpath`]) whose discipline an injected [`FaultHook`] corrupts.

use crate::devices::{
    ConsoleDevice, DiskDevice, NicDevice, CONSOLE_PORT, DISK_PORT_DATA, NIC_IRQ_VECTOR,
    NIC_PORT_DATA, SECTOR_SIZE,
};
use crate::fault::{FaultActivation, FaultHook, FaultType, NoFaults};
use crate::klocks::{LockId, LockTable};
use crate::kpath::{self, KernelExec, PathStep};
use crate::layout::{self, task_struct as ts, thread_info as ti};
use crate::module::{HideMechanism, ModuleSpec};
use crate::program::{ProgId, ProgramFactory, UserOp, UserProgram, UserView};
use crate::syscalls::Sysno;
use crate::task::{ExecContext, Pid, ProcEntry, RunState, Task, UserEvent};
use hypertap_hvsim::clock::{Duration, SimTime};
use hypertap_hvsim::cpu::{CpuCtx, StepOutcome, TSS_RSP0_OFFSET};
use hypertap_hvsim::device::DeviceId;
use hypertap_hvsim::machine::GuestProgram;
use hypertap_hvsim::mem::{Gfn, Gpa, Gva, PAGE_SIZE};
use hypertap_hvsim::paging::{AddressSpaceBuilder, FrameAllocator};
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};
use hypertap_hvsim::vcpu::{Gpr, Msr, VcpuId};
use std::collections::{HashSet, VecDeque};

/// Timer interrupt vector (the scheduler tick).
pub const TIMER_VECTOR: u8 = 0x20;

/// Which architectural gate system calls use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallGateKind {
    /// `SYSENTER` fast calls (the default on the modelled era's Linux).
    Sysenter,
    /// Legacy `INT 0x80` software interrupts.
    Int80,
}

/// Kernel build/runtime configuration.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Number of vCPUs (must match the machine's).
    pub vcpus: usize,
    /// Kernel preemption (CONFIG_PREEMPT): whether kernel-mode execution
    /// outside critical sections can be preempted by the tick.
    pub preemptible: bool,
    /// Scheduler tick period.
    pub tick: Duration,
    /// Time-slice length in ticks.
    pub slice_ticks: u32,
    /// System-call gate.
    pub gate: SyscallGateKind,
    /// Period of the per-vCPU housekeeping daemons.
    pub daemon_period: Duration,
    /// Base kernel cost of any syscall (ns).
    pub syscall_base_ns: u64,
    /// Spin-wait burst per scheduler step (ns).
    pub spin_chunk_ns: u64,
    /// Maximum user compute executed per step (ns).
    pub compute_chunk_ns: u64,
    /// Per-process cost of a `/proc` walk entry (ns) — open+read+parse of
    /// one `/proc/PID` tree.
    pub proc_entry_ns: u64,
}

impl KernelConfig {
    /// A 2-vCPU non-preemptible build (the paper's default guest).
    pub fn new(vcpus: usize) -> Self {
        KernelConfig {
            vcpus,
            preemptible: false,
            tick: Duration::from_millis(1),
            slice_ticks: 8,
            gate: SyscallGateKind::Sysenter,
            daemon_period: Duration::from_millis(250),
            syscall_base_ns: 2_000,
            spin_chunk_ns: 20_000,
            compute_chunk_ns: 200_000,
            proc_entry_ns: 20_000,
        }
    }

    /// Builder-style preemption toggle.
    pub fn with_preemption(mut self, on: bool) -> Self {
        self.preemptible = on;
        self
    }

    /// Builder-style gate selection.
    pub fn with_gate(mut self, gate: SyscallGateKind) -> Self {
        self.gate = gate;
        self
    }
}

/// Aggregate kernel statistics.
#[derive(Debug, Clone, Default)]
pub struct KernelStats {
    /// Number of context switches performed (dispatches of a new task).
    pub context_switches: u64,
    /// Number of system calls serviced.
    pub syscalls: u64,
    /// Number of processes spawned.
    pub spawns: u64,
    /// Number of process exits.
    pub exits: u64,
    /// Timer ticks handled.
    pub ticks: u64,
    /// Times a vCPU went idle.
    pub idle_halts: u64,
}

/// Packs the `/proc/PID/stat` side-channel view into a u64.
pub fn pack_proc_stat(euid: u64, parent_uid: u64, state: u64, rip_off: u64) -> u64 {
    (euid & 0xFFFF)
        | ((parent_uid & 0xFFFF) << 16)
        | ((state & 0xF) << 32)
        | ((rip_off & 0xFFFFF) << 36)
}

/// The decoded `/proc/PID/stat` view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcStat {
    /// Effective uid.
    pub euid: u64,
    /// Parent's real uid.
    pub parent_uid: u64,
    /// Guest state encoding (0 running, 1 sleeping, 2 zombie).
    pub state: u64,
    /// Low bits of the user instruction pointer.
    pub rip_off: u64,
}

impl ProcStat {
    /// Decodes a packed stat value; `None` for the "no such pid" marker.
    pub fn unpack(raw: u64) -> Option<ProcStat> {
        if raw == u64::MAX {
            return None;
        }
        Some(ProcStat {
            euid: raw & 0xFFFF,
            parent_uid: (raw >> 16) & 0xFFFF,
            state: (raw >> 32) & 0xF,
            rip_off: (raw >> 36) & 0xFFFFF,
        })
    }
}

struct Registered {
    name: String,
    factory: ProgramFactory,
}

#[derive(Debug, Default)]
struct UserLockState {
    owner: Option<Pid>,
    waiters: VecDeque<usize>,
}

/// The kernel.
pub struct Kernel {
    cfg: KernelConfig,
    booted: bool,
    vcpu_online: Vec<bool>,
    shutdown: bool,

    falloc: Option<FrameAllocator>,
    kernel_pd: Gpa,
    ts_free: Vec<Gva>,
    ts_next: Gva,
    kstack_free: Vec<Gva>,
    kstack_next: Gva,

    tasks: Vec<Task>,
    next_pid: u64,
    current: Vec<Option<usize>>,
    runqueue: VecDeque<usize>,

    locks: LockTable,
    fault_hook: Box<dyn FaultHook>,
    /// Host-side record of every fault activation with its simulated
    /// timestamp. Deliberately NOT serialized: snapshots keep only the
    /// activation count (via [`FaultHook::activations`]), and campaign
    /// drivers read this log live for detection-latency accounting.
    fault_activations: Vec<FaultActivation>,
    leaked_locks: Vec<LockId>,
    path_counter: u64,

    programs: Vec<Registered>,
    init_program: Option<ProgId>,
    modules: Vec<ModuleSpec>,
    pid_filters: HashSet<u64>,
    user_locks: Vec<UserLockState>,

    disk: Option<DeviceId>,
    nic: Option<DeviceId>,
    console: Option<DeviceId>,

    stats: KernelStats,
    last_dispatch: Vec<SimTime>,
    mm_graveyard: Vec<Gpa>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("booted", &self.booted)
            .field("tasks", &self.tasks.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Kernel {
    /// Creates an unbooted kernel; boot happens on the first guest step.
    pub fn new(cfg: KernelConfig) -> Self {
        let vcpus = cfg.vcpus;
        Kernel {
            cfg,
            booted: false,
            vcpu_online: vec![false; vcpus],
            shutdown: false,
            falloc: None,
            kernel_pd: Gpa::NULL,
            ts_free: Vec::new(),
            ts_next: layout::KERNEL_HEAP,
            kstack_free: Vec::new(),
            kstack_next: Gva::new(layout::KERNEL_HEAP.value() + (8 << 20)),
            tasks: Vec::new(),
            next_pid: 1,
            current: vec![None; vcpus],
            runqueue: VecDeque::new(),
            locks: LockTable::new(),
            fault_hook: Box::new(NoFaults),
            fault_activations: Vec::new(),
            leaked_locks: Vec::new(),
            path_counter: 0,
            programs: Vec::new(),
            init_program: None,
            modules: Vec::new(),
            pid_filters: HashSet::new(),
            user_locks: Vec::new(),
            disk: None,
            nic: None,
            console: None,
            stats: KernelStats::default(),
            last_dispatch: vec![SimTime::ZERO; vcpus],
            mm_graveyard: Vec::new(),
        }
    }

    // ----- host-side configuration (before the run) -------------------------

    /// Registers a user program; `spawn` refers to it by the returned id.
    pub fn register_program(&mut self, name: impl Into<String>, factory: ProgramFactory) -> ProgId {
        self.programs.push(Registered { name: name.into(), factory });
        ProgId(self.programs.len() as u64 - 1)
    }

    /// Chooses the program `init` (pid 1) runs.
    pub fn set_init_program(&mut self, prog: ProgId) {
        self.init_program = Some(prog);
    }

    /// Registers a loadable module (rootkit); `install_module` refers to it
    /// by the returned index.
    pub fn register_module(&mut self, spec: ModuleSpec) -> u64 {
        self.modules.push(spec);
        self.modules.len() as u64 - 1
    }

    /// Installs the fault-injection hook.
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        self.fault_hook = hook;
    }

    /// Read access to the fault hook (activation counting).
    pub fn fault_hook(&self) -> &dyn FaultHook {
        self.fault_hook.as_ref()
    }

    /// Every fault activation observed so far, with simulated timestamps —
    /// the injection-time side of detection-latency accounting. Host-side
    /// observation only; not part of snapshot state.
    pub fn fault_activation_log(&self) -> &[FaultActivation] {
        &self.fault_activations
    }

    // ----- host-side inspection ----------------------------------------------

    /// Whether boot completed.
    pub fn is_booted(&self) -> bool {
        self.booted
    }

    /// The configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// Kernel statistics.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// The kernel page directory (every process shares its kernel range).
    pub fn kernel_pd(&self) -> Gpa {
        self.kernel_pd
    }

    /// All task slots (including dead ones).
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Looks up a live task by pid.
    pub fn task_by_pid(&self, pid: Pid) -> Option<&Task> {
        self.tasks.iter().find(|t| t.pid == pid && !matches!(t.state, RunState::Dead))
    }

    /// Pids of all live (non-dead, non-zombie) tasks.
    pub fn alive_pids(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .tasks
            .iter()
            .filter(|t| !matches!(t.state, RunState::Dead | RunState::Zombie))
            .map(|t| t.pid.0)
            .collect();
        v.sort_unstable();
        v
    }

    /// Drains the mailbox of a task (by pid, dead or alive).
    pub fn drain_mailbox(&mut self, pid: Pid) -> Vec<UserEvent> {
        self.tasks
            .iter_mut()
            .filter(|t| t.pid == pid)
            .flat_map(|t| std::mem::take(&mut t.mailbox))
            .collect()
    }

    /// Drains every task's mailbox, tagged by pid.
    pub fn drain_all_mailboxes(&mut self) -> Vec<(u64, UserEvent)> {
        let mut out = Vec::new();
        for t in &mut self.tasks {
            for e in std::mem::take(&mut t.mailbox) {
                out.push((t.pid.0, e));
            }
        }
        out
    }

    /// The pids currently filtered out of process enumeration by a
    /// syscall-hijacking rootkit.
    pub fn hidden_pid_filters(&self) -> &HashSet<u64> {
        &self.pid_filters
    }

    /// Simulated time of the most recent dispatch on each vCPU.
    pub fn last_dispatch(&self) -> &[SimTime] {
        &self.last_dispatch
    }

    /// The NIC's device id (available after boot) — used by load generators
    /// to enqueue inbound requests.
    pub fn nic_device_id(&self) -> Option<DeviceId> {
        self.nic
    }

    /// The disk's device id (available after boot).
    pub fn disk_device_id(&self) -> Option<DeviceId> {
        self.disk
    }

    // ----- boot ---------------------------------------------------------------

    fn boot(&mut self, cpu: &mut CpuCtx<'_>) {
        let mem_size = cpu.vm().mem.size();
        assert!(
            mem_size >= layout::KERNEL_SIZE + (64 << 20),
            "guest needs at least 128 MiB (64 MiB kernel region + user memory); got {mem_size}"
        );
        let mut falloc = FrameAllocator::new(Gfn::new(16), Gfn::new(mem_size / PAGE_SIZE));

        // Kernel page directory with the whole kernel region eagerly mapped,
        // so its page tables (and hence PDE sharing) never change again.
        let vm = cpu.vm_mut();
        let mut kpd = AddressSpaceBuilder::new(&mut vm.mem, &mut falloc);
        kpd.map_fresh_range(
            &mut vm.mem,
            &mut falloc,
            layout::KERNEL_BASE,
            layout::KERNEL_SIZE / PAGE_SIZE,
        );
        self.kernel_pd = kpd.pdba();

        // Devices.
        self.register_devices(&mut vm.io);
        self.falloc = Some(falloc);

        // Bring up vCPU 0's architectural state: TR first, then the first
        // CR3 load (which arms HyperTap's engines), then the syscall MSRs.
        self.bring_up_vcpu(cpu);

        // A distinctive marker in kernel text (also the known-GVA probe target).
        cpu.write_u64_gva(layout::KERNEL_TEXT, 0x4855_4E54_4552_4B21).expect("kernel text mapped");
        // Empty task list.
        cpu.write_u64_gva(layout::TASK_LIST_HEAD, 0).expect("head slot mapped");

        // init (pid 1, root) — created first so it gets pid 1, as on Linux.
        let init_prog: Box<dyn UserProgram> = match self.init_program {
            Some(p) => (self.programs[p.0 as usize].factory)(),
            None => Self::fallback_init_program(),
        };
        let slot = self.create_user_task(cpu, "init", 0, None, init_prog, self.init_program);
        self.runqueue.push_back(slot);

        // Kernel housekeeping daemons, one per vCPU.
        for v in 0..self.cfg.vcpus {
            let slot = self.create_kthread(cpu, &format!("kflushd/{v}"), VcpuId(v));
            // Stagger their wake-ups.
            self.tasks[slot].state =
                RunState::Sleeping(cpu.now() + Duration::from_millis(50 + 37 * v as u64));
        }

        self.booted = true;
    }

    /// Registers the disk, NIC and console on the I/O bus, in the fixed
    /// boot order. Shared by boot and snapshot restore (a restored VM gets
    /// a fresh bus, and device state only loads once the same topology is
    /// back in place).
    fn register_devices(&mut self, io: &mut hypertap_hvsim::device::IoBus) {
        let disk = io.register(Box::<DiskDevice>::default());
        io.map_pio(0x1f0..0x1f8, disk);
        let nic = io.register(Box::<NicDevice>::default());
        io.map_pio(0x300..0x308, nic);
        let console = io.register(Box::<ConsoleDevice>::default());
        io.map_pio(CONSOLE_PORT..CONSOLE_PORT + 1, console);
        self.disk = Some(disk);
        self.nic = Some(nic);
        self.console = Some(console);
    }

    /// Per-vCPU architectural bring-up (TR, CR3, MSRs, timer).
    fn bring_up_vcpu(&mut self, cpu: &mut CpuCtx<'_>) {
        let v = cpu.vcpu_id();
        cpu.load_task_register(layout::tss_gva(v.0));
        cpu.write_cr3(self.kernel_pd);
        cpu.wrmsr(Msr::SysenterEip, layout::SYSENTER_ENTRY.value());
        cpu.wrmsr(Msr::SysenterEsp, 0);
        cpu.program_apic_timer(self.cfg.tick);
        self.vcpu_online[v.0] = true;
    }

    // ----- allocation helpers ---------------------------------------------------

    fn alloc_ts(&mut self) -> Gva {
        if let Some(g) = self.ts_free.pop() {
            return g;
        }
        let g = self.ts_next;
        self.ts_next = self.ts_next.offset(ts::SIZE);
        g
    }

    fn alloc_kstack(&mut self) -> Gva {
        if let Some(g) = self.kstack_free.pop() {
            return g;
        }
        let g = self.kstack_next;
        self.kstack_next = self.kstack_next.offset(layout::KERNEL_STACK_SIZE);
        g
    }

    fn w(&self, cpu: &mut CpuCtx<'_>, gva: Gva, val: u64) {
        cpu.write_u64_gva(gva, val).expect("kernel address mapped");
    }

    fn r(&self, cpu: &mut CpuCtx<'_>, gva: Gva) -> u64 {
        cpu.read_u64_gva(gva).expect("kernel address mapped")
    }

    /// Serializes a task's `task_struct` into guest memory and links it at
    /// the head of the in-guest task list.
    fn write_and_link_ts(&mut self, cpu: &mut CpuCtx<'_>, slot: usize) {
        let (gva, pid, state, uid, euid, parent_gva, pdba, kstack, comm) = {
            let t = &self.tasks[slot];
            let parent_gva =
                t.ppid.and_then(|p| self.task_by_pid(p)).map(|p| p.ts_gva.value()).unwrap_or(0);
            (
                t.ts_gva,
                t.pid.0,
                t.state.guest_encoding(),
                t.uid,
                t.euid,
                parent_gva,
                t.pdba.map(|p| p.value()).unwrap_or(0),
                t.kstack_top.value(),
                t.comm.clone(),
            )
        };
        self.w(cpu, gva.offset(ts::PID), pid);
        self.w(cpu, gva.offset(ts::STATE), state);
        self.w(cpu, gva.offset(ts::UID), uid);
        self.w(cpu, gva.offset(ts::EUID), euid);
        self.w(cpu, gva.offset(ts::PARENT), parent_gva);
        self.w(cpu, gva.offset(ts::PDBA), pdba);
        self.w(cpu, gva.offset(ts::KSTACK), kstack);
        let mut comm_buf = [0u8; ts::COMM_LEN as usize];
        let n = comm.len().min(ts::COMM_LEN as usize - 1);
        comm_buf[..n].copy_from_slice(&comm.as_bytes()[..n]);
        cpu.write_gva(gva.offset(ts::COMM), &comm_buf).expect("kernel address mapped");
        // Link at head.
        let old_first = self.r(cpu, layout::TASK_LIST_HEAD);
        self.w(cpu, gva.offset(ts::NEXT), old_first);
        self.w(cpu, gva.offset(ts::PREV), 0);
        if old_first != 0 {
            self.w(cpu, Gva::new(old_first).offset(ts::PREV), gva.value());
        }
        self.w(cpu, layout::TASK_LIST_HEAD, gva.value());
    }

    /// Unlinks a `task_struct` from the in-guest list (idempotent: searches
    /// the list, as a rootkit may already have unlinked it).
    fn guest_unlink_ts(&mut self, cpu: &mut CpuCtx<'_>, target: Gva) {
        let mut node = self.r(cpu, layout::TASK_LIST_HEAD);
        let mut hops = 0;
        while node != 0 && hops < 8192 {
            if node == target.value() {
                let next = self.r(cpu, target.offset(ts::NEXT));
                let prev = self.r(cpu, target.offset(ts::PREV));
                if prev == 0 {
                    self.w(cpu, layout::TASK_LIST_HEAD, next);
                } else {
                    self.w(cpu, Gva::new(prev).offset(ts::NEXT), next);
                }
                if next != 0 {
                    self.w(cpu, Gva::new(next).offset(ts::PREV), prev);
                }
                return;
            }
            node = self.r(cpu, Gva::new(node).offset(ts::NEXT));
            hops += 1;
        }
    }

    #[allow(clippy::too_many_arguments)] // internal constructor shared by user tasks and kthreads
    fn new_task_common(
        &mut self,
        cpu: &mut CpuCtx<'_>,
        comm: &str,
        uid: u64,
        ppid: Option<Pid>,
        pdba: Option<Gpa>,
        program: Option<Box<dyn UserProgram>>,
        prog_id: Option<ProgId>,
        kthread_period: Option<Duration>,
        affinity: Option<VcpuId>,
        user_frames: Vec<Gfn>,
    ) -> usize {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let ts_gva = self.alloc_ts();
        let kstack_base = self.alloc_kstack();
        let kstack_top = kstack_base.offset(layout::KERNEL_STACK_SIZE);
        // thread_info at the stack base points back at the task_struct.
        self.w(cpu, kstack_base.offset(ti::TASK), ts_gva.value());

        let task = Task {
            pid,
            ts_gva,
            comm: comm.to_owned(),
            uid,
            euid: uid,
            ppid,
            state: RunState::Ready,
            pdba,
            kstack_top,
            program,
            prog_id,
            kthread_period,
            exec: ExecContext::User,
            pending_compute: 0,
            last_ret: 0,
            preempt_count: 0,
            saved_if: None,
            affinity,
            slice_left: self.cfg.slice_ticks,
            user_rip: layout::USER_TEXT,
            mailbox: Vec::new(),
            user_frames,
            fds: Vec::new(),
            proc_snapshot: Vec::new(),
            spawned_at: cpu.now(),
            kill_pending: false,
            op_counter: 0,
            user_stack: layout::USER_STACK_TOP,
            pending_child_exits: Vec::new(),
            children_alive: 0,
        };
        self.tasks.push(task);
        let slot = self.tasks.len() - 1;
        if let Some(pp) = ppid {
            if let Some(parent) = self.tasks.iter_mut().find(|t| t.pid == pp) {
                parent.children_alive += 1;
            }
        }
        self.write_and_link_ts(cpu, slot);
        self.stats.spawns += 1;
        slot
    }

    fn create_user_task(
        &mut self,
        cpu: &mut CpuCtx<'_>,
        comm: &str,
        uid: u64,
        ppid: Option<Pid>,
        program: Box<dyn UserProgram>,
        prog_id: Option<ProgId>,
    ) -> usize {
        // Build the process image: fresh page directory sharing the kernel
        // region, one text page, four stack pages.
        let mut falloc = self.falloc.take().expect("booted");
        let vm = cpu.vm_mut();
        let mut asb = AddressSpaceBuilder::new(&mut vm.mem, &mut falloc);
        asb.share_range_from(&mut vm.mem, self.kernel_pd, layout::KERNEL_BASE, layout::KERNEL_END);
        let mut frames = asb.map_fresh_range(&mut vm.mem, &mut falloc, layout::USER_TEXT, 1);
        frames.extend(asb.map_fresh_range(
            &mut vm.mem,
            &mut falloc,
            Gva::new(layout::USER_STACK_TOP.value() - 4 * PAGE_SIZE),
            4,
        ));
        let pdba = asb.pdba();
        self.falloc = Some(falloc);
        self.new_task_common(
            cpu,
            comm,
            uid,
            ppid,
            Some(pdba),
            Some(program),
            prog_id,
            None,
            None,
            frames,
        )
    }

    fn create_kthread(&mut self, cpu: &mut CpuCtx<'_>, comm: &str, affinity: VcpuId) -> usize {
        self.new_task_common(
            cpu,
            comm,
            0,
            None,
            None,
            None,
            None,
            Some(self.cfg.daemon_period),
            Some(affinity),
            Vec::new(),
        )
    }

    /// The program `init` runs when none was registered (must be
    /// deterministic: snapshot restore rebuilds it from here).
    fn fallback_init_program() -> Box<dyn UserProgram> {
        Box::new(crate::program::ScriptProgram::new(
            vec![UserOp::sys(Sysno::Nanosleep, &[3_600_000_000_000])],
            0,
        ))
    }

    // ----- snapshot --------------------------------------------------------------

    /// Serializes the kernel's host-side state. Recipe state — the config,
    /// the program/module registries, the lock-site catalogue, the fault
    /// hook's identity — is not captured; the restore target must be built
    /// from the same recipe.
    ///
    /// # Errors
    ///
    /// Fails with [`SnapError::Unsupported`] when a live task runs a
    /// program that cannot serialize itself (closure-backed [`FnProgram`]s).
    ///
    /// [`FnProgram`]: crate::program::FnProgram
    pub fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.boolean(self.booted);
        w.varint(self.vcpu_online.len() as u64);
        for b in &self.vcpu_online {
            w.boolean(*b);
        }
        w.boolean(self.shutdown);
        match &self.falloc {
            Some(f) => {
                w.boolean(true);
                f.save(w);
            }
            None => w.boolean(false),
        }
        w.varint(self.kernel_pd.value());
        w.varint(self.ts_free.len() as u64);
        for g in &self.ts_free {
            w.varint(g.value());
        }
        w.varint(self.ts_next.value());
        w.varint(self.kstack_free.len() as u64);
        for g in &self.kstack_free {
            w.varint(g.value());
        }
        w.varint(self.kstack_next.value());
        w.varint(self.tasks.len() as u64);
        for t in &self.tasks {
            Self::save_task(t, w)?;
        }
        w.varint(self.next_pid);
        w.varint(self.current.len() as u64);
        for c in &self.current {
            w.opt_varint(c.map(|s| s as u64));
        }
        w.varint(self.runqueue.len() as u64);
        for s in &self.runqueue {
            w.varint(*s as u64);
        }
        self.locks.save(w);
        w.varint(self.fault_hook.activations());
        w.varint(self.leaked_locks.len() as u64);
        for l in &self.leaked_locks {
            w.varint(l.0 as u64);
        }
        w.varint(self.path_counter);
        let mut filters: Vec<u64> = self.pid_filters.iter().copied().collect();
        filters.sort_unstable();
        w.varint(filters.len() as u64);
        for p in filters {
            w.varint(p);
        }
        w.varint(self.user_locks.len() as u64);
        for ul in &self.user_locks {
            w.opt_varint(ul.owner.map(|p| p.0));
            w.varint(ul.waiters.len() as u64);
            for s in &ul.waiters {
                w.varint(*s as u64);
            }
        }
        w.varint(self.stats.context_switches);
        w.varint(self.stats.syscalls);
        w.varint(self.stats.spawns);
        w.varint(self.stats.exits);
        w.varint(self.stats.ticks);
        w.varint(self.stats.idle_halts);
        w.varint(self.last_dispatch.len() as u64);
        for t in &self.last_dispatch {
            w.varint(t.as_nanos());
        }
        w.varint(self.mm_graveyard.len() as u64);
        for g in &self.mm_graveyard {
            w.varint(g.value());
        }
        Ok(())
    }

    /// Restores kernel state saved by [`Kernel::save_state`] into a freshly
    /// built kernel (same config, same registered programs and modules, same
    /// fault hook). Re-registers the boot device topology on `io` when the
    /// snapshot was taken after boot, so the caller can subsequently load
    /// the devices' own state into the bus.
    ///
    /// # Errors
    ///
    /// Returns a structured [`SnapError`] on malformed input; the kernel may
    /// be partially overwritten and must be discarded on error.
    pub fn restore_state(
        &mut self,
        r: &mut SnapReader<'_>,
        io: &mut hypertap_hvsim::device::IoBus,
    ) -> Result<(), SnapError> {
        self.booted = r.boolean()?;
        if self.booted {
            self.register_devices(io);
        }
        let n = r.count(1 << 10, "vcpu count")?;
        if n != self.cfg.vcpus {
            return Err(SnapError::BadValue { offset: r.offset(), what: "vcpu count" });
        }
        self.vcpu_online.clear();
        for _ in 0..n {
            self.vcpu_online.push(r.boolean()?);
        }
        self.shutdown = r.boolean()?;
        self.falloc = if r.boolean()? { Some(FrameAllocator::load(r)?) } else { None };
        self.kernel_pd = Gpa::new(r.varint()?);
        let n = r.count(1 << 24, "free task_struct slots")?;
        self.ts_free = Vec::with_capacity(n);
        for _ in 0..n {
            self.ts_free.push(Gva::new(r.varint()?));
        }
        self.ts_next = Gva::new(r.varint()?);
        let n = r.count(1 << 24, "free kernel stacks")?;
        self.kstack_free = Vec::with_capacity(n);
        for _ in 0..n {
            self.kstack_free.push(Gva::new(r.varint()?));
        }
        self.kstack_next = Gva::new(r.varint()?);
        let n = r.count(1 << 20, "task count")?;
        self.tasks = Vec::with_capacity(n);
        for _ in 0..n {
            let t = self.load_task(r)?;
            self.tasks.push(t);
        }
        self.next_pid = r.varint()?;
        let n = r.count(1 << 10, "current slots")?;
        if n != self.cfg.vcpus {
            return Err(SnapError::BadValue { offset: r.offset(), what: "current slot count" });
        }
        self.current.clear();
        for _ in 0..n {
            self.current.push(r.opt_varint()?.map(|s| s as usize));
        }
        let n = r.count(1 << 20, "runqueue length")?;
        self.runqueue.clear();
        for _ in 0..n {
            self.runqueue.push_back(r.varint()? as usize);
        }
        self.locks.load(r)?;
        let activations = r.varint()?;
        self.fault_hook.restore_activations(activations);
        let n = r.count(1 << 16, "leaked locks")?;
        self.leaked_locks = Vec::with_capacity(n);
        for _ in 0..n {
            self.leaked_locks.push(LockId(r.varint()? as u32));
        }
        self.path_counter = r.varint()?;
        let n = r.count(1 << 20, "pid filters")?;
        self.pid_filters = HashSet::with_capacity(n);
        for _ in 0..n {
            self.pid_filters.insert(r.varint()?);
        }
        let n = r.count(1 << 16, "user locks")?;
        self.user_locks = Vec::with_capacity(n);
        for _ in 0..n {
            let owner = r.opt_varint()?.map(Pid);
            let wn = r.count(1 << 20, "user lock waiters")?;
            let mut waiters = VecDeque::with_capacity(wn);
            for _ in 0..wn {
                waiters.push_back(r.varint()? as usize);
            }
            self.user_locks.push(UserLockState { owner, waiters });
        }
        self.stats.context_switches = r.varint()?;
        self.stats.syscalls = r.varint()?;
        self.stats.spawns = r.varint()?;
        self.stats.exits = r.varint()?;
        self.stats.ticks = r.varint()?;
        self.stats.idle_halts = r.varint()?;
        let n = r.count(1 << 10, "dispatch timestamps")?;
        if n != self.cfg.vcpus {
            return Err(SnapError::BadValue { offset: r.offset(), what: "dispatch count" });
        }
        self.last_dispatch.clear();
        for _ in 0..n {
            self.last_dispatch.push(SimTime::from_nanos(r.varint()?));
        }
        let n = r.count(1 << 20, "mm graveyard")?;
        self.mm_graveyard = Vec::with_capacity(n);
        for _ in 0..n {
            self.mm_graveyard.push(Gpa::new(r.varint()?));
        }
        Ok(())
    }

    fn save_task(t: &Task, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.varint(t.pid.0);
        w.varint(t.ts_gva.value());
        w.string(&t.comm);
        w.varint(t.uid);
        w.varint(t.euid);
        w.opt_varint(t.ppid.map(|p| p.0));
        t.state.save(w);
        w.opt_varint(t.pdba.map(|p| p.value()));
        w.varint(t.kstack_top.value());
        match &t.program {
            Some(p) => {
                let state = p.save_state().ok_or_else(|| SnapError::Unsupported {
                    what: format!("program of task '{}' ({}) cannot be snapshotted", t.comm, t.pid),
                })?;
                w.boolean(true);
                w.opt_varint(t.prog_id.map(|p| p.0));
                w.bytes(&state);
            }
            None => w.boolean(false),
        }
        w.opt_varint(t.kthread_period.map(|d| d.as_nanos()));
        match &t.exec {
            ExecContext::User => w.byte(0),
            ExecContext::Kernel(e) => {
                w.byte(1);
                e.save(w);
            }
        }
        w.varint(t.pending_compute);
        w.varint(t.last_ret);
        w.varint(t.preempt_count as u64);
        w.byte(match t.saved_if {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
        w.opt_varint(t.affinity.map(|v| v.0 as u64));
        w.varint(t.slice_left as u64);
        w.varint(t.user_rip.value());
        w.varint(t.mailbox.len() as u64);
        for e in &t.mailbox {
            w.varint(e.time.as_nanos());
            w.string(&e.tag);
            w.string(&e.detail);
        }
        w.varint(t.user_frames.len() as u64);
        for g in &t.user_frames {
            w.varint(g.value());
        }
        w.varint(t.fds.len() as u64);
        for fd in &t.fds {
            match fd {
                Some((file, off)) => {
                    w.boolean(true);
                    w.varint(*file as u64);
                    w.varint(*off);
                }
                None => w.boolean(false),
            }
        }
        w.varint(t.proc_snapshot.len() as u64);
        for p in &t.proc_snapshot {
            w.varint(p.pid);
            w.varint(p.uid);
            w.varint(p.euid);
            w.varint(p.ppid);
            w.varint(p.parent_uid);
            w.string(&p.comm);
        }
        w.varint(t.spawned_at.as_nanos());
        w.boolean(t.kill_pending);
        w.varint(t.op_counter);
        w.varint(t.user_stack.value());
        w.varint(t.pending_child_exits.len() as u64);
        for p in &t.pending_child_exits {
            w.varint(*p);
        }
        w.varint(t.children_alive as u64);
        Ok(())
    }

    fn load_task(&mut self, r: &mut SnapReader<'_>) -> Result<Task, SnapError> {
        let pid = Pid(r.varint()?);
        let ts_gva = Gva::new(r.varint()?);
        let comm = r.string()?.to_owned();
        let uid = r.varint()?;
        let euid = r.varint()?;
        let ppid = r.opt_varint()?.map(Pid);
        let state = RunState::load(r)?;
        let pdba = r.opt_varint()?.map(Gpa::new);
        let kstack_top = Gva::new(r.varint()?);
        let (program, prog_id) = if r.boolean()? {
            let prog_id = r.opt_varint()?.map(ProgId);
            let state = r.bytes()?.to_vec();
            let mut program: Box<dyn UserProgram> = match prog_id {
                Some(p) => {
                    let reg = self.programs.get_mut(p.0 as usize).ok_or_else(|| {
                        SnapError::Unsupported {
                            what: format!("task '{comm}' references unregistered program {}", p.0),
                        }
                    })?;
                    (reg.factory)()
                }
                // `None` with a program present is the fallback init.
                None => Self::fallback_init_program(),
            };
            program.load_state(&state).map_err(|e| SnapError::Unsupported {
                what: format!("restoring program of task '{comm}': {e}"),
            })?;
            (Some(program), prog_id)
        } else {
            (None, None)
        };
        let kthread_period = r.opt_varint()?.map(Duration::from_nanos);
        let start = r.offset();
        let exec = match r.byte()? {
            0 => ExecContext::User,
            1 => ExecContext::Kernel(KernelExec::load(r)?),
            tag => return Err(SnapError::BadTag { offset: start, tag }),
        };
        let pending_compute = r.varint()?;
        let last_ret = r.varint()?;
        let preempt_count = r.varint()? as u32;
        let start = r.offset();
        let saved_if = match r.byte()? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            tag => return Err(SnapError::BadTag { offset: start, tag }),
        };
        let affinity = r.opt_varint()?.map(|v| VcpuId(v as usize));
        let slice_left = r.varint()? as u32;
        let user_rip = Gva::new(r.varint()?);
        let n = r.count(1 << 20, "mailbox length")?;
        let mut mailbox = Vec::with_capacity(n);
        for _ in 0..n {
            let time = SimTime::from_nanos(r.varint()?);
            let tag = r.string()?.to_owned();
            let detail = r.string()?.to_owned();
            mailbox.push(UserEvent { time, tag, detail });
        }
        let n = r.count(1 << 24, "user frames")?;
        let mut user_frames = Vec::with_capacity(n);
        for _ in 0..n {
            user_frames.push(Gfn::new(r.varint()?));
        }
        let n = r.count(1 << 16, "fd table size")?;
        let mut fds = Vec::with_capacity(n);
        for _ in 0..n {
            fds.push(if r.boolean()? {
                let file = r.varint()? as u32;
                let off = r.varint()?;
                Some((file, off))
            } else {
                None
            });
        }
        let n = r.count(1 << 20, "proc snapshot")?;
        let mut proc_snapshot = Vec::with_capacity(n);
        for _ in 0..n {
            proc_snapshot.push(ProcEntry {
                pid: r.varint()?,
                uid: r.varint()?,
                euid: r.varint()?,
                ppid: r.varint()?,
                parent_uid: r.varint()?,
                comm: r.string()?.to_owned(),
            });
        }
        let spawned_at = SimTime::from_nanos(r.varint()?);
        let kill_pending = r.boolean()?;
        let op_counter = r.varint()?;
        let user_stack = Gva::new(r.varint()?);
        let n = r.count(1 << 20, "pending child exits")?;
        let mut pending_child_exits = Vec::with_capacity(n);
        for _ in 0..n {
            pending_child_exits.push(r.varint()?);
        }
        let children_alive = r.varint()? as u32;
        Ok(Task {
            pid,
            ts_gva,
            comm,
            uid,
            euid,
            ppid,
            state,
            pdba,
            kstack_top,
            program,
            prog_id,
            kthread_period,
            exec,
            pending_compute,
            last_ret,
            preempt_count,
            saved_if,
            affinity,
            slice_left,
            user_rip,
            mailbox,
            user_frames,
            fds,
            proc_snapshot,
            spawned_at,
            kill_pending,
            op_counter,
            user_stack,
            pending_child_exits,
            children_alive,
        })
    }

    // ----- scheduler -------------------------------------------------------------

    fn pick_next(&mut self, v: VcpuId) -> Option<usize> {
        let pos = self.runqueue.iter().position(|&slot| match self.tasks[slot].affinity {
            Some(a) => a == v,
            None => true,
        })?;
        self.runqueue.remove(pos)
    }

    /// Performs the architectural context switch to `slot` on the current
    /// vCPU: `TSS.RSP0` write (thread identity), `SYSENTER_ESP` update, and
    /// a CR3 load when the address space changes. Kernel threads keep the
    /// previous address space (the paper's footnote 3).
    fn dispatch(&mut self, cpu: &mut CpuCtx<'_>, slot: usize) {
        let v = cpu.vcpu_id();
        let kstack_top = self.tasks[slot].kstack_top;
        let tss = layout::tss_gva(v.0);
        cpu.write_u64_gva(tss.offset(TSS_RSP0_OFFSET), kstack_top.value()).expect("TSS mapped");
        cpu.wrmsr(Msr::SysenterEsp, kstack_top.value());
        if let Some(pdba) = self.tasks[slot].pdba {
            if cpu.cr3() != pdba {
                cpu.write_cr3(pdba);
            }
        }
        self.current[v.0] = Some(slot);
        self.tasks[slot].slice_left = self.cfg.slice_ticks;
        self.stats.context_switches += 1;
        self.reap_mm_graveyard(cpu);
        self.last_dispatch[v.0] = cpu.now();
        cpu.advance(Duration::from_nanos(1_200)); // direct switch cost
    }

    /// Destroys parked page directories once no vCPU references them.
    fn reap_mm_graveyard(&mut self, cpu: &mut CpuCtx<'_>) {
        if self.mm_graveyard.is_empty() {
            return;
        }
        let mut falloc = self.falloc.take().expect("booted");
        let kernel_pd = self.kernel_pd;
        let vm = cpu.vm_mut();
        let mut keep = Vec::new();
        for pdba in std::mem::take(&mut self.mm_graveyard) {
            let in_use = (0..vm.vcpu_count()).any(|v| vm.vcpu(VcpuId(v)).cr3() == pdba);
            if in_use {
                keep.push(pdba);
            } else {
                AddressSpaceBuilder::from_pdba(pdba).destroy(
                    &mut vm.mem,
                    &mut falloc,
                    Some(kernel_pd),
                );
            }
        }
        self.mm_graveyard = keep;
        self.falloc = Some(falloc);
    }

    fn can_preempt(&self, slot: usize) -> bool {
        let t = &self.tasks[slot];
        if t.preempt_count > 0 {
            return false;
        }
        match (&t.exec, t.state) {
            (_, RunState::Spinning(site_idx)) => {
                self.cfg.preemptible && !self.locks.site(site_idx).nonpreempt
            }
            (ExecContext::User, _) => true,
            (ExecContext::Kernel(_), _) => self.cfg.preemptible,
        }
    }

    fn handle_irq(&mut self, cpu: &mut CpuCtx<'_>, vector: u8) {
        match vector {
            TIMER_VECTOR => self.on_tick(cpu),
            NIC_IRQ_VECTOR => {
                // Wake every task blocked on network I/O.
                for slot in 0..self.tasks.len() {
                    if matches!(self.tasks[slot].state, RunState::WaitingIo) {
                        self.tasks[slot].state = RunState::Ready;
                        if let ExecContext::Kernel(exec) = &mut self.tasks[slot].exec {
                            exec.pc = 0;
                            exec.io_progress = 0;
                            exec.applied = false;
                        }
                        self.runqueue.push_back(slot);
                    }
                }
            }
            _ => {}
        }
        cpu.apic_eoi();
    }

    fn on_tick(&mut self, cpu: &mut CpuCtx<'_>) {
        let v = cpu.vcpu_id();
        let now = cpu.now();
        self.stats.ticks += 1;
        // Wake sleepers (including kernel daemons).
        for slot in 0..self.tasks.len() {
            if let RunState::Sleeping(due) = self.tasks[slot].state {
                if due <= now {
                    self.wake_sleeper(slot, now);
                }
            }
        }
        // Slice accounting + preemption.
        if let Some(slot) = self.current[v.0] {
            let t = &mut self.tasks[slot];
            t.slice_left = t.slice_left.saturating_sub(1);
            let expired = t.slice_left == 0;
            let someone_waiting = !self.runqueue.is_empty();
            if expired && someone_waiting && self.can_preempt(slot) {
                self.tasks[slot].slice_left = self.cfg.slice_ticks;
                self.runqueue.push_back(slot);
                self.current[v.0] = None;
            }
        }
    }

    fn wake_sleeper(&mut self, slot: usize, now: SimTime) {
        let is_kthread = self.tasks[slot].kthread_period.is_some();
        self.tasks[slot].state = RunState::Ready;
        if is_kthread {
            // Give the daemon its periodic body.
            self.path_counter += 1;
            let path = kpath::kthread_path(self.path_counter);
            self.tasks[slot].exec = ExecContext::Kernel(KernelExec::new(None, path));
        } else if matches!(self.tasks[slot].exec, ExecContext::Kernel(_)) {
            // A syscall (e.g. nanosleep) completed its wait; it will finish
            // its return-to-user on next dispatch.
        }
        let _ = now;
        self.runqueue.push_back(slot);
    }

    // ----- the main step ------------------------------------------------------------

    fn run_current(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
        let v = cpu.vcpu_id();
        let slot = match self.current[v.0] {
            Some(slot) => {
                // Dead or blocked tasks vacate the CPU.
                if !matches!(self.tasks[slot].state, RunState::Ready | RunState::Spinning(_)) {
                    self.current[v.0] = None;
                    return StepOutcome::Continue;
                }
                slot
            }
            None => match self.pick_next(v) {
                Some(slot) => {
                    self.dispatch(cpu, slot);
                    return StepOutcome::Continue;
                }
                None => {
                    self.stats.idle_halts += 1;
                    cpu.hlt();
                    return StepOutcome::Continue;
                }
            },
        };

        if let RunState::Spinning(site_idx) = self.tasks[slot].state {
            self.spin_step(cpu, slot, site_idx);
            return StepOutcome::Continue;
        }

        match &self.tasks[slot].exec {
            ExecContext::Kernel(_) => self.kernel_step(cpu, slot),
            ExecContext::User => self.user_step(cpu, slot),
        }
    }

    fn user_step(&mut self, cpu: &mut CpuCtx<'_>, slot: usize) -> StepOutcome {
        if self.tasks[slot].kill_pending {
            self.do_exit(cpu, slot, u64::MAX);
            return StepOutcome::Continue;
        }
        if self.tasks[slot].pending_compute > 0 {
            let chunk = self.tasks[slot].pending_compute.min(self.cfg.compute_chunk_ns);
            cpu.compute(chunk);
            self.tasks[slot].pending_compute -= chunk;
            return StepOutcome::Continue;
        }
        // Ask the program for its next operation.
        let mut prog = match self.tasks[slot].program.take() {
            Some(p) => p,
            None => {
                // Kernel thread between bursts: it sleeps in wake_sleeper.
                self.tasks[slot].state = RunState::Sleeping(
                    cpu.now()
                        + self.tasks[slot].kthread_period.unwrap_or(Duration::from_secs(3600)),
                );
                self.current[cpu.vcpu_id().0] = None;
                return StepOutcome::Continue;
            }
        };
        let op = {
            let t = &self.tasks[slot];
            let view = UserView {
                last_ret: t.last_ret,
                now: cpu.now(),
                pid: t.pid.0,
                uid: t.uid,
                euid: t.euid,
                procs: &t.proc_snapshot,
            };
            prog.next_op(&view)
        };
        self.tasks[slot].program = Some(prog);
        self.tasks[slot].op_counter += 1;
        let rip = layout::USER_TEXT.offset((self.tasks[slot].op_counter % 256) * 16);
        self.tasks[slot].user_rip = rip;
        cpu.set_rip(rip);

        match op {
            UserOp::Compute(n) => {
                self.tasks[slot].pending_compute = n;
            }
            UserOp::Emit(tag, detail) => {
                cpu.compute(200);
                let now = cpu.now();
                self.tasks[slot].mailbox.push(UserEvent { time: now, tag, detail });
            }
            UserOp::Syscall(nr, args) => {
                self.enter_syscall(cpu, slot, nr, args);
            }
            UserOp::Exit(code) => {
                self.do_exit(cpu, slot, code);
            }
        }
        StepOutcome::Continue
    }

    fn enter_syscall(&mut self, cpu: &mut CpuCtx<'_>, slot: usize, nr: Sysno, args: [u64; 5]) {
        self.stats.syscalls += 1;
        cpu.set_gpr(Gpr::Rax, nr.raw());
        cpu.set_gpr(Gpr::Rbx, args[0]);
        cpu.set_gpr(Gpr::Rcx, args[1]);
        cpu.set_gpr(Gpr::Rdx, args[2]);
        cpu.set_gpr(Gpr::Rsi, args[3]);
        cpu.set_gpr(Gpr::Rdi, args[4]);
        let entered = match self.cfg.gate {
            SyscallGateKind::Sysenter => cpu.sysenter().is_ok(),
            SyscallGateKind::Int80 => cpu.int_n(0x80).is_ok(),
        };
        if !entered {
            // Gate misconfigured — treat as a crashed process.
            self.do_exit(cpu, slot, u64::MAX);
            return;
        }
        self.path_counter += 1;
        let steps = kpath::syscall_path(nr, args, self.path_counter, self.cfg.syscall_base_ns);
        self.tasks[slot].exec = ExecContext::Kernel(KernelExec::new(Some((nr, args)), steps));
    }

    fn kernel_step(&mut self, cpu: &mut CpuCtx<'_>, slot: usize) -> StepOutcome {
        let finished = match &self.tasks[slot].exec {
            ExecContext::Kernel(e) => e.finished(),
            ExecContext::User => unreachable!("kernel_step on user context"),
        };
        if finished {
            self.finish_kernel(cpu, slot);
            return StepOutcome::Continue;
        }
        let step = match &self.tasks[slot].exec {
            ExecContext::Kernel(e) => e.steps[e.pc],
            ExecContext::User => unreachable!(),
        };
        match step {
            PathStep::Work(ns) => {
                cpu.compute(ns);
                self.advance_pc(slot);
            }
            PathStep::DiskIo { bytes, write } => {
                let sectors = bytes.div_ceil(SECTOR_SIZE).max(1);
                let mut burst = 0;
                loop {
                    let progress = match &self.tasks[slot].exec {
                        ExecContext::Kernel(e) => e.io_progress,
                        ExecContext::User => unreachable!(),
                    };
                    if progress >= sectors || burst >= 8 {
                        break;
                    }
                    if write {
                        cpu.pio_out(DISK_PORT_DATA, SECTOR_SIZE);
                    } else {
                        let _ = cpu.pio_in(DISK_PORT_DATA);
                    }
                    if let ExecContext::Kernel(e) = &mut self.tasks[slot].exec {
                        e.io_progress += 1;
                    }
                    burst += 1;
                }
                let progress = match &self.tasks[slot].exec {
                    ExecContext::Kernel(e) => e.io_progress,
                    ExecContext::User => unreachable!(),
                };
                if progress >= sectors {
                    if let ExecContext::Kernel(e) = &mut self.tasks[slot].exec {
                        e.io_progress = 0;
                    }
                    self.advance_pc(slot);
                }
            }
            PathStep::NicIo { bytes, write } => {
                if write {
                    cpu.pio_out(NIC_PORT_DATA, bytes);
                } else {
                    let got = cpu.pio_in(NIC_PORT_DATA);
                    if let ExecContext::Kernel(e) = &mut self.tasks[slot].exec {
                        e.ret = got;
                    }
                }
                self.advance_pc(slot);
            }
            PathStep::Lock(site_idx) => {
                self.lock_step(cpu, slot, site_idx);
            }
            PathStep::Unlock(site_idx) => {
                self.unlock_step(cpu, slot, site_idx);
            }
        }
        StepOutcome::Continue
    }

    fn advance_pc(&mut self, slot: usize) {
        if let ExecContext::Kernel(e) = &mut self.tasks[slot].exec {
            e.pc += 1;
        }
    }

    fn lock_step(&mut self, cpu: &mut CpuCtx<'_>, slot: usize, site_idx: usize) {
        let pid = self.tasks[slot].pid;
        let site = self.locks.site(site_idx).clone();
        let fault = self.fault_hook.check(site.id, true);
        if let Some(f) = fault {
            self.fault_activations.push(FaultActivation {
                site: site.id,
                fault: f,
                acquire: true,
                time_ns: cpu.now().as_nanos(),
            });
        }
        match fault {
            Some(FaultType::MissingUnlockLockPair) => {
                // Believe the lock is held without acquiring it: the later
                // release will corrupt whoever actually holds it.
                if let ExecContext::Kernel(e) = &mut self.tasks[slot].exec {
                    e.held.push(site_idx);
                }
                self.acquired_side_effects(cpu, slot, &site);
                self.advance_pc(slot);
                return;
            }
            Some(FaultType::WrongOrder) => {
                let partner = kpath::wrong_order_partner(&self.locks, &site);
                let already = match &self.tasks[slot].exec {
                    ExecContext::Kernel(e) => e.extra_locks.contains(&partner),
                    ExecContext::User => false,
                };
                if !already {
                    if self.locks.try_acquire(partner, pid) {
                        if let ExecContext::Kernel(e) = &mut self.tasks[slot].exec {
                            e.extra_locks.push(partner);
                        }
                        // Fall through to acquire the site lock normally.
                    } else {
                        if let ExecContext::Kernel(e) = &mut self.tasks[slot].exec {
                            e.spin_partner = Some(partner);
                        }
                        self.tasks[slot].state = RunState::Spinning(site_idx);
                        return;
                    }
                }
            }
            _ => {}
        }
        if self.locks.try_acquire(site.lock, pid) {
            if let ExecContext::Kernel(e) = &mut self.tasks[slot].exec {
                e.held.push(site_idx);
            }
            self.acquired_side_effects(cpu, slot, &site);
            self.advance_pc(slot);
        } else {
            self.tasks[slot].state = RunState::Spinning(site_idx);
        }
    }

    fn acquired_side_effects(
        &mut self,
        cpu: &mut CpuCtx<'_>,
        slot: usize,
        site: &crate::klocks::LockSite,
    ) {
        self.tasks[slot].preempt_count += 1;
        if site.irqsave {
            self.tasks[slot].saved_if = Some(cpu.interrupts_enabled());
            cpu.set_interrupts_enabled(false);
        }
        cpu.advance(Duration::from_nanos(60)); // lock acquisition cost
    }

    fn spin_step(&mut self, cpu: &mut CpuCtx<'_>, slot: usize, site_idx: usize) {
        let pid = self.tasks[slot].pid;
        let partner = match &self.tasks[slot].exec {
            ExecContext::Kernel(e) => e.spin_partner,
            ExecContext::User => None,
        };
        let target = partner.unwrap_or_else(|| self.locks.site(site_idx).lock);
        if self.locks.try_acquire(target, pid) {
            if let Some(p) = partner {
                if let ExecContext::Kernel(e) = &mut self.tasks[slot].exec {
                    e.extra_locks.push(p);
                    e.spin_partner = None;
                }
                // The Lock step re-executes next and takes the site lock.
            } else {
                let site = self.locks.site(site_idx).clone();
                if let ExecContext::Kernel(e) = &mut self.tasks[slot].exec {
                    e.held.push(site_idx);
                }
                self.acquired_side_effects(cpu, slot, &site);
                self.advance_pc(slot);
            }
            self.tasks[slot].state = RunState::Ready;
        } else {
            cpu.compute(self.cfg.spin_chunk_ns);
        }
    }

    fn unlock_step(&mut self, cpu: &mut CpuCtx<'_>, slot: usize, site_idx: usize) {
        let pid = self.tasks[slot].pid;
        let site = self.locks.site(site_idx).clone();
        let fault = self.fault_hook.check(site.id, false);
        if let Some(f) = fault {
            self.fault_activations.push(FaultActivation {
                site: site.id,
                fault: f,
                acquire: false,
                time_ns: cpu.now().as_nanos(),
            });
        }
        if let ExecContext::Kernel(e) = &mut self.tasks[slot].exec {
            if let Some(pos) = e.held.iter().rposition(|&h| h == site_idx) {
                e.held.remove(pos);
            }
        }
        self.tasks[slot].preempt_count = self.tasks[slot].preempt_count.saturating_sub(1);
        match fault {
            Some(FaultType::MissingUnlock) => {
                // The lock is never released again.
                self.leaked_locks.push(site.lock);
                self.restore_irq_state(cpu, slot, &site);
            }
            Some(FaultType::MissingIrqRestore) if site.irqsave => {
                self.locks.release(site.lock, pid);
                // Interrupts stay off on this vCPU: the tick is dead.
                self.tasks[slot].saved_if = None;
            }
            _ => {
                self.locks.release(site.lock, pid);
                self.restore_irq_state(cpu, slot, &site);
            }
        }
        cpu.advance(Duration::from_nanos(40));
        self.advance_pc(slot);
    }

    fn restore_irq_state(
        &mut self,
        cpu: &mut CpuCtx<'_>,
        slot: usize,
        site: &crate::klocks::LockSite,
    ) {
        if site.irqsave {
            if let Some(saved) = self.tasks[slot].saved_if.take() {
                cpu.set_interrupts_enabled(saved);
            }
        }
    }

    /// Runs after a kernel path finished: applies the syscall's semantics
    /// and returns to user mode (or puts a kernel thread back to sleep).
    fn finish_kernel(&mut self, cpu: &mut CpuCtx<'_>, slot: usize) {
        // Release any wrong-order partner locks.
        let extra = match &mut self.tasks[slot].exec {
            ExecContext::Kernel(e) => std::mem::take(&mut e.extra_locks),
            ExecContext::User => Vec::new(),
        };
        let pid = self.tasks[slot].pid;
        for l in extra {
            self.locks.release(l, pid);
        }

        let syscall = match &self.tasks[slot].exec {
            ExecContext::Kernel(e) => e.syscall,
            ExecContext::User => None,
        };
        match syscall {
            None => {
                // Kernel-thread burst done: sleep until the next period.
                let period = self.tasks[slot].kthread_period.unwrap_or(Duration::from_secs(3600));
                self.tasks[slot].exec = ExecContext::User;
                self.tasks[slot].state = RunState::Sleeping(cpu.now() + period);
                self.current[cpu.vcpu_id().0] = None;
            }
            Some((nr, args)) => {
                let already_applied = match &self.tasks[slot].exec {
                    ExecContext::Kernel(e) => e.applied,
                    ExecContext::User => true,
                };
                if !already_applied {
                    if let ExecContext::Kernel(e) = &mut self.tasks[slot].exec {
                        e.applied = true;
                    }
                    let blocked = self.apply_syscall(cpu, slot, nr, args);
                    if blocked
                        || matches!(self.tasks[slot].state, RunState::Zombie | RunState::Dead)
                    {
                        self.current[cpu.vcpu_id().0] = None;
                        return;
                    }
                }
                // Return to user mode.
                let ret = match &self.tasks[slot].exec {
                    ExecContext::Kernel(e) => e.ret,
                    ExecContext::User => 0,
                };
                self.tasks[slot].last_ret = ret;
                self.tasks[slot].exec = ExecContext::User;
                let user_rsp = self.tasks[slot].user_stack;
                match self.cfg.gate {
                    SyscallGateKind::Sysenter => cpu.sysexit(user_rsp),
                    SyscallGateKind::Int80 => cpu.iret(user_rsp),
                }
                if self.tasks[slot].kill_pending {
                    self.do_exit(cpu, slot, u64::MAX);
                }
            }
        }
    }

    fn set_ret(&mut self, slot: usize, val: u64) {
        if let ExecContext::Kernel(e) = &mut self.tasks[slot].exec {
            e.ret = val;
        }
    }

    /// Applies a completed syscall's semantics. Returns true if the task
    /// blocked (no return-to-user yet).
    fn apply_syscall(
        &mut self,
        cpu: &mut CpuCtx<'_>,
        slot: usize,
        nr: Sysno,
        args: [u64; 5],
    ) -> bool {
        match nr {
            Sysno::Exit => {
                self.do_exit(cpu, slot, args[0]);
            }
            Sysno::Getpid => {
                let pid = self.tasks[slot].pid.0;
                self.set_ret(slot, pid);
            }
            Sysno::Getuid => {
                let v = self.tasks[slot].uid;
                self.set_ret(slot, v);
            }
            Sysno::Geteuid => {
                let v = self.tasks[slot].euid;
                self.set_ret(slot, v);
            }
            Sysno::Setuid => {
                if self.tasks[slot].euid == 0 {
                    self.tasks[slot].uid = args[0];
                    self.tasks[slot].euid = args[0];
                    let gva = self.tasks[slot].ts_gva;
                    self.w(cpu, gva.offset(ts::UID), args[0]);
                    self.w(cpu, gva.offset(ts::EUID), args[0]);
                    self.set_ret(slot, 0);
                } else {
                    self.set_ret(slot, u64::MAX);
                }
            }
            Sysno::VulnEscalate => {
                // The planted kernel bug: no credential check at all.
                self.tasks[slot].euid = 0;
                let gva = self.tasks[slot].ts_gva;
                self.w(cpu, gva.offset(ts::EUID), 0);
                self.set_ret(slot, 0);
            }
            Sysno::Open => {
                let fd = self.tasks[slot].fds.len() as u64;
                self.tasks[slot].fds.push(Some((args[0] as u32, 0)));
                self.set_ret(slot, fd);
            }
            Sysno::Close => {
                let fd = args[0] as usize;
                if let Some(e) = self.tasks[slot].fds.get_mut(fd) {
                    *e = None;
                }
                self.set_ret(slot, 0);
            }
            Sysno::Read | Sysno::Write => {
                let fd = args[0] as usize;
                let len = args[1];
                if let Some(Some((_, off))) = self.tasks[slot].fds.get_mut(fd) {
                    *off += len;
                }
                self.set_ret(slot, len);
            }
            Sysno::Lseek => {
                let fd = args[0] as usize;
                if let Some(Some((_, off))) = self.tasks[slot].fds.get_mut(fd) {
                    *off = args[1];
                }
                self.set_ret(slot, args[1]);
            }
            Sysno::Nanosleep => {
                self.set_ret(slot, 0);
                if args[0] == 0 {
                    // sched_yield: go to the back of the runqueue.
                    self.tasks[slot].state = RunState::Ready;
                    self.runqueue.push_back(slot);
                    return true;
                }
                let due = cpu.now() + Duration::from_nanos(args[0]);
                self.tasks[slot].state = RunState::Sleeping(due);
                return true;
            }
            Sysno::Waitpid => {
                if let Some(childpid) = self.tasks[slot].pending_child_exits.pop() {
                    self.set_ret(slot, childpid);
                } else if self.tasks[slot].children_alive > 0 {
                    self.tasks[slot].state = RunState::WaitingChild;
                    return true;
                } else {
                    self.set_ret(slot, 0);
                }
            }
            Sysno::Kill => {
                let target = Pid(args[0]);
                let ok = self.kill_task(cpu, target);
                self.set_ret(slot, if ok { 0 } else { u64::MAX });
            }
            Sysno::Spawn => {
                let prog_idx = args[0] as usize;
                if prog_idx >= self.programs.len() {
                    self.set_ret(slot, u64::MAX);
                } else {
                    let uid = if args[1] == u64::MAX { self.tasks[slot].uid } else { args[1] };
                    let name = self.programs[prog_idx].name.clone();
                    let prog = (self.programs[prog_idx].factory)();
                    let ppid = self.tasks[slot].pid;
                    let child = self.create_user_task(
                        cpu,
                        &name,
                        uid,
                        Some(ppid),
                        prog,
                        Some(ProgId(prog_idx as u64)),
                    );
                    self.runqueue.push_back(child);
                    let child_pid = self.tasks[child].pid.0;
                    self.set_ret(slot, child_pid);
                }
            }
            Sysno::InstallModule => {
                if self.tasks[slot].euid != 0 {
                    self.set_ret(slot, u64::MAX);
                } else {
                    let ok = self.install_module(cpu, args[0], Pid(args[1]));
                    self.set_ret(slot, if ok { 0 } else { u64::MAX });
                }
            }
            Sysno::ListProcs => {
                let entries = self.walk_guest_proc_list(cpu);
                let n = entries.len() as u64;
                self.tasks[slot].proc_snapshot = entries;
                self.set_ret(slot, n);
            }
            Sysno::ReadProcStat => {
                let v = self.read_proc_stat(cpu, Pid(args[0]));
                self.set_ret(slot, v);
            }
            Sysno::UserLock => {
                let id = args[0] as usize;
                while self.user_locks.len() <= id {
                    self.user_locks.push(UserLockState::default());
                }
                let pid = self.tasks[slot].pid;
                let l = &mut self.user_locks[id];
                if l.owner.is_none() {
                    l.owner = Some(pid);
                    self.set_ret(slot, 0);
                } else {
                    l.waiters.push_back(slot);
                    self.tasks[slot].state = RunState::WaitingUserLock(id as u32);
                    return true;
                }
            }
            Sysno::UserUnlock => {
                let id = args[0] as usize;
                if let Some(l) = self.user_locks.get_mut(id) {
                    l.owner = None;
                    if let Some(w) = l.waiters.pop_front() {
                        l.owner = Some(self.tasks[w].pid);
                        self.tasks[w].state = RunState::Ready;
                        self.set_ret(w, 0);
                        self.runqueue.push_back(w);
                    }
                }
                self.set_ret(slot, 0);
            }
            Sysno::Pipe => {
                self.set_ret(slot, 1);
            }
            Sysno::NetRecv => {
                let got = match &self.tasks[slot].exec {
                    ExecContext::Kernel(e) => e.ret,
                    ExecContext::User => 0,
                };
                if got == 0 {
                    // Nothing pending: block until the NIC interrupt.
                    self.tasks[slot].state = RunState::WaitingIo;
                    return true;
                }
            }
            Sysno::NetSend => {
                self.set_ret(slot, args[0]);
            }
            Sysno::ConsolePutc => {
                cpu.pio_out(CONSOLE_PORT, args[0]);
                self.set_ret(slot, 0);
            }
            Sysno::Reboot => {
                self.shutdown = true;
            }
        }
        false
    }

    fn kill_task(&mut self, cpu: &mut CpuCtx<'_>, target: Pid) -> bool {
        let Some(slot) = self
            .tasks
            .iter()
            .position(|t| t.pid == target && !matches!(t.state, RunState::Dead | RunState::Zombie))
        else {
            return false;
        };
        let running_elsewhere =
            self.current.iter().enumerate().any(|(v, c)| *c == Some(slot) && v != cpu.vcpu_id().0);
        if running_elsewhere {
            self.tasks[slot].kill_pending = true;
        } else {
            // Remove from queues and finish it now.
            self.runqueue.retain(|&s| s != slot);
            self.do_exit(cpu, slot, u64::MAX);
        }
        true
    }

    fn do_exit(&mut self, cpu: &mut CpuCtx<'_>, slot: usize, _code: u64) {
        let pid = self.tasks[slot].pid;
        self.stats.exits += 1;
        // Locks held by the dying task are released at the kernel boundary —
        // except those leaked by an injected fault.
        let leaked = self.leaked_locks.clone();
        self.locks.release_all_owned(pid, &leaked);
        // Restore IF if it died inside an irqsave section.
        if let Some(saved) = self.tasks[slot].saved_if.take() {
            cpu.set_interrupts_enabled(saved);
        }
        // Free the user image: unmapped + zeroed, so the stale PDBA fails
        // the Fig. 3A validity probe.
        let frames = std::mem::take(&mut self.tasks[slot].user_frames);
        if let Some(pdba) = self.tasks[slot].pdba.take() {
            // The kernel switches to its own mm before tearing down the
            // dying process's (as Linux switches to init_mm).
            if cpu.cr3() == pdba {
                cpu.write_cr3(self.kernel_pd);
            }
            let mut falloc = self.falloc.take().expect("booted");
            let vm = cpu.vm_mut();
            for f in frames {
                falloc.free(&mut vm.mem, f);
            }
            // Another vCPU may still run a kernel thread that borrowed this
            // address space; park the directory in the graveyard until no
            // vCPU references it.
            let in_use = (0..vm.vcpu_count()).any(|v| vm.vcpu(VcpuId(v)).cr3() == pdba);
            if in_use {
                self.mm_graveyard.push(pdba);
            } else {
                AddressSpaceBuilder::from_pdba(pdba).destroy(
                    &mut vm.mem,
                    &mut falloc,
                    Some(self.kernel_pd),
                );
            }
            self.falloc = Some(falloc);
        }
        // Tell the parent.
        if let Some(pp) = self.tasks[slot].ppid {
            if let Some(pslot) = self.tasks.iter().position(|t| t.pid == pp) {
                self.tasks[pslot].children_alive =
                    self.tasks[pslot].children_alive.saturating_sub(1);
                self.tasks[pslot].pending_child_exits.push(pid.0);
                if matches!(self.tasks[pslot].state, RunState::WaitingChild) {
                    let child = self.tasks[pslot].pending_child_exits.pop().unwrap();
                    self.set_ret(pslot, child);
                    self.tasks[pslot].state = RunState::Ready;
                    self.runqueue.push_back(pslot);
                }
            }
        }
        // Unlink from the guest list and recycle kernel allocations.
        let ts_gva = self.tasks[slot].ts_gva;
        self.guest_unlink_ts(cpu, ts_gva);
        // Zero the task_struct so stale readers see an empty record.
        let zeros = vec![0u8; ts::SIZE as usize];
        cpu.write_gva(ts_gva, &zeros).expect("kernel address mapped");
        self.ts_free.push(ts_gva);
        let kstack_base = Gva::new(self.tasks[slot].kstack_top.value() - layout::KERNEL_STACK_SIZE);
        self.kstack_free.push(kstack_base);
        self.tasks[slot].state = RunState::Dead;
        self.tasks[slot].program = None;
        self.tasks[slot].exec = ExecContext::User;
        self.runqueue.retain(|&s| s != slot);
        for c in self.current.iter_mut() {
            if *c == Some(slot) {
                *c = None;
            }
        }
        self.pid_filters.remove(&pid.0);
    }

    fn install_module(&mut self, cpu: &mut CpuCtx<'_>, module_id: u64, hide: Pid) -> bool {
        let Some(spec) = self.modules.get(module_id as usize).cloned() else {
            return false;
        };
        let Some(target) = self.task_by_pid(hide) else {
            return false;
        };
        let ts_gva = target.ts_gva;
        for mech in &spec.mechanisms {
            match mech {
                HideMechanism::Dkom | HideMechanism::KmemPatch => {
                    // Both routes end in the same corruption: the
                    // task_struct vanishes from the in-guest list. The task
                    // keeps running — the scheduler uses its runqueues, not
                    // this list.
                    self.guest_unlink_ts(cpu, ts_gva);
                }
                HideMechanism::SyscallHijack => {
                    self.pid_filters.insert(hide.0);
                }
                HideMechanism::TssRelocate => {
                    // Copy the current TSS into a decoy page and retarget TR
                    // at it, so future monitoring reads forged thread state.
                    let v = cpu.vcpu_id();
                    let old = cpu.tr_base();
                    let decoy = self.alloc_kstack(); // any fresh kernel page
                    let rsp0 = self.r(cpu, old.offset(hypertap_hvsim::cpu::TSS_RSP0_OFFSET));
                    self.w(cpu, decoy.offset(hypertap_hvsim::cpu::TSS_RSP0_OFFSET), rsp0);
                    cpu.load_task_register(decoy);
                    let _ = v;
                }
            }
        }
        cpu.compute(50_000); // module load work
        true
    }

    /// The `getdents`-over-`/proc` walk: reads the in-guest task list (the
    /// bytes a rootkit corrupts), resolves each entry, applies any hijacked
    /// syscall filters, and returns rows in ascending-pid order (as `/proc`
    /// readdir does).
    fn walk_guest_proc_list(&mut self, cpu: &mut CpuCtx<'_>) -> Vec<ProcEntry> {
        let mut out = Vec::new();
        let mut node = self.r(cpu, layout::TASK_LIST_HEAD);
        let mut hops = 0;
        while node != 0 && hops < 8192 {
            let gva = Gva::new(node);
            let pid = self.r(cpu, gva.offset(ts::PID));
            let uid = self.r(cpu, gva.offset(ts::UID));
            let euid = self.r(cpu, gva.offset(ts::EUID));
            let parent = self.r(cpu, gva.offset(ts::PARENT));
            let (ppid, parent_uid) = if parent != 0 {
                (
                    self.r(cpu, Gva::new(parent).offset(ts::PID)),
                    self.r(cpu, Gva::new(parent).offset(ts::UID)),
                )
            } else {
                (0, 0)
            };
            let mut comm_buf = [0u8; ts::COMM_LEN as usize];
            cpu.read_gva(gva.offset(ts::COMM), &mut comm_buf).expect("kernel address mapped");
            let end = comm_buf.iter().position(|&b| b == 0).unwrap_or(comm_buf.len());
            let comm = String::from_utf8_lossy(&comm_buf[..end]).into_owned();
            // Per-process /proc traversal cost (open+read+parse).
            cpu.compute(self.cfg.proc_entry_ns);
            if !self.pid_filters.contains(&pid) {
                out.push(ProcEntry { pid, uid, euid, ppid, parent_uid, comm });
            }
            node = self.r(cpu, gva.offset(ts::NEXT));
            hops += 1;
        }
        out.sort_by_key(|e| e.pid);
        out
    }

    /// `/proc/PID/stat`: a fresh, per-pid lookup through the in-guest list.
    fn read_proc_stat(&mut self, cpu: &mut CpuCtx<'_>, pid: Pid) -> u64 {
        if self.pid_filters.contains(&pid.0) {
            return u64::MAX;
        }
        let mut node = self.r(cpu, layout::TASK_LIST_HEAD);
        let mut hops = 0;
        while node != 0 && hops < 8192 {
            let gva = Gva::new(node);
            let p = self.r(cpu, gva.offset(ts::PID));
            if p == pid.0 {
                cpu.compute(self.cfg.proc_entry_ns);
                let euid = self.r(cpu, gva.offset(ts::EUID));
                let parent = self.r(cpu, gva.offset(ts::PARENT));
                let parent_uid =
                    if parent != 0 { self.r(cpu, Gva::new(parent).offset(ts::UID)) } else { 0 };
                // State and RIP come from the live scheduler view.
                let (state, rip_off) = self
                    .task_by_pid(pid)
                    .map(|t| {
                        (
                            t.state.guest_encoding(),
                            (t.user_rip.value() - layout::USER_TEXT.value()) >> 4,
                        )
                    })
                    .unwrap_or((2, 0));
                return pack_proc_stat(euid, parent_uid, state, rip_off);
            }
            node = self.r(cpu, gva.offset(ts::NEXT));
            hops += 1;
        }
        u64::MAX
    }
}

impl GuestProgram for Kernel {
    fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
        if self.shutdown {
            return StepOutcome::Shutdown;
        }
        let v = cpu.vcpu_id();
        if !self.booted {
            if v.0 == 0 {
                self.boot(cpu);
            } else {
                // Secondary vCPUs wait for the boot processor.
                cpu.compute(10_000);
            }
            return StepOutcome::Continue;
        }
        if !self.vcpu_online[v.0] {
            self.bring_up_vcpu(cpu);
            return StepOutcome::Continue;
        }
        if let Some(vector) = cpu.poll_interrupt() {
            self.handle_irq(cpu, vector);
            return StepOutcome::Continue;
        }
        self.run_current(cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertap_hvsim::exit::{ExitAction, VmExit};
    use hypertap_hvsim::machine::{Hypervisor, Machine, RunExit, VmConfig, VmState};

    struct NoHv;
    impl Hypervisor for NoHv {
        fn handle_exit(&mut self, _vm: &mut VmState, _exit: &VmExit) -> ExitAction {
            ExitAction::Resume
        }
    }

    fn machine(vcpus: usize) -> Machine<NoHv> {
        Machine::new(VmConfig::new(vcpus, 256 << 20), NoHv)
    }

    fn run_for(m: &mut Machine<NoHv>, k: &mut Kernel, secs_ms: u64) -> RunExit {
        m.run_until(k, SimTime::from_millis(secs_ms))
    }

    #[test]
    fn boots_and_idles() {
        let mut m = machine(2);
        let mut k = Kernel::new(KernelConfig::new(2));
        run_for(&mut m, &mut k, 1_000);
        assert!(k.is_booted());
        // init + 2 daemons alive.
        assert_eq!(k.alive_pids().len(), 3);
        assert!(k.stats().ticks > 0, "timer ticks flowed");
        assert!(k.stats().context_switches > 0, "daemons caused switches");
    }

    #[test]
    fn syscalls_round_trip_values() {
        let mut m = machine(1);
        let mut k = Kernel::new(KernelConfig::new(1));
        let probe = k.register_program(
            "probe",
            Box::new(|| {
                Box::new(crate::program::FnProgram(|v: &UserView<'_>| match v.last_ret {
                    0 => UserOp::sys(Sysno::Getpid, &[]),
                    r if r == v.pid => UserOp::sys(Sysno::Geteuid, &[]),
                    _ => UserOp::Exit(0),
                }))
            }),
        );
        k.set_init_program(probe);
        run_for(&mut m, &mut k, 1_000);
        // init ran getpid -> geteuid(=0 for root... careful: euid 0 == initial last_ret 0)
        assert!(k.stats().syscalls >= 2);
    }

    #[test]
    fn spawn_wait_exit_lifecycle() {
        let mut m = machine(2);
        let mut k = Kernel::new(KernelConfig::new(2));
        let child = k.register_program(
            "worker",
            Box::new(|| {
                Box::new(crate::program::ScriptProgram::new(
                    vec![UserOp::Compute(3_000_000), UserOp::sys(Sysno::Write, &[0, 4096])],
                    0,
                ))
            }),
        );
        let child_raw = child.0;
        let init = k.register_program(
            "init",
            Box::new(move || {
                let child_raw = child_raw;
                let mut stage = 0;
                Box::new(crate::program::FnProgram(move |v: &UserView<'_>| {
                    stage += 1;
                    match stage {
                        1 => UserOp::sys(Sysno::Spawn, &[child_raw, 1000]),
                        2 => UserOp::sys(Sysno::Waitpid, &[]),
                        3 => UserOp::Emit("reaped".into(), format!("{}", v.last_ret)),
                        _ => UserOp::sys(Sysno::Nanosleep, &[60_000_000_000]),
                    }
                }))
            }),
        );
        k.set_init_program(init);
        run_for(&mut m, &mut k, 2_000);
        let mail = k.drain_mailbox(Pid(1));
        assert_eq!(mail.len(), 1, "init reaped its child");
        assert_eq!(mail[0].tag, "reaped");
        let reaped: u64 = mail[0].detail.parse().unwrap();
        assert!(k.task_by_pid(Pid(reaped)).is_none(), "child gone");
        assert!(k.stats().spawns >= 2);
        assert!(k.stats().exits >= 1);
    }

    #[test]
    fn vuln_escalate_grants_root_and_guest_memory_agrees() {
        let mut m = machine(1);
        let mut k = Kernel::new(KernelConfig::new(1));
        let init = k.register_program(
            "init",
            Box::new(|| {
                let mut stage = 0;
                Box::new(crate::program::FnProgram(move |_v: &UserView<'_>| {
                    stage += 1;
                    match stage {
                        1 => UserOp::sys(Sysno::Setuid, &[1000]),
                        2 => UserOp::sys(Sysno::VulnEscalate, &[]),
                        3 => UserOp::sys(Sysno::Geteuid, &[]),
                        _ => UserOp::sys(Sysno::Nanosleep, &[60_000_000_000]),
                    }
                }))
            }),
        );
        k.set_init_program(init);
        run_for(&mut m, &mut k, 1_000);
        let t = k.task_by_pid(Pid(1)).unwrap();
        assert_eq!(t.uid, 1000);
        assert_eq!(t.euid, 0, "escalated");
        // The guest task_struct agrees (this is what VMI/derivation read).
        let profile = layout::os_profile();
        let view =
            hypertap_core::vmi::list_tasks(&m.vm().mem, k.kernel_pd(), &profile, 100).unwrap();
        let init_view = view.iter().find(|t| t.pid == 1).unwrap();
        assert_eq!(init_view.euid, 0);
        assert_eq!(init_view.uid, 1000);
    }

    #[test]
    fn proc_list_walk_sees_tasks_and_respects_dkom() {
        let mut m = machine(1);
        let mut k = Kernel::new(KernelConfig::new(1));
        let sleeper = k.register_program(
            "sleeper",
            Box::new(|| {
                Box::new(crate::program::ScriptProgram::new(
                    vec![UserOp::sys(Sysno::Nanosleep, &[50_000_000_000])],
                    0,
                ))
            }),
        );
        let sleeper_raw = sleeper.0;
        let rk = k.register_module(ModuleSpec::new("testkit", "Linux", vec![HideMechanism::Dkom]));
        let init = k.register_program(
            "init",
            Box::new(move || {
                let mut stage = 0;
                let mut victim = 0u64;
                Box::new(crate::program::FnProgram(move |v: &UserView<'_>| {
                    stage += 1;
                    match stage {
                        1 => UserOp::sys(Sysno::Spawn, &[sleeper_raw, 1000]),
                        2 => {
                            victim = v.last_ret;
                            UserOp::sys(Sysno::ListProcs, &[])
                        }
                        3 => UserOp::Emit("before".into(), format!("{}", v.procs.len())),
                        4 => UserOp::sys(Sysno::InstallModule, &[rk, victim]),
                        5 => UserOp::sys(Sysno::ListProcs, &[]),
                        6 => UserOp::Emit("after".into(), format!("{}", v.procs.len())),
                        _ => UserOp::sys(Sysno::Nanosleep, &[60_000_000_000]),
                    }
                }))
            }),
        );
        k.set_init_program(init);
        run_for(&mut m, &mut k, 2_000);
        let mail = k.drain_mailbox(Pid(1));
        let before: usize =
            mail.iter().find(|e| e.tag == "before").unwrap().detail.parse().unwrap();
        let after: usize = mail.iter().find(|e| e.tag == "after").unwrap().detail.parse().unwrap();
        assert_eq!(before, after + 1, "DKOM hid exactly one process from ps");
        // But the process is still scheduled (alive in kernel mirror).
        assert_eq!(k.alive_pids().len(), 3, "init + daemon + hidden sleeper");
    }

    #[test]
    fn missing_unlock_fault_hangs_the_vcpu() {
        use crate::fault::SingleFault;
        let mut m = machine(1);
        let mut k = Kernel::new(KernelConfig::new(1));
        // Workload: two writers hammering the fs path.
        let writer = k.register_program(
            "writer",
            Box::new(|| {
                Box::new(crate::program::FnProgram(|_v: &UserView<'_>| {
                    UserOp::sys(Sysno::Write, &[0, 4096])
                }))
            }),
        );
        let writer_raw = writer.0;
        let init = k.register_program(
            "init",
            Box::new(move || {
                let mut stage = 0;
                Box::new(crate::program::FnProgram(move |_v: &UserView<'_>| {
                    stage += 1;
                    match stage {
                        1 | 2 => UserOp::sys(Sysno::Spawn, &[writer_raw, 1000]),
                        _ => UserOp::sys(Sysno::Nanosleep, &[60_000_000_000]),
                    }
                }))
            }),
        );
        k.set_init_program(init);
        // Find a vfs site that the write path will hit and leak it.
        let site = kpath::site_for("vfs", 1) as u32;
        // Persistent missing unlock on every vfs variant site would be
        // broader; one site suffices because variants rotate and revisit.
        k.set_fault_hook(Box::new(SingleFault::new(site, FaultType::MissingUnlock, true)));
        run_for(&mut m, &mut k, 20_000);
        if k.fault_hook().activations() == 0 {
            // The rotating variant never hit this site in 20s — acceptable
            // for this unit test (the campaign handles non-activation).
            return;
        }
        // After activation, eventually some task spins forever on the leaked
        // lock and (non-preemptible kernel) wedges the vCPU: the dispatch
        // clock stops advancing.
        let last = k.last_dispatch()[0];
        let end = m.vm().now();
        assert!(
            end.saturating_since(last) > Duration::from_secs(4),
            "vCPU should have stopped switching (last dispatch {last}, now {end})"
        );
    }
}
