//! Kernel spinlocks and the lock-site catalogue — the fault-injection
//! surface.
//!
//! The hang experiments in the paper (following Cotroneo et al., reference 34 of the paper) inject
//! faults into the locking discipline of the kernel: missing spinlock
//! releases, wrong lock orderings, missing unlock/lock pairs, and missing
//! interrupt-state restorations. To reproduce that, the simulated kernel's
//! syscall paths execute explicit **lock sites**: static program points that
//! acquire or release a specific lock, annotated with whether the site sits
//! inside a non-preemptible section and whether it saves/restores the
//! interrupt flag. The catalogue enumerates 374 sites (the paper's count)
//! spread across core kernel code and the frequently used subsystems it
//! names (ext3, char, block).

use crate::task::Pid;
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};

/// Index of a kernel lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

/// One static lock-acquisition/release point in kernel code.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Site index (0..374).
    pub id: u32,
    /// The lock this site operates on.
    pub lock: LockId,
    /// Subsystem the site belongs to.
    pub subsystem: &'static str,
    /// Whether the surrounding section is non-preemptible even on a
    /// preemptible kernel build (nested locking, irq context, etc.). The
    /// paper notes that "most critical sections in the kernel are
    /// non-preemptible".
    pub nonpreempt: bool,
    /// Whether the acquisition saves and disables the interrupt flag
    /// (`spin_lock_irqsave`).
    pub irqsave: bool,
}

/// Runtime state of one kernel spinlock.
#[derive(Debug, Clone, Default)]
pub struct SpinLock {
    /// Current owner, if held.
    pub owner: Option<Pid>,
    /// Total successful acquisitions (statistics).
    pub acquisitions: u64,
    /// Total contended acquisition attempts (statistics).
    pub contentions: u64,
    /// Set when a foreign release corrupted the lock word; the next
    /// legitimate release is lost (the classic double-release corruption).
    pub corrupted: bool,
}

/// The kernel's lock table plus the static site catalogue.
#[derive(Debug)]
pub struct LockTable {
    locks: Vec<SpinLock>,
    sites: Vec<LockSite>,
}

/// Number of fault-injectable lock sites, matching the paper's campaign.
pub const SITE_COUNT: usize = 374;

/// Subsystems the sites are distributed over (paper: "core functions of the
/// Linux kernel and ... frequently used kernel modules, such as ext3, char,
/// and block").
pub const SUBSYSTEMS: [&str; 8] = ["sched", "vfs", "ext3", "block", "char", "mm", "pipe", "net"];

impl LockTable {
    /// Builds the full catalogue: 374 sites over [`SUBSYSTEMS`], with a pool
    /// of locks per subsystem. Deterministic — the same catalogue is built
    /// every run.
    pub fn new() -> Self {
        let mut sites = Vec::with_capacity(SITE_COUNT);
        let mut locks = Vec::new();
        // Each subsystem gets a handful of locks; sites rotate over them.
        let locks_per_subsystem = 6usize;
        for _ in 0..SUBSYSTEMS.len() * locks_per_subsystem {
            locks.push(SpinLock::default());
        }
        for id in 0..SITE_COUNT as u32 {
            let sub_idx = (id as usize) % SUBSYSTEMS.len();
            let lock_in_sub = (id as usize / SUBSYSTEMS.len()) % locks_per_subsystem;
            let lock = LockId((sub_idx * locks_per_subsystem + lock_in_sub) as u32);
            sites.push(LockSite {
                id,
                lock,
                subsystem: SUBSYSTEMS[sub_idx],
                // ~85% of sites are in non-preemptible sections.
                nonpreempt: id % 7 != 0,
                // ~1 in 6 sites is an irqsave site.
                irqsave: id % 6 == 5,
            });
        }
        LockTable { locks, sites }
    }

    /// The site catalogue.
    pub fn sites(&self) -> &[LockSite] {
        &self.sites
    }

    /// A site by index.
    pub fn site(&self, idx: usize) -> &LockSite {
        &self.sites[idx]
    }

    /// Number of distinct locks.
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }

    /// Whether a lock is currently held.
    pub fn is_held(&self, lock: LockId) -> bool {
        self.locks[lock.0 as usize].owner.is_some()
    }

    /// The current owner of a lock.
    pub fn owner(&self, lock: LockId) -> Option<Pid> {
        self.locks[lock.0 as usize].owner
    }

    /// Attempts to acquire; returns true on success, false if contended.
    pub fn try_acquire(&mut self, lock: LockId, who: Pid) -> bool {
        let l = &mut self.locks[lock.0 as usize];
        match l.owner {
            None => {
                l.owner = Some(who);
                l.acquisitions += 1;
                true
            }
            Some(owner) if owner == who => {
                // Recursive acquisition of a non-recursive spinlock:
                // self-deadlock. Model as contention (the caller spins
                // forever) — this is precisely one way real kernels hang.
                l.contentions += 1;
                false
            }
            Some(_) => {
                l.contentions += 1;
                false
            }
        }
    }

    /// Releases a lock.
    ///
    /// Releasing a lock not held by `who` (the consequence of a missing
    /// unlock/lock-pair fault) *corrupts* the lock word: the lock is forced
    /// open (letting a second task into the critical section), and the next
    /// legitimate release is lost — after which the lock is stuck held
    /// forever, the way real double-release corruption wedges a kernel.
    /// Returns whether `who` actually owned the lock.
    pub fn release(&mut self, lock: LockId, who: Pid) -> bool {
        let l = &mut self.locks[lock.0 as usize];
        match l.owner {
            Some(o) if o == who => {
                if l.corrupted {
                    // Lost update: the release never lands.
                    l.corrupted = false;
                } else {
                    l.owner = None;
                }
                true
            }
            _ => {
                l.owner = None;
                l.corrupted = true;
                false
            }
        }
    }

    /// Serializes the runtime lock state (the static site catalogue is
    /// recipe state and rebuilds identically).
    pub(crate) fn save(&self, w: &mut SnapWriter) {
        w.varint(self.locks.len() as u64);
        for l in &self.locks {
            w.opt_varint(l.owner.map(|p| p.0));
            w.varint(l.acquisitions);
            w.varint(l.contentions);
            w.boolean(l.corrupted);
        }
    }

    /// Restores lock state saved by [`LockTable::save`] into a freshly
    /// built table (same catalogue).
    pub(crate) fn load(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let n = r.varint()? as usize;
        if n != self.locks.len() {
            return Err(SnapError::BadValue { offset: r.offset(), what: "lock table size" });
        }
        for l in self.locks.iter_mut() {
            l.owner = r.opt_varint()?.map(Pid);
            l.acquisitions = r.varint()?;
            l.contentions = r.varint()?;
            l.corrupted = r.boolean()?;
        }
        Ok(())
    }

    /// Force-releases every lock owned by a dying task **except** those
    /// leaked by an injected fault (the caller supplies the leak set).
    pub fn release_all_owned(&mut self, who: Pid, leaked: &[LockId]) {
        for (i, l) in self.locks.iter_mut().enumerate() {
            if l.owner == Some(who) && !leaked.contains(&LockId(i as u32)) {
                l.owner = None;
            }
        }
    }
}

impl Default for LockTable {
    fn default() -> Self {
        LockTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_374_sites() {
        let t = LockTable::new();
        assert_eq!(t.sites().len(), SITE_COUNT);
        // Every subsystem is represented.
        for sub in SUBSYSTEMS {
            assert!(t.sites().iter().any(|s| s.subsystem == sub));
        }
        // Sites reference valid locks.
        assert!(t.sites().iter().all(|s| (s.lock.0 as usize) < t.lock_count()));
    }

    #[test]
    fn majority_of_sites_nonpreemptible() {
        let t = LockTable::new();
        let np = t.sites().iter().filter(|s| s.nonpreempt).count();
        let frac = np as f64 / SITE_COUNT as f64;
        assert!(frac > 0.8 && frac < 0.9, "non-preemptible fraction {frac}");
    }

    #[test]
    fn acquire_release_cycle() {
        let mut t = LockTable::new();
        let l = LockId(0);
        assert!(t.try_acquire(l, Pid(1)));
        assert!(t.is_held(l));
        assert_eq!(t.owner(l), Some(Pid(1)));
        assert!(!t.try_acquire(l, Pid(2)), "contended");
        assert!(t.release(l, Pid(1)));
        assert!(t.try_acquire(l, Pid(2)));
    }

    #[test]
    fn recursive_acquisition_self_deadlocks() {
        let mut t = LockTable::new();
        let l = LockId(3);
        assert!(t.try_acquire(l, Pid(1)));
        assert!(!t.try_acquire(l, Pid(1)), "self-deadlock, not re-entry");
    }

    #[test]
    fn foreign_release_corrupts_and_next_release_is_lost() {
        let mut t = LockTable::new();
        let l = LockId(5);
        assert!(t.try_acquire(l, Pid(1)));
        assert!(!t.release(l, Pid(2)), "released by non-owner");
        assert!(!t.is_held(l), "the lock is corrupted open");
        // The next owner's release is lost: the lock wedges shut.
        assert!(t.try_acquire(l, Pid(3)));
        assert!(t.release(l, Pid(3)), "the owner believes it released");
        assert!(t.is_held(l), "but the corrupted lock stays held forever");
        assert_eq!(t.owner(l), Some(Pid(3)));
    }

    #[test]
    fn release_all_respects_leaks() {
        let mut t = LockTable::new();
        assert!(t.try_acquire(LockId(0), Pid(1)));
        assert!(t.try_acquire(LockId(1), Pid(1)));
        t.release_all_owned(Pid(1), &[LockId(1)]);
        assert!(!t.is_held(LockId(0)));
        assert!(t.is_held(LockId(1)), "the leaked lock stays held forever");
    }
}
