//! User programs: scripted state machines driving the guest's processes.
//!
//! A user program cannot touch the machine directly — it yields a stream of
//! [`UserOp`]s that the kernel executes on its behalf, with system calls
//! passing through the real architectural gates (and therefore through
//! HyperTap's interception). This mirrors how actual processes only
//! interact with the world via the syscall ABI.

use crate::syscalls::Sysno;
use crate::task::ProcEntry;
use hypertap_hvsim::clock::SimTime;

/// One operation yielded by a user program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserOp {
    /// Burn user-mode compute time (nanoseconds).
    Compute(u64),
    /// Invoke a system call with up to five arguments.
    Syscall(Sysno, [u64; 5]),
    /// Emit an observable message to the harness mailbox (free: models
    /// output the experiment inspects, like a detector writing its log).
    Emit(String, String),
    /// Terminate with the given exit code.
    Exit(u64),
}

impl UserOp {
    /// Shorthand for a syscall with fewer than five arguments.
    pub fn sys(n: Sysno, args: &[u64]) -> UserOp {
        let mut a = [0u64; 5];
        a[..args.len()].copy_from_slice(args);
        UserOp::Syscall(n, a)
    }
}

/// The process's view of itself when deciding its next operation: the
/// return value of the last syscall plus the user-space buffers the kernel
/// filled (the process listing).
#[derive(Debug)]
pub struct UserView<'a> {
    /// Return value of the previous syscall (0 initially).
    pub last_ret: u64,
    /// Current simulated time (what `gettimeofday` would say).
    pub now: SimTime,
    /// This process's pid.
    pub pid: u64,
    /// This process's real uid.
    pub uid: u64,
    /// This process's effective uid.
    pub euid: u64,
    /// The buffer filled by the most recent `ListProcs` syscall.
    pub procs: &'a [ProcEntry],
}

/// A user program: a resumable state machine.
///
/// `next_op` is called each time the process is scheduled and ready for a
/// new operation.
pub trait UserProgram {
    /// Produces the next operation.
    fn next_op(&mut self, view: &UserView<'_>) -> UserOp;

    /// Serializes this program's mutable state for a machine snapshot, or
    /// `None` if the program cannot be snapshotted (the default — e.g.
    /// closure-backed programs with captured state).
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state produced by [`UserProgram::save_state`] into a freshly
    /// constructed instance of the same program.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if the bytes are not a valid
    /// saved state for this program.
    fn load_state(&mut self, _bytes: &[u8]) -> Result<(), String> {
        Err("program does not support snapshot restore".to_string())
    }
}

/// A program that replays a fixed script, then exits.
#[derive(Debug, Clone)]
pub struct ScriptProgram {
    script: Vec<UserOp>,
    pc: usize,
    exit_code: u64,
}

impl ScriptProgram {
    /// Creates a program from a list of operations; an implicit
    /// `Exit(exit_code)` follows the last one.
    pub fn new(script: Vec<UserOp>, exit_code: u64) -> Self {
        ScriptProgram { script, pc: 0, exit_code }
    }
}

impl UserProgram for ScriptProgram {
    fn next_op(&mut self, _view: &UserView<'_>) -> UserOp {
        match self.script.get(self.pc) {
            Some(op) => {
                self.pc += 1;
                op.clone()
            }
            None => UserOp::Exit(self.exit_code),
        }
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        // The script itself is recipe state; only the resume point moves.
        let mut w = hypertap_hvsim::snap::SnapWriter::new();
        w.varint(self.pc as u64);
        Some(w.into_bytes())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = hypertap_hvsim::snap::SnapReader::new(bytes);
        let pc = r.varint().map_err(|e| e.to_string())? as usize;
        r.finish().map_err(|e| e.to_string())?;
        if pc > self.script.len() {
            return Err(format!("script pc {pc} out of range (len {})", self.script.len()));
        }
        self.pc = pc;
        Ok(())
    }
}

/// A program defined by a closure (handy for tests and small workloads).
pub struct FnProgram<F>(pub F);

impl<F: FnMut(&UserView<'_>) -> UserOp> UserProgram for FnProgram<F> {
    fn next_op(&mut self, view: &UserView<'_>) -> UserOp {
        (self.0)(view)
    }
}

/// A factory producing fresh program instances for `spawn`.
pub type ProgramFactory = Box<dyn FnMut() -> Box<dyn UserProgram>>;

/// Identifier of a registered program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProgId(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    fn view(ret: u64) -> UserView<'static> {
        UserView { last_ret: ret, now: SimTime::ZERO, pid: 1, uid: 0, euid: 0, procs: &[] }
    }

    #[test]
    fn script_replays_then_exits() {
        let mut p =
            ScriptProgram::new(vec![UserOp::Compute(10), UserOp::sys(Sysno::Getpid, &[])], 7);
        assert_eq!(p.next_op(&view(0)), UserOp::Compute(10));
        assert_eq!(p.next_op(&view(0)), UserOp::Syscall(Sysno::Getpid, [0; 5]));
        assert_eq!(p.next_op(&view(0)), UserOp::Exit(7));
        assert_eq!(p.next_op(&view(0)), UserOp::Exit(7));
    }

    #[test]
    fn sys_shorthand_pads_args() {
        assert_eq!(
            UserOp::sys(Sysno::Write, &[1, 2]),
            UserOp::Syscall(Sysno::Write, [1, 2, 0, 0, 0])
        );
    }

    #[test]
    fn fn_program_sees_ret() {
        let mut p = FnProgram(|v: &UserView<'_>| {
            if v.last_ret == 0 {
                UserOp::sys(Sysno::Getpid, &[])
            } else {
                UserOp::Exit(v.last_ret)
            }
        });
        assert!(matches!(p.next_op(&view(0)), UserOp::Syscall(..)));
        assert_eq!(p.next_op(&view(5)), UserOp::Exit(5));
    }
}
