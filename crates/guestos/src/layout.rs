//! The guest kernel's memory layout — the contract between the simulated
//! kernel and everything that introspects it.
//!
//! All kernel data structures live in **guest memory** at the offsets
//! defined here, so hypervisor-side code (VMI, HyperTap's derivation) and
//! in-guest attackers (rootkits) operate on the same bytes. The layout is
//! deliberately Linux-shaped: a `task_struct` linked list anchored at a
//! known head, per-task kernel stacks with a `thread_info` at the stack
//! base, one TSS per vCPU.

use hypertap_core::profile::OsProfile;
use hypertap_hvsim::mem::{Gva, PAGE_SIZE};

/// Start of the kernel's virtual region (shared by every address space).
pub const KERNEL_BASE: Gva = Gva::new(0x3000_0000);
/// Size of the kernel virtual region: 64 MiB.
pub const KERNEL_SIZE: u64 = 64 << 20;
/// End (exclusive) of the kernel virtual region.
pub const KERNEL_END: Gva = Gva::new(0x3000_0000 + (64 << 20));

/// Kernel text page: contains the syscall entry points and serves as the
/// "known GVA" probed by the process-counting validity test (it is mapped in
/// every live address space).
pub const KERNEL_TEXT: Gva = KERNEL_BASE;
/// The `SYSENTER` entry point (inside the kernel text page).
pub const SYSENTER_ENTRY: Gva = Gva::new(0x3000_0100);

/// Slot holding the GVA of the first `task_struct` (the task-list head).
pub const TASK_LIST_HEAD: Gva = Gva::new(0x3001_0000);

/// Base of the per-vCPU TSS array; each TSS gets its own page so EPT
/// write-protection is per-vCPU.
pub const TSS_BASE: Gva = Gva::new(0x3002_0000);

/// The TSS virtual address for a vCPU.
pub fn tss_gva(vcpu: usize) -> Gva {
    TSS_BASE.offset(vcpu as u64 * PAGE_SIZE)
}

/// Start of the kernel heap (task structs, kernel stacks, buffers).
pub const KERNEL_HEAP: Gva = Gva::new(0x3100_0000);

/// Kernel stack size (two pages); stacks are aligned to this, with the
/// `thread_info` at the base — the derivation chain depends on it.
pub const KERNEL_STACK_SIZE: u64 = 8 * 1024;

/// Base of user text in every process image.
pub const USER_TEXT: Gva = Gva::new(0x0040_0000);
/// Base of the user stack region.
pub const USER_STACK_TOP: Gva = Gva::new(0x0100_0000);

/// `task_struct` field offsets (bytes).
pub mod task_struct {
    /// Process id.
    pub const PID: u64 = 0x00;
    /// Scheduler state (0 running, 1 sleeping, 2 zombie).
    pub const STATE: u64 = 0x08;
    /// Real user id.
    pub const UID: u64 = 0x10;
    /// Effective user id.
    pub const EUID: u64 = 0x18;
    /// GVA of the parent's `task_struct` (0 for init).
    pub const PARENT: u64 = 0x20;
    /// GVA of the next `task_struct` in the list (0 = tail).
    pub const NEXT: u64 = 0x28;
    /// GVA of the previous `task_struct` (0 = first).
    pub const PREV: u64 = 0x30;
    /// The process's page-directory base address (loaded into CR3).
    pub const PDBA: u64 = 0x38;
    /// The task's kernel-stack top (loaded into `TSS.RSP0` when running).
    pub const KSTACK: u64 = 0x40;
    /// Command-name buffer.
    pub const COMM: u64 = 0x48;
    /// Length of the command-name buffer.
    pub const COMM_LEN: u64 = 16;
    /// Total structure size (rounded for alignment).
    pub const SIZE: u64 = 0x60;
}

/// `thread_info` field offsets (bytes). Lives at the base of each kernel
/// stack.
pub mod thread_info {
    /// GVA of the owning `task_struct`.
    pub const TASK: u64 = 0x00;
    /// Structure size.
    pub const SIZE: u64 = 0x10;
}

/// The [`OsProfile`] describing this kernel build, handed to HyperTap's
/// derivation and VMI layers.
pub fn os_profile() -> OsProfile {
    OsProfile {
        task_list_head: TASK_LIST_HEAD,
        ts_pid: task_struct::PID,
        ts_state: task_struct::STATE,
        ts_uid: task_struct::UID,
        ts_euid: task_struct::EUID,
        ts_parent: task_struct::PARENT,
        ts_next: task_struct::NEXT,
        ts_prev: task_struct::PREV,
        ts_pdba: task_struct::PDBA,
        ts_kstack: task_struct::KSTACK,
        ts_comm: task_struct::COMM,
        ts_comm_len: task_struct::COMM_LEN,
        ts_size: task_struct::SIZE,
        ti_task: thread_info::TASK,
        kernel_stack_size: KERNEL_STACK_SIZE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_matches_layout() {
        let p = os_profile();
        assert_eq!(p.ts_pid, 0);
        assert_eq!(p.ts_next, task_struct::NEXT);
        assert_eq!(p.kernel_stack_size, KERNEL_STACK_SIZE);
        assert_eq!(p.task_list_head, TASK_LIST_HEAD);
    }

    #[test]
    fn layout_does_not_overlap() {
        assert!(KERNEL_TEXT < TASK_LIST_HEAD);
        assert!(TASK_LIST_HEAD < TSS_BASE);
        assert!(tss_gva(8) < KERNEL_HEAP);
        assert!(KERNEL_HEAP < KERNEL_END);
        assert!(USER_STACK_TOP < KERNEL_BASE);
    }

    #[test]
    fn stack_size_is_power_of_two() {
        assert!(KERNEL_STACK_SIZE.is_power_of_two());
    }

    #[test]
    fn tss_pages_are_distinct() {
        assert_eq!(tss_gva(0).page_base(), tss_gva(0));
        assert_ne!(tss_gva(0).page_base(), tss_gva(1).page_base());
    }
}
