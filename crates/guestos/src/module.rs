//! Loadable kernel modules — the vehicle rootkits use to get into the
//! kernel.
//!
//! A module is described declaratively: which process it hides and through
//! which mechanisms. The kernel's `install_module` syscall (root only)
//! applies the mechanisms, mutating the same state a real rootkit would:
//! the **in-guest** task list bytes (DKOM / kmem patching) or the syscall
//! dispatch path used by process enumeration (hijacking). Nothing here can
//! touch CR3 loads or TSS rewrites — which is precisely why HRKD's
//! architectural counting survives every mechanism.

use std::fmt;

/// A hiding technique, as catalogued in the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HideMechanism {
    /// Direct Kernel Object Manipulation: unlink the `task_struct` from the
    /// in-memory task list.
    Dkom,
    /// Hijack the system calls used for process enumeration, filtering the
    /// hidden pid out of results.
    SyscallHijack,
    /// Patch kernel memory through a `/dev/kmem`-style channel — in effect
    /// another route to the same list unlinking as DKOM.
    KmemPatch,
    /// Relocate the vCPU's TSS to an attacker-controlled decoy, pointing
    /// monitoring at forged thread state (defeated by the Fig. 3C
    /// integrity check).
    TssRelocate,
}

impl fmt::Display for HideMechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HideMechanism::Dkom => "DKOM",
            HideMechanism::SyscallHijack => "Hijack system calls",
            HideMechanism::KmemPatch => "kmem",
            HideMechanism::TssRelocate => "TSS relocation",
        })
    }
}

/// A loadable module specification (for this reproduction, always a
/// process-hiding rootkit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleSpec {
    /// Module/rootkit name.
    pub name: String,
    /// The OS family the original targets (reporting only).
    pub target_os: String,
    /// Hiding techniques applied on load.
    pub mechanisms: Vec<HideMechanism>,
}

impl ModuleSpec {
    /// Creates a spec.
    pub fn new(
        name: impl Into<String>,
        target_os: impl Into<String>,
        mechanisms: Vec<HideMechanism>,
    ) -> Self {
        ModuleSpec { name: name.into(), target_os: target_os.into(), mechanisms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_table2_vocabulary() {
        assert_eq!(HideMechanism::Dkom.to_string(), "DKOM");
        assert_eq!(HideMechanism::SyscallHijack.to_string(), "Hijack system calls");
        assert_eq!(HideMechanism::KmemPatch.to_string(), "kmem");
    }

    #[test]
    fn spec_builder() {
        let s = ModuleSpec::new("FU", "Win XP, Vista", vec![HideMechanism::Dkom]);
        assert_eq!(s.name, "FU");
        assert_eq!(s.mechanisms, vec![HideMechanism::Dkom]);
    }
}
