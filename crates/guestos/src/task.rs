//! Host-side task bookkeeping.
//!
//! The kernel keeps a host-side mirror of each task for scheduling (Rust
//! state machines can't live in guest memory), but every field that
//! monitoring or attacks read — pid, uid/euid, state, parent, list links,
//! PDBA, kernel-stack top, command name — is also serialized into the
//! guest-memory `task_struct`, and the guest copy is the one VMI, HyperTap
//! derivation, in-guest `ps` and rootkits operate on.

use crate::program::{ProgId, UserProgram};
use hypertap_hvsim::clock::SimTime;
use hypertap_hvsim::mem::{Gfn, Gpa, Gva};
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};
use hypertap_hvsim::vcpu::VcpuId;
use std::fmt;

/// A process/thread identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

/// Scheduler state of a task (host-side, richer than the guest encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// On a runqueue or running.
    Ready,
    /// Sleeping until the given time.
    Sleeping(SimTime),
    /// Waiting for any child to exit.
    WaitingChild,
    /// Blocked on a user-level (sleeping) lock.
    WaitingUserLock(u32),
    /// Waiting for an I/O completion interrupt.
    WaitingIo,
    /// Spin-waiting on a kernel spinlock at the given lock-site index.
    Spinning(usize),
    /// Exited, not yet reaped.
    Zombie,
    /// Fully dead; slot kept for pid bookkeeping.
    Dead,
}

impl RunState {
    /// The guest `task_struct.state` encoding (0 running, 1 sleeping,
    /// 2 zombie). Spinning counts as running — it burns CPU.
    pub fn guest_encoding(&self) -> u64 {
        match self {
            RunState::Ready | RunState::Spinning(_) => 0,
            RunState::Sleeping(_)
            | RunState::WaitingChild
            | RunState::WaitingUserLock(_)
            | RunState::WaitingIo => 1,
            RunState::Zombie | RunState::Dead => 2,
        }
    }

    pub(crate) fn save(&self, w: &mut SnapWriter) {
        match self {
            RunState::Ready => w.byte(0),
            RunState::Sleeping(t) => {
                w.byte(1);
                w.varint(t.as_nanos());
            }
            RunState::WaitingChild => w.byte(2),
            RunState::WaitingUserLock(id) => {
                w.byte(3);
                w.varint(*id as u64);
            }
            RunState::WaitingIo => w.byte(4),
            RunState::Spinning(site) => {
                w.byte(5);
                w.varint(*site as u64);
            }
            RunState::Zombie => w.byte(6),
            RunState::Dead => w.byte(7),
        }
    }

    pub(crate) fn load(r: &mut SnapReader<'_>) -> Result<RunState, SnapError> {
        let start = r.offset();
        Ok(match r.byte()? {
            0 => RunState::Ready,
            1 => RunState::Sleeping(SimTime::from_nanos(r.varint()?)),
            2 => RunState::WaitingChild,
            3 => RunState::WaitingUserLock(r.varint()? as u32),
            4 => RunState::WaitingIo,
            5 => RunState::Spinning(r.varint()? as usize),
            6 => RunState::Zombie,
            7 => RunState::Dead,
            tag => return Err(SnapError::BadTag { offset: start, tag }),
        })
    }
}

/// What a task is currently doing, from the scheduler's perspective.
#[derive(Debug)]
pub enum ExecContext {
    /// Executing user code (the boxed program's state machine).
    User,
    /// Executing a kernel path (syscall body or kernel-thread body).
    Kernel(crate::kpath::KernelExec),
}

/// One task: a user process or a kernel thread.
pub struct Task {
    /// Process id.
    pub pid: Pid,
    /// GVA of this task's `task_struct` in guest memory.
    pub ts_gva: Gva,
    /// Command name (≤ 15 bytes significant).
    pub comm: String,
    /// Real uid.
    pub uid: u64,
    /// Effective uid.
    pub euid: u64,
    /// Parent pid (0 = none).
    pub ppid: Option<Pid>,
    /// Scheduler state.
    pub state: RunState,
    /// Page-directory base; `None` for kernel threads (they borrow the
    /// previous address space, exactly as the paper's footnote 3 describes).
    pub pdba: Option<Gpa>,
    /// Kernel stack top (the value written to `TSS.RSP0`); unique per task.
    pub kstack_top: Gva,
    /// User program driving this task (None for kernel threads).
    pub program: Option<Box<dyn UserProgram>>,
    /// Registered program this task was spawned from (`None` for kernel
    /// threads); lets a snapshot restore rebuild `program` via the registry.
    pub prog_id: Option<ProgId>,
    /// Kernel-thread body (periodic daemon work), if a kthread.
    pub kthread_period: Option<hypertap_hvsim::clock::Duration>,
    /// Execution context.
    pub exec: ExecContext,
    /// Remaining user compute units being drained in chunks.
    pub pending_compute: u64,
    /// Last syscall return value (fed back to the user program).
    pub last_ret: u64,
    /// Nesting depth of held spinlocks (preemption disabled while > 0).
    pub preempt_count: u32,
    /// Saved interrupt flag for irqsave sections.
    pub saved_if: Option<bool>,
    /// Preferred vCPU (set for kernel daemons; user tasks float).
    pub affinity: Option<VcpuId>,
    /// Remaining scheduler-slice ticks.
    pub slice_left: u32,
    /// User-visible instruction pointer (for the `/proc` side channel).
    pub user_rip: Gva,
    /// Messages emitted by the user program (drained by harnesses).
    pub mailbox: Vec<UserEvent>,
    /// Frames owned by this task's user image (freed on exit).
    pub user_frames: Vec<Gfn>,
    /// File descriptor table: fd -> (file id, offset).
    pub fds: Vec<Option<(u32, u64)>>,
    /// Set when a getdents/proc-list syscall completes (host-side shortcut
    /// for the user buffer; contents always derive from the in-guest walk).
    pub proc_snapshot: Vec<ProcEntry>,
    /// Time this task was created.
    pub spawned_at: SimTime,
    /// Set when another task killed this one; honoured at the next safe
    /// point (kernel-exit boundary).
    pub kill_pending: bool,
    /// Count of user ops executed (drives the synthetic user RIP).
    pub op_counter: u64,
    /// User-mode stack pointer restored on syscall return.
    pub user_stack: Gva,
    /// Pids of exited children not yet collected by `waitpid`.
    pub pending_child_exits: Vec<u64>,
    /// Number of live children.
    pub children_alive: u32,
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task")
            .field("pid", &self.pid)
            .field("comm", &self.comm)
            .field("state", &self.state)
            .field("uid", &self.uid)
            .field("euid", &self.euid)
            .finish_non_exhaustive()
    }
}

/// One row of an in-guest process listing (`ps` output), produced by the
/// kernel's walk of its in-memory task list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcEntry {
    /// Process id.
    pub pid: u64,
    /// Real uid.
    pub uid: u64,
    /// Effective uid.
    pub euid: u64,
    /// Parent pid.
    pub ppid: u64,
    /// Parent's real uid (resolved during the walk).
    pub parent_uid: u64,
    /// Command name.
    pub comm: String,
}

/// A message emitted by a user program for the harness to read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserEvent {
    /// Simulated time of emission.
    pub time: SimTime,
    /// Free-form tag.
    pub tag: String,
    /// Free-form payload.
    pub detail: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guest_encoding_of_states() {
        assert_eq!(RunState::Ready.guest_encoding(), 0);
        assert_eq!(RunState::Spinning(3).guest_encoding(), 0);
        assert_eq!(RunState::Sleeping(SimTime::ZERO).guest_encoding(), 1);
        assert_eq!(RunState::WaitingChild.guest_encoding(), 1);
        assert_eq!(RunState::WaitingIo.guest_encoding(), 1);
        assert_eq!(RunState::Zombie.guest_encoding(), 2);
        assert_eq!(RunState::Dead.guest_encoding(), 2);
    }

    #[test]
    fn pid_display() {
        assert_eq!(Pid(7).to_string(), "pid 7");
    }
}
