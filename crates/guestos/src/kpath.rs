//! Kernel execution paths: the scripted bodies of system calls.
//!
//! Each syscall executes a **path** — a sequence of [`PathStep`]s mixing
//! compute, device I/O, and lock-site acquisitions/releases from the
//! catalogue in [`crate::klocks`]. Paths are what the fault injector
//! corrupts and what generates the kernel's VM-exit footprint, so their
//! composition (which subsystems, how much I/O) determines both the hang
//! dynamics of Fig. 4/5 and the overhead mix of Fig. 7.

use crate::klocks::{LockId, LockSite, LockTable, SITE_COUNT, SUBSYSTEMS};
use crate::syscalls::Sysno;
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};

/// One step of a kernel path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathStep {
    /// Acquire the lock of catalogue site `idx` (spin if contended).
    Lock(usize),
    /// Release the lock of catalogue site `idx`.
    Unlock(usize),
    /// Burn kernel compute time (nanoseconds).
    Work(u64),
    /// Perform disk I/O of the given byte count (port I/O to the disk
    /// device, one port access per 512-byte sector).
    DiskIo {
        /// Bytes transferred.
        bytes: u64,
        /// Write (true) or read.
        write: bool,
    },
    /// Perform NIC I/O of the given byte count.
    NicIo {
        /// Bytes transferred.
        bytes: u64,
        /// Send (true) or receive.
        write: bool,
    },
}

/// The in-flight kernel execution of one task.
#[derive(Debug)]
pub struct KernelExec {
    /// The syscall being serviced (None for kernel-thread bodies).
    pub syscall: Option<(Sysno, [u64; 5])>,
    /// The path.
    pub steps: Vec<PathStep>,
    /// Program counter into `steps`.
    pub pc: usize,
    /// Site indices whose locks this execution believes it holds.
    pub held: Vec<usize>,
    /// Extra raw locks injected by a wrong-ordering fault (acquired before
    /// the site lock, released at path end).
    pub extra_locks: Vec<crate::klocks::LockId>,
    /// Return value accumulated for the syscall.
    pub ret: u64,
    /// Progress within a multi-sector I/O step.
    pub io_progress: u64,
    /// Partner lock a wrong-ordering fault told us to grab first.
    pub spin_partner: Option<crate::klocks::LockId>,
    /// Whether the syscall's semantics have been applied (guards against
    /// re-applying when a blocked syscall resumes).
    pub applied: bool,
}

impl PathStep {
    pub(crate) fn save(&self, w: &mut SnapWriter) {
        match self {
            PathStep::Lock(i) => {
                w.byte(0);
                w.varint(*i as u64);
            }
            PathStep::Unlock(i) => {
                w.byte(1);
                w.varint(*i as u64);
            }
            PathStep::Work(ns) => {
                w.byte(2);
                w.varint(*ns);
            }
            PathStep::DiskIo { bytes, write } => {
                w.byte(3);
                w.varint(*bytes);
                w.boolean(*write);
            }
            PathStep::NicIo { bytes, write } => {
                w.byte(4);
                w.varint(*bytes);
                w.boolean(*write);
            }
        }
    }

    pub(crate) fn load(r: &mut SnapReader<'_>) -> Result<PathStep, SnapError> {
        let start = r.offset();
        Ok(match r.byte()? {
            0 => PathStep::Lock(r.varint()? as usize),
            1 => PathStep::Unlock(r.varint()? as usize),
            2 => PathStep::Work(r.varint()?),
            3 => PathStep::DiskIo { bytes: r.varint()?, write: r.boolean()? },
            4 => PathStep::NicIo { bytes: r.varint()?, write: r.boolean()? },
            tag => return Err(SnapError::BadTag { offset: start, tag }),
        })
    }
}

impl KernelExec {
    /// A fresh execution of the given path.
    pub fn new(syscall: Option<(Sysno, [u64; 5])>, steps: Vec<PathStep>) -> Self {
        KernelExec {
            syscall,
            steps,
            pc: 0,
            held: Vec::new(),
            extra_locks: Vec::new(),
            ret: 0,
            io_progress: 0,
            spin_partner: None,
            applied: false,
        }
    }

    /// Whether every step has run.
    pub fn finished(&self) -> bool {
        self.pc >= self.steps.len()
    }

    /// Serializes the in-flight execution (including the materialized path,
    /// which may have been mutated by fault injection).
    pub(crate) fn save(&self, w: &mut SnapWriter) {
        match &self.syscall {
            Some((sysno, args)) => {
                w.boolean(true);
                w.varint(sysno.raw());
                for a in args {
                    w.varint(*a);
                }
            }
            None => w.boolean(false),
        }
        w.varint(self.steps.len() as u64);
        for s in &self.steps {
            s.save(w);
        }
        w.varint(self.pc as u64);
        w.varint(self.held.len() as u64);
        for h in &self.held {
            w.varint(*h as u64);
        }
        w.varint(self.extra_locks.len() as u64);
        for l in &self.extra_locks {
            w.varint(l.0 as u64);
        }
        w.varint(self.ret);
        w.varint(self.io_progress);
        w.opt_varint(self.spin_partner.map(|l| l.0 as u64));
        w.boolean(self.applied);
    }

    /// Restores an execution saved by [`KernelExec::save`].
    pub(crate) fn load(r: &mut SnapReader<'_>) -> Result<KernelExec, SnapError> {
        let syscall = if r.boolean()? {
            let start = r.offset();
            let sysno = Sysno::from_raw(r.varint()?)
                .ok_or(SnapError::BadValue { offset: start, what: "syscall number" })?;
            let mut args = [0u64; 5];
            for a in &mut args {
                *a = r.varint()?;
            }
            Some((sysno, args))
        } else {
            None
        };
        let n = r.count(1 << 20, "kernel path length")?;
        let mut steps = Vec::with_capacity(n);
        for _ in 0..n {
            steps.push(PathStep::load(r)?);
        }
        let pc = r.varint()? as usize;
        let n = r.count(1 << 16, "held locks")?;
        let mut held = Vec::with_capacity(n);
        for _ in 0..n {
            held.push(r.varint()? as usize);
        }
        let n = r.count(1 << 16, "extra locks")?;
        let mut extra_locks = Vec::with_capacity(n);
        for _ in 0..n {
            extra_locks.push(LockId(r.varint()? as u32));
        }
        let ret = r.varint()?;
        let io_progress = r.varint()?;
        let spin_partner = r.opt_varint()?.map(|v| LockId(v as u32));
        let applied = r.boolean()?;
        Ok(KernelExec {
            syscall,
            steps,
            pc,
            held,
            extra_locks,
            ret,
            io_progress,
            spin_partner,
            applied,
        })
    }
}

/// Picks the `variant`-th catalogue site belonging to `subsystem`.
/// Deterministic; variants rotate over that subsystem's ~47 sites so a long
/// workload run exercises many distinct fault-injection points.
pub fn site_for(subsystem: &str, variant: u64) -> usize {
    let sub_idx = SUBSYSTEMS.iter().position(|s| *s == subsystem).expect("known subsystem");
    let per_sub = SITE_COUNT / SUBSYSTEMS.len() + 1;
    let k = (variant as usize) % per_sub;
    let idx = k * SUBSYSTEMS.len() + sub_idx;
    if idx < SITE_COUNT {
        idx
    } else {
        sub_idx // wrap to the subsystem's first site
    }
}

/// Wraps `inner` steps in an acquire/release pair of the chosen site.
fn locked(site: usize, inner: &[PathStep]) -> Vec<PathStep> {
    let mut v = Vec::with_capacity(inner.len() + 2);
    v.push(PathStep::Lock(site));
    v.extend_from_slice(inner);
    v.push(PathStep::Unlock(site));
    v
}

/// Builds the kernel path for a system call.
///
/// `variant` rotates the lock sites used (modelling different code paths
/// through the same subsystem); `base_ns` is the kernel's base syscall cost.
pub fn syscall_path(sysno: Sysno, args: [u64; 5], variant: u64, base_ns: u64) -> Vec<PathStep> {
    use PathStep::*;
    let mut steps = vec![Work(base_ns)];
    match sysno {
        Sysno::Read | Sysno::Write => {
            let bytes = args[1].clamp(1, 1 << 20);
            let write = sysno == Sysno::Write;
            if args[2] == 1 {
                // Pipe I/O: in-memory, no filesystem or disk involvement.
                steps.extend(locked(site_for("pipe", variant), &[Work(350)]));
            } else {
                // Buffer copy through the page cache: ~40 ns per byte.
                let copy_ns = bytes.saturating_mul(40);
                steps.extend(locked(site_for("vfs", variant), &[Work(400)]));
                // The ext3 section nests two locks in canonical order (the
                // journal lock inside the inode lock) — the ordering a
                // wrong-order fault inverts into an ABBA deadlock.
                let e = site_for("ext3", variant);
                let e_inner = nested_partner_site(e);
                steps.push(Lock(e));
                steps.push(Work(300));
                steps.push(Lock(e_inner));
                steps.push(Work(300));
                steps.push(Work(copy_ns));
                steps.push(Unlock(e_inner));
                steps.push(Unlock(e));
                steps.extend(locked(
                    site_for("block", variant),
                    &[DiskIo { bytes, write }, Work(200)],
                ));
            }
        }
        Sysno::Open => {
            steps.extend(locked(site_for("vfs", variant), &[Work(700)]));
            steps.extend(locked(site_for("ext3", variant), &[Work(500)]));
        }
        Sysno::Close => {
            steps.extend(locked(site_for("vfs", variant), &[Work(300)]));
        }
        Sysno::Lseek => {
            steps.extend(locked(site_for("vfs", variant), &[Work(200)]));
        }
        Sysno::Spawn => {
            // fork + exec: task allocation, address-space setup, image load.
            // The scheduler section nests its runqueue pair canonically.
            let sc = site_for("sched", variant);
            let sc_inner = nested_partner_site(sc);
            steps.push(Lock(sc));
            steps.push(Work(20_000));
            steps.push(Lock(sc_inner));
            steps.push(Work(20_000));
            steps.push(Unlock(sc_inner));
            steps.push(Unlock(sc));
            steps.extend(locked(site_for("mm", variant), &[Work(120_000)]));
        }
        Sysno::Exit => {
            steps.extend(locked(site_for("sched", variant), &[Work(25_000)]));
            steps.extend(locked(site_for("mm", variant), &[Work(15_000)]));
        }
        Sysno::Waitpid | Sysno::Kill => {
            steps.extend(locked(site_for("sched", variant), &[Work(500)]));
        }
        Sysno::ListProcs | Sysno::ReadProcStat => {
            // The walk itself is charged separately (it reads guest memory);
            // the lock protects the task list.
            steps.extend(locked(site_for("sched", variant), &[Work(300)]));
        }
        Sysno::Pipe => {
            steps.extend(locked(site_for("pipe", variant), &[Work(400)]));
        }
        Sysno::NetRecv | Sysno::NetSend => {
            let bytes = args[0].clamp(1, 1 << 20);
            let write = sysno == Sysno::NetSend;
            steps.extend(locked(site_for("net", variant), &[NicIo { bytes, write }, Work(300)]));
        }
        Sysno::UserLock | Sysno::UserUnlock => {
            steps.extend(locked(site_for("sched", variant), &[Work(200)]));
        }
        Sysno::Setuid | Sysno::VulnEscalate => {
            steps.push(Work(400));
        }
        Sysno::InstallModule => {
            steps.extend(locked(site_for("char", variant), &[Work(3_000)]));
        }
        Sysno::ConsolePutc => {
            steps.extend(locked(site_for("char", variant), &[Work(100)]));
        }
        Sysno::Getpid | Sysno::Getuid | Sysno::Geteuid | Sysno::Nanosleep | Sysno::Reboot => {
            // Lock-free fast paths.
        }
    }
    steps
}

/// Builds the body of one kernel-daemon work burst (flush-style
/// housekeeping: a little locking, a little I/O).
pub fn kthread_path(variant: u64) -> Vec<PathStep> {
    use PathStep::*;
    let mut steps = vec![Work(2_000)];
    steps.extend(locked(site_for("mm", variant), &[Work(1_000)]));
    if variant.is_multiple_of(4) {
        // Dirty-page writeback goes through the filesystem and block
        // layers (as pdflush does) — which is how a leaked ext3/block lock
        // eventually wedges the daemon's vCPU too, escalating a partial
        // hang into a full one. The VFS entry layer is bypassed (writeback
        // starts below it), so leaked VFS locks leave daemons unharmed.
        steps.extend(locked(site_for("ext3", variant), &[Work(800)]));
        steps.extend(locked(site_for("block", variant), &[DiskIo { bytes: 4096, write: true }]));
    }
    steps
}

/// The inner site canonically nested *inside* `site`'s critical section
/// (same subsystem, next lock).
pub fn nested_partner_site(site: usize) -> usize {
    (site + SUBSYSTEMS.len()) % SITE_COUNT
}

/// The partner lock a wrong-ordering fault grabs *before* the site lock —
/// the same lock that correct paths acquire nested *inside* it
/// ([`nested_partner_site`]), so the inverted order is a genuine ABBA with
/// any concurrent correct execution.
pub fn wrong_order_partner(table: &LockTable, site: &LockSite) -> crate::klocks::LockId {
    let partner = table.site(nested_partner_site(site.id as usize));
    if partner.lock != site.lock {
        partner.lock
    } else {
        // Degenerate wrap: pick the subsystem's other lock.
        table.site((site.id as usize + 2 * SUBSYSTEMS.len()) % SITE_COUNT).lock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::klocks::LockTable;

    #[test]
    fn site_for_stays_in_subsystem() {
        let t = LockTable::new();
        for v in 0..100 {
            for sub in SUBSYSTEMS {
                let idx = site_for(sub, v);
                assert_eq!(t.site(idx).subsystem, sub, "variant {v} sub {sub}");
            }
        }
    }

    #[test]
    fn variants_cover_many_sites() {
        let mut seen = std::collections::HashSet::new();
        for v in 0..60 {
            seen.insert(site_for("ext3", v));
        }
        assert!(seen.len() > 40, "only {} distinct ext3 sites", seen.len());
    }

    #[test]
    fn paths_are_lock_balanced() {
        for sysno in [
            Sysno::Read,
            Sysno::Write,
            Sysno::Open,
            Sysno::Close,
            Sysno::Spawn,
            Sysno::Exit,
            Sysno::ListProcs,
            Sysno::NetRecv,
            Sysno::InstallModule,
        ] {
            for v in 0..20 {
                let steps = syscall_path(sysno, [4096; 5], v, 800);
                let mut held = Vec::new();
                for s in &steps {
                    match s {
                        PathStep::Lock(i) => held.push(*i),
                        PathStep::Unlock(i) => {
                            assert_eq!(held.pop(), Some(*i), "{sysno} v{v}: unbalanced");
                        }
                        _ => {}
                    }
                }
                assert!(held.is_empty(), "{sysno} v{v}: leaked {held:?}");
            }
        }
    }

    #[test]
    fn io_paths_move_bytes() {
        let steps = syscall_path(Sysno::Write, [3, 8192, 0, 0, 0], 0, 800);
        assert!(steps.iter().any(|s| matches!(s, PathStep::DiskIo { bytes: 8192, write: true })));
        let steps = syscall_path(Sysno::NetRecv, [1500, 0, 0, 0, 0], 0, 800);
        assert!(steps.iter().any(|s| matches!(s, PathStep::NicIo { bytes: 1500, write: false })));
    }

    #[test]
    fn fast_paths_are_lock_free() {
        for sysno in [Sysno::Getpid, Sysno::Getuid, Sysno::Geteuid] {
            let steps = syscall_path(sysno, [0; 5], 0, 800);
            assert!(steps.iter().all(|s| matches!(s, PathStep::Work(_))));
        }
    }

    #[test]
    fn wrong_order_partner_differs() {
        let t = LockTable::new();
        for idx in [0usize, 5, 100, 250, 373] {
            let site = t.site(idx);
            let partner = wrong_order_partner(&t, site);
            assert_ne!(partner, site.lock, "site {idx}");
        }
    }

    #[test]
    fn exec_finishes() {
        let mut e = KernelExec::new(None, vec![PathStep::Work(1)]);
        assert!(!e.finished());
        e.pc = 1;
        assert!(e.finished());
    }
}
