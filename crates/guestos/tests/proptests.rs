//! Property-based tests for the guest kernel's invariant-bearing pieces:
//! the lock table, the syscall path builder, and the `/proc` stat packing.

use hypertap_guestos::kernel::{pack_proc_stat, ProcStat};
use hypertap_guestos::klocks::{LockId, LockTable};
use hypertap_guestos::kpath::{self, PathStep};
use hypertap_guestos::syscalls::Sysno;
use hypertap_guestos::task::Pid;
use proptest::prelude::*;
use std::collections::HashMap;

fn sysno_strategy() -> impl Strategy<Value = Sysno> {
    prop::sample::select(vec![
        Sysno::Read,
        Sysno::Write,
        Sysno::Open,
        Sysno::Close,
        Sysno::Lseek,
        Sysno::Spawn,
        Sysno::Exit,
        Sysno::Waitpid,
        Sysno::Kill,
        Sysno::ListProcs,
        Sysno::Pipe,
        Sysno::NetRecv,
        Sysno::NetSend,
        Sysno::UserLock,
        Sysno::InstallModule,
        Sysno::ConsolePutc,
        Sysno::Getpid,
        Sysno::Nanosleep,
    ])
}

proptest! {
    /// Every syscall path balances its lock and unlock steps in LIFO order
    /// (no leaks, no unlock-before-lock), for arbitrary variants and args.
    #[test]
    fn syscall_paths_are_lock_balanced(
        sysno in sysno_strategy(),
        variant in 0u64..1000,
        arg0 in 0u64..100_000,
        arg1 in 0u64..100_000,
    ) {
        let steps = kpath::syscall_path(sysno, [arg0, arg1, 0, 0, 0], variant, 800);
        let mut held: Vec<usize> = Vec::new();
        for s in &steps {
            match s {
                PathStep::Lock(i) => held.push(*i),
                PathStep::Unlock(i) => {
                    prop_assert_eq!(held.pop(), Some(*i), "{} v{}", sysno, variant);
                }
                _ => {}
            }
        }
        prop_assert!(held.is_empty(), "{} v{} leaked {:?}", sysno, variant, held);
    }

    /// Kernel-thread paths are also balanced.
    #[test]
    fn kthread_paths_are_lock_balanced(variant in 0u64..1000) {
        let steps = kpath::kthread_path(variant);
        let mut held: Vec<usize> = Vec::new();
        for s in &steps {
            match s {
                PathStep::Lock(i) => held.push(*i),
                PathStep::Unlock(i) => prop_assert_eq!(held.pop(), Some(*i)),
                _ => {}
            }
        }
        prop_assert!(held.is_empty());
    }

    /// With a correct acquire/release discipline (no foreign releases), the
    /// lock table matches a reference model: at most one owner, acquisition
    /// succeeds iff free.
    #[test]
    fn lock_table_matches_model(
        ops in prop::collection::vec((0u32..12, 1u64..5, any::<bool>()), 1..200),
    ) {
        let mut table = LockTable::new();
        let mut model: HashMap<u32, u64> = HashMap::new();
        for (lock, pid, acquire) in ops {
            let l = LockId(lock);
            let p = Pid(pid);
            if acquire {
                let expect = !model.contains_key(&lock);
                prop_assert_eq!(table.try_acquire(l, p), expect);
                if expect {
                    model.insert(lock, pid);
                }
            } else if model.get(&lock) == Some(&pid) {
                // Only legitimate releases in this property.
                prop_assert!(table.release(l, p));
                model.remove(&lock);
            }
            prop_assert_eq!(table.owner(l).map(|o| o.0), model.get(&lock).copied());
        }
    }

    /// `pack_proc_stat`/`ProcStat::unpack` round-trip within field widths,
    /// and never collide with the "no such pid" marker.
    #[test]
    fn proc_stat_round_trip(
        euid in 0u64..0xFFFF,
        parent_uid in 0u64..0xFFFF,
        state in 0u64..3,
        rip in 0u64..0xF_FFFF,
    ) {
        let raw = pack_proc_stat(euid, parent_uid, state, rip);
        prop_assert_ne!(raw, u64::MAX);
        let stat = ProcStat::unpack(raw).expect("not the missing marker");
        prop_assert_eq!(stat.euid, euid);
        prop_assert_eq!(stat.parent_uid, parent_uid);
        prop_assert_eq!(stat.state, state);
        prop_assert_eq!(stat.rip_off, rip);
    }

    /// Site selection always lands inside the requested subsystem.
    #[test]
    fn site_for_respects_subsystem(variant in 0u64..10_000) {
        let table = LockTable::new();
        for sub in hypertap_guestos::klocks::SUBSYSTEMS {
            let idx = kpath::site_for(sub, variant);
            prop_assert_eq!(table.site(idx).subsystem, sub);
        }
    }
}
