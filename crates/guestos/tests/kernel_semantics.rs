//! Integration tests for kernel semantics that the experiments lean on:
//! blocking syscalls, user locks, kill, preemption, network wake-ups and
//! `/proc` visibility.

use hypertap_guestos::prelude::*;
use hypertap_guestos::program::UserView;
use hypertap_hvsim::clock::{Duration, SimTime};
use hypertap_hvsim::machine::{Hypervisor, Machine, RunExit, VmConfig, VmState};
use hypertap_hvsim::vcpu::VcpuId;

struct NoHv;
impl Hypervisor for NoHv {
    fn handle_exit(
        &mut self,
        _vm: &mut VmState,
        _exit: &hypertap_hvsim::exit::VmExit,
    ) -> hypertap_hvsim::exit::ExitAction {
        hypertap_hvsim::exit::ExitAction::Resume
    }
}

fn machine(vcpus: usize) -> Machine<NoHv> {
    Machine::new(VmConfig::new(vcpus, 256 << 20), NoHv)
}

/// `nanosleep` actually sleeps: the process resumes after (not before) the
/// requested duration, and only once.
#[test]
fn nanosleep_wakes_once_after_duration() {
    let mut m = machine(1);
    let mut k = Kernel::new(KernelConfig::new(1));
    let init = k.register_program(
        "init",
        Box::new(|| {
            let mut stage = 0;
            Box::new(FnProgram(move |v: &UserView<'_>| {
                stage += 1;
                match stage {
                    1 => UserOp::sys(Sysno::Nanosleep, &[250_000_000]),
                    2 => UserOp::Emit("awake".into(), format!("{}", v.now.as_nanos())),
                    _ => UserOp::sys(Sysno::Nanosleep, &[3_600_000_000_000]),
                }
            }))
        }),
    );
    k.set_init_program(init);
    m.run_until(&mut k, SimTime::from_secs(2));
    let mail = k.drain_mailbox(Pid(1));
    assert_eq!(mail.len(), 1);
    let woke_at: u64 = mail[0].detail.parse().unwrap();
    assert!(woke_at >= 250_000_000, "woke too early: {woke_at}");
    assert!(woke_at < 400_000_000, "woke far too late: {woke_at}");
}

/// User locks block and hand over in FIFO order.
#[test]
fn user_locks_block_and_wake_fifo() {
    let mut m = machine(1);
    let mut k = Kernel::new(KernelConfig::new(1));
    // Holder takes lock 3, sleeps 100ms, releases.
    let holder = k.register_program(
        "holder",
        Box::new(|| {
            Box::new(ScriptProgram::new(
                vec![
                    UserOp::sys(Sysno::UserLock, &[3]),
                    UserOp::Emit("got".into(), "holder".into()),
                    UserOp::sys(Sysno::Nanosleep, &[100_000_000]),
                    UserOp::sys(Sysno::UserUnlock, &[3]),
                    UserOp::sys(Sysno::Nanosleep, &[3_600_000_000_000]),
                ],
                0,
            ))
        }),
    );
    let waiter = k.register_program(
        "waiter",
        Box::new(|| {
            Box::new(ScriptProgram::new(
                vec![
                    UserOp::sys(Sysno::Nanosleep, &[10_000_000]), // let holder win
                    UserOp::sys(Sysno::UserLock, &[3]),
                    UserOp::Emit("got".into(), "waiter".into()),
                    UserOp::sys(Sysno::UserUnlock, &[3]),
                    UserOp::sys(Sysno::Nanosleep, &[3_600_000_000_000]),
                ],
                0,
            ))
        }),
    );
    let (h, w) = (holder.0, waiter.0);
    let init = k.register_program(
        "init",
        Box::new(move || {
            let mut stage = 0;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                stage += 1;
                match stage {
                    1 => UserOp::sys(Sysno::Spawn, &[h, 1000]),
                    2 => UserOp::sys(Sysno::Spawn, &[w, 1000]),
                    _ => UserOp::sys(Sysno::Nanosleep, &[3_600_000_000_000]),
                }
            }))
        }),
    );
    k.set_init_program(init);
    m.run_until(&mut k, SimTime::from_secs(1));
    let mut got: Vec<(SimTime, String)> = Vec::new();
    for (_pid, e) in k.drain_all_mailboxes() {
        if e.tag == "got" {
            got.push((e.time, e.detail));
        }
    }
    got.sort();
    assert_eq!(got.len(), 2);
    assert_eq!(got[0].1, "holder");
    assert_eq!(got[1].1, "waiter");
    assert!(
        got[1].0.saturating_since(got[0].0) >= Duration::from_millis(100),
        "the waiter only got the lock after the holder released"
    );
}

/// `kill` terminates another process; its pid leaves both the scheduler
/// and the in-guest list, and its memory is recycled.
#[test]
fn kill_reaps_target() {
    let mut m = machine(1);
    let mut k = Kernel::new(KernelConfig::new(1));
    let victim = k.register_program(
        "victim",
        Box::new(|| Box::new(FnProgram(|_v: &UserView<'_>| UserOp::Compute(50_000)))),
    );
    let victim_raw = victim.0;
    let init = k.register_program(
        "init",
        Box::new(move || {
            let mut stage = 0;
            let mut vpid = 0;
            Box::new(FnProgram(move |v: &UserView<'_>| {
                stage += 1;
                match stage {
                    1 => UserOp::sys(Sysno::Spawn, &[victim_raw, 1000]),
                    2 => {
                        vpid = v.last_ret;
                        UserOp::sys(Sysno::Nanosleep, &[50_000_000])
                    }
                    3 => UserOp::sys(Sysno::Kill, &[vpid]),
                    4 => UserOp::sys(Sysno::ListProcs, &[]),
                    5 => UserOp::Emit("procs".into(), format!("{}", v.procs.len())),
                    _ => UserOp::sys(Sysno::Nanosleep, &[3_600_000_000_000]),
                }
            }))
        }),
    );
    k.set_init_program(init);
    m.run_until(&mut k, SimTime::from_secs(1));
    // init + kflushd remain; the victim is gone everywhere.
    assert_eq!(k.alive_pids(), vec![1, 2]);
    let mail = k.drain_mailbox(Pid(1));
    let procs: usize = mail.iter().find(|e| e.tag == "procs").unwrap().detail.parse().unwrap();
    assert_eq!(procs, 2, "guest list agrees");
}

/// A leaked filesystem lock wedges the vCPU running the spinning task,
/// while the other vCPU keeps scheduling — the partial-hang mechanism the
/// Fig. 4 campaign measures at scale. (Waiters usually spin inside
/// non-preemptible sections, so kernel preemption does not rescue the
/// wedged vCPU itself; the campaign shows preemption's effect on the
/// partial/full mix instead.)
#[test]
fn leaked_lock_wedges_one_vcpu_not_the_machine() {
    let mut m = machine(2);
    let mut k = Kernel::new(KernelConfig::new(2));
    struct LeakVfs;
    impl FaultHook for LeakVfs {
        fn check(&mut self, site: u32, acquire: bool) -> Option<FaultType> {
            let catalogue = hypertap_guestos::klocks::LockTable::new();
            (!acquire && catalogue.site(site as usize).subsystem == "vfs")
                .then_some(FaultType::MissingUnlock)
        }
        fn activations(&self) -> u64 {
            1
        }
    }
    k.set_fault_hook(Box::new(LeakVfs));
    let writer = k.register_program(
        "writer",
        Box::new(|| Box::new(FnProgram(|_v: &UserView<'_>| UserOp::sys(Sysno::Write, &[0, 2048])))),
    );
    let beat = k.register_program(
        "beat",
        Box::new(|| {
            let mut n = 0u64;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                n += 1;
                if n.is_multiple_of(2) {
                    UserOp::Emit("beat".into(), String::new())
                } else {
                    UserOp::sys(Sysno::Nanosleep, &[20_000_000])
                }
            }))
        }),
    );
    let (w_raw, b_raw) = (writer.0, beat.0);
    let init = k.register_program(
        "init",
        Box::new(move || {
            let mut stage = 0;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                stage += 1;
                match stage {
                    1 => UserOp::sys(Sysno::Spawn, &[w_raw, 1000]),
                    2 => UserOp::sys(Sysno::Spawn, &[b_raw, 1000]),
                    _ => UserOp::sys(Sysno::Nanosleep, &[3_600_000_000_000]),
                }
            }))
        }),
    );
    k.set_init_program(init);
    m.run_until(&mut k, SimTime::from_secs(20));

    // The heartbeat task kept running in the second half of the run...
    let late_beats = k
        .drain_all_mailboxes()
        .iter()
        .filter(|(_, e)| e.tag == "beat" && e.time > SimTime::from_secs(10))
        .count();
    assert!(late_beats > 50, "the machine is only partially hung ({late_beats} beats)");
    // ...while one vCPU stopped dispatching entirely.
    let now = m.vm().now();
    let stalled = k
        .last_dispatch()
        .iter()
        .filter(|t| now.saturating_since(**t) > Duration::from_secs(8))
        .count();
    assert_eq!(stalled, 1, "exactly one vCPU wedged: {:?}", k.last_dispatch());
}

/// NetRecv blocks until the NIC interrupt delivers a request.
#[test]
fn netrecv_blocks_until_irq() {
    let mut m = machine(1);
    let mut k = Kernel::new(KernelConfig::new(1));
    let httpd = hypertap_workloads::http::install(&mut k);
    let init = hypertap_workloads::make::install_init_running(&mut k, httpd);
    k.set_init_program(init);
    // Boot, then nothing arrives for a while.
    m.run_until(&mut k, SimTime::from_millis(300));
    assert_eq!(
        k.drain_all_mailboxes().iter().filter(|(_, e)| e.tag == "http-served").count(),
        0,
        "no requests, no service"
    );
    // Offer three requests.
    let now = m.vm().now();
    hypertap_workloads::http::offer_load(
        m.vm_mut(),
        &k,
        now,
        100.0,
        Duration::from_millis(30),
        512,
        9,
    );
    m.run_until(&mut k, SimTime::from_millis(900));
    let served = k.drain_all_mailboxes().iter().filter(|(_, e)| e.tag == "http-served").count();
    assert!(served > 0, "requests were served after the interrupts arrived");
}

/// HLT with interrupts disabled deadlocks the vCPU — the machine reports
/// AllIdle rather than spinning the host.
#[test]
fn hlt_with_interrupts_off_deadlocks() {
    struct CliHlt;
    impl hypertap_hvsim::machine::GuestProgram for CliHlt {
        fn step(
            &mut self,
            cpu: &mut hypertap_hvsim::cpu::CpuCtx<'_>,
        ) -> hypertap_hvsim::cpu::StepOutcome {
            cpu.set_interrupts_enabled(false);
            cpu.hlt();
            hypertap_hvsim::cpu::StepOutcome::Continue
        }
    }
    let mut m = machine(1);
    m.vm_mut().schedule_irq(SimTime::from_millis(5), VcpuId(0), 0x20);
    let r = m.run_until(&mut CliHlt, SimTime::from_secs(1));
    assert_eq!(r, RunExit::AllIdle, "the IRQ cannot wake a CLI'd HLT");
}
