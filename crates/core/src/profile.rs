//! Guest OS profiles: the struct-layout knowledge used to derive OS state.
//!
//! HyperTap proposes using architectural invariants as the *root of trust*
//! when deriving OS state (paper §IV-B): the hypervisor starts from a
//! register it can trust (TR, CR3, RSP) and then follows OS-defined data
//! structures whose *layout* — not content — it must know. An [`OsProfile`]
//! is that layout knowledge: byte offsets of `task_struct` fields, the
//! `thread_info` location convention, and the kernel's task-list head.
//!
//! As the paper argues, an attacker would have to change the layout of
//! kernel structures (not merely their values) to evade profile-based
//! derivation, which requires relinking the kernel — far harder than the
//! pointer games DKOM rootkits play.

use hypertap_hvsim::mem::Gva;

/// Byte offsets and conventions describing one guest OS build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OsProfile {
    /// GVA of a kernel slot holding the GVA of the first `task_struct`
    /// (the analogue of Linux's `init_task`-anchored list).
    pub task_list_head: Gva,
    /// Offset of the PID field.
    pub ts_pid: u64,
    /// Offset of the scheduler-state field.
    pub ts_state: u64,
    /// Offset of the real user id.
    pub ts_uid: u64,
    /// Offset of the effective user id.
    pub ts_euid: u64,
    /// Offset of the parent pointer (GVA of the parent's `task_struct`).
    pub ts_parent: u64,
    /// Offset of the next pointer (GVA of the next `task_struct`; 0 = tail).
    pub ts_next: u64,
    /// Offset of the prev pointer (GVA; 0 = head).
    pub ts_prev: u64,
    /// Offset of the process page-directory base (the PDBA loaded into CR3).
    pub ts_pdba: u64,
    /// Offset of the kernel-stack-top field (the value loaded into
    /// `TSS.RSP0` when this task runs).
    pub ts_kstack: u64,
    /// Offset of the command-name buffer.
    pub ts_comm: u64,
    /// Size of the command-name buffer in bytes.
    pub ts_comm_len: u64,
    /// Total size of `task_struct` in bytes.
    pub ts_size: u64,
    /// Offset of the `task_struct` pointer within `thread_info`.
    pub ti_task: u64,
    /// Kernel stack size; stacks are aligned to this, with `thread_info` at
    /// the base — so `thread_info = (RSP0 - 1) & !(size - 1)`.
    pub kernel_stack_size: u64,
}

impl OsProfile {
    /// The `thread_info` base for a kernel stack pointer, per the stack
    /// alignment convention.
    pub fn thread_info_base(&self, rsp0: u64) -> Gva {
        debug_assert!(self.kernel_stack_size.is_power_of_two());
        Gva::new(rsp0.wrapping_sub(1) & !(self.kernel_stack_size - 1))
    }
}

/// Scheduler state of a task, as encoded in the guest's `state` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskState {
    /// Runnable or running.
    Running,
    /// Sleeping (interruptible).
    Sleeping,
    /// Exited but not reaped.
    Zombie,
    /// Unrecognised encoding.
    Unknown(u64),
}

impl TaskState {
    /// Decodes the guest encoding (0 running, 1 sleeping, 2 zombie).
    pub fn from_raw(raw: u64) -> Self {
        match raw {
            0 => TaskState::Running,
            1 => TaskState::Sleeping,
            2 => TaskState::Zombie,
            other => TaskState::Unknown(other),
        }
    }

    /// The single-letter code `/proc` uses (`R`, `S`, `Z`, `?`).
    pub fn code(self) -> char {
        match self {
            TaskState::Running => 'R',
            TaskState::Sleeping => 'S',
            TaskState::Zombie => 'Z',
            TaskState::Unknown(_) => '?',
        }
    }
}

/// A decoded view of one `task_struct`, produced either by (untrusted) VMI
/// list walking or by (trusted) architectural derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskView {
    /// GVA of the `task_struct` this view was decoded from.
    pub gva: Gva,
    /// Process id.
    pub pid: u64,
    /// Scheduler state.
    pub state: TaskState,
    /// Real user id.
    pub uid: u64,
    /// Effective user id.
    pub euid: u64,
    /// GVA of the parent's `task_struct` (0 for the initial task).
    pub parent: Gva,
    /// The process's page-directory base (PDBA).
    pub pdba: u64,
    /// The task's kernel stack top (its `TSS.RSP0` identity).
    pub kstack: u64,
    /// Command name.
    pub comm: String,
}

impl TaskView {
    /// Whether this task runs with root privileges.
    pub fn is_root(&self) -> bool {
        self.euid == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> OsProfile {
        OsProfile {
            task_list_head: Gva::new(0x100),
            ts_pid: 0,
            ts_state: 8,
            ts_uid: 16,
            ts_euid: 24,
            ts_parent: 32,
            ts_next: 40,
            ts_prev: 48,
            ts_pdba: 56,
            ts_kstack: 64,
            ts_comm: 72,
            ts_comm_len: 16,
            ts_size: 88,
            ti_task: 0,
            kernel_stack_size: 8192,
        }
    }

    #[test]
    fn thread_info_base_masks_to_stack_base() {
        let p = profile();
        // A stack occupying [0x4000, 0x6000): RSP0 is the top.
        assert_eq!(p.thread_info_base(0x6000), Gva::new(0x4000));
        // Mid-stack pointers mask to the same base.
        assert_eq!(p.thread_info_base(0x5abc), Gva::new(0x4000));
    }

    #[test]
    fn task_state_codes() {
        assert_eq!(TaskState::from_raw(0), TaskState::Running);
        assert_eq!(TaskState::from_raw(1).code(), 'S');
        assert_eq!(TaskState::from_raw(2).code(), 'Z');
        assert_eq!(TaskState::from_raw(9).code(), '?');
    }

    #[test]
    fn root_check_uses_euid() {
        let mut t = TaskView {
            gva: Gva::new(0),
            pid: 1,
            state: TaskState::Running,
            uid: 1000,
            euid: 0,
            parent: Gva::new(0),
            pdba: 0,
            kstack: 0,
            comm: "sh".into(),
        };
        assert!(t.is_root());
        t.euid = 1000;
        assert!(!t.is_root());
    }
}
