//! The live telemetry plane: HTTP scrape endpoints, finding streams, and
//! the monitor self-watchdog.
//!
//! The paper's reliability argument assumes the monitoring stack itself
//! stays live — §VII ships event-stream samples to a Remote Health Checker
//! for exactly that reason. This module generalises the idea into a fleet
//! telemetry plane:
//!
//! * [`FindingBus`] — a host-side publish/subscribe tap for findings.
//!   Subscribers get bounded queues with per-subscriber drop counters; a
//!   slow or dead consumer can never block the exit pipeline (the same
//!   never-block discipline as the RHC transport).
//! * [`TelemetryHub`] — shared host state for a running fleet: per-VM
//!   lifecycle, per-worker progress heartbeats, the merged metrics
//!   snapshot, and the degraded flag the self-watchdog raises.
//! * [`TelemetryServer`] — a zero-dependency HTTP/1.1 server (std
//!   `TcpListener`, the same per-connection-thread + shutdown-flag
//!   lifecycle as `rhc::RhcServer`) serving `/metrics` (Prometheus text),
//!   `/metrics.json` (snapshot schema v1), `/healthz`, `/vms`, and
//!   `/findings` as a live NDJSON stream fed by the bus.
//! * [`SelfWatch`] — the watchdog thread: when a worker stops making
//!   progress for longer than the watchdog period, it raises a
//!   `MonitorStalled` finding (auditor `"selfwatch"`, [`Severity::Alert`])
//!   on the bus and flips `/healthz` to degraded; recovery clears it.
//!
//! # Determinism contract
//!
//! Everything here is **host-side bookkeeping only** — publishing clones
//! findings that already exist, the hub reads host clocks, and the server
//! only renders state. Nothing feeds back into the simulation, so a run
//! with the full telemetry plane attached is byte-identical to a run
//! without it. The replay conformance suite enforces this with the
//! TELEMETRY_ON pair (`DiffPolicy::Exact`), like metrics-on/off.

use crate::audit::{Finding, Severity};
use crate::event::VmId;
use crate::fleet::VmReport;
use crate::metrics::MetricsRegistry;
use serde::Value;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant};

/// The pseudo-VM id `selfwatch` findings are published under: the monitor
/// itself, not any guest.
pub const MONITOR_VM: VmId = VmId(u32::MAX);

/// Default bounded queue capacity for a `/findings` subscriber.
pub const DEFAULT_SUBSCRIBER_CAPACITY: usize = 1024;

// ---------------------------------------------------------------------------
// FindingBus
// ---------------------------------------------------------------------------

struct BusSlot {
    id: u64,
    queue: VecDeque<(VmId, Finding)>,
    capacity: usize,
    dropped: u64,
}

#[derive(Default)]
struct BusInner {
    subscribers: Vec<BusSlot>,
    next_id: u64,
    published: u64,
    dropped_total: u64,
}

/// A host-side finding fan-out: cloneable handle over shared state.
///
/// `publish` copies the finding into every live subscriber's bounded
/// queue; a full queue counts a drop (per subscriber and bus-wide) and
/// moves on — publishing never blocks and never fails. With zero
/// subscribers a publish is one mutex lock and a counter increment.
#[derive(Clone, Default)]
pub struct FindingBus {
    inner: Arc<Mutex<BusInner>>,
}

impl std::fmt::Debug for FindingBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FindingBus")
            .field("subscribers", &self.subscriber_count())
            .field("published", &self.published())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl FindingBus {
    /// An empty bus with no subscribers.
    pub fn new() -> Self {
        FindingBus::default()
    }

    /// Registers a subscriber with a bounded queue of `capacity` findings.
    /// Dropping the returned handle unsubscribes.
    pub fn subscribe(&self, capacity: usize) -> FindingSubscriber {
        let mut inner = self.inner.lock().expect("finding bus");
        let id = inner.next_id;
        inner.next_id += 1;
        inner.subscribers.push(BusSlot {
            id,
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        });
        FindingSubscriber { id, inner: Arc::clone(&self.inner) }
    }

    /// Publishes one finding to every subscriber.
    pub fn publish(&self, vm: VmId, finding: &Finding) {
        let mut inner = self.inner.lock().expect("finding bus");
        inner.published += 1;
        let mut dropped = 0u64;
        for slot in &mut inner.subscribers {
            if slot.queue.len() >= slot.capacity {
                slot.dropped += 1;
                dropped += 1;
            } else {
                slot.queue.push_back((vm, finding.clone()));
            }
        }
        inner.dropped_total += dropped;
    }

    /// Publishes a batch of findings from one VM, in order.
    pub fn publish_all(&self, vm: VmId, findings: &[Finding]) {
        for f in findings {
            self.publish(vm, f);
        }
    }

    /// Findings published over the bus's lifetime.
    pub fn published(&self) -> u64 {
        self.inner.lock().expect("finding bus").published
    }

    /// Findings dropped across all subscribers (full queues).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("finding bus").dropped_total
    }

    /// Currently live subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.inner.lock().expect("finding bus").subscribers.len()
    }
}

/// One subscription on a [`FindingBus`]. Drop to unsubscribe.
pub struct FindingSubscriber {
    id: u64,
    inner: Arc<Mutex<BusInner>>,
}

impl FindingSubscriber {
    /// Takes every queued finding, oldest first.
    pub fn drain(&self) -> Vec<(VmId, Finding)> {
        let mut inner = self.inner.lock().expect("finding bus");
        match inner.subscribers.iter_mut().find(|s| s.id == self.id) {
            Some(slot) => slot.queue.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Findings this subscriber has lost to its bounded queue.
    pub fn dropped(&self) -> u64 {
        let inner = self.inner.lock().expect("finding bus");
        inner.subscribers.iter().find(|s| s.id == self.id).map_or(0, |s| s.dropped)
    }
}

impl Drop for FindingSubscriber {
    fn drop(&mut self) {
        let mut inner = self.inner.lock().expect("finding bus");
        inner.subscribers.retain(|s| s.id != self.id);
    }
}

/// Renders one bus finding as a single NDJSON line (no trailing newline).
pub fn finding_json(vm: VmId, f: &Finding) -> String {
    let value = Value::Object(vec![
        ("vm".to_owned(), Value::U64(vm.0 as u64)),
        ("time_ns".to_owned(), Value::U64(f.time.as_nanos())),
        ("auditor".to_owned(), Value::Str(f.auditor.clone())),
        ("severity".to_owned(), Value::Str(f.severity.to_string())),
        ("message".to_owned(), Value::Str(f.message.clone())),
        (
            "provenance".to_owned(),
            Value::Array(f.provenance.iter().map(|r| Value::U64(r.0)).collect()),
        ),
    ]);
    serde_json::to_string(&value).expect("finding serializes")
}

// ---------------------------------------------------------------------------
// TelemetryHub
// ---------------------------------------------------------------------------

/// Where a fleet VM is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmPhase {
    /// `build_vm` is running on its worker.
    Building,
    /// Taking slices.
    Running,
    /// Finished and reported.
    Done,
}

impl VmPhase {
    fn as_str(self) -> &'static str {
        match self {
            VmPhase::Building => "building",
            VmPhase::Running => "running",
            VmPhase::Done => "done",
        }
    }
}

/// A cheap per-slice probe of one fleet VM's monitoring plane, for `/vms`.
#[derive(Debug, Clone, Copy, Default)]
pub struct VmProbe {
    /// Current simulated time, nanoseconds.
    pub now_ns: u64,
    /// Events the Event Multiplexer has accepted.
    pub events_in: u64,
    /// Findings accumulated in the EM but not yet drained — delivery-ring
    /// backpressure as seen by the audit phase.
    pub pending_findings: u64,
    /// Events queued in audit-container mailboxes, summed.
    pub container_backlog: u64,
}

/// One VM's row in the `/vms` table.
#[derive(Debug, Clone)]
pub struct VmStatus {
    /// Which VM.
    pub vm: VmId,
    /// Lifecycle phase.
    pub phase: VmPhase,
    /// Worker currently (or last) driving it.
    pub worker: usize,
    /// Slices taken so far.
    pub slices: u64,
    /// Latest probe (zeros until the VM reports one).
    pub probe: VmProbe,
    /// Findings in its final report (set at `Done`).
    pub findings: u64,
    /// Whether it halted before its deadline (set at `Done`).
    pub halted: bool,
}

/// One worker's liveness row.
#[derive(Debug, Clone)]
pub struct WorkerHealth {
    /// Worker index.
    pub worker: usize,
    /// Progress heartbeats observed (one per slice).
    pub beats: u64,
    /// Host time of the last heartbeat.
    pub last_beat: Instant,
    /// Whether the worker has exited its loop.
    pub done: bool,
    /// Whether the self-watchdog currently considers it stalled.
    pub stalled: bool,
    /// Last simulated time any of its VMs reported.
    pub last_now_ns: u64,
}

#[derive(Default)]
struct HubState {
    vms: Vec<VmStatus>,
    workers: Vec<WorkerHealth>,
    metrics: MetricsRegistry,
    merged_from: u64,
    stall_episodes: u64,
    degraded: bool,
}

/// Shared host-side state of a monitored fleet: what the telemetry server
/// serves and the self-watchdog inspects. All methods are cheap and take a
/// single internal lock; nothing here touches simulated state.
pub struct TelemetryHub {
    bus: FindingBus,
    state: Mutex<HubState>,
}

impl Default for TelemetryHub {
    fn default() -> Self {
        TelemetryHub::new()
    }
}

impl TelemetryHub {
    /// An empty hub with a fresh bus.
    pub fn new() -> Self {
        TelemetryHub { bus: FindingBus::new(), state: Mutex::new(HubState::default()) }
    }

    /// The hub's finding bus (cloneable handle).
    pub fn bus(&self) -> FindingBus {
        self.bus.clone()
    }

    /// Subscribes to the hub's finding stream.
    pub fn subscribe(&self, capacity: usize) -> FindingSubscriber {
        self.bus.subscribe(capacity)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HubState> {
        self.state.lock().expect("telemetry hub")
    }

    fn worker_mut(state: &mut HubState, worker: usize) -> &mut WorkerHealth {
        if let Some(at) = state.workers.iter().position(|w| w.worker == worker) {
            return &mut state.workers[at];
        }
        state.workers.push(WorkerHealth {
            worker,
            beats: 0,
            last_beat: Instant::now(),
            done: false,
            stalled: false,
            last_now_ns: 0,
        });
        state.workers.sort_by_key(|w| w.worker);
        let at = state.workers.iter().position(|w| w.worker == worker).expect("just inserted");
        &mut state.workers[at]
    }

    fn vm_mut(state: &mut HubState, vm: VmId, worker: usize) -> &mut VmStatus {
        if let Some(at) = state.vms.iter().position(|s| s.vm == vm) {
            return &mut state.vms[at];
        }
        state.vms.push(VmStatus {
            vm,
            phase: VmPhase::Building,
            worker,
            slices: 0,
            probe: VmProbe::default(),
            findings: 0,
            halted: false,
        });
        state.vms.sort_by_key(|s| s.vm.0);
        let at = state.vms.iter().position(|s| s.vm == vm).expect("just inserted");
        &mut state.vms[at]
    }

    /// A worker thread entered its loop.
    pub fn worker_started(&self, worker: usize) {
        let mut state = self.lock();
        let w = Self::worker_mut(&mut state, worker);
        w.last_beat = Instant::now();
    }

    /// A worker thread exited its loop (it can no longer stall).
    pub fn worker_done(&self, worker: usize) {
        let mut state = self.lock();
        let w = Self::worker_mut(&mut state, worker);
        w.done = true;
        w.stalled = false;
        state.degraded = state.workers.iter().any(|w| w.stalled);
    }

    /// `build_vm` started for `vm` on `worker`.
    pub fn vm_started(&self, vm: VmId, worker: usize) {
        let mut state = self.lock();
        Self::worker_mut(&mut state, worker).last_beat = Instant::now();
        let s = Self::vm_mut(&mut state, vm, worker);
        s.phase = VmPhase::Building;
        s.worker = worker;
    }

    /// `vm` took one slice on `worker`; `probe` is its monitoring-plane
    /// snapshot when the VM supports probing.
    pub fn vm_progress(&self, vm: VmId, worker: usize, probe: Option<VmProbe>) {
        let mut state = self.lock();
        {
            let w = Self::worker_mut(&mut state, worker);
            w.beats += 1;
            w.last_beat = Instant::now();
            if let Some(p) = &probe {
                w.last_now_ns = w.last_now_ns.max(p.now_ns);
            }
        }
        let s = Self::vm_mut(&mut state, vm, worker);
        s.phase = VmPhase::Running;
        s.worker = worker;
        s.slices += 1;
        if let Some(p) = probe {
            s.probe = p;
        }
    }

    /// `vm` finished: records its report, publishes its findings on the
    /// bus, and merges its metrics snapshot into the hub's fleet view.
    pub fn vm_finished(&self, report: &VmReport, worker: usize) {
        {
            let mut state = self.lock();
            {
                let s = Self::vm_mut(&mut state, report.vm, worker);
                s.phase = VmPhase::Done;
                s.worker = worker;
                s.findings = report.findings.len() as u64;
                s.halted = report.halted;
            }
            state.metrics.merge(&report.metrics);
            state.merged_from += 1;
            Self::worker_mut(&mut state, worker).last_beat = Instant::now();
        }
        self.bus.publish_all(report.vm, &report.findings);
    }

    /// Whether the self-watchdog currently reports the monitor degraded.
    pub fn degraded(&self) -> bool {
        self.lock().degraded
    }

    /// Snapshot of every VM's status, ascending id order.
    pub fn vms(&self) -> Vec<VmStatus> {
        self.lock().vms.clone()
    }

    /// Snapshot of every worker's health row.
    pub fn workers(&self) -> Vec<WorkerHealth> {
        self.lock().workers.clone()
    }

    /// The scrape snapshot: the merged per-VM metrics plus the telemetry
    /// plane's own series, stamped with capture time and merge provenance
    /// (how many per-VM registries contributed).
    pub fn scrape(&self) -> MetricsRegistry {
        let state = self.lock();
        let mut reg = state.metrics.clone();
        reg.counter(
            "hypertap_telemetry_findings_published_total",
            "findings published on the hub's finding bus",
            self.bus.published(),
        );
        reg.counter(
            "hypertap_telemetry_findings_dropped_total",
            "findings dropped by slow finding-bus subscribers",
            self.bus.dropped(),
        );
        reg.gauge(
            "hypertap_telemetry_subscribers",
            "live finding-bus subscribers",
            self.bus.subscriber_count() as f64,
        );
        for phase in [VmPhase::Building, VmPhase::Running, VmPhase::Done] {
            let n = state.vms.iter().filter(|s| s.phase == phase).count();
            reg.gauge_with(
                "hypertap_telemetry_vms",
                &[("phase", phase.as_str())],
                "fleet VMs by lifecycle phase",
                n as f64,
            );
        }
        reg.gauge(
            "hypertap_telemetry_workers_stalled",
            "workers the self-watchdog currently considers stalled",
            state.workers.iter().filter(|w| w.stalled).count() as f64,
        );
        reg.counter(
            "hypertap_telemetry_stall_episodes_total",
            "MonitorStalled episodes raised by the self-watchdog",
            state.stall_episodes,
        );
        reg.set_merged_from(state.merged_from);
        reg.stamp_captured_now();
        reg
    }

    /// `/healthz` body + status: `(healthy, json)`.
    pub fn healthz(&self) -> (bool, String) {
        let state = self.lock();
        let healthy = !state.degraded;
        let workers = state
            .workers
            .iter()
            .map(|w| {
                Value::Object(vec![
                    ("worker".to_owned(), Value::U64(w.worker as u64)),
                    ("beats".to_owned(), Value::U64(w.beats)),
                    ("done".to_owned(), Value::Bool(w.done)),
                    ("stalled".to_owned(), Value::Bool(w.stalled)),
                    (
                        "last_beat_age_ms".to_owned(),
                        Value::U64(w.last_beat.elapsed().as_millis() as u64),
                    ),
                ])
            })
            .collect();
        let by_phase = |phase: VmPhase| -> u64 {
            state.vms.iter().filter(|s| s.phase == phase).count() as u64
        };
        let value = Value::Object(vec![
            ("status".to_owned(), Value::Str(if healthy { "ok" } else { "degraded" }.to_owned())),
            ("workers".to_owned(), Value::Array(workers)),
            ("vms_building".to_owned(), Value::U64(by_phase(VmPhase::Building))),
            ("vms_running".to_owned(), Value::U64(by_phase(VmPhase::Running))),
            ("vms_done".to_owned(), Value::U64(by_phase(VmPhase::Done))),
            ("stall_episodes".to_owned(), Value::U64(state.stall_episodes)),
            (
                "bus".to_owned(),
                Value::Object(vec![
                    ("published".to_owned(), Value::U64(self.bus.published())),
                    ("dropped".to_owned(), Value::U64(self.bus.dropped())),
                    ("subscribers".to_owned(), Value::U64(self.bus.subscriber_count() as u64)),
                ]),
            ),
        ]);
        (healthy, serde_json::to_string_pretty(&value).expect("healthz serializes"))
    }

    /// `/vms` body: every VM's lifecycle + backpressure row.
    pub fn vms_json(&self) -> String {
        let state = self.lock();
        let rows = state
            .vms
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("vm".to_owned(), Value::U64(s.vm.0 as u64)),
                    ("phase".to_owned(), Value::Str(s.phase.as_str().to_owned())),
                    ("worker".to_owned(), Value::U64(s.worker as u64)),
                    ("slices".to_owned(), Value::U64(s.slices)),
                    ("now_ns".to_owned(), Value::U64(s.probe.now_ns)),
                    ("events_in".to_owned(), Value::U64(s.probe.events_in)),
                    ("pending_findings".to_owned(), Value::U64(s.probe.pending_findings)),
                    ("container_backlog".to_owned(), Value::U64(s.probe.container_backlog)),
                    ("findings".to_owned(), Value::U64(s.findings)),
                    ("halted".to_owned(), Value::Bool(s.halted)),
                ])
            })
            .collect();
        serde_json::to_string_pretty(&Value::Array(rows)).expect("vms serializes")
    }

    /// One self-watchdog sweep: a worker that is not done and has made no
    /// progress for longer than `max_age` is marked stalled — raising a
    /// `MonitorStalled` finding on the bus and degrading `/healthz` — and
    /// un-marked once it beats again. Returns the findings raised by this
    /// sweep (they are already published).
    pub fn check_stalls(&self, max_age: StdDuration) -> Vec<Finding> {
        let mut raised = Vec::new();
        {
            let mut state = self.lock();
            let mut episodes = 0u64;
            for w in &mut state.workers {
                let age = w.last_beat.elapsed();
                if !w.done && age > max_age {
                    if !w.stalled {
                        w.stalled = true;
                        episodes += 1;
                        raised.push(Finding::new(
                            "selfwatch",
                            hypertap_hvsim::clock::SimTime::from_nanos(w.last_now_ns),
                            Severity::Alert,
                            format!(
                                "MonitorStalled: worker {} made no progress for {:?} \
                                     ({} beats observed)",
                                w.worker, age, w.beats
                            ),
                        ));
                    }
                } else if w.stalled {
                    w.stalled = false;
                }
            }
            state.stall_episodes += episodes;
            state.degraded = state.workers.iter().any(|w| w.stalled);
        }
        for f in &raised {
            self.bus.publish(MONITOR_VM, f);
        }
        raised
    }
}

// ---------------------------------------------------------------------------
// SelfWatch
// ---------------------------------------------------------------------------

/// The monitor self-watchdog thread: sweeps the hub's worker heartbeats
/// several times per period so a stall is noticed within one watchdog
/// period of exceeding it. Stop via [`SelfWatch::stop`]; drop is
/// best-effort and never blocks.
pub struct SelfWatch {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl SelfWatch {
    /// Starts watching `hub` with the given stall period.
    pub fn start(hub: Arc<TelemetryHub>, period: StdDuration) -> SelfWatch {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        // Sweeping at period/4 bounds detection delay to one sweep past
        // the stall threshold: degradation within one period of wedging.
        let sweep = period / 4;
        let handle = std::thread::Builder::new()
            .name("hypertap-selfwatch".to_owned())
            .spawn(move || {
                while !flag.load(Ordering::SeqCst) {
                    std::thread::sleep(sweep);
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    hub.check_stalls(period);
                }
            })
            .expect("spawn selfwatch");
        SelfWatch { stop, handle: Some(handle) }
    }

    /// Stops the watchdog and joins its thread. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SelfWatch {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.handle.take();
    }
}

// ---------------------------------------------------------------------------
// TelemetryServer
// ---------------------------------------------------------------------------

/// The telemetry HTTP/1.1 server. Same lifecycle as `rhc::RhcServer`: an
/// accept thread spawns one handler thread per connection, all watching a
/// shared shutdown flag; [`TelemetryServer::stop`] raises the flag, nudges
/// the accept loop with a throwaway connection, and joins.
pub struct TelemetryServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds an ephemeral local port and starts serving `hub`.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn start(hub: Arc<TelemetryHub>) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("hypertap-telemetry".to_owned())
            .spawn(move || {
                let mut handlers: Vec<JoinHandle<()>> = Vec::new();
                while let Ok((stream, _)) = listener.accept() {
                    // `stop` wakes us with a throwaway connection after
                    // setting the flag; check it before serving.
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let hub = Arc::clone(&hub);
                    let conn_flag = Arc::clone(&stop_flag);
                    handlers.push(std::thread::spawn(move || {
                        serve_http_connection(stream, &hub, &conn_flag);
                    }));
                    handlers.retain(|h| !h.is_finished());
                }
                for h in handlers {
                    let _ = h.join();
                }
            })
            .expect("spawn telemetry server");
        Ok(TelemetryServer { addr, shutdown, handle: Some(handle) })
    }

    /// The address to scrape.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, unblocks every handler, and joins. Idempotent.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        // Best-effort, never blocking (call `stop` for a synchronous
        // shutdown): raise the flag and nudge the accept loop.
        self.shutdown.store(true, Ordering::SeqCst);
        if self.handle.is_some() {
            let _ = TcpStream::connect(self.addr);
        }
        self.handle.take();
    }
}

/// Reads one HTTP request (request line + headers) and returns the path,
/// tolerating read timeouts so the handler can notice shutdown while a
/// client dribbles its request in.
fn read_request_path(reader: &mut BufReader<TcpStream>, shutdown: &AtomicBool) -> Option<String> {
    let mut request_line = String::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return None;
        }
        match reader.read_line(&mut request_line) {
            Ok(0) => return None, // EOF before a full request.
            Ok(_) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return None,
        }
    }
    // GET /path HTTP/1.1
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?.to_owned();
    if method != "GET" {
        return Some(format!("!{method}"));
    }
    // Drain headers up to the blank line; ignore their contents.
    let mut header = String::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header.trim().is_empty() => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
    Some(path)
}

fn write_response(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Streams the finding bus as NDJSON until the client disconnects or the
/// server shuts down. The subscriber is bounded, so a stalled client
/// drops findings rather than backing the bus up.
fn stream_findings(stream: &mut TcpStream, hub: &TelemetryHub, shutdown: &AtomicBool) {
    let sub = hub.subscribe(DEFAULT_SUBSCRIBER_CAPACITY);
    let head = "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
                Connection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    while !shutdown.load(Ordering::SeqCst) {
        let batch = sub.drain();
        for (vm, f) in &batch {
            let mut line = finding_json(*vm, f);
            line.push('\n');
            if stream.write_all(line.as_bytes()).is_err() {
                return;
            }
        }
        if stream.flush().is_err() {
            return;
        }
        std::thread::sleep(StdDuration::from_millis(25));
    }
}

fn serve_http_connection(mut stream: TcpStream, hub: &TelemetryHub, shutdown: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(StdDuration::from_millis(25)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let Some(path) = read_request_path(&mut reader, shutdown) else {
        return;
    };
    let route = path.split('?').next().unwrap_or("");
    match route {
        "/metrics" => {
            let body = hub.scrape().to_prometheus();
            write_response(&mut stream, "200 OK", "text/plain; version=0.0.4", &body);
        }
        "/metrics.json" => {
            let body = hub.scrape().to_json();
            write_response(&mut stream, "200 OK", "application/json", &body);
        }
        "/healthz" => {
            let (healthy, body) = hub.healthz();
            let status = if healthy { "200 OK" } else { "503 Service Unavailable" };
            write_response(&mut stream, status, "application/json", &body);
        }
        "/vms" => {
            write_response(&mut stream, "200 OK", "application/json", &hub.vms_json());
        }
        "/findings" => stream_findings(&mut stream, hub, shutdown),
        p if p.starts_with('!') => {
            write_response(
                &mut stream,
                "405 Method Not Allowed",
                "text/plain",
                "only GET is supported\n",
            );
        }
        _ => {
            write_response(
                &mut stream,
                "404 Not Found",
                "text/plain",
                "unknown path; try /metrics /metrics.json /healthz /vms /findings\n",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::DeliveryStats;
    use crate::fleet::{run_fleet, FleetConfig, FleetHost, FleetVm, FleetWorkload, SliceOutcome};
    use hypertap_hvsim::clock::SimTime;
    use std::io::Read as _;

    fn mk_finding(i: u64) -> Finding {
        Finding::new("t", SimTime::from_nanos(i), Severity::Info, format!("f{i}"))
    }

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let req = format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n");
        stream.write_all(req.as_bytes()).unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        let (head, body) = buf.split_once("\r\n\r\n").expect("complete response");
        let status = head.lines().next().unwrap_or("").to_owned();
        (status, body.to_owned())
    }

    #[test]
    fn bus_delivers_in_order_and_unsubscribes_on_drop() {
        let bus = FindingBus::new();
        let sub = bus.subscribe(16);
        bus.publish(VmId(1), &mk_finding(1));
        bus.publish(VmId(2), &mk_finding(2));
        let got = sub.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, VmId(1));
        assert_eq!(got[1].1.message, "f2");
        assert_eq!(bus.published(), 2);
        assert_eq!(bus.subscriber_count(), 1);
        drop(sub);
        assert_eq!(bus.subscriber_count(), 0);
        // Publishing with no subscribers is fine and drops nothing.
        bus.publish(VmId(3), &mk_finding(3));
        assert_eq!(bus.dropped(), 0);
    }

    #[test]
    fn slow_subscriber_drops_are_counted_per_subscriber() {
        let bus = FindingBus::new();
        let slow = bus.subscribe(2);
        let fast = bus.subscribe(100);
        for i in 0..10 {
            bus.publish(VmId(0), &mk_finding(i));
        }
        assert_eq!(slow.dropped(), 8, "capacity 2 keeps 2 of 10");
        assert_eq!(slow.drain().len(), 2);
        assert_eq!(fast.dropped(), 0);
        assert_eq!(fast.drain().len(), 10);
        assert_eq!(bus.dropped(), 8);
        // After draining, the slow queue has room again.
        bus.publish(VmId(0), &mk_finding(99));
        assert_eq!(slow.drain().len(), 1);
        assert_eq!(slow.dropped(), 8);
    }

    #[test]
    fn finding_json_is_one_parseable_line() {
        let f = Finding::new(
            "goshd",
            SimTime::from_millis(310),
            Severity::Alert,
            "vcpu0 \"hung\"\nbadly",
        )
        .with_provenance(vec![crate::event::EventRef(4), crate::event::EventRef(9)]);
        let line = finding_json(VmId(7), &f);
        assert!(!line.contains('\n'), "NDJSON lines must not wrap: {line:?}");
        let v: Value = serde_json::from_str(&line).expect("line parses");
        assert_eq!(v.get("vm"), Some(&Value::U64(7)));
        assert_eq!(v.get("auditor"), Some(&Value::Str("goshd".to_owned())));
        assert_eq!(v.get("severity"), Some(&Value::Str("ALERT".to_owned())));
        let Some(Value::Array(prov)) = v.get("provenance") else {
            panic!("provenance must be an array");
        };
        assert_eq!(prov.len(), 2);
    }

    /// A stub fleet VM that emits one finding per slice via its report.
    struct ChattyVm {
        id: VmId,
        slices: u64,
        taken: u64,
        block: Option<Arc<AtomicBool>>,
    }

    impl FleetVm for ChattyVm {
        fn step_slice(&mut self) -> SliceOutcome {
            if let Some(gate) = &self.block {
                while gate.load(Ordering::SeqCst) {
                    std::thread::sleep(StdDuration::from_millis(1));
                }
            }
            self.taken += 1;
            if self.taken >= self.slices {
                SliceOutcome::Done
            } else {
                SliceOutcome::Running
            }
        }

        fn finish(&mut self) -> VmReport {
            let findings = (0..self.taken)
                .map(|i| {
                    Finding::new(
                        "stub",
                        SimTime::from_nanos(self.id.0 as u64 * 1000 + i),
                        Severity::Info,
                        format!("vm {} slice {i}", self.id.0),
                    )
                })
                .collect();
            VmReport {
                vm: self.id,
                findings,
                stats: DeliveryStats { events_in: self.taken, ..Default::default() },
                metrics: MetricsRegistry::new(),
                halted: false,
                payload: Vec::new(),
            }
        }
    }

    struct ChattyFleet {
        slices: u64,
        block_vm0: Option<Arc<AtomicBool>>,
    }

    impl FleetWorkload for ChattyFleet {
        fn build_vm(&self, vm: VmId) -> Box<dyn FleetVm> {
            let block = if vm.0 == 0 { self.block_vm0.clone() } else { None };
            Box::new(ChattyVm { id: vm, slices: self.slices, taken: 0, block })
        }
    }

    fn report_fingerprint(report: &crate::fleet::FleetReport) -> Vec<(VmId, Vec<Finding>, u64)> {
        report.per_vm.iter().map(|r| (r.vm, r.findings.clone(), r.stats.events_in)).collect()
    }

    #[test]
    fn fleet_results_are_bit_identical_with_zero_vs_many_subscribers() {
        let workload = Arc::new(ChattyFleet { slices: 4, block_vm0: None });
        let plain = run_fleet(Arc::clone(&workload) as _, FleetConfig::new(8, 3));

        let hub = Arc::new(TelemetryHub::new());
        let _many: Vec<FindingSubscriber> = vec![
            hub.subscribe(1), // pathologically slow
            hub.subscribe(4),
            hub.subscribe(1024),
        ];
        let host = FleetHost::launch_with_telemetry(
            Arc::clone(&workload) as _,
            FleetConfig::new(8, 3),
            Arc::clone(&hub),
        );
        let observed = host.join();
        assert_eq!(
            report_fingerprint(&plain),
            report_fingerprint(&observed),
            "telemetry plane must not perturb fleet results"
        );
        // The bus saw every finding exactly once (4 per VM × 8 VMs).
        assert_eq!(hub.bus().published(), 32);
        assert!(hub.bus().dropped() > 0, "the capacity-1 subscriber must have dropped");
    }

    #[test]
    fn subscriber_churn_during_a_running_fleet_is_safe() {
        let hub = Arc::new(TelemetryHub::new());
        let churn_hub = Arc::clone(&hub);
        let stop = Arc::new(AtomicBool::new(false));
        let churn_stop = Arc::clone(&stop);
        let churner = std::thread::spawn(move || {
            let mut drained = 0u64;
            while !churn_stop.load(Ordering::SeqCst) {
                let sub = churn_hub.subscribe(8);
                drained += sub.drain().len() as u64;
                drop(sub);
            }
            drained
        });
        let report = FleetHost::launch_with_telemetry(
            Arc::new(ChattyFleet { slices: 6, block_vm0: None }),
            FleetConfig::new(12, 4),
            Arc::clone(&hub),
        )
        .join();
        stop.store(true, Ordering::SeqCst);
        churner.join().expect("churner survives");
        assert_eq!(report.per_vm.len(), 12);
        assert_eq!(hub.bus().published(), 12 * 6);
        assert_eq!(hub.bus().subscriber_count(), 0);
    }

    #[test]
    fn hub_tracks_vm_lifecycle_and_worker_beats() {
        let hub = Arc::new(TelemetryHub::new());
        let report = FleetHost::launch_with_telemetry(
            Arc::new(ChattyFleet { slices: 3, block_vm0: None }),
            FleetConfig::new(4, 2),
            Arc::clone(&hub),
        )
        .join();
        assert_eq!(report.per_vm.len(), 4);
        let vms = hub.vms();
        assert_eq!(vms.len(), 4);
        for s in &vms {
            assert_eq!(s.phase, VmPhase::Done);
            assert_eq!(s.slices, 3);
            assert_eq!(s.findings, 3);
        }
        let workers = hub.workers();
        assert_eq!(workers.len(), 2);
        assert!(workers.iter().all(|w| w.done));
        assert_eq!(workers.iter().map(|w| w.beats).sum::<u64>(), 4 * 3);
        let scrape = hub.scrape();
        assert!(scrape.captured_at_unix_ns().is_some(), "scrape must be stamped");
        assert_eq!(scrape.merged_from(), 4, "one merged registry per finished VM");
        assert_eq!(
            scrape.find("hypertap_telemetry_findings_published_total", &[]).unwrap().as_counter(),
            Some(12)
        );
    }

    #[test]
    fn http_endpoints_serve_metrics_health_and_vms() {
        let hub = Arc::new(TelemetryHub::new());
        hub.vm_progress(VmId(0), 0, Some(VmProbe { now_ns: 123, ..Default::default() }));
        let mut server = TelemetryServer::start(Arc::clone(&hub)).expect("server starts");
        let addr = server.addr();

        let (status, body) = http_get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("hypertap_telemetry_findings_published_total 0"));

        let (status, body) = http_get(addr, "/metrics.json");
        assert!(status.contains("200"), "{status}");
        let reg = MetricsRegistry::from_json(&body).expect("scrape JSON parses");
        assert!(reg.captured_at_unix_ns().is_some());

        let (status, body) = http_get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"status\": \"ok\""), "{body}");

        let (status, body) = http_get(addr, "/vms");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"now_ns\": 123"), "{body}");

        let (status, _) = http_get(addr, "/nope");
        assert!(status.contains("404"), "{status}");

        server.stop();
        server.stop(); // idempotent
    }

    #[test]
    fn findings_endpoint_streams_ndjson_live() {
        let hub = Arc::new(TelemetryHub::new());
        let mut server = TelemetryServer::start(Arc::clone(&hub)).expect("server starts");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(b"GET /findings HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        stream.set_read_timeout(Some(StdDuration::from_millis(50))).expect("read timeout");
        let mut reader = BufReader::new(stream);
        // Publish after the subscription is live: wait for the headers.
        let mut line = String::new();
        let deadline = Instant::now() + StdDuration::from_secs(5);
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(_) if line.trim().is_empty() && !line.is_empty() => break,
                Ok(0) => panic!("server closed before headers finished"),
                Ok(_) => {}
                Err(_) => {}
            }
            assert!(Instant::now() < deadline, "headers never arrived");
        }
        // Wait until the stream's subscriber is registered, then publish.
        while hub.bus().subscriber_count() == 0 {
            assert!(Instant::now() < deadline, "stream subscriber never registered");
            std::thread::sleep(StdDuration::from_millis(5));
        }
        hub.bus().publish(VmId(3), &mk_finding(42));
        let mut got = String::new();
        loop {
            got.clear();
            match reader.read_line(&mut got) {
                Ok(n) if n > 0 && !got.trim().is_empty() => break,
                _ => {}
            }
            assert!(Instant::now() < deadline, "finding line never arrived");
        }
        let v: Value = serde_json::from_str(got.trim()).expect("NDJSON line parses");
        assert_eq!(v.get("vm"), Some(&Value::U64(3)));
        assert_eq!(v.get("message"), Some(&Value::Str("f42".to_owned())));
        server.stop();
    }

    #[test]
    fn healthz_degrades_within_one_watchdog_period_when_a_worker_stalls() {
        let gate = Arc::new(AtomicBool::new(true)); // VM 0 blocks while true
        let hub = Arc::new(TelemetryHub::new());
        let sub = hub.subscribe(64);
        let host = FleetHost::launch_with_telemetry(
            Arc::new(ChattyFleet { slices: 3, block_vm0: Some(Arc::clone(&gate)) }),
            FleetConfig::new(2, 2),
            Arc::clone(&hub),
        );
        let period = StdDuration::from_millis(150);
        let mut watch = SelfWatch::start(Arc::clone(&hub), period);
        let mut server = TelemetryServer::start(Arc::clone(&hub)).expect("server starts");

        // Worker 0 is wedged inside VM 0's slice; /healthz must flip to
        // degraded within one watchdog period of the stall exceeding it.
        let deadline = Instant::now() + StdDuration::from_secs(10);
        loop {
            let (status, body) = http_get(server.addr(), "/healthz");
            if status.contains("503") {
                assert!(body.contains("\"status\": \"degraded\""), "{body}");
                break;
            }
            assert!(Instant::now() < deadline, "/healthz never degraded: {status}");
            std::thread::sleep(StdDuration::from_millis(20));
        }
        // The watchdog raised MonitorStalled on the bus.
        let mut stalled_seen = false;
        while Instant::now() < deadline && !stalled_seen {
            stalled_seen = sub
                .drain()
                .iter()
                .any(|(vm, f)| *vm == MONITOR_VM && f.message.contains("MonitorStalled"));
            if !stalled_seen {
                std::thread::sleep(StdDuration::from_millis(10));
            }
        }
        assert!(stalled_seen, "MonitorStalled finding never published");

        // Unblock: the worker recovers, health returns to ok.
        gate.store(false, Ordering::SeqCst);
        let report = host.join();
        assert_eq!(report.per_vm.len(), 2);
        loop {
            let (status, _) = http_get(server.addr(), "/healthz");
            if status.contains("200") {
                break;
            }
            assert!(Instant::now() < deadline, "/healthz never recovered");
            std::thread::sleep(StdDuration::from_millis(20));
        }
        watch.stop();
        server.stop();
    }

    #[test]
    fn aggregator_bus_tap_publishes_on_absorb() {
        let bus = FindingBus::new();
        let sub = bus.subscribe(16);
        let mut agg = crate::fleet::FleetAggregator::new();
        agg.attach_bus(bus.clone());
        let report = VmReport {
            vm: VmId(5),
            findings: vec![mk_finding(1), mk_finding(2)],
            stats: DeliveryStats::default(),
            metrics: MetricsRegistry::new(),
            halted: false,
            payload: Vec::new(),
        };
        agg.absorb(&report);
        let got = sub.drain();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|(vm, _)| *vm == VmId(5)));
    }
}
