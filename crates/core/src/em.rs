//! The Event Multiplexer (EM) — HyperTap's unified delivery hub.
//!
//! The EM receives every decoded event from the Event Forwarder exactly once
//! (the "blocking logging" phase) and fans it out to the registered
//! auditors. Two delivery paths exist, matching the paper's Fig. 2:
//!
//! * **Synchronous auditors** ([`crate::audit::Auditor`]) run in-line during
//!   exit handling, with mutable access to the VM. This is the *blocking*
//!   mode: an auditor can pause the VM or suppress the intercepted
//!   operation before it takes architectural effect. Deterministic; the
//!   default for experiments.
//! * **Audit containers** ([`ContainerAuditor`]) run on their own host
//!   threads behind a channel, mirroring the paper's LXC-container
//!   deployment: delivery is non-blocking for the guest, and a panicking
//!   auditor is caught, counted and restarted from its factory without
//!   affecting the VM, other auditors, or the host — the lightweight fault
//!   isolation argued for in §V-C.
//!
//! The EM also samples the raw exit stream to the Remote Health Checker
//! (§V-C): if the monitoring stack itself dies, the RHC's heartbeat gap
//! raises the alarm.
//!
//! # Hot path
//!
//! Fan-out sits on the exit path, so it is engineered to do no avoidable
//! per-event work:
//!
//! * A **precomputed routing table** (one slot per [`EventClass`], each
//!   listing exactly the subscribed auditor and container indices) is built
//!   at registration time and invalidated on attach/detach or
//!   re-subscription ([`EventMultiplexer::refresh_subscriptions`]). Fan-out
//!   walks only the subscribers of the event's class — no per-event mask
//!   tests against every auditor — and an empty slot short-circuits the
//!   whole event, counted in [`DeliveryStats::fast_skipped`] exactly as the
//!   older combined-mask check did.
//! * [`EventMultiplexer::deliver_batch`] fans a whole staged batch out with
//!   one finding sink, one dispatch-latency observation and flight
//!   absorption only for events that actually produced findings or
//!   transitions — the amortized path the batched Event Forwarder uses.
//! * Container delivery is **zero-copy**: one `Arc<Event>` is built per
//!   event (lazily, only if some container is subscribed) and each
//!   subscribed container receives a reference-count bump instead of a full
//!   `Event` copy. This also shrinks every channel message — including
//!   `Tick`, which previously paid for the largest enum variant (a whole
//!   inline `Event`) on each send.
//! * Findings from synchronous auditors accumulate into a single sink that
//!   borrows the EM's own buffer via `mem::take`, instead of allocating a
//!   fresh `Vec` per auditor per event.
//! * [`EventMultiplexer::deliver_all`] dispatches a whole exit's decoded
//!   events in one call, reusing the same sink across the batch — the path
//!   the Event Forwarder ([`crate::kvm::Kvm`]) uses.

use crate::audit::{Auditor, Finding, FindingSink, Severity};
use crate::event::{Event, EventClass, EventMask, EventRef, VmId};
use crate::flight::{panic_message, FlightRecorder};
use crate::metrics::{Histogram, MetricsRegistry};
use crate::rhc::{HeartbeatSample, RhcTransport};
use crate::telemetry::FindingBus;
use hypertap_hvsim::clock::SimTime;
use hypertap_hvsim::machine::VmState;
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// An auditor that runs inside an audit container (own thread, no VM
/// access). Containerised audit is inherently after-the-fact: it can detect
/// and report, but not block the intercepted operation.
pub trait ContainerAuditor: Send {
    /// Name used in findings.
    fn name(&self) -> &str;

    /// Event classes to deliver.
    fn subscriptions(&self) -> EventMask;

    /// Handles one event, returning any findings.
    fn on_event(&mut self, event: &Event) -> Vec<Finding>;

    /// Periodic callback, returning any findings.
    fn on_tick(&mut self, _now: SimTime) -> Vec<Finding> {
        Vec::new()
    }
}

/// Factory that (re)builds a container auditor; used for restart after a
/// panic.
pub type ContainerFactory = Box<dyn Fn() -> Box<dyn ContainerAuditor> + Send>;

/// A passive observer at the Event Forwarder boundary.
///
/// A tap sees every event the EM receives — *before* subscription
/// filtering, so even events no auditor claimed are observed — plus every
/// periodic tick, in exactly the interleaving the auditors experienced.
/// Trace recorders (`hypertap-replay`) attach here: replaying the recorded
/// (event | tick) stream into a fresh EM reproduces the audit phase
/// bit-for-bit without re-running the simulator.
///
/// Taps must not mutate anything the guest can observe; they are the
/// record half of record–replay, and a tap with side effects would make
/// the recorded history diverge from the unrecorded one.
pub trait EventTap {
    /// Called once per forwarded event, before fan-out.
    fn on_event(&mut self, event: &Event);

    /// Called once per EM periodic tick, before auditors run.
    fn on_tick(&mut self, _now: SimTime) {}
}

/// Fans the single EM tap slot out to two taps, first then second, for
/// callers that need to observe the stream twice in one pass — e.g. the
/// scenario fuzzer recording a trace while folding a coverage map.
pub struct TeeTap {
    first: Box<dyn EventTap>,
    second: Box<dyn EventTap>,
}

impl TeeTap {
    /// Combines two taps; `first` sees every callback before `second`.
    pub fn new(first: Box<dyn EventTap>, second: Box<dyn EventTap>) -> TeeTap {
        TeeTap { first, second }
    }
}

impl EventTap for TeeTap {
    fn on_event(&mut self, event: &Event) {
        self.first.on_event(event);
        self.second.on_event(event);
    }

    fn on_tick(&mut self, now: SimTime) {
        self.first.on_tick(now);
        self.second.on_tick(now);
    }
}

enum ContainerMsg {
    /// Shared, not copied: every subscribed container gets the same
    /// allocation.
    Event(Arc<Event>),
    Tick(SimTime),
    Stop,
}

struct Container {
    name: String,
    mask: EventMask,
    tx: Sender<ContainerMsg>,
    handle: Option<JoinHandle<u64>>, // returns restart count
    /// Messages sent but not yet processed by the worker (Stop excluded).
    /// Incremented host-side on send, decremented by the worker thread —
    /// a live queue-depth gauge for the snapshot exporter.
    depth: Arc<AtomicU64>,
    /// Events enqueued to this container over its lifetime.
    enqueued: u64,
}

/// Delivery statistics (queried by benchmarks and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Events that entered fan-out (pre-filter, one per forwarded event).
    pub events_in: u64,
    /// Events delivered to synchronous auditors (per-auditor deliveries).
    pub sync_delivered: u64,
    /// Events enqueued to containers (per-container deliveries).
    pub container_enqueued: u64,
    /// Events that matched no subscription at all.
    pub unclaimed: u64,
    /// Unclaimed events rejected by the combined-mask check alone, before
    /// any per-auditor or per-container work.
    pub fast_skipped: u64,
    /// Exit-stream samples forwarded to the RHC.
    pub rhc_samples: u64,
}

impl DeliveryStats {
    /// Adds another VM's counters field-wise — the fleet aggregator's
    /// merge. Commutative, associative, and the default value is the
    /// identity.
    pub fn merge(&mut self, other: DeliveryStats) {
        self.events_in += other.events_in;
        self.sync_delivered += other.sync_delivered;
        self.container_enqueued += other.container_enqueued;
        self.unclaimed += other.unclaimed;
        self.fast_skipped += other.fast_skipped;
        self.rhc_samples += other.rhc_samples;
    }
}

struct RhcHook {
    transport: Box<dyn RhcTransport>,
    every: u64,
    seen: u64,
    seq: u64,
}

#[derive(Default)]
struct LocalSink {
    findings: Vec<Finding>,
    suppress: bool,
    /// Ref of the event being fanned out right now (None during ticks);
    /// auditors read it via [`FindingSink::current_ref`] to stamp
    /// provenance.
    current: Option<EventRef>,
    /// Auditor state transitions reported during this fan-out; absorbed
    /// into the flight recorder after the auditor loop returns.
    transitions: Vec<(String, String)>,
}

impl FindingSink for LocalSink {
    fn report(&mut self, finding: Finding) {
        self.findings.push(finding);
    }
    fn request_suppress(&mut self) {
        self.suppress = true;
    }
    fn current_ref(&self) -> Option<EventRef> {
        self.current
    }
    fn note_transition(&mut self, auditor: &str, detail: String) {
        self.transitions.push((auditor.to_owned(), detail));
    }
}

/// One slot of the per-class routing table: the indices of exactly the
/// auditors and containers subscribed to that class, in registration order
/// (delivery order is part of the determinism contract).
#[derive(Debug, Clone, Default)]
struct RouteEntry {
    auditors: Vec<usize>,
    containers: Vec<usize>,
}

impl RouteEntry {
    fn is_empty(&self) -> bool {
        self.auditors.is_empty() && self.containers.is_empty()
    }
}

/// One recorded audit-container panic (satellite of the flight recorder:
/// the restart path used to drop the payload on the floor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerPanic {
    /// Container name.
    pub container: String,
    /// The panic payload's message, best-effort.
    pub message: String,
}

/// The multiplexer itself.
pub struct EventMultiplexer {
    auditors: Vec<Box<dyn Auditor>>,
    containers: Vec<Container>,
    /// Union of every registered subscription; events outside it
    /// short-circuit. Subscriptions are sampled at registration time.
    combined_mask: EventMask,
    /// Per-class routing table, indexed by [`EventClass::index`]. Rebuilt
    /// whenever the subscriber set changes (register, container attach,
    /// shutdown, [`EventMultiplexer::refresh_subscriptions`]); fan-out walks
    /// only the listed indices instead of testing every auditor's mask.
    routing: Vec<RouteEntry>,
    findings: Vec<Finding>,
    container_findings_rx: Receiver<Finding>,
    container_findings_tx: Sender<Finding>,
    stats: DeliveryStats,
    rhc: Option<RhcHook>,
    tap: Option<Box<dyn EventTap>>,
    /// Host-side instrumentation switch: gates the wall-clock dispatch
    /// latency histogram. All other counters are plain integers and stay
    /// on unconditionally. Never observable by the simulation either way.
    metrics_enabled: bool,
    /// Events delivered per synchronous auditor, parallel to `auditors`.
    per_auditor_delivered: Vec<u64>,
    /// Host wall-clock latency of one `fan_out` call, nanoseconds.
    dispatch_latency: Histogram,
    /// Findings drained so far, tallied by [`Severity`] discriminant.
    findings_by_severity: [u64; 3],
    /// Findings drained so far, tallied by reporting auditor name.
    findings_by_auditor: Vec<(String, u64)>,
    /// The per-VM black box: bounded ring of recent events, transitions,
    /// findings, panics and spans. Always on; purely host-side (the
    /// flight-on/off conformance pair proves the stream is unchanged).
    flight: FlightRecorder,
    /// Panic payloads forwarded by container workers on restart.
    panic_rx: Receiver<(String, String)>,
    panic_tx: Sender<(String, String)>,
    /// Every recorded container panic, in drain order.
    panic_log: Vec<ContainerPanic>,
    /// Panic totals per container name.
    panics_by_container: Vec<(String, u64)>,
    /// When set, each container panic also serializes the flight recorder
    /// to a `.htfr` file under this directory.
    flight_dump_dir: Option<PathBuf>,
    /// Dump files written so far.
    flight_dump_paths: Vec<PathBuf>,
    /// Live telemetry tap: every finding drained via
    /// [`EventMultiplexer::drain_findings`] is also published on this bus,
    /// tagged with the VM id. Host-side only — never serialized with EM
    /// state, never observable by the simulation.
    finding_bus: Option<(FindingBus, VmId)>,
}

impl std::fmt::Debug for EventMultiplexer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventMultiplexer")
            .field("auditors", &self.auditors.len())
            .field("containers", &self.containers.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Default for EventMultiplexer {
    fn default() -> Self {
        EventMultiplexer::new()
    }
}

impl EventMultiplexer {
    /// Creates an empty multiplexer.
    pub fn new() -> Self {
        let (tx, rx) = channel();
        let (panic_tx, panic_rx) = channel();
        EventMultiplexer {
            auditors: Vec::new(),
            containers: Vec::new(),
            combined_mask: EventMask::NONE,
            routing: vec![RouteEntry::default(); EventClass::ALL.len()],
            findings: Vec::new(),
            container_findings_rx: rx,
            container_findings_tx: tx,
            stats: DeliveryStats::default(),
            rhc: None,
            tap: None,
            metrics_enabled: false,
            per_auditor_delivered: Vec::new(),
            dispatch_latency: Histogram::latency_ns(),
            findings_by_severity: [0; 3],
            findings_by_auditor: Vec::new(),
            flight: FlightRecorder::default(),
            panic_rx,
            panic_tx,
            panic_log: Vec::new(),
            panics_by_container: Vec::new(),
            flight_dump_dir: None,
            flight_dump_paths: Vec::new(),
            finding_bus: None,
        }
    }

    /// Attaches a live [`FindingBus`] tap: every finding subsequently
    /// drained via [`EventMultiplexer::drain_findings`] is also published
    /// on the bus, tagged as coming from `vm`. The tap is host-side
    /// observation only — it never blocks the exit pipeline (slow
    /// subscribers drop, counted on the bus) and is not part of EM
    /// serialized state.
    pub fn set_finding_bus(&mut self, bus: FindingBus, vm: VmId) {
        self.finding_bus = Some((bus, vm));
    }

    /// Detaches the telemetry tap, if any.
    pub fn clear_finding_bus(&mut self) {
        self.finding_bus = None;
    }

    /// Enables or disables the host wall-clock dispatch-latency histogram.
    /// Purely host-side; the simulated event stream is identical either way
    /// (enforced by the metrics-on/off conformance pair).
    pub fn set_metrics_enabled(&mut self, on: bool) {
        self.metrics_enabled = on;
    }

    /// Whether dispatch-latency instrumentation is on.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics_enabled
    }

    /// Attaches an [`EventTap`] observing the full pre-filter event and
    /// tick stream. At most one tap is attached; a previous tap is
    /// returned so callers can chain or finish it.
    pub fn attach_tap(&mut self, tap: Box<dyn EventTap>) -> Option<Box<dyn EventTap>> {
        self.tap.replace(tap)
    }

    /// Detaches the tap, if any.
    pub fn detach_tap(&mut self) -> Option<Box<dyn EventTap>> {
        self.tap.take()
    }

    /// Registers a synchronous auditor.
    pub fn register(&mut self, auditor: Box<dyn Auditor>) {
        self.combined_mask = self.combined_mask.union(auditor.subscriptions());
        self.auditors.push(auditor);
        self.per_auditor_delivered.push(0);
        self.rebuild_routing();
    }

    /// Rebuilds the per-class routing table from the current subscription
    /// masks. Registration-time cost, so the hot path never re-derives it.
    fn rebuild_routing(&mut self) {
        for entry in &mut self.routing {
            entry.auditors.clear();
            entry.containers.clear();
        }
        for class in EventClass::ALL {
            let slot = class.index();
            for (i, a) in self.auditors.iter().enumerate() {
                if a.subscriptions().contains(class) {
                    self.routing[slot].auditors.push(i);
                }
            }
            for (ci, c) in self.containers.iter().enumerate() {
                if c.mask.contains(class) {
                    self.routing[slot].containers.push(ci);
                }
            }
        }
    }

    /// Invalidates the routing table and combined mask after an auditor
    /// changed its subscriptions in place (the table is otherwise sampled
    /// at registration time). Containers keep the mask their factory
    /// declared.
    pub fn refresh_subscriptions(&mut self) {
        self.combined_mask = self
            .auditors
            .iter()
            .map(|a| a.subscriptions())
            .chain(self.containers.iter().map(|c| c.mask))
            .fold(EventMask::NONE, EventMask::union);
        self.rebuild_routing();
    }

    /// Number of registered synchronous auditors.
    pub fn auditor_count(&self) -> usize {
        self.auditors.len()
    }

    /// Looks up a registered synchronous auditor by concrete type.
    pub fn auditor<A: Auditor + 'static>(&self) -> Option<&A> {
        self.auditors.iter().find_map(|a| a.as_any().downcast_ref::<A>())
    }

    /// Mutable lookup of a registered synchronous auditor by concrete type.
    pub fn auditor_mut<A: Auditor + 'static>(&mut self) -> Option<&mut A> {
        self.auditors.iter_mut().find_map(|a| a.as_any_mut().downcast_mut::<A>())
    }

    /// Spawns an audit container from a factory. The factory is re-invoked
    /// to rebuild the auditor if it panics (failure isolation).
    pub fn register_container(&mut self, factory: ContainerFactory) {
        let prototype = factory();
        let name = prototype.name().to_owned();
        let mask = prototype.subscriptions();
        self.combined_mask = self.combined_mask.union(mask);
        let (tx, rx) = channel::<ContainerMsg>();
        let findings_tx = self.container_findings_tx.clone();
        let panic_tx = self.panic_tx.clone();
        let worker_name = name.clone();
        let depth = Arc::new(AtomicU64::new(0));
        let worker_depth = Arc::clone(&depth);
        let handle = std::thread::spawn(move || {
            let mut auditor = prototype;
            let mut restarts = 0u64;
            while let Ok(msg) = rx.recv() {
                let result = catch_unwind(AssertUnwindSafe(|| match &msg {
                    ContainerMsg::Event(e) => auditor.on_event(e),
                    ContainerMsg::Tick(now) => auditor.on_tick(*now),
                    ContainerMsg::Stop => Vec::new(),
                }));
                if matches!(msg, ContainerMsg::Stop) {
                    break;
                }
                worker_depth.fetch_sub(1, Ordering::Relaxed);
                match result {
                    Ok(findings) => {
                        for f in findings {
                            let _ = findings_tx.send(f);
                        }
                    }
                    Err(payload) => {
                        // The container absorbed the failure: rebuild the
                        // auditor and keep serving. The VM, the EM and the
                        // other auditors never notice — but the payload is
                        // preserved for metrics and the flight recorder.
                        restarts += 1;
                        let _ = panic_tx.send((worker_name.clone(), panic_message(payload)));
                        auditor = factory();
                    }
                }
            }
            restarts
        });
        self.containers.push(Container {
            name,
            mask,
            tx,
            handle: Some(handle),
            depth,
            enqueued: 0,
        });
        self.rebuild_routing();
    }

    /// Number of running audit containers.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Attaches a Remote Health Checker transport: every `every`-th exit is
    /// forwarded as a heartbeat sample.
    pub fn attach_rhc(&mut self, transport: Box<dyn RhcTransport>, every: u64) {
        assert!(every > 0, "sampling period must be positive");
        self.rhc = Some(RhcHook { transport, every, seen: 0, seq: 0 });
    }

    /// Fans one event out to subscribed auditors and containers, collecting
    /// synchronous findings into `sink`. Wraps the real fan-out with the
    /// (host wall-clock, simulation-invisible) dispatch-latency probe.
    fn fan_out(&mut self, vm: &mut VmState, event: &Event, sink: &mut LocalSink) {
        if !self.metrics_enabled {
            self.fan_out_inner(vm, event, sink);
            return;
        }
        let started = std::time::Instant::now();
        self.fan_out_inner(vm, event, sink);
        let elapsed = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.dispatch_latency.observe(elapsed);
    }

    fn fan_out_inner(&mut self, vm: &mut VmState, event: &Event, sink: &mut LocalSink) {
        if let Some(tap) = &mut self.tap {
            tap.on_event(event);
        }
        // The flight recorder shares the tap's pre-filter vantage point:
        // the ref it assigns is the event's position in the forwarded
        // stream, which is also its index among a recorded trace's event
        // records. Sequencing advances even with recording disabled, so
        // provenance is identical flight-on and flight-off.
        sink.current = Some(self.flight.observe_event(event));
        self.stats.events_in += 1;
        let route = &self.routing[event.class().index()];
        if route.is_empty() {
            // Nobody anywhere subscribed: one table lookup and we are done.
            self.stats.unclaimed += 1;
            self.stats.fast_skipped += 1;
            return;
        }
        // Disjoint field borrows: the route is read-only while the auditors
        // and counters are mutated.
        for &i in &route.auditors {
            self.auditors[i].on_event(vm, event, sink);
            self.stats.sync_delivered += 1;
            self.per_auditor_delivered[i] += 1;
        }
        // One shared allocation per event, built only if some container is
        // subscribed; each delivery is a refcount bump.
        let mut shared: Option<Arc<Event>> = None;
        for &ci in &route.containers {
            let c = &mut self.containers[ci];
            let arc = shared.get_or_insert_with(|| Arc::new(*event));
            c.depth.fetch_add(1, Ordering::Relaxed);
            let _ = c.tx.send(ContainerMsg::Event(Arc::clone(arc)));
            c.enqueued += 1;
            self.stats.container_enqueued += 1;
        }
    }

    /// Moves the transitions and new findings a fan-out produced into the
    /// flight recorder, stamped at `time`.
    fn absorb_flight(&mut self, sink: &mut LocalSink, since: usize, time: SimTime) {
        for (auditor, detail) in sink.transitions.drain(..) {
            self.flight.note_transition(time, &auditor, detail);
        }
        for f in &sink.findings[since..] {
            self.flight.note_finding(f);
        }
    }

    /// Dispatches one event to everything subscribed. Returns `true` if any
    /// synchronous auditor requested suppression of the intercepted
    /// operation.
    pub fn dispatch(&mut self, vm: &mut VmState, event: &Event) -> bool {
        let mut sink =
            LocalSink { findings: std::mem::take(&mut self.findings), ..LocalSink::default() };
        let since = sink.findings.len();
        self.fan_out(vm, event, &mut sink);
        self.absorb_flight(&mut sink, since, event.time);
        self.findings = sink.findings;
        sink.suppress
    }

    /// Dispatches every event decoded from one exit in a single batch,
    /// reusing one finding sink across the whole fan-out. Returns `true` if
    /// any synchronous auditor requested suppression.
    pub fn deliver_all(&mut self, vm: &mut VmState, events: &[Event]) -> bool {
        let mut sink =
            LocalSink { findings: std::mem::take(&mut self.findings), ..LocalSink::default() };
        for event in events {
            let since = sink.findings.len();
            self.fan_out(vm, event, &mut sink);
            self.absorb_flight(&mut sink, since, event.time);
        }
        self.findings = sink.findings;
        sink.suppress
    }

    /// Dispatches one staged batch of events — handed over as the (up to)
    /// two contiguous runs of a [`crate::ring::Ring`] — with the
    /// bookkeeping amortized across the batch: one finding sink, one
    /// dispatch-latency observation, and flight absorption only for events
    /// that actually produced findings or transitions. Per-event work is
    /// otherwise identical to [`EventMultiplexer::deliver_all`] (same
    /// fan-out order, same tap and flight-ref sequencing), so the recorded
    /// stream and verdicts are bit-identical. Returns `true` if any
    /// synchronous auditor requested suppression.
    pub fn deliver_batch(&mut self, vm: &mut VmState, front: &[Event], back: &[Event]) -> bool {
        let started = if self.metrics_enabled { Some(std::time::Instant::now()) } else { None };
        let mut sink =
            LocalSink { findings: std::mem::take(&mut self.findings), ..LocalSink::default() };
        for event in front.iter().chain(back) {
            let since = sink.findings.len();
            self.fan_out_inner(vm, event, &mut sink);
            if !sink.transitions.is_empty() || sink.findings.len() > since {
                self.absorb_flight(&mut sink, since, event.time);
            }
        }
        self.findings = sink.findings;
        if let Some(started) = started {
            let elapsed = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.dispatch_latency.observe(elapsed);
        }
        sink.suppress
    }

    /// Periodic tick from the host timer; drives time-based auditors.
    pub fn tick(&mut self, vm: &mut VmState, now: SimTime) {
        if let Some(tap) = &mut self.tap {
            tap.on_tick(now);
        }
        self.flight.observe_tick(now);
        let mut sink =
            LocalSink { findings: std::mem::take(&mut self.findings), ..LocalSink::default() };
        let since = sink.findings.len();
        for a in &mut self.auditors {
            a.on_tick(vm, now, &mut sink);
        }
        self.absorb_flight(&mut sink, since, now);
        self.findings = sink.findings;
        for c in &self.containers {
            c.depth.fetch_add(1, Ordering::Relaxed);
            let _ = c.tx.send(ContainerMsg::Tick(now));
        }
    }

    /// Notes one raw VM Exit for RHC sampling.
    pub fn note_exit(&mut self, time: SimTime) {
        if let Some(hook) = &mut self.rhc {
            hook.seen += 1;
            if hook.seen % hook.every == 0 {
                hook.seq += 1;
                hook.transport.send(&HeartbeatSample { time_ns: time.as_nanos(), seq: hook.seq });
                self.stats.rhc_samples += 1;
            }
        }
    }

    /// Drains every finding accumulated so far (synchronous auditors and
    /// containers alike).
    pub fn drain_findings(&mut self) -> Vec<Finding> {
        self.poll_container_panics();
        let mut out = std::mem::take(&mut self.findings);
        while let Ok(f) = self.container_findings_rx.try_recv() {
            // Synchronous findings were already recorded at fan-out time;
            // container findings only become visible here.
            self.flight.note_finding(&f);
            out.push(f);
        }
        for f in &out {
            self.findings_by_severity[f.severity as usize] += 1;
            match self.findings_by_auditor.iter_mut().find(|(name, _)| *name == f.auditor) {
                Some((_, n)) => *n += 1,
                None => self.findings_by_auditor.push((f.auditor.clone(), 1)),
            }
        }
        if let Some((bus, vm)) = &self.finding_bus {
            bus.publish_all(*vm, &out);
        }
        out
    }

    /// Findings accumulated from synchronous auditors and not yet drained.
    /// (Container findings become countable only at drain time.)
    pub fn pending_findings(&self) -> usize {
        self.findings.len()
    }

    /// Total messages queued across every audit container (sent, not yet
    /// processed) — the telemetry plane's backpressure gauge.
    pub fn container_backlog(&self) -> u64 {
        self.containers.iter().map(|c| c.depth.load(Ordering::Relaxed)).sum()
    }

    /// Delivery statistics.
    pub fn stats(&self) -> DeliveryStats {
        self.stats
    }

    /// Events delivered to the named synchronous auditor.
    pub fn delivered_to(&self, name: &str) -> Option<u64> {
        self.auditors.iter().position(|a| a.name() == name).map(|i| self.per_auditor_delivered[i])
    }

    /// The host-side dispatch-latency histogram (empty unless metrics are
    /// enabled).
    pub fn dispatch_latency(&self) -> &Histogram {
        &self.dispatch_latency
    }

    /// Messages currently queued to the named container (sent, not yet
    /// processed by its worker thread).
    pub fn container_queue_depth(&self, name: &str) -> Option<u64> {
        self.containers.iter().find(|c| c.name == name).map(|c| c.depth.load(Ordering::Relaxed))
    }

    /// Exports the EM's delivery, latency, container and findings counters
    /// into a snapshot registry.
    pub fn collect_metrics(&self, reg: &mut MetricsRegistry) {
        reg.counter(
            "hypertap_em_events_in_total",
            "events entering EM fan-out (pre-filter)",
            self.stats.events_in,
        );
        reg.counter(
            "hypertap_em_sync_delivered_total",
            "per-auditor synchronous deliveries",
            self.stats.sync_delivered,
        );
        reg.counter(
            "hypertap_em_container_enqueued_total",
            "per-container event enqueues",
            self.stats.container_enqueued,
        );
        reg.counter(
            "hypertap_em_unclaimed_total",
            "events matching no subscription",
            self.stats.unclaimed,
        );
        reg.counter(
            "hypertap_em_fast_skipped_total",
            "events rejected by the combined-mask check alone",
            self.stats.fast_skipped,
        );
        reg.gauge(
            "hypertap_em_fast_skip_ratio",
            "fraction of incoming events short-circuited by the combined mask",
            self.stats.fast_skipped as f64 / self.stats.events_in.max(1) as f64,
        );
        for (i, a) in self.auditors.iter().enumerate() {
            reg.counter_with(
                "hypertap_em_delivered_total",
                &[("auditor", a.name())],
                "events delivered per synchronous auditor",
                self.per_auditor_delivered[i],
            );
        }
        for c in &self.containers {
            reg.counter_with(
                "hypertap_container_enqueued_total",
                &[("container", &c.name)],
                "events enqueued per audit container",
                c.enqueued,
            );
        }
        for c in &self.containers {
            reg.gauge_with(
                "hypertap_container_queue_depth",
                &[("container", &c.name)],
                "messages sent to the container but not yet processed",
                c.depth.load(Ordering::Relaxed) as f64,
            );
        }
        for (sev, label) in
            [(Severity::Info, "info"), (Severity::Warning, "warning"), (Severity::Alert, "alert")]
        {
            reg.counter_with(
                "hypertap_findings_total",
                &[("severity", label)],
                "drained findings by severity",
                self.findings_by_severity[sev as usize],
            );
        }
        for (name, n) in &self.findings_by_auditor {
            reg.counter_with(
                "hypertap_findings_by_auditor_total",
                &[("auditor", name)],
                "drained findings by reporting auditor",
                *n,
            );
        }
        for (name, n) in &self.panics_by_container {
            reg.counter_with(
                "hypertap_container_panics_total",
                &[("container", name)],
                "audit-container panics caught and restarted",
                *n,
            );
        }
        reg.gauge(
            "hypertap_flight_records",
            "records currently retained by the flight recorder",
            self.flight.len() as f64,
        );
        reg.gauge(
            "hypertap_flight_capacity",
            "flight recorder ring capacity",
            self.flight.capacity() as f64,
        );
        reg.counter(
            "hypertap_flight_dropped_total",
            "flight records evicted to make room",
            self.flight.dropped(),
        );
        if !self.dispatch_latency.is_empty() {
            reg.histogram(
                "hypertap_em_dispatch_ns",
                "host wall-clock latency of one EM fan-out call, nanoseconds",
                &self.dispatch_latency,
            );
        }
        if let Some(hook) = &self.rhc {
            reg.counter(
                "hypertap_rhc_exits_seen_total",
                "raw exits observed by the RHC sampling hook",
                hook.seen,
            );
            reg.counter(
                "hypertap_rhc_samples_sent_total",
                "heartbeat samples forwarded to the RHC transport",
                hook.seq,
            );
            reg.gauge(
                "hypertap_rhc_sampling_period",
                "exits per heartbeat sample",
                hook.every as f64,
            );
        }
    }

    /// Absorbs any panic payloads container workers have forwarded since
    /// the last poll: tallies them for metrics, appends to the panic log
    /// and the flight recorder, and (if a dump directory is configured)
    /// writes a `.htfr` failure dump per panic.
    fn poll_container_panics(&mut self) {
        while let Ok((container, message)) = self.panic_rx.try_recv() {
            let count =
                match self.panics_by_container.iter_mut().find(|(name, _)| *name == container) {
                    Some((_, n)) => {
                        *n += 1;
                        *n
                    }
                    None => {
                        self.panics_by_container.push((container.clone(), 1));
                        1
                    }
                };
            self.flight.note_panic(&container, &message, count);
            if let Some(dir) = &self.flight_dump_dir {
                let path = dir
                    .join(format!("flight-{container}-panic{count}-{}.htfr", std::process::id()));
                let reason = format!("container-panic: {container}: {message}");
                if std::fs::write(&path, self.flight.dump_bytes(&reason)).is_ok() {
                    self.flight_dump_paths.push(path);
                }
            }
            self.panic_log.push(ContainerPanic { container, message });
        }
    }

    /// The per-VM flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Mutable access to the flight recorder (capacity/enable knobs, span
    /// recording from the Event Forwarder and fleet workers).
    pub fn flight_mut(&mut self) -> &mut FlightRecorder {
        &mut self.flight
    }

    /// Directs container-panic failure dumps into `dir` (`None` disables
    /// dump files; in-memory recording is unaffected).
    pub fn set_flight_dump_dir(&mut self, dir: Option<PathBuf>) {
        self.flight_dump_dir = dir;
    }

    /// Paths of the `.htfr` failure dumps written so far.
    pub fn flight_dump_paths(&self) -> &[PathBuf] {
        &self.flight_dump_paths
    }

    /// Every container panic recorded so far (payload preserved). Call
    /// after [`EventMultiplexer::shutdown_containers`] for a complete view;
    /// while workers run, panics surface asynchronously at the next
    /// [`EventMultiplexer::drain_findings`].
    pub fn container_panics(&self) -> &[ContainerPanic] {
        &self.panic_log
    }

    /// Stops all containers, returning `(name, restart_count)` per container.
    pub fn shutdown_containers(&mut self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for c in &mut self.containers {
            let _ = c.tx.send(ContainerMsg::Stop);
        }
        for c in &mut self.containers {
            if let Some(h) = c.handle.take() {
                let restarts = h.join().unwrap_or(0);
                out.push((c.name.clone(), restarts));
            }
        }
        // Workers are joined: every forwarded panic payload is now in the
        // channel. Absorb them before the containers disappear.
        self.poll_container_panics();
        self.containers.clear();
        // Containers are gone; tighten the fast-path mask and routing table
        // back down to the synchronous subscriptions.
        self.combined_mask =
            self.auditors.iter().map(|a| a.subscriptions()).fold(EventMask::NONE, EventMask::union);
        self.rebuild_routing();
        out
    }

    /// Serializes the EM's deterministic audit-phase state for a machine
    /// snapshot: delivery counters, undrained findings, findings tallies,
    /// RHC sampling position, the flight recorder, and every synchronous
    /// auditor's state (framed by name, in registration order).
    ///
    /// Not captured: the routing table and combined mask (rebuilt from the
    /// auditor roster at registration), the attached tap (host-side; the
    /// caller re-attaches after restore), and the wall-clock dispatch-latency
    /// histogram (host instrumentation, invisible to the simulation).
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::Unsupported`] if audit containers are attached:
    /// container workers run on free-running host threads whose in-flight
    /// queue contents cannot be captured deterministically.
    pub fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        if !self.containers.is_empty() {
            return Err(SnapError::Unsupported {
                what: format!(
                    "EM with {} audit container(s): container queues are asynchronous host \
                     threads and cannot be snapshotted deterministically",
                    self.containers.len()
                ),
            });
        }
        w.varint(self.stats.events_in);
        w.varint(self.stats.sync_delivered);
        w.varint(self.stats.container_enqueued);
        w.varint(self.stats.unclaimed);
        w.varint(self.stats.fast_skipped);
        w.varint(self.stats.rhc_samples);
        w.varint(self.per_auditor_delivered.len() as u64);
        for n in &self.per_auditor_delivered {
            w.varint(*n);
        }
        w.varint(self.findings.len() as u64);
        for f in &self.findings {
            f.save(w);
        }
        for n in &self.findings_by_severity {
            w.varint(*n);
        }
        w.varint(self.findings_by_auditor.len() as u64);
        for (name, n) in &self.findings_by_auditor {
            w.string(name);
            w.varint(*n);
        }
        match &self.rhc {
            Some(hook) => {
                w.boolean(true);
                w.varint(hook.seen);
                w.varint(hook.seq);
            }
            None => w.boolean(false),
        }
        w.varint(self.panics_by_container.len() as u64);
        for (name, n) in &self.panics_by_container {
            w.string(name);
            w.varint(*n);
        }
        w.varint(self.panic_log.len() as u64);
        for p in &self.panic_log {
            w.string(&p.container);
            w.string(&p.message);
        }
        self.flight.save(w);
        w.varint(self.auditors.len() as u64);
        for a in &self.auditors {
            w.string(a.name());
            w.bytes(&a.snapshot_state());
        }
        Ok(())
    }

    /// Restores state written by [`EventMultiplexer::save_state`] into an EM
    /// rebuilt from the same recipe (same auditors registered in the same
    /// order, same RHC attachment, no containers).
    ///
    /// # Errors
    ///
    /// Returns a structured [`SnapError`] on malformed bytes or when the
    /// restore target's roster does not match the snapshot.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if !self.containers.is_empty() {
            return Err(SnapError::Unsupported {
                what: "restore target has audit containers attached".to_owned(),
            });
        }
        self.stats.events_in = r.varint()?;
        self.stats.sync_delivered = r.varint()?;
        self.stats.container_enqueued = r.varint()?;
        self.stats.unclaimed = r.varint()?;
        self.stats.fast_skipped = r.varint()?;
        self.stats.rhc_samples = r.varint()?;
        let start = r.offset();
        let n = r.count(1 << 10, "per-auditor delivery counters")?;
        if n != self.auditors.len() {
            return Err(SnapError::BadValue { offset: start, what: "per-auditor counter count" });
        }
        for slot in self.per_auditor_delivered.iter_mut() {
            *slot = r.varint()?;
        }
        let n = r.count(1 << 20, "pending findings")?;
        self.findings = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            self.findings.push(Finding::load(r)?);
        }
        for slot in self.findings_by_severity.iter_mut() {
            *slot = r.varint()?;
        }
        let n = r.count(1 << 16, "findings-by-auditor tallies")?;
        self.findings_by_auditor = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let name = r.string()?;
            let count = r.varint()?;
            self.findings_by_auditor.push((name, count));
        }
        let start = r.offset();
        let had_rhc = r.boolean()?;
        match (&mut self.rhc, had_rhc) {
            (Some(hook), true) => {
                hook.seen = r.varint()?;
                hook.seq = r.varint()?;
            }
            (None, false) => {}
            _ => {
                return Err(SnapError::BadValue { offset: start, what: "RHC attachment mismatch" })
            }
        }
        let n = r.count(1 << 16, "container panic tallies")?;
        self.panics_by_container = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let name = r.string()?;
            let count = r.varint()?;
            self.panics_by_container.push((name, count));
        }
        let n = r.count(1 << 20, "container panic log")?;
        self.panic_log = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let container = r.string()?;
            let message = r.string()?;
            self.panic_log.push(ContainerPanic { container, message });
        }
        self.flight.load(r)?;
        let start = r.offset();
        let n = r.count(1 << 10, "auditor state blobs")?;
        if n != self.auditors.len() {
            return Err(SnapError::BadValue { offset: start, what: "auditor roster size" });
        }
        for a in self.auditors.iter_mut() {
            let name = r.string()?;
            let blob = r.bytes()?;
            if name != a.name() {
                return Err(SnapError::Unsupported {
                    what: format!(
                        "auditor roster mismatch: snapshot has '{name}', target has '{}'",
                        a.name()
                    ),
                });
            }
            a.restore_state(blob)?;
        }
        // Subscriptions may depend on restored auditor state; re-derive the
        // fast-path mask and routing table from the live roster.
        self.refresh_subscriptions();
        Ok(())
    }
}

impl Drop for EventMultiplexer {
    fn drop(&mut self) {
        // Destructors must not fail or block indefinitely: send Stop
        // best-effort and detach.
        for c in &mut self.containers {
            let _ = c.tx.send(ContainerMsg::Stop);
            c.handle.take();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{CountingAuditor, Severity};
    use crate::event::{EventClass, EventKind, VmId};
    use hypertap_hvsim::exit::VcpuSnapshot;
    use hypertap_hvsim::machine::{Machine, VmConfig};
    use hypertap_hvsim::mem::Gpa;
    use hypertap_hvsim::vcpu::{Vcpu, VcpuId};

    fn vm_state() -> VmState {
        struct NoHv;
        impl hypertap_hvsim::machine::Hypervisor for NoHv {
            fn handle_exit(
                &mut self,
                _vm: &mut VmState,
                _exit: &hypertap_hvsim::exit::VmExit,
            ) -> hypertap_hvsim::exit::ExitAction {
                hypertap_hvsim::exit::ExitAction::Resume
            }
        }
        Machine::new(VmConfig::new(1, 1 << 20), NoHv).into_parts().0
    }

    fn ev(kind: EventKind) -> Event {
        Event {
            vm: VmId(0),
            vcpu: VcpuId(0),
            time: SimTime::from_millis(1),
            kind,
            state: VcpuSnapshot::capture(&Vcpu::new(VcpuId(0))),
        }
    }

    #[test]
    fn dispatch_respects_subscriptions() {
        let mut em = EventMultiplexer::new();
        em.register(Box::new(CountingAuditor::with_mask(EventMask::only(EventClass::Syscall))));
        em.register(Box::new(CountingAuditor::new())); // subscribes to all
        let mut vm = vm_state();
        em.dispatch(&mut vm, &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(1) }));
        em.dispatch(
            &mut vm,
            &ev(EventKind::Syscall {
                gate: crate::event::SyscallGate::Sysenter,
                number: 1,
                args: [0; 5],
            }),
        );
        assert_eq!(em.stats().sync_delivered, 3);
        let all = em.auditor::<CountingAuditor>().unwrap();
        // auditor::<T> returns the FIRST match: the syscall-only one.
        assert_eq!(all.events_seen(), 1);
    }

    #[test]
    fn unclaimed_events_are_counted() {
        let mut em = EventMultiplexer::new();
        let mut vm = vm_state();
        em.dispatch(&mut vm, &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(1) }));
        assert_eq!(em.stats().unclaimed, 1);
        assert_eq!(em.stats().fast_skipped, 1);
    }

    #[test]
    fn combined_mask_skips_unsubscribed_classes() {
        let mut em = EventMultiplexer::new();
        em.register(Box::new(CountingAuditor::with_mask(EventMask::only(EventClass::Syscall))));
        let mut vm = vm_state();
        // Not a syscall: rejected by the combined mask before the auditor
        // loop runs.
        em.dispatch(&mut vm, &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(1) }));
        assert_eq!(em.stats().fast_skipped, 1);
        assert_eq!(em.stats().unclaimed, 1);
        assert_eq!(em.stats().sync_delivered, 0);
    }

    #[test]
    fn deliver_all_batches_events() {
        let mut em = EventMultiplexer::new();
        em.register(Box::new(CountingAuditor::new()));
        let mut vm = vm_state();
        let events = [
            ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(1) }),
            ev(EventKind::ThreadSwitch { kernel_stack: 0x2000 }),
        ];
        let suppress = em.deliver_all(&mut vm, &events);
        assert!(!suppress);
        assert_eq!(em.stats().sync_delivered, 2);
        assert_eq!(em.auditor::<CountingAuditor>().unwrap().events_seen(), 2);
    }

    #[test]
    fn deliver_batch_matches_deliver_all() {
        // The same event sequence through deliver_all and through the
        // batched (two-run) entry point must produce identical stats,
        // auditor deliveries and flight refs.
        let events = [
            ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(1) }),
            ev(EventKind::ThreadSwitch { kernel_stack: 0x2000 }),
            ev(EventKind::Syscall {
                gate: crate::event::SyscallGate::Sysenter,
                number: 7,
                args: [0; 5],
            }),
            ev(EventKind::HardwareInterrupt { vector: 0x20 }),
        ];
        let mut em_a = EventMultiplexer::new();
        let mut em_b = EventMultiplexer::new();
        for em in [&mut em_a, &mut em_b] {
            em.register(Box::new(CountingAuditor::with_mask(EventMask::only(EventClass::Syscall))));
            em.register(Box::new(CountingAuditor::new()));
        }
        let mut vm = vm_state();
        let sup_a = em_a.deliver_all(&mut vm, &events);
        // Split mid-batch, as a wrapped ring would hand it over.
        let sup_b = em_b.deliver_batch(&mut vm, &events[..2], &events[2..]);
        assert_eq!(sup_a, sup_b);
        assert_eq!(em_a.stats(), em_b.stats());
        assert_eq!(em_a.delivered_to("counting"), em_b.delivered_to("counting"));
        assert_eq!(em_a.flight().dump("t").records, em_b.flight().dump("t").records);
    }

    #[test]
    fn deliver_batch_observes_latency_once_per_batch() {
        let mut em = EventMultiplexer::new();
        em.register(Box::new(CountingAuditor::new()));
        em.set_metrics_enabled(true);
        let mut vm = vm_state();
        let events = [
            ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(1) }),
            ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(2) }),
            ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(3) }),
        ];
        em.deliver_batch(&mut vm, &events, &[]);
        assert_eq!(em.dispatch_latency().count(), 1, "one observation per batch");
        assert_eq!(em.stats().events_in, 3);
    }

    struct Retunable {
        mask: EventMask,
        seen: u64,
    }
    impl Auditor for Retunable {
        fn name(&self) -> &str {
            "retunable"
        }
        fn subscriptions(&self) -> EventMask {
            self.mask
        }
        fn on_event(&mut self, _vm: &mut VmState, _event: &Event, _sink: &mut dyn FindingSink) {
            self.seen += 1;
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn refresh_subscriptions_invalidates_routing() {
        let mut em = EventMultiplexer::new();
        em.register(Box::new(Retunable { mask: EventMask::only(EventClass::Syscall), seen: 0 }));
        let mut vm = vm_state();
        let ps = ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(1) });
        em.dispatch(&mut vm, &ps);
        assert_eq!(em.stats().fast_skipped, 1, "not subscribed yet");

        // Re-subscribe in place; the table is stale until refreshed.
        em.auditor_mut::<Retunable>().unwrap().mask = EventMask::ALL;
        em.dispatch(&mut vm, &ps);
        assert_eq!(em.stats().fast_skipped, 2, "routing sampled at registration");

        em.refresh_subscriptions();
        em.dispatch(&mut vm, &ps);
        assert_eq!(em.stats().fast_skipped, 2);
        assert_eq!(em.auditor::<Retunable>().unwrap().seen, 1);

        // Narrowing works too.
        em.auditor_mut::<Retunable>().unwrap().mask = EventMask::NONE;
        em.refresh_subscriptions();
        em.dispatch(&mut vm, &ps);
        assert_eq!(em.stats().fast_skipped, 3);
        assert_eq!(em.auditor::<Retunable>().unwrap().seen, 1);
    }

    struct PanickyContainer {
        countdown: u32,
    }

    impl ContainerAuditor for PanickyContainer {
        fn name(&self) -> &str {
            "panicky"
        }
        fn subscriptions(&self) -> EventMask {
            EventMask::ALL
        }
        fn on_event(&mut self, event: &Event) -> Vec<Finding> {
            if self.countdown == 0 {
                panic!("auditor bug!");
            }
            self.countdown -= 1;
            vec![Finding::new("panicky", event.time, Severity::Info, "ok")]
        }
    }

    #[test]
    fn container_panics_are_isolated_and_restarted() {
        let mut em = EventMultiplexer::new();
        em.register_container(Box::new(|| Box::new(PanickyContainer { countdown: 1 })));
        let mut vm = vm_state();
        for _ in 0..4 {
            em.dispatch(&mut vm, &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(1) }));
        }
        let restarts = em.shutdown_containers();
        assert_eq!(restarts.len(), 1);
        // countdown=1: ok, panic, (restart) ok, panic => 2 restarts, 2 findings.
        assert_eq!(restarts[0].1, 2);
        let findings = em.drain_findings();
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.auditor == "panicky"));
    }

    #[test]
    fn container_panic_payloads_are_preserved() {
        let mut em = EventMultiplexer::new();
        em.register_container(Box::new(|| Box::new(PanickyContainer { countdown: 1 })));
        let mut vm = vm_state();
        for _ in 0..4 {
            em.dispatch(&mut vm, &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(1) }));
        }
        em.shutdown_containers();
        let panics = em.container_panics();
        assert_eq!(panics.len(), 2);
        assert!(panics.iter().all(|p| p.container == "panicky" && p.message == "auditor bug!"));
        let mut reg = MetricsRegistry::new();
        em.collect_metrics(&mut reg);
        assert_eq!(
            reg.find("hypertap_container_panics_total", &[("container", "panicky")])
                .unwrap()
                .as_counter(),
            Some(2)
        );
        // The panic records (payload included) landed in the black box.
        let dump = em.flight().dump("test");
        let panic_records: Vec<_> = dump
            .records
            .iter()
            .filter_map(|r| match r {
                crate::flight::DumpRecord::Panic { container, message, count } => {
                    Some((container.clone(), message.clone(), *count))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            panic_records,
            vec![
                ("panicky".into(), "auditor bug!".into(), 1),
                ("panicky".into(), "auditor bug!".into(), 2)
            ]
        );
    }

    #[test]
    fn container_panic_writes_flight_dump_file() {
        let dir = std::env::temp_dir().join(format!("hypertap-flight-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dump dir");
        let mut em = EventMultiplexer::new();
        em.set_flight_dump_dir(Some(dir.clone()));
        em.register_container(Box::new(|| Box::new(PanickyContainer { countdown: 0 })));
        let mut vm = vm_state();
        em.dispatch(&mut vm, &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(1) }));
        em.shutdown_containers();
        let paths = em.flight_dump_paths().to_vec();
        assert_eq!(paths.len(), 1);
        let bytes = std::fs::read(&paths[0]).expect("dump file exists");
        let dump = crate::flight::FlightDump::decode(&bytes).expect("dump decodes");
        assert!(dump.reason.contains("container-panic"), "{}", dump.reason);
        assert!(dump.reason.contains("auditor bug!"), "{}", dump.reason);
        assert!(
            dump.records.iter().any(|r| matches!(r, crate::flight::DumpRecord::Event { .. })),
            "dump retains the events leading up to the failure"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_findings_and_ticks_land_in_the_flight_ring() {
        struct Alerter;
        impl Auditor for Alerter {
            fn name(&self) -> &str {
                "alerter"
            }
            fn subscriptions(&self) -> EventMask {
                EventMask::ALL
            }
            fn on_event(&mut self, _vm: &mut VmState, event: &Event, sink: &mut dyn FindingSink) {
                let provenance: Vec<_> = sink.current_ref().into_iter().collect();
                sink.note_transition("alerter", "armed".to_owned());
                sink.report(
                    Finding::new("alerter", event.time, Severity::Alert, "seen")
                        .with_provenance(provenance),
                );
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut em = EventMultiplexer::new();
        em.register(Box::new(Alerter));
        let mut vm = vm_state();
        em.dispatch(&mut vm, &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(1) }));
        em.tick(&mut vm, SimTime::from_millis(9));
        let dump = em.flight().dump("test");
        let kinds: Vec<_> = dump
            .records
            .iter()
            .map(|r| match r {
                crate::flight::DumpRecord::Event { .. } => "event",
                crate::flight::DumpRecord::Transition { .. } => "transition",
                crate::flight::DumpRecord::Finding { .. } => "finding",
                crate::flight::DumpRecord::Tick { .. } => "tick",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["event", "transition", "finding", "tick"]);
        assert!(matches!(
            &dump.records[2],
            crate::flight::DumpRecord::Finding { provenance, .. }
                if provenance == &vec![crate::event::EventRef(0)]
        ));
        // The finding drained from the EM carries the same provenance.
        let findings = em.drain_findings();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].provenance, vec![crate::event::EventRef(0)]);
        assert!(findings[0].explain().contains("triggered by exits #0"));
    }

    #[test]
    fn tap_sees_prefilter_stream_and_ticks() {
        #[derive(Default)]
        struct Log(std::sync::Arc<std::sync::Mutex<Vec<String>>>);
        impl EventTap for Log {
            fn on_event(&mut self, event: &Event) {
                self.0.lock().unwrap().push(format!("ev {}", event.kind));
            }
            fn on_tick(&mut self, now: SimTime) {
                self.0.lock().unwrap().push(format!("tick {now}"));
            }
        }
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut em = EventMultiplexer::new();
        em.attach_tap(Box::new(Log(log.clone())));
        // No auditors at all: the event is fast-skipped, but the tap still
        // observes it (the recorder must capture the *full* stream).
        let mut vm = vm_state();
        em.dispatch(&mut vm, &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(1) }));
        em.tick(&mut vm, SimTime::from_millis(7));
        assert_eq!(em.stats().fast_skipped, 1);
        let got = log.lock().unwrap().clone();
        assert_eq!(
            got,
            vec!["ev process switch -> gpa:0x0000000001".to_string(), "tick 0.007000s".to_string()]
        );
        assert!(em.detach_tap().is_some());
        assert!(em.detach_tap().is_none());
    }

    #[test]
    fn sync_findings_are_collected() {
        struct Alerter;
        impl Auditor for Alerter {
            fn name(&self) -> &str {
                "alerter"
            }
            fn subscriptions(&self) -> EventMask {
                EventMask::ALL
            }
            fn on_event(&mut self, _vm: &mut VmState, event: &Event, sink: &mut dyn FindingSink) {
                sink.report(Finding::new("alerter", event.time, Severity::Alert, "seen"));
                sink.request_suppress();
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut em = EventMultiplexer::new();
        em.register(Box::new(Alerter));
        let mut vm = vm_state();
        let suppress =
            em.dispatch(&mut vm, &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(1) }));
        assert!(suppress, "auditor requested suppression");
        let findings = em.drain_findings();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Alert);
    }

    #[test]
    fn tick_reaches_auditors() {
        let mut em = EventMultiplexer::new();
        em.register(Box::new(CountingAuditor::new()));
        let mut vm = vm_state();
        em.tick(&mut vm, SimTime::from_millis(5));
        em.tick(&mut vm, SimTime::from_millis(10));
        assert_eq!(em.auditor::<CountingAuditor>().unwrap().ticks_seen(), 2);
    }

    struct VecTransport(std::sync::Arc<std::sync::Mutex<Vec<HeartbeatSample>>>);
    impl RhcTransport for VecTransport {
        fn send(&mut self, sample: &HeartbeatSample) {
            self.0.lock().unwrap().push(sample.clone());
        }
    }

    #[test]
    fn rhc_sampling_every_nth_exit() {
        let samples = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut em = EventMultiplexer::new();
        em.attach_rhc(Box::new(VecTransport(samples.clone())), 3);
        for i in 1..=10u64 {
            em.note_exit(SimTime::from_nanos(i * 100));
        }
        let got = samples.lock().unwrap();
        assert_eq!(got.len(), 3); // exits 3, 6, 9
        assert_eq!(got[0].seq, 1);
        assert_eq!(got[2].time_ns, 900);
        assert_eq!(em.stats().rhc_samples, 3);
    }

    #[test]
    fn rhc_sampling_every_exit() {
        // every=1 boundary: each exit is a sample, seq tracks exits exactly.
        let samples = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut em = EventMultiplexer::new();
        em.attach_rhc(Box::new(VecTransport(samples.clone())), 1);
        for i in 1..=5u64 {
            em.note_exit(SimTime::from_nanos(i));
        }
        let got = samples.lock().unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(got.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
        assert_eq!(em.stats().rhc_samples, 5);
    }

    #[test]
    fn rhc_sampling_seen_grows_without_wraparound() {
        // Long stream, even period: exactly seen/every samples, strictly
        // increasing seq, no modulo aliasing as `seen` grows.
        let samples = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut em = EventMultiplexer::new();
        em.attach_rhc(Box::new(VecTransport(samples.clone())), 2);
        for i in 1..=1000u64 {
            em.note_exit(SimTime::from_nanos(i * 10));
        }
        let got = samples.lock().unwrap();
        assert_eq!(got.len(), 500);
        assert!(got.windows(2).all(|w| w[1].seq == w[0].seq + 1));
        assert_eq!(got[0].seq, 1);
        assert_eq!(got[499].seq, 500);
        assert_eq!(got[499].time_ns, 10_000);
    }

    struct QuietContainer;
    impl ContainerAuditor for QuietContainer {
        fn name(&self) -> &str {
            "quiet"
        }
        fn subscriptions(&self) -> EventMask {
            EventMask::ALL
        }
        fn on_event(&mut self, _event: &Event) -> Vec<Finding> {
            Vec::new()
        }
    }

    #[test]
    fn shutdown_containers_tightens_combined_mask() {
        let mut em = EventMultiplexer::new();
        em.register(Box::new(CountingAuditor::with_mask(EventMask::only(EventClass::Syscall))));
        em.register_container(Box::new(|| Box::new(QuietContainer)));
        let mut vm = vm_state();

        // While the ALL-mask container lives, a ProcessSwitch is claimed.
        em.dispatch(&mut vm, &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(1) }));
        assert_eq!(em.stats().container_enqueued, 1);
        assert_eq!(em.stats().fast_skipped, 0);

        // After shutdown the combined mask must fall back to the sync
        // auditors' union — the same event is now fast-skipped.
        em.shutdown_containers();
        assert_eq!(em.container_count(), 0);
        em.dispatch(&mut vm, &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(2) }));
        assert_eq!(em.stats().fast_skipped, 1);
        assert_eq!(em.stats().container_enqueued, 1, "no further container deliveries");

        // Syscalls still reach the surviving synchronous auditor.
        em.dispatch(
            &mut vm,
            &ev(EventKind::Syscall {
                gate: crate::event::SyscallGate::Sysenter,
                number: 3,
                args: [0; 5],
            }),
        );
        assert_eq!(em.stats().sync_delivered, 1);
    }

    #[test]
    fn dispatch_latency_records_only_when_enabled() {
        let mut em = EventMultiplexer::new();
        em.register(Box::new(CountingAuditor::new()));
        let mut vm = vm_state();
        em.dispatch(&mut vm, &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(1) }));
        assert!(em.dispatch_latency().is_empty(), "disabled by default");

        em.set_metrics_enabled(true);
        assert!(em.metrics_enabled());
        for _ in 0..4 {
            em.dispatch(&mut vm, &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(2) }));
        }
        assert_eq!(em.dispatch_latency().count(), 4);
        // Delivery behaviour is identical either way.
        assert_eq!(em.stats().events_in, 5);
        assert_eq!(em.stats().sync_delivered, 5);
    }

    #[test]
    fn per_auditor_counts_and_metrics_export() {
        let mut em = EventMultiplexer::new();
        em.register(Box::new(CountingAuditor::with_mask(EventMask::only(EventClass::Syscall))));
        em.register(Box::new(CountingAuditor::new()));
        let mut vm = vm_state();
        em.dispatch(&mut vm, &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(1) }));
        em.dispatch(
            &mut vm,
            &ev(EventKind::Syscall {
                gate: crate::event::SyscallGate::Sysenter,
                number: 1,
                args: [0; 5],
            }),
        );
        // Both CountingAuditors share the name "counting": delivered_to
        // resolves to the first (syscall-only) registration.
        assert_eq!(em.delivered_to("counting"), Some(1));
        assert_eq!(em.delivered_to("nope"), None);

        let mut reg = MetricsRegistry::new();
        em.collect_metrics(&mut reg);
        assert_eq!(reg.find("hypertap_em_events_in_total", &[]).unwrap().as_counter(), Some(2));
        assert_eq!(
            reg.find("hypertap_em_sync_delivered_total", &[]).unwrap().as_counter(),
            Some(3)
        );
        assert_eq!(reg.find("hypertap_em_fast_skip_ratio", &[]).unwrap().as_gauge(), Some(0.0));
        assert!(reg.find("hypertap_em_delivered_total", &[("auditor", "counting")]).is_some());
        // Snapshot survives the JSON round-trip CI enforces.
        let back = MetricsRegistry::from_json(&reg.to_json()).unwrap();
        assert_eq!(back, reg);
    }

    #[test]
    fn findings_are_tallied_by_severity_and_auditor() {
        struct Alerter;
        impl Auditor for Alerter {
            fn name(&self) -> &str {
                "alerter"
            }
            fn subscriptions(&self) -> EventMask {
                EventMask::ALL
            }
            fn on_event(&mut self, _vm: &mut VmState, event: &Event, sink: &mut dyn FindingSink) {
                sink.report(Finding::new("alerter", event.time, Severity::Alert, "seen"));
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut em = EventMultiplexer::new();
        em.register(Box::new(Alerter));
        let mut vm = vm_state();
        em.dispatch(&mut vm, &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(1) }));
        em.dispatch(&mut vm, &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(2) }));
        assert_eq!(em.drain_findings().len(), 2);
        let mut reg = MetricsRegistry::new();
        em.collect_metrics(&mut reg);
        assert_eq!(
            reg.find("hypertap_findings_total", &[("severity", "alert")]).unwrap().as_counter(),
            Some(2)
        );
        assert_eq!(
            reg.find("hypertap_findings_total", &[("severity", "info")]).unwrap().as_counter(),
            Some(0)
        );
        assert_eq!(
            reg.find("hypertap_findings_by_auditor_total", &[("auditor", "alerter")])
                .unwrap()
                .as_counter(),
            Some(2)
        );
    }

    #[test]
    fn container_queue_depth_drains_to_zero() {
        let mut em = EventMultiplexer::new();
        em.register_container(Box::new(|| Box::new(QuietContainer)));
        let mut vm = vm_state();
        for _ in 0..8 {
            em.dispatch(&mut vm, &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(1) }));
        }
        // The worker drains asynchronously; after shutdown (which joins)
        // the queue must be empty. `shutdown_containers` clears the list,
        // so sample the gauge just before by polling.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while em.container_queue_depth("quiet") != Some(0) {
            assert!(std::time::Instant::now() < deadline, "queue never drained");
            std::thread::yield_now();
        }
        let mut reg = MetricsRegistry::new();
        em.collect_metrics(&mut reg);
        assert_eq!(
            reg.find("hypertap_container_enqueued_total", &[("container", "quiet")])
                .unwrap()
                .as_counter(),
            Some(8)
        );
        assert_eq!(
            reg.find("hypertap_container_queue_depth", &[("container", "quiet")])
                .unwrap()
                .as_gauge(),
            Some(0.0)
        );
        em.shutdown_containers();
    }
}
