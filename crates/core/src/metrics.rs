//! Zero-dependency metrics & tracing for the monitoring plane.
//!
//! The paper's whole evaluation (§VIII, Fig. 7) is built on *measuring* the
//! monitoring stack itself — per-exit overhead, event rates per class,
//! detection latency. This module is the unified observability layer those
//! measurements flow through: a [`MetricsRegistry`] of counters, gauges and
//! fixed-bucket [`Histogram`]s, a cheap host-wall-clock span recorder
//! ([`Spans`]) for the exit→decode→fan-out→audit path, and two
//! dependency-free exporters (a JSON snapshot and Prometheus text format).
//!
//! # Determinism contract
//!
//! Metrics are **host-side bookkeeping only**. Nothing here reads or writes
//! simulated state, charges simulated time, or changes a delivery decision:
//! counters increment plain integers, and span timing uses the *host* clock
//! ([`std::time::Instant`]), which never feeds back into the simulation.
//! The replay-conformance suite enforces this: a metrics-on run and a
//! metrics-off run of the same scenario must produce byte-identical traces
//! and verdicts (`DiffPolicy::Exact`), exactly like the TLB on/off pair.
//!
//! # Snapshot model
//!
//! The registry is pull-based: instrumented components keep their own live
//! counters and *export* into a fresh registry when a snapshot is taken
//! (`EventMultiplexer::collect_metrics`, `Kvm::collect_metrics`,
//! [`collect_vm`], `RemoteHealthChecker::collect_metrics`). Snapshots are
//! therefore free until requested, and the hot path never touches a string.

use hypertap_hvsim::machine::VmState;
use serde::{Deserialize, Serialize, Value};
use std::time::Instant;

/// Default bucket bounds for host-side latency histograms, nanoseconds.
pub const LATENCY_BOUNDS_NS: [u64; 10] =
    [100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 100_000, 1_000_000];

/// Default bucket bounds for simulated-time gap histograms (e.g. RHC
/// heartbeat inter-arrival), nanoseconds.
pub const GAP_BOUNDS_NS: [u64; 8] = [
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    60_000_000_000,
];

/// A fixed-bucket histogram: `bounds.len() + 1` buckets, the last catching
/// everything above the highest bound. Recording is a bounded linear scan
/// over the (small, fixed) bound list plus two integer adds — cheap enough
/// for per-event use.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
}

impl Histogram {
    /// A histogram over the given ascending bucket bounds (inclusive upper
    /// edges).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bucket bounds must be ascending");
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], sum: 0 }
    }

    /// The standard host-latency histogram ([`LATENCY_BOUNDS_NS`]).
    pub fn latency_ns() -> Self {
        Histogram::new(&LATENCY_BOUNDS_NS)
    }

    /// The standard simulated-gap histogram ([`GAP_BOUNDS_NS`]).
    pub fn gap_ns() -> Self {
        Histogram::new(&GAP_BOUNDS_NS)
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self.bounds.iter().position(|b| value <= *b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observed value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// `(upper_bound, count)` per finite bucket, in bound order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bounds.iter().copied().zip(self.counts.iter().copied())
    }

    /// Count of observations above the highest bound.
    pub fn overflow(&self) -> u64 {
        *self.counts.last().expect("counts is never empty")
    }

    /// Whether another histogram uses the same bucket bounds (the
    /// precondition for [`Histogram::merge`]).
    pub fn same_bounds(&self, other: &Histogram) -> bool {
        self.bounds == other.bounds
    }

    /// Merges another histogram recorded over the **same bucket bounds**
    /// into this one: per-bucket counts add, sums add (saturating, like
    /// [`Histogram::observe`]). Because the buckets line up, every
    /// observation lands in the same bucket after the merge as it did
    /// before — the property the fleet aggregator relies on.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ; merging histograms of different
    /// shapes silently would corrupt both distributions.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.same_bounds(other),
            "cannot merge histograms with different bucket bounds ({:?} vs {:?})",
            self.bounds,
            other.bounds
        );
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.sum = self.sum.saturating_add(other.sum);
    }

    fn from_parts(bounds: Vec<u64>, counts: Vec<u64>, sum: u64) -> Self {
        assert_eq!(counts.len(), bounds.len() + 1);
        Histogram { bounds, counts, sum }
    }
}

/// The value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Point-in-time measurement.
    Gauge(f64),
    /// Distribution of observations.
    Histogram(Histogram),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }

    /// The counter value, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge value, if this is a gauge.
    pub fn as_gauge(&self) -> Option<f64> {
        match self {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram, if this is a histogram.
    pub fn as_histogram(&self) -> Option<&Histogram> {
        match self {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

/// One named (optionally labelled) metric in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// Base metric name (Prometheus-style, e.g. `hypertap_vm_exits_total`).
    pub name: String,
    /// Label pairs distinguishing series of the same name.
    pub labels: Vec<(String, String)>,
    /// One-line description.
    pub help: String,
    /// The value.
    pub value: MetricValue,
}

/// A point-in-time snapshot of every exported metric, in insertion order
/// (which the exporters preserve, keeping output deterministic).
///
/// A scraped snapshot can additionally carry *attribution*: when it was
/// captured (host wall clock) and how many source registries were merged
/// into it (the fleet's per-VM/per-worker provenance). Both are unset on
/// freshly collected per-VM registries — they are stamped only at
/// scrape/export time, so determinism comparisons between per-VM
/// registries never see host time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: Vec<MetricEntry>,
    captured_at_unix_ns: Option<u64>,
    merged_from: u64,
}

/// Snapshot schema version written into the JSON export.
pub const SNAPSHOT_VERSION: u64 = 1;

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn push(&mut self, name: &str, labels: &[(&str, &str)], help: &str, value: MetricValue) {
        self.entries.push(MetricEntry {
            name: name.to_owned(),
            labels: labels.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
            help: help.to_owned(),
            value,
        });
    }

    /// Records an unlabelled counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.push(name, &[], help, MetricValue::Counter(value));
    }

    /// Records a labelled counter.
    pub fn counter_with(&mut self, name: &str, labels: &[(&str, &str)], help: &str, value: u64) {
        self.push(name, labels, help, MetricValue::Counter(value));
    }

    /// Records an unlabelled gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.push(name, &[], help, MetricValue::Gauge(value));
    }

    /// Records a labelled gauge.
    pub fn gauge_with(&mut self, name: &str, labels: &[(&str, &str)], help: &str, value: f64) {
        self.push(name, labels, help, MetricValue::Gauge(value));
    }

    /// Records an unlabelled histogram snapshot.
    pub fn histogram(&mut self, name: &str, help: &str, hist: &Histogram) {
        self.push(name, &[], help, MetricValue::Histogram(hist.clone()));
    }

    /// Records a labelled histogram snapshot.
    pub fn histogram_with(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        hist: &Histogram,
    ) {
        self.push(name, labels, help, MetricValue::Histogram(hist.clone()));
    }

    /// Every entry, in insertion order.
    pub fn entries(&self) -> &[MetricEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stamps the snapshot with the current host wall-clock time (Unix
    /// nanoseconds). Called at scrape/export time, never on per-VM
    /// registries that feed determinism comparisons.
    pub fn stamp_captured_now(&mut self) {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        self.captured_at_unix_ns = Some(now);
    }

    /// Sets an explicit capture timestamp (Unix nanoseconds).
    pub fn set_captured_at_unix_ns(&mut self, at: u64) {
        self.captured_at_unix_ns = Some(at);
    }

    /// When this snapshot was captured (Unix nanoseconds), if stamped.
    pub fn captured_at_unix_ns(&self) -> Option<u64> {
        self.captured_at_unix_ns
    }

    /// Records how many source registries were merged into this snapshot.
    pub fn set_merged_from(&mut self, sources: u64) {
        self.merged_from = sources;
    }

    /// How many source registries were merged into this snapshot (0 when
    /// never set — a single-source registry).
    pub fn merged_from(&self) -> u64 {
        self.merged_from
    }

    /// Looks up a metric by name and exact label set.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| {
                e.name == name
                    && e.labels.len() == labels.len()
                    && e.labels
                        .iter()
                        .zip(labels.iter())
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .map(|e| &e.value)
    }

    /// Merges another snapshot into this one — the fleet aggregator's
    /// combine step for per-VM registries.
    ///
    /// Series are matched by `(name, labels)`. For matching series:
    /// counters add (saturating), histograms merge bucket-wise
    /// ([`Histogram::merge`]), and gauges **sum** — correct for additive
    /// gauges (queue depths, enabled-flags-as-counts) but not for ratios
    /// like `hypertap_tlb_hit_rate`, which consumers should recompute from
    /// the merged hit/miss counters instead. Series present only in
    /// `other` are appended in `other`'s order, so merging registries with
    /// the same series set (the per-VM snapshot case) is commutative and
    /// associative, and the empty registry is the identity.
    ///
    /// # Panics
    ///
    /// Panics when the same `(name, labels)` series has different kinds or
    /// histogram bucket bounds on the two sides — those snapshots are not
    /// of the same schema and merging them would be meaningless.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for entry in &other.entries {
            let existing =
                self.entries.iter_mut().find(|e| e.name == entry.name && e.labels == entry.labels);
            match existing {
                None => self.entries.push(entry.clone()),
                Some(mine) => match (&mut mine.value, &entry.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                        *a = a.saturating_add(*b);
                    }
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += *b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    (mine, theirs) => panic!(
                        "cannot merge metric `{}`: kind {} vs {}",
                        entry.name,
                        mine.kind(),
                        theirs.kind()
                    ),
                },
            }
        }
    }

    /// Renders the snapshot as indented JSON (the schema round-tripped by
    /// the CI check; see [`MetricsRegistry::from_json`]).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics snapshot serializes")
    }

    /// Parses a JSON snapshot back into a registry.
    ///
    /// # Errors
    ///
    /// Returns a parse error when the text is not valid JSON or does not
    /// match the snapshot schema.
    pub fn from_json(text: &str) -> Result<MetricsRegistry, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for e in &self.entries {
            if last_name != Some(e.name.as_str()) {
                out.push_str("# HELP ");
                out.push_str(&e.name);
                out.push(' ');
                out.push_str(&e.help.replace('\n', " "));
                out.push_str("\n# TYPE ");
                out.push_str(&e.name);
                out.push(' ');
                out.push_str(e.value.kind());
                out.push('\n');
                last_name = Some(e.name.as_str());
            }
            match &e.value {
                MetricValue::Counter(v) => {
                    out.push_str(&e.name);
                    out.push_str(&render_labels(&e.labels, None));
                    out.push_str(&format!(" {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&e.name);
                    out.push_str(&render_labels(&e.labels, None));
                    out.push_str(&format!(" {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (bound, count) in h.buckets() {
                        cumulative += count;
                        out.push_str(&e.name);
                        out.push_str("_bucket");
                        out.push_str(&render_labels(&e.labels, Some(&bound.to_string())));
                        out.push_str(&format!(" {cumulative}\n"));
                    }
                    cumulative += h.overflow();
                    out.push_str(&e.name);
                    out.push_str("_bucket");
                    out.push_str(&render_labels(&e.labels, Some("+Inf")));
                    out.push_str(&format!(" {cumulative}\n"));
                    out.push_str(&e.name);
                    out.push_str("_sum");
                    out.push_str(&render_labels(&e.labels, None));
                    out.push_str(&format!(" {}\n", h.sum()));
                    out.push_str(&e.name);
                    out.push_str("_count");
                    out.push_str(&render_labels(&e.labels, None));
                    out.push_str(&format!(" {}\n", h.count()));
                }
            }
        }
        out
    }
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    // The Prometheus exposition format requires backslash, double-quote
    // and line-feed escaped inside label values — a raw newline would
    // split the series line and corrupt the whole scrape.
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            let escaped = v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
            format!("{k}=\"{escaped}\"")
        })
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Audits Prometheus text-exposition output against the format rules the
/// scrape endpoint promises: every sample belongs to a family announced by
/// exactly one `# TYPE`/`# HELP` pair, counter families end in `_total`,
/// histogram families expose a `+Inf` bucket, names match the metric-name
/// grammar, and every non-comment line is a parseable `series value` pair.
/// Returns one message per violation — empty means clean.
pub fn lint_prometheus(text: &str) -> Vec<String> {
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    let mut problems = Vec::new();
    let mut types: Vec<(String, String)> = Vec::new();
    let mut helps: Vec<String> = Vec::new();
    let mut histogram_inf: Vec<(String, bool)> = Vec::new();
    for (at, line) in text.lines().enumerate() {
        let ln = at + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !valid_name(name) {
                problems.push(format!("line {ln}: invalid family name in TYPE: {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                problems.push(format!("line {ln}: unknown TYPE {kind:?} for {name}"));
            }
            if types.iter().any(|(n, _)| n == name) {
                problems.push(format!("line {ln}: duplicate TYPE for family {name}"));
            }
            if kind == "histogram" {
                histogram_inf.push((name.to_owned(), false));
            }
            types.push((name.to_owned(), kind.to_owned()));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if helps.iter().any(|n| n == name) {
                problems.push(format!("line {ln}: duplicate HELP for family {name}"));
            }
            helps.push(name.to_owned());
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        let Some(space) = line.rfind(' ') else {
            problems.push(format!("line {ln}: not a `series value` sample: {line:?}"));
            continue;
        };
        let (series, value) = line.split_at(space);
        if value.trim().parse::<f64>().is_err() {
            problems.push(format!("line {ln}: sample value does not parse: {line:?}"));
        }
        let series_name = series.split('{').next().unwrap_or("");
        if !valid_name(series_name) {
            problems.push(format!("line {ln}: invalid series name {series_name:?}"));
            continue;
        }
        // Map the series to its family: histogram samples append
        // `_bucket`/`_sum`/`_count` to the family name.
        let family = types.iter().find_map(|(n, kind)| {
            if kind == "histogram" {
                ["_bucket", "_sum", "_count"]
                    .iter()
                    .find(|suffix| series_name == format!("{n}{suffix}"))
                    .map(|suffix| (n.clone(), kind.clone(), *suffix))
            } else if series_name == n {
                Some((n.clone(), kind.clone(), ""))
            } else {
                None
            }
        });
        match family {
            None => {
                problems.push(format!("line {ln}: sample {series_name} has no preceding # TYPE"))
            }
            Some((fam, kind, suffix)) => {
                if !helps.iter().any(|h| h == &fam) {
                    problems.push(format!("line {ln}: family {fam} has no # HELP"));
                }
                if kind == "counter" && !fam.ends_with("_total") {
                    problems.push(format!("line {ln}: counter {fam} must end with `_total`"));
                }
                if suffix == "_bucket" && series.contains("le=\"+Inf\"") {
                    if let Some((_, saw)) = histogram_inf.iter_mut().find(|(n, _)| *n == fam) {
                        *saw = true;
                    }
                }
            }
        }
    }
    for (fam, saw) in &histogram_inf {
        if !saw {
            problems.push(format!("histogram {fam} has no `+Inf` bucket"));
        }
    }
    problems
}

impl Serialize for MetricsRegistry {
    fn to_value(&self) -> Value {
        let metrics = self
            .entries
            .iter()
            .map(|e| {
                let mut fields: Vec<(String, Value)> =
                    vec![("name".to_owned(), Value::Str(e.name.clone()))];
                if !e.labels.is_empty() {
                    fields.push((
                        "labels".to_owned(),
                        Value::Object(
                            e.labels
                                .iter()
                                .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                                .collect(),
                        ),
                    ));
                }
                fields.push(("kind".to_owned(), Value::Str(e.value.kind().to_owned())));
                fields.push(("help".to_owned(), Value::Str(e.help.clone())));
                match &e.value {
                    MetricValue::Counter(v) => fields.push(("value".to_owned(), Value::U64(*v))),
                    MetricValue::Gauge(v) => fields.push(("value".to_owned(), Value::F64(*v))),
                    MetricValue::Histogram(h) => {
                        fields.push(("count".to_owned(), Value::U64(h.count())));
                        fields.push(("sum".to_owned(), Value::U64(h.sum())));
                        fields.push((
                            "buckets".to_owned(),
                            Value::Array(
                                h.buckets()
                                    .map(|(bound, count)| {
                                        Value::Object(vec![
                                            ("le".to_owned(), Value::U64(bound)),
                                            ("count".to_owned(), Value::U64(count)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ));
                        fields.push(("overflow".to_owned(), Value::U64(h.overflow())));
                    }
                }
                Value::Object(fields)
            })
            .collect();
        let mut fields = vec![("version".to_owned(), Value::U64(SNAPSHOT_VERSION))];
        // Attribution fields are emitted only when set, so un-stamped
        // snapshots keep the original schema byte for byte (and legacy
        // snapshots without them still parse).
        if let Some(at) = self.captured_at_unix_ns {
            fields.push(("captured_at_unix_ns".to_owned(), Value::U64(at)));
        }
        if self.merged_from != 0 {
            fields.push(("merged_from".to_owned(), Value::U64(self.merged_from)));
        }
        fields.push(("metrics".to_owned(), Value::Array(metrics)));
        Value::Object(fields)
    }
}

fn field<'v>(value: &'v Value, key: &str) -> Result<&'v Value, serde::Error> {
    value.get(key).ok_or_else(|| serde::Error::custom(format!("missing field `{key}`")))
}

impl Deserialize for MetricsRegistry {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let version = u64::from_value(field(value, "version")?)?;
        if version != SNAPSHOT_VERSION {
            return Err(serde::Error::custom(format!(
                "unsupported metrics snapshot version {version}"
            )));
        }
        let captured_at_unix_ns = match value.get("captured_at_unix_ns") {
            Some(v) => Some(u64::from_value(v)?),
            None => None,
        };
        let merged_from = match value.get("merged_from") {
            Some(v) => u64::from_value(v)?,
            None => 0,
        };
        let Value::Array(metrics) = field(value, "metrics")? else {
            return Err(serde::Error::custom("`metrics` must be an array"));
        };
        let mut entries = Vec::with_capacity(metrics.len());
        for m in metrics {
            let name = String::from_value(field(m, "name")?)?;
            let help = String::from_value(field(m, "help")?)?;
            let labels = match m.get("labels") {
                Some(Value::Object(fields)) => fields
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), String::from_value(v)?)))
                    .collect::<Result<Vec<_>, serde::Error>>()?,
                Some(_) => return Err(serde::Error::custom("`labels` must be an object")),
                None => Vec::new(),
            };
            let kind = String::from_value(field(m, "kind")?)?;
            let value = match kind.as_str() {
                "counter" => MetricValue::Counter(u64::from_value(field(m, "value")?)?),
                "gauge" => MetricValue::Gauge(f64::from_value(field(m, "value")?)?),
                "histogram" => {
                    let sum = u64::from_value(field(m, "sum")?)?;
                    let overflow = u64::from_value(field(m, "overflow")?)?;
                    let Value::Array(buckets) = field(m, "buckets")? else {
                        return Err(serde::Error::custom("`buckets` must be an array"));
                    };
                    let mut bounds = Vec::with_capacity(buckets.len());
                    let mut counts = Vec::with_capacity(buckets.len() + 1);
                    for b in buckets {
                        bounds.push(u64::from_value(field(b, "le")?)?);
                        counts.push(u64::from_value(field(b, "count")?)?);
                    }
                    counts.push(overflow);
                    if bounds.is_empty() {
                        return Err(serde::Error::custom("histogram needs buckets"));
                    }
                    MetricValue::Histogram(Histogram::from_parts(bounds, counts, sum))
                }
                other => {
                    return Err(serde::Error::custom(format!("unknown metric kind `{other}`")))
                }
            };
            entries.push(MetricEntry { name, labels, help, value });
        }
        Ok(MetricsRegistry { entries, captured_at_unix_ns, merged_from })
    }
}

/// A cheap host-wall-clock span recorder for named pipeline stages (the
/// exit→decode→fan-out→audit path). Disabled spans cost one branch per
/// call site; enabled spans cost two `Instant` reads and one histogram
/// record. Host time never feeds back into the simulation, so spans are
/// covered by the metrics-on/off conformance pair like every other metric.
#[derive(Debug, Default)]
pub struct Spans {
    enabled: bool,
    stages: Vec<(&'static str, Histogram)>,
    /// Host timestamps actually taken by [`Spans::start`] — the regression
    /// guard that a disabled recorder never touches the clock.
    timestamps_taken: u64,
}

impl Spans {
    /// A recorder, enabled or not.
    pub fn new(enabled: bool) -> Self {
        Spans { enabled, stages: Vec::new(), timestamps_taken: 0 }
    }

    /// Turns recording on or off (accumulated stages are kept).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a span: returns a host timestamp when enabled, `None` (free)
    /// when disabled. `Instant::now()` — a vDSO call, but still tens of
    /// nanoseconds on the exit path — is only reached when enabled.
    #[inline]
    pub fn start(&mut self) -> Option<Instant> {
        if self.enabled {
            self.timestamps_taken += 1;
            Some(Instant::now())
        } else {
            None
        }
    }

    /// How many host timestamps [`Spans::start`] has actually taken. Stays
    /// at zero for as long as the recorder is disabled — the property the
    /// exit-path regression test pins down.
    pub fn timestamps_taken(&self) -> u64 {
        self.timestamps_taken
    }

    /// Finishes a span started by [`Spans::start`], attributing the elapsed
    /// host nanoseconds to `stage`. Returns the elapsed nanoseconds (so the
    /// caller can forward the same measurement to the flight recorder), or
    /// `None` when recording was disabled at [`Spans::start`] time.
    pub fn record(&mut self, stage: &'static str, started: Option<Instant>) -> Option<u64> {
        let started = started?;
        let elapsed = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        match self.stages.iter_mut().find(|(name, _)| *name == stage) {
            Some((_, hist)) => hist.observe(elapsed),
            None => {
                let mut hist = Histogram::latency_ns();
                hist.observe(elapsed);
                self.stages.push((stage, hist));
            }
        }
        Some(elapsed)
    }

    /// The accumulated histogram for one stage, if it ever recorded.
    pub fn stage(&self, name: &str) -> Option<&Histogram> {
        self.stages.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Exports every stage as a labelled histogram series of `metric`.
    pub fn collect(&self, metric: &str, help: &str, reg: &mut MetricsRegistry) {
        for (stage, hist) in &self.stages {
            reg.histogram_with(metric, &[("stage", stage)], help, hist);
        }
    }
}

/// Exports the simulator-side metrics of a VM: per-exit-reason counts, the
/// simulated cycle cost charged to exit handling, and the software TLB's
/// counters — always-on registry gauges now, not just the benches' opt-in
/// `--cache-stats` printout.
pub fn collect_vm(reg: &mut MetricsRegistry, vm: &VmState) {
    reg.gauge(
        "hypertap_vm_sim_time_ns",
        "current simulated time, nanoseconds",
        vm.now().as_nanos() as f64,
    );
    for (reason, count) in vm.stats().iter() {
        reg.counter_with(
            "hypertap_vm_exits_total",
            &[("reason", reason)],
            "VM exits by hardware exit reason",
            count,
        );
    }
    reg.counter(
        "hypertap_vm_exit_overhead_ns_total",
        "simulated cycle cost charged to exit handling, nanoseconds",
        vm.stats().overhead().as_nanos(),
    );
    let tlb = vm.tlb_stats();
    reg.gauge(
        "hypertap_tlb_enabled",
        "whether the per-vCPU software TLB is enabled (1) or bypassed (0)",
        if vm.tlb_enabled() { 1.0 } else { 0.0 },
    );
    reg.counter("hypertap_tlb_hits_total", "software TLB lookup hits", tlb.hits);
    reg.counter("hypertap_tlb_misses_total", "software TLB lookup misses", tlb.misses);
    reg.counter("hypertap_tlb_fills_total", "software TLB entries filled", tlb.fills);
    reg.counter("hypertap_tlb_flushes_total", "software TLB flushes", tlb.flushes);
    reg.gauge("hypertap_tlb_hit_rate", "software TLB hit rate over all lookups", tlb.hit_rate());
}

/// A `--metrics[=PATH]` request parsed from a binary's arguments.
///
/// Bare `--metrics` prints both exports to stdout; `--metrics=PATH` writes
/// the JSON snapshot to `PATH` and the Prometheus text format to
/// `PATH.prom`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsArg {
    /// Output path, or `None` for stdout.
    pub path: Option<String>,
}

impl MetricsArg {
    /// Scans the process arguments for `--metrics[=PATH]`.
    pub fn from_env() -> Option<MetricsArg> {
        MetricsArg::from_args(std::env::args().skip(1))
    }

    /// Scans an explicit argument list (testable). The last occurrence
    /// wins.
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Option<MetricsArg> {
        let mut found = None;
        for a in args {
            if a == "--metrics" {
                found = Some(MetricsArg { path: None });
            } else if let Some(p) = a.strip_prefix("--metrics=") {
                found = Some(MetricsArg { path: Some(p.to_owned()) });
            }
        }
        found
    }

    /// Emits both exports per the parsed request (best-effort: I/O errors
    /// are reported to stderr, not panicked on).
    pub fn emit(&self, reg: &MetricsRegistry) {
        match &self.path {
            Some(path) => {
                let prom_path = format!("{path}.prom");
                if let Err(e) = std::fs::write(path, reg.to_json() + "\n") {
                    eprintln!("metrics: failed to write {path}: {e}");
                    return;
                }
                if let Err(e) = std::fs::write(&prom_path, reg.to_prometheus()) {
                    eprintln!("metrics: failed to write {prom_path}: {e}");
                    return;
                }
                println!("metrics: wrote {path} (JSON) and {prom_path} (Prometheus)");
            }
            None => {
                println!("\n== metrics snapshot (JSON) ==");
                println!("{}", reg.to_json());
                println!("\n== metrics snapshot (Prometheus) ==");
                print!("{}", reg.to_prometheus());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.observe(v);
        }
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(buckets, vec![(10, 2), (100, 2), (1000, 0)]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5126);
        assert!((h.mean() - 1025.2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[10, 10]);
    }

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter("hypertap_events_total", "events", 42);
        reg.counter_with(
            "hypertap_vm_exits_total",
            &[("reason", "CR_ACCESS")],
            "exits by reason",
            7,
        );
        reg.gauge("hypertap_tlb_hit_rate", "hit rate", 0.976_562_5);
        let mut h = Histogram::new(&[100, 1000]);
        h.observe(50);
        h.observe(250);
        h.observe(9999);
        reg.histogram_with("hypertap_dispatch_ns", &[("stage", "fanout")], "latency", &h);
        reg
    }

    #[test]
    fn find_matches_name_and_labels() {
        let reg = sample_registry();
        assert_eq!(reg.find("hypertap_events_total", &[]).unwrap().as_counter(), Some(42));
        assert_eq!(
            reg.find("hypertap_vm_exits_total", &[("reason", "CR_ACCESS")]).unwrap().as_counter(),
            Some(7)
        );
        assert!(reg.find("hypertap_vm_exits_total", &[]).is_none());
        assert!(reg.find("nope", &[]).is_none());
    }

    #[test]
    fn json_snapshot_round_trips() {
        let reg = sample_registry();
        let json = reg.to_json();
        let back = MetricsRegistry::from_json(&json).expect("snapshot parses back");
        assert_eq!(back, reg);
        // And the re-rendered text is identical (deterministic export).
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn json_snapshot_rejects_garbage_and_future_versions() {
        assert!(MetricsRegistry::from_json("not json").is_err());
        assert!(MetricsRegistry::from_json("{\"version\": 999, \"metrics\": []}").is_err());
        assert!(MetricsRegistry::from_json("{\"metrics\": []}").is_err());
    }

    #[test]
    fn prometheus_export_shape() {
        let text = sample_registry().to_prometheus();
        assert!(text.contains("# HELP hypertap_events_total events\n"));
        assert!(text.contains("# TYPE hypertap_events_total counter\n"));
        assert!(text.contains("hypertap_events_total 42\n"));
        assert!(text.contains("hypertap_vm_exits_total{reason=\"CR_ACCESS\"} 7\n"));
        assert!(text.contains("hypertap_tlb_hit_rate 0.9765625\n"));
        // Histogram buckets are cumulative and end with +Inf.
        assert!(text.contains("hypertap_dispatch_ns_bucket{stage=\"fanout\",le=\"100\"} 1\n"));
        assert!(text.contains("hypertap_dispatch_ns_bucket{stage=\"fanout\",le=\"1000\"} 2\n"));
        assert!(text.contains("hypertap_dispatch_ns_bucket{stage=\"fanout\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("hypertap_dispatch_ns_sum{stage=\"fanout\"} 10299\n"));
        assert!(text.contains("hypertap_dispatch_ns_count{stage=\"fanout\"} 3\n"));
    }

    #[test]
    fn prometheus_emits_help_once_per_series_family() {
        let mut reg = MetricsRegistry::new();
        reg.counter_with("m", &[("a", "1")], "help", 1);
        reg.counter_with("m", &[("a", "2")], "help", 2);
        let text = reg.to_prometheus();
        assert_eq!(text.matches("# HELP m help").count(), 1);
        assert_eq!(text.matches("# TYPE m counter").count(), 1);
    }

    #[test]
    fn prometheus_escapes_hostile_label_values() {
        let mut reg = MetricsRegistry::new();
        reg.counter_with("m", &[("evil", "a\\b\"c\nd")], "help", 1);
        let text = reg.to_prometheus();
        assert!(
            text.contains("m{evil=\"a\\\\b\\\"c\\nd\"} 1\n"),
            "backslash, quote and newline must all be escaped: {text:?}"
        );
        // No raw newline may survive inside a label value: every line must
        // be a comment or a complete `series value` pair.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.ends_with(" 1"),
                "scrape line corrupted by unescaped newline: {line:?}"
            );
        }
    }

    #[test]
    fn spans_disabled_are_free_and_enabled_record() {
        let mut spans = Spans::new(false);
        let t = spans.start();
        assert!(t.is_none());
        assert!(spans.record("decode", t).is_none(), "disabled spans measure nothing");
        assert!(spans.stage("decode").is_none());
        assert_eq!(spans.timestamps_taken(), 0, "disabled start never reads the clock");

        spans.set_enabled(true);
        for _ in 0..3 {
            let t = spans.start();
            assert!(spans.record("decode", t).is_some(), "enabled spans return elapsed ns");
        }
        assert_eq!(spans.stage("decode").unwrap().count(), 3);
        assert_eq!(spans.timestamps_taken(), 3);
        let mut reg = MetricsRegistry::new();
        spans.collect("hypertap_span_ns", "span latency", &mut reg);
        assert!(reg.find("hypertap_span_ns", &[("stage", "decode")]).is_some());
    }

    fn registry_from(counter: u64, gauge: f64, samples: &[u64]) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter("m_total", "a counter", counter);
        reg.gauge("m_depth", "an additive gauge", gauge);
        let mut h = Histogram::new(&[10, 100, 1000]);
        for &s in samples {
            h.observe(s);
        }
        reg.histogram_with("m_ns", &[("stage", "x")], "a histogram", &h);
        reg
    }

    #[test]
    fn histogram_merge_adds_buckets_and_sum() {
        let mut a = Histogram::new(&[10, 100]);
        a.observe(5);
        a.observe(500);
        let mut b = Histogram::new(&[10, 100]);
        b.observe(50);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 555);
        assert_eq!(a.buckets().collect::<Vec<_>>(), vec![(10, 1), (100, 1)]);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    fn histogram_merge_keeps_boundary_values_in_their_bucket() {
        // Observations exactly on a bucket's (inclusive) upper edge must
        // land in the same bucket whether observed pre- or post-merge.
        let bounds = [10u64, 100, 1000];
        let mut merged = Histogram::new(&bounds);
        let mut one_shot = Histogram::new(&bounds);
        let (left, right) = ([10u64, 100, 1000], [11u64, 101, 1001]);
        let mut a = Histogram::new(&bounds);
        let mut b = Histogram::new(&bounds);
        for v in left {
            a.observe(v);
            one_shot.observe(v);
        }
        for v in right {
            b.observe(v);
            one_shot.observe(v);
        }
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, one_shot, "merge must preserve bucket placement");
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[10, 100]);
        a.merge(&Histogram::new(&[10, 200]));
    }

    #[test]
    fn registry_merge_is_commutative_for_shared_series() {
        let a = registry_from(3, 1.5, &[5, 50]);
        let b = registry_from(7, 2.5, &[500, 5000]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.find("m_total", &[]).unwrap().as_counter(), Some(10));
        assert_eq!(ab.find("m_depth", &[]).unwrap().as_gauge(), Some(4.0));
        assert_eq!(ab.find("m_ns", &[("stage", "x")]).unwrap().as_histogram().unwrap().count(), 4);
    }

    #[test]
    fn registry_merge_is_associative() {
        let a = registry_from(1, 0.25, &[1]);
        let b = registry_from(2, 0.5, &[20]);
        let c = registry_from(4, 1.0, &[300]);
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn registry_merge_identity_on_empty() {
        let a = registry_from(42, 3.0, &[7, 70, 700]);
        let mut onto_empty = MetricsRegistry::new();
        onto_empty.merge(&a);
        assert_eq!(onto_empty, a, "merging into an empty registry copies it");
        let mut with_empty = a.clone();
        with_empty.merge(&MetricsRegistry::new());
        assert_eq!(with_empty, a, "merging an empty registry changes nothing");
    }

    #[test]
    fn registry_merge_appends_disjoint_series() {
        let mut a = MetricsRegistry::new();
        a.counter("only_a", "left", 1);
        let mut b = MetricsRegistry::new();
        b.counter("only_b", "right", 2);
        a.merge(&b);
        assert_eq!(a.find("only_a", &[]).unwrap().as_counter(), Some(1));
        assert_eq!(a.find("only_b", &[]).unwrap().as_counter(), Some(2));
    }

    #[test]
    #[should_panic(expected = "kind counter vs gauge")]
    fn registry_merge_rejects_kind_mismatch() {
        let mut a = MetricsRegistry::new();
        a.counter("m", "as counter", 1);
        let mut b = MetricsRegistry::new();
        b.gauge("m", "as gauge", 1.0);
        a.merge(&b);
    }

    #[test]
    fn snapshot_attribution_round_trips() {
        let mut reg = sample_registry();
        reg.set_captured_at_unix_ns(1_700_000_000_000_000_000);
        reg.set_merged_from(8);
        let json = reg.to_json();
        assert!(json.contains("\"captured_at_unix_ns\": 1700000000000000000"), "{json}");
        assert!(json.contains("\"merged_from\": 8"), "{json}");
        let back = MetricsRegistry::from_json(&json).expect("attributed snapshot parses");
        assert_eq!(back, reg);
        assert_eq!(back.captured_at_unix_ns(), Some(1_700_000_000_000_000_000));
        assert_eq!(back.merged_from(), 8);
    }

    #[test]
    fn unstamped_snapshot_keeps_legacy_schema_and_legacy_json_parses() {
        // Per-VM registries are never stamped: their JSON must not grow
        // attribution fields (fleet determinism compares them byte-wise).
        let json = sample_registry().to_json();
        assert!(!json.contains("captured_at_unix_ns"), "{json}");
        assert!(!json.contains("merged_from"), "{json}");
        // And a legacy snapshot without the fields still parses.
        let legacy = MetricsRegistry::from_json("{\"version\": 1, \"metrics\": []}").unwrap();
        assert_eq!(legacy.captured_at_unix_ns(), None);
        assert_eq!(legacy.merged_from(), 0);
    }

    #[test]
    fn stamp_captured_now_uses_the_host_clock() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.captured_at_unix_ns(), None);
        reg.stamp_captured_now();
        let at = reg.captured_at_unix_ns().expect("stamped");
        // Sometime after 2020-01-01 (no clock skew tolerance needed:
        // this only guards against a zero/garbage stamp).
        assert!(at > 1_577_836_800_000_000_000, "implausible capture time {at}");
    }

    #[test]
    fn prometheus_lint_accepts_a_real_vm_snapshot() {
        use crate::intercept::ProcessSwitchEngine;
        use crate::kvm::Kvm;
        use hypertap_hvsim::prelude::*;

        struct TwoProcs;
        impl GuestProgram for TwoProcs {
            fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
                cpu.write_cr3(Gpa::new(0x1000));
                cpu.write_cr3(Gpa::new(0x2000));
                StepOutcome::Continue
            }
        }

        let mut machine = Machine::new(VmConfig::new(1, 16 << 20), Kvm::new());
        let (vm, kvm) = machine.parts_mut();
        kvm.install(vm, Box::new(ProcessSwitchEngine::new()));
        machine.run_steps(&mut TwoProcs, 8);

        let mut reg = MetricsRegistry::new();
        collect_vm(&mut reg, machine.vm());
        machine.hypervisor().collect_metrics(&mut reg);
        let text = reg.to_prometheus();
        let problems = lint_prometheus(&text);
        assert!(problems.is_empty(), "format violations in live scrape:\n{}", problems.join("\n"));
        assert!(text.contains("hypertap_vm_exits_total"), "scrape looks empty: {text}");
    }

    #[test]
    fn prometheus_lint_catches_format_violations() {
        // A counter family not ending in `_total`.
        let mut bad_counter = MetricsRegistry::new();
        bad_counter.counter("hypertap_events", "events", 1);
        let problems = lint_prometheus(&bad_counter.to_prometheus());
        assert!(problems.iter().any(|p| p.contains("must end with `_total`")), "{problems:?}");

        // A sample with no preceding TYPE.
        let problems = lint_prometheus("orphan_series 12\n");
        assert!(problems.iter().any(|p| p.contains("no preceding # TYPE")), "{problems:?}");

        // A histogram without a +Inf bucket.
        let text = "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 5\nh_count 1\n";
        let problems = lint_prometheus(text);
        assert!(problems.iter().any(|p| p.contains("no `+Inf` bucket")), "{problems:?}");

        // A sample line whose value is not a number.
        let problems =
            lint_prometheus("# HELP m_total x\n# TYPE m_total counter\nm_total NaNopes\n");
        assert!(problems.iter().any(|p| p.contains("does not parse")), "{problems:?}");

        // The registry's own export is clean by construction.
        assert!(lint_prometheus(&sample_registry().to_prometheus()).is_empty());
    }

    #[test]
    fn metrics_arg_parses_both_forms() {
        let none = MetricsArg::from_args(Vec::<String>::new());
        assert!(none.is_none());
        let bare = MetricsArg::from_args(vec!["--metrics".to_owned()]).unwrap();
        assert_eq!(bare.path, None);
        let with_path =
            MetricsArg::from_args(vec!["--seed".to_owned(), "--metrics=out.json".to_owned()])
                .unwrap();
        assert_eq!(with_path.path.as_deref(), Some("out.json"));
    }
}
