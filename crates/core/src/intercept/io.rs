//! I/O access interception (paper §VI-C).
//!
//! The hypervisor already multiplexes I/O, so the architectural channels all
//! produce exits without extra programming: port instructions (`IO_INST`),
//! memory-mapped I/O (`EPT_VIOLATION` on unbacked MMIO regions), hardware
//! interrupts (`EXTERNAL_INT`) and APIC traffic (`APIC_ACCESS`). The engine
//! decodes each into the corresponding event.

use super::{InterceptEngine, Table1Row};
use crate::event::EventKind;
use hypertap_hvsim::ept::AccessKind;
use hypertap_hvsim::exit::{ExitAction, VmExit, VmExitKind};
use hypertap_hvsim::machine::VmState;

static ROWS: [Table1Row; 4] = [
    Table1Row {
        category: "I/O access interception",
        guest_event: "Programmed I/O",
        vm_exit: "IO_INST",
        invariant: "Execution of I/O instructions (e.g., IN, INS, OUT, OUTS)",
    },
    Table1Row {
        category: "I/O access interception",
        guest_event: "Memory mapped I/O",
        vm_exit: "EPT_VIOLATION",
        invariant: "Access to memory mapped I/O areas, which are set as protected",
    },
    Table1Row {
        category: "I/O access interception",
        guest_event: "Hardware interrupt",
        vm_exit: "EXTERNAL_INT",
        invariant: "Hardware interrupt delivery causes EXTERNAL_INT VM Exits",
    },
    Table1Row {
        category: "I/O access interception",
        guest_event: "I/O APIC access",
        vm_exit: "APIC_ACCESS",
        invariant: "I/O Advanced Programmable Interrupt Controller (APIC) events",
    },
];

/// Decodes the unconditional I/O exits into events.
#[derive(Debug, Default)]
pub struct IoEngine {
    /// When false (the default), APIC accesses are not forwarded as events —
    /// they are extremely frequent and most auditors only need device I/O.
    pub forward_apic: bool,
}

impl IoEngine {
    /// Creates the engine (APIC events off).
    pub fn new() -> Self {
        IoEngine::default()
    }

    /// Creates the engine with APIC-event forwarding on.
    pub fn with_apic_events() -> Self {
        IoEngine { forward_apic: true }
    }
}

impl InterceptEngine for IoEngine {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "io-access"
    }

    fn table1_rows(&self) -> &'static [Table1Row] {
        &ROWS
    }

    fn enable(&mut self, _vm: &mut VmState) {
        // I/O exits are unconditional under HAV; nothing to program.
    }

    fn disable(&mut self, _vm: &mut VmState) {}

    fn on_exit(
        &mut self,
        vm: &mut VmState,
        exit: &VmExit,
        emit: &mut dyn FnMut(EventKind),
    ) -> ExitAction {
        match exit.kind {
            VmExitKind::IoInst { port, write, value } => {
                emit(EventKind::IoPort { port, write, value });
            }
            VmExitKind::EptViolation(v) if vm.io.is_mmio(v.gpa) => {
                emit(EventKind::MmioAccess { gpa: v.gpa, write: v.access == AccessKind::Write });
            }
            VmExitKind::ExternalInterrupt { vector } => {
                emit(EventKind::HardwareInterrupt { vector });
            }
            VmExitKind::ApicAccess { offset, .. } if self.forward_apic => {
                emit(EventKind::ApicAccess { offset });
            }
            _ => {}
        }
        ExitAction::Resume
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::machine_with;
    use super::*;
    use hypertap_hvsim::cpu::{CpuCtx, StepOutcome};
    use hypertap_hvsim::device::LatchDevice;
    use hypertap_hvsim::machine::GuestProgram;
    use hypertap_hvsim::mem::{Gfn, Gva};
    use hypertap_hvsim::paging::{AddressSpaceBuilder, FrameAllocator};
    use hypertap_hvsim::vcpu::VcpuId;

    struct IoGuest {
        booted: bool,
        mmio_gva: Gva,
    }

    impl GuestProgram for IoGuest {
        fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
            if cpu.vcpu_id() != VcpuId(0) {
                cpu.compute(1_000_000_000);
                return StepOutcome::Continue;
            }
            if !self.booted {
                let mut falloc = FrameAllocator::new(Gfn::new(16), Gfn::new(4096));
                let vm = cpu.vm_mut();
                let mut asb = AddressSpaceBuilder::new(&mut vm.mem, &mut falloc);
                let frame = falloc.alloc(&mut vm.mem);
                asb.map(&mut vm.mem, &mut falloc, self.mmio_gva, frame);
                let id = vm.io.register(Box::<LatchDevice>::default());
                vm.io.map_pio(0x1f0..0x1f8, id);
                vm.io.map_mmio(frame.base().value()..frame.base().value() + 4096, id);
                let pdba = asb.pdba();
                cpu.write_cr3(pdba);
                self.booted = true;
                return StepOutcome::Continue;
            }
            cpu.pio_out(0x1f0, 0x42);
            cpu.write_u64_gva(self.mmio_gva, 7).unwrap();
            let _ = cpu.poll_interrupt();
            StepOutcome::Continue
        }
    }

    #[test]
    fn decodes_pio_mmio_and_interrupts() {
        let mut m = machine_with(Box::new(IoEngine::new()));
        m.vm_mut().inject_irq(VcpuId(0), 0x33);
        let mut g = IoGuest { booted: false, mmio_gva: Gva::new(0x2000_0000) };
        m.run_steps(&mut g, 3);
        let kinds: Vec<_> = m.hypervisor().events.iter().map(|(_, k)| *k).collect();
        assert!(kinds
            .iter()
            .any(|k| matches!(k, EventKind::IoPort { port: 0x1f0, write: true, value: 0x42 })));
        assert!(kinds.iter().any(|k| matches!(k, EventKind::MmioAccess { write: true, .. })));
        assert!(kinds.iter().any(|k| matches!(k, EventKind::HardwareInterrupt { vector: 0x33 })));
    }

    #[test]
    fn apic_events_off_by_default() {
        let mut m = machine_with(Box::new(IoEngine::new()));
        struct ApicGuest;
        impl GuestProgram for ApicGuest {
            fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
                cpu.apic_eoi();
                StepOutcome::Continue
            }
        }
        m.run_steps(&mut ApicGuest, 1);
        assert!(m.hypervisor().events.is_empty());

        let mut m2 = machine_with(Box::new(IoEngine::with_apic_events()));
        m2.run_steps(&mut ApicGuest, 1);
        assert!(matches!(m2.hypervisor().events[0].1, EventKind::ApicAccess { .. }));
    }

    #[test]
    fn table1_has_four_io_rows() {
        assert_eq!(IoEngine::new().table1_rows().len(), 4);
    }
}
