//! Thread-switch interception (paper §VI-A2, Fig. 3B).
//!
//! Threads can share an address space, so CR3 cannot distinguish them. The
//! architecture instead guarantees that the TSS pointed to by TR holds the
//! per-task ring-0 stack pointer (`RSP0`), which the kernel rewrites at every
//! thread dispatch and which is unique per thread (each kernel stack occupies
//! its own address range). The engine write-protects the page holding each
//! vCPU's TSS once the guest has finished setting up (first CR3 load, as in
//! the paper), and decodes subsequent `EPT_VIOLATION` exits whose faulting
//! address is exactly `TR.base + RSP0 offset` into
//! [`EventKind::ThreadSwitch`] events.

use super::{InterceptEngine, Table1Row};
use crate::event::EventKind;
use hypertap_hvsim::cpu::TSS_RSP0_OFFSET;
use hypertap_hvsim::ept::{AccessKind, EptPerm};
use hypertap_hvsim::exit::{ExitAction, VmExit, VmExitKind};
use hypertap_hvsim::machine::VmState;
use hypertap_hvsim::mem::{Gfn, Gpa, Gva};
use hypertap_hvsim::paging;
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};

static ROWS: [Table1Row; 1] = [Table1Row {
    category: "Context switch interception",
    guest_event: "Thread switch",
    vm_exit: "EPT_VIOLATION",
    invariant: "The TR register always points to the TSS structure of the running process; \
                TSS.RSP0 is unique for each thread",
}];

#[derive(Debug, Clone, Copy)]
struct Watch {
    rsp0_addr: Gva,
    gfn: Gfn,
    prev_perm: EptPerm,
}

/// Write-protects TSS pages and emits [`EventKind::ThreadSwitch`] events.
#[derive(Debug, Default)]
pub struct ThreadSwitchEngine {
    armed: bool,
    watches: Vec<Option<Watch>>,
}

impl ThreadSwitchEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        ThreadSwitchEngine::default()
    }

    /// Whether the TSS pages have been protected yet (happens at the guest's
    /// first CR3 load, when its data structures exist).
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    fn arm(&mut self, vm: &mut VmState, pdba: Gpa) {
        if self.watches.len() != vm.vcpu_count() {
            self.watches = vec![None; vm.vcpu_count()];
        }
        for i in 0..vm.vcpu_count() {
            if self.watches[i].is_some() {
                continue; // already protected
            }
            let tr = vm.vcpu(hypertap_hvsim::vcpu::VcpuId(i)).tr_base();
            if tr.value() == 0 {
                continue; // vCPU not brought up yet; re-armed on a later exit
            }
            let rsp0_addr = tr.offset(TSS_RSP0_OFFSET);
            // Kernel mappings are shared across address spaces, so the PDBA
            // being loaded translates the TSS as well as any other.
            if let Ok(gpa) = paging::walk(&vm.mem, pdba, rsp0_addr) {
                let prev_perm = vm.ept.set_perm(gpa.gfn(), EptPerm::RX);
                self.watches[i] = Some(Watch { rsp0_addr, gfn: gpa.gfn(), prev_perm });
            }
        }
        self.armed = self.watches.iter().any(Option::is_some);
    }
}

impl InterceptEngine for ThreadSwitchEngine {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "thread-switch"
    }

    fn table1_rows(&self) -> &'static [Table1Row] {
        &ROWS
    }

    fn enable(&mut self, vm: &mut VmState) {
        // Arming waits for the first CR3 load; the CR3 trap must therefore be
        // on. (Co-installation with ProcessSwitchEngine is idempotent.)
        vm.controls_mut().set_cr3_load_exiting(true);
    }

    fn disable(&mut self, vm: &mut VmState) {
        for w in self.watches.iter().flatten() {
            vm.ept.set_perm(w.gfn, w.prev_perm);
        }
        self.watches.clear();
        self.armed = false;
    }

    fn on_exit(
        &mut self,
        vm: &mut VmState,
        exit: &VmExit,
        emit: &mut dyn FnMut(EventKind),
    ) -> ExitAction {
        match exit.kind {
            VmExitKind::CrAccess { cr: 3, value }
                if !self.armed || self.watches.iter().any(Option::is_none) =>
            {
                self.arm(vm, Gpa::new(value));
            }
            VmExitKind::EptViolation(v) if v.access == AccessKind::Write => {
                let watch = self.watches.get(exit.vcpu.0).copied().flatten();
                if let (Some(w), Some(gva)) = (watch, v.gva) {
                    if gva == w.rsp0_addr {
                        // The written value is the new kernel stack pointer —
                        // the architectural thread identifier.
                        emit(EventKind::ThreadSwitch { kernel_stack: v.value.unwrap_or(0) });
                    }
                    // Other writes to the protected page (the rest of the
                    // TSS) are emulated silently.
                }
            }
            _ => {}
        }
        ExitAction::Resume
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.boolean(self.armed);
        w.varint(self.watches.len() as u64);
        for watch in &self.watches {
            match watch {
                Some(wa) => {
                    w.boolean(true);
                    w.varint(wa.rsp0_addr.value());
                    w.varint(wa.gfn.value());
                    w.byte(wa.prev_perm.to_bits());
                }
                None => w.boolean(false),
            }
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        self.armed = r.boolean()?;
        let n = r.count(1 << 10, "thread-switch watch slots")?;
        self.watches = Vec::with_capacity(n);
        for _ in 0..n {
            self.watches.push(if r.boolean()? {
                let rsp0_addr = Gva::new(r.varint()?);
                let gfn = Gfn::new(r.varint()?);
                let start = r.offset();
                let prev_perm = EptPerm::from_bits(r.byte()?)
                    .ok_or(SnapError::BadValue { offset: start, what: "ept permission" })?;
                Some(Watch { rsp0_addr, gfn, prev_perm })
            } else {
                None
            });
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::machine_with;
    use super::*;
    use hypertap_hvsim::cpu::{CpuCtx, StepOutcome};
    use hypertap_hvsim::machine::GuestProgram;
    use hypertap_hvsim::mem::PAGE_SIZE;
    use hypertap_hvsim::paging::{AddressSpaceBuilder, FrameAllocator};
    use hypertap_hvsim::vcpu::VcpuId;

    const TSS_GVA: u64 = 0x3800_0000;

    /// Guest: boots (maps a TSS, loads TR, first CR3 write), then performs
    /// "thread switches" by rewriting TSS.RSP0.
    struct ThreadSwitcher {
        booted: bool,
        stacks: Vec<u64>,
        i: usize,
    }

    impl GuestProgram for ThreadSwitcher {
        fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
            if !self.booted {
                if cpu.vcpu_id() != VcpuId(0) {
                    return StepOutcome::Continue;
                }
                let mut falloc = FrameAllocator::new(
                    hypertap_hvsim::mem::Gfn::new(16),
                    hypertap_hvsim::mem::Gfn::new(4096),
                );
                let vm = cpu.vm_mut();
                let mut asb = AddressSpaceBuilder::new(&mut vm.mem, &mut falloc);
                asb.map_fresh_range(&mut vm.mem, &mut falloc, Gva::new(TSS_GVA), 1);
                // Both vCPUs get TSSes on the same page (as the paper notes,
                // one TSS per vCPU; pages containing them are protected).
                let pdba = asb.pdba();
                cpu.load_task_register(Gva::new(TSS_GVA));
                cpu.vm_mut().vcpu_mut(VcpuId(1)).clock +=
                    hypertap_hvsim::clock::Duration::from_secs(3600); // park vCPU 1
                cpu.write_cr3(pdba); // first CR3 load arms the engine
                self.booted = true;
                return StepOutcome::Continue;
            }
            let stack = self.stacks[self.i % self.stacks.len()];
            self.i += 1;
            cpu.write_u64_gva(Gva::new(TSS_GVA + TSS_RSP0_OFFSET), stack).unwrap();
            StepOutcome::Continue
        }
    }

    #[test]
    fn rsp0_writes_become_thread_switch_events() {
        let mut m = machine_with(Box::new(ThreadSwitchEngine::new()));
        let mut g = ThreadSwitcher { booted: false, stacks: vec![0xA000, 0xB000], i: 0 };
        m.run_steps(&mut g, 4); // boot + 3 switches
        let switches: Vec<u64> = m
            .hypervisor()
            .events
            .iter()
            .filter_map(|(_, k)| match k {
                EventKind::ThreadSwitch { kernel_stack } => Some(*kernel_stack),
                _ => None,
            })
            .collect();
        assert_eq!(switches, vec![0xA000, 0xB000, 0xA000]);
    }

    #[test]
    fn unrelated_writes_to_tss_page_do_not_emit() {
        let mut m = machine_with(Box::new(ThreadSwitchEngine::new()));
        let mut g = ThreadSwitcher { booted: false, stacks: vec![0xA000], i: 0 };
        m.run_steps(&mut g, 1); // boot only

        struct OtherWrite;
        impl GuestProgram for OtherWrite {
            fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
                // Write elsewhere in the protected TSS page (not RSP0).
                cpu.write_u64_gva(Gva::new(TSS_GVA + 0x100), 7).unwrap();
                StepOutcome::Continue
            }
        }
        m.run_steps(&mut OtherWrite, 1);
        assert!(m
            .hypervisor()
            .events
            .iter()
            .all(|(_, k)| !matches!(k, EventKind::ThreadSwitch { .. })));
        // But the write itself was emulated and landed.
        let (vm, _) = m.parts_mut();
        let vcpu0_cr3 = vm.vcpu(VcpuId(0)).cr3();
        let gpa = paging::walk(&vm.mem, vcpu0_cr3, Gva::new(TSS_GVA + 0x100)).unwrap();
        assert_eq!(vm.mem.read_u64(gpa), 7);
    }

    #[test]
    fn disable_restores_permissions() {
        let mut m = machine_with(Box::new(ThreadSwitchEngine::new()));
        let mut g = ThreadSwitcher { booted: false, stacks: vec![0xA000], i: 0 };
        m.run_steps(&mut g, 1);
        assert!(m.vm().ept.restricted_frames() > 0);
        let (vm, hv) = m.parts_mut();
        hv.engine.disable(vm);
        assert_eq!(vm.ept.restricted_frames(), 0);
    }

    #[test]
    fn arming_waits_for_first_cr3() {
        let m = machine_with(Box::new(ThreadSwitchEngine::new()));
        // No guest ran: controls set but nothing protected.
        assert!(m.vm().controls().cr3_load_exiting());
        assert_eq!(m.vm().ept.restricted_frames(), 0);
        let _ = PAGE_SIZE;
    }
}
