//! Process context-switch interception and the process-counting algorithm
//! (paper §VI-A1, Fig. 3A).
//!
//! The x86 architecture requires CR3 to hold the Page-Directory Base Address
//! (PDBA) of the running process; PDBAs are unique per user process, so the
//! stream of CR3 loads is a trusted stream of process identifiers — no guest
//! data structure is consulted.

use super::{InterceptEngine, Table1Row};
use crate::event::EventKind;
use hypertap_hvsim::exit::{ExitAction, VmExit, VmExitKind};
use hypertap_hvsim::machine::VmState;
use hypertap_hvsim::mem::{Gpa, GuestMemory, Gva};
use hypertap_hvsim::paging;
use std::collections::BTreeSet;

static ROWS: [Table1Row; 1] = [Table1Row {
    category: "Context switch interception",
    guest_event: "Process context switch",
    vm_exit: "CR_ACCESS",
    invariant: "The CR3 register always points to the PDBA of the running process; \
                writes to CR registers cause CR_ACCESS VM Exits",
}];

/// Traps CR3 loads and emits [`EventKind::ProcessSwitch`] events.
#[derive(Debug, Default)]
pub struct ProcessSwitchEngine {
    enabled: bool,
}

impl ProcessSwitchEngine {
    /// Creates the engine (enable it via [`InterceptEngine::enable`] or
    /// [`crate::kvm::Kvm::install`]).
    pub fn new() -> Self {
        ProcessSwitchEngine::default()
    }
}

impl InterceptEngine for ProcessSwitchEngine {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "process-switch"
    }

    fn table1_rows(&self) -> &'static [Table1Row] {
        &ROWS
    }

    fn enable(&mut self, vm: &mut VmState) {
        vm.controls_mut().set_cr3_load_exiting(true);
        self.enabled = true;
    }

    fn disable(&mut self, vm: &mut VmState) {
        vm.controls_mut().set_cr3_load_exiting(false);
        self.enabled = false;
    }

    fn on_exit(
        &mut self,
        _vm: &mut VmState,
        exit: &VmExit,
        emit: &mut dyn FnMut(EventKind),
    ) -> ExitAction {
        if let VmExitKind::CrAccess { cr: 3, value } = exit.kind {
            emit(EventKind::ProcessSwitch { new_pdba: Gpa::new(value) });
        }
        ExitAction::Resume
    }
}

/// The process-counting algorithm of Fig. 3A.
///
/// `PDBA_set` starts empty at VM boot; every observed CR3 load adds its PDBA.
/// [`ProcessCounter::count_valid`] then prunes stale PDBAs by attempting to
/// translate a known guest-virtual address under each remembered page
/// directory — a dead process's directory has been freed (and zeroed by the
/// guest's frame allocator), so the walk fails and the PDBA is discarded.
/// The surviving set size is the trusted count of live address spaces,
/// independent of any guest-OS data structure.
#[derive(Debug, Clone, Default)]
pub struct ProcessCounter {
    pdba_set: BTreeSet<u64>,
}

impl ProcessCounter {
    /// An empty counter (VM start).
    pub fn new() -> Self {
        ProcessCounter::default()
    }

    /// Records one observed CR3 load.
    pub fn observe(&mut self, pdba: Gpa) {
        self.pdba_set.insert(pdba.value());
    }

    /// Convenience: records the PDBA of a [`EventKind::ProcessSwitch`].
    pub fn observe_event(&mut self, kind: &EventKind) {
        if let EventKind::ProcessSwitch { new_pdba } = kind {
            self.observe(*new_pdba);
        }
    }

    /// Number of PDBAs ever observed and not yet pruned (no validity check).
    pub fn raw_count(&self) -> usize {
        self.pdba_set.len()
    }

    /// Whether a PDBA has been observed (and not pruned).
    pub fn contains(&self, pdba: Gpa) -> bool {
        self.pdba_set.contains(&pdba.value())
    }

    /// The Fig. 3A "Count the Virtual Address Spaces" procedure: prunes every
    /// PDBA under which `known_gva` (an address mapped in all live address
    /// spaces, e.g. a kernel-text address) no longer translates, then returns
    /// the set size.
    ///
    /// The paper's pseudo-code temporarily loads each PDBA into `vcpu.CR3`
    /// and calls `gva_to_gpa`; the simulator's page walker takes the PDBA
    /// directly, which is the same computation without the save/restore
    /// dance.
    pub fn count_valid(&mut self, mem: &GuestMemory, known_gva: Gva) -> usize {
        self.pdba_set.retain(|&pdba| paging::walk(mem, Gpa::new(pdba), known_gva).is_ok());
        self.pdba_set.len()
    }

    /// Iterates over the currently remembered PDBAs.
    pub fn iter(&self) -> impl Iterator<Item = Gpa> + '_ {
        self.pdba_set.iter().map(|&v| Gpa::new(v))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::machine_with;
    use super::*;
    use hypertap_hvsim::cpu::{CpuCtx, StepOutcome};
    use hypertap_hvsim::machine::GuestProgram;
    use hypertap_hvsim::mem::{Gfn, PAGE_SIZE};
    use hypertap_hvsim::paging::{AddressSpaceBuilder, FrameAllocator};

    struct SwitchLoop {
        pdbas: Vec<u64>,
        i: usize,
    }

    impl GuestProgram for SwitchLoop {
        fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
            cpu.write_cr3(Gpa::new(self.pdbas[self.i % self.pdbas.len()]));
            self.i += 1;
            StepOutcome::Continue
        }
    }

    #[test]
    fn every_cr3_load_becomes_a_process_switch_event() {
        let mut m = machine_with(Box::new(ProcessSwitchEngine::new()));
        let mut g = SwitchLoop { pdbas: vec![0x1000, 0x2000, 0x1000], i: 0 };
        m.run_steps(&mut g, 3);
        let events = &m.hypervisor().events;
        assert_eq!(events.len(), 3);
        assert!(matches!(
            events[0].1,
            EventKind::ProcessSwitch { new_pdba } if new_pdba == Gpa::new(0x1000)
        ));
    }

    #[test]
    fn disable_stops_events() {
        let mut m = machine_with(Box::new(ProcessSwitchEngine::new()));
        let (vm, hv) = m.parts_mut();
        hv.engine.disable(vm);
        let mut g = SwitchLoop { pdbas: vec![0x1000], i: 0 };
        m.run_steps(&mut g, 3);
        assert!(m.hypervisor().events.is_empty());
    }

    #[test]
    fn counter_dedups_pdbas() {
        let mut c = ProcessCounter::new();
        c.observe(Gpa::new(0x1000));
        c.observe(Gpa::new(0x2000));
        c.observe(Gpa::new(0x1000));
        assert_eq!(c.raw_count(), 2);
        assert!(c.contains(Gpa::new(0x2000)));
        assert!(!c.contains(Gpa::new(0x3000)));
    }

    #[test]
    fn count_valid_prunes_dead_address_spaces() {
        // Build two live address spaces sharing a kernel page, then destroy one.
        let mut mem = GuestMemory::new(32 << 20);
        let mut falloc = FrameAllocator::new(Gfn::new(16), Gfn::new((32 << 20) / PAGE_SIZE));
        let known = Gva::new(0x3000_0000);

        let mut kas = AddressSpaceBuilder::new(&mut mem, &mut falloc);
        let kframe = falloc.alloc(&mut mem);
        kas.map(&mut mem, &mut falloc, known, kframe);

        let mut uas = AddressSpaceBuilder::new(&mut mem, &mut falloc);
        uas.share_range_from(&mut mem, kas.pdba(), known, known.offset(PAGE_SIZE));

        let mut c = ProcessCounter::new();
        c.observe(kas.pdba());
        c.observe(uas.pdba());
        assert_eq!(c.count_valid(&mem, known), 2);

        // Kill the user process: its directory is freed and zeroed.
        let dead = uas.pdba();
        uas.destroy(&mut mem, &mut falloc, Some(kas.pdba()));
        assert_eq!(c.count_valid(&mem, known), 1);
        assert!(!c.contains(dead));
        assert!(c.contains(kas.pdba()));
    }

    #[test]
    fn observe_event_filters_kinds() {
        let mut c = ProcessCounter::new();
        c.observe_event(&EventKind::ProcessSwitch { new_pdba: Gpa::new(0x9000) });
        c.observe_event(&EventKind::ThreadSwitch { kernel_stack: 0x1 });
        assert_eq!(c.raw_count(), 1);
    }

    #[test]
    fn table1_row_present() {
        let e = ProcessSwitchEngine::new();
        assert_eq!(e.table1_rows().len(), 1);
        assert_eq!(e.table1_rows()[0].vm_exit, "CR_ACCESS");
    }
}
