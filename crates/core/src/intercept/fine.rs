//! Fine-grained interception (paper §VI-D).
//!
//! EPT permissions make it possible to watch individual frames for reads,
//! writes or instruction fetches. The paper notes the significant cost of
//! this granularity and recommends it only for selective critical
//! protection; the engine therefore watches an explicit frame list rather
//! than offering blanket tracing.

use super::{InterceptEngine, Table1Row};
use crate::event::EventKind;
use hypertap_hvsim::ept::{AccessKind, EptPerm};
use hypertap_hvsim::exit::{ExitAction, VmExit, VmExitKind};
use hypertap_hvsim::machine::VmState;
use hypertap_hvsim::mem::Gfn;
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};
use std::collections::HashMap;

static ROWS: [Table1Row; 2] = [
    Table1Row {
        category: "Low-level interception",
        guest_event: "Memory access",
        vm_exit: "EPT_VIOLATION",
        invariant:
            "Accesses to memory regions with proper permissions cause EPT_VIOLATION VM Exits",
    },
    Table1Row {
        category: "Low-level interception",
        guest_event: "Instruction execution",
        vm_exit: "EPT_VIOLATION",
        invariant:
            "Execution of instructions from non-executable regions causes EPT_VIOLATION VM Exits",
    },
];

/// Watches selected guest frames at EPT granularity.
#[derive(Debug, Default)]
pub struct FineGrainedEngine {
    watched: HashMap<Gfn, EptPerm>, // gfn -> previous permission
}

impl FineGrainedEngine {
    /// Creates the engine with an empty watch list.
    pub fn new() -> Self {
        FineGrainedEngine::default()
    }

    /// Watches a frame with the given (restricted) permission; accesses that
    /// the permission denies will be reported as [`EventKind::MemoryAccess`].
    pub fn watch_frame(&mut self, vm: &mut VmState, gfn: Gfn, perm: EptPerm) {
        let prev = vm.ept.set_perm(gfn, perm);
        self.watched.entry(gfn).or_insert(prev);
    }

    /// Stops watching a frame, restoring its original permission.
    pub fn unwatch_frame(&mut self, vm: &mut VmState, gfn: Gfn) {
        if let Some(prev) = self.watched.remove(&gfn) {
            vm.ept.set_perm(gfn, prev);
        }
    }

    /// Number of watched frames.
    pub fn watched_frames(&self) -> usize {
        self.watched.len()
    }
}

impl InterceptEngine for FineGrainedEngine {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "fine-grained"
    }

    fn table1_rows(&self) -> &'static [Table1Row] {
        &ROWS
    }

    fn enable(&mut self, _vm: &mut VmState) {
        // Watching is explicit per frame; nothing global to program.
    }

    fn disable(&mut self, vm: &mut VmState) {
        for (gfn, prev) in self.watched.drain() {
            vm.ept.set_perm(gfn, prev);
        }
    }

    fn on_exit(
        &mut self,
        _vm: &mut VmState,
        exit: &VmExit,
        emit: &mut dyn FnMut(EventKind),
    ) -> ExitAction {
        if let VmExitKind::EptViolation(v) = exit.kind {
            if self.watched.contains_key(&v.gpa.gfn()) {
                emit(EventKind::MemoryAccess {
                    gpa: v.gpa,
                    gva: v.gva,
                    access: v.access,
                    value: v.value,
                });
            }
        }
        ExitAction::Resume
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        // Deterministic byte stream: the map is emitted in ascending-gfn
        // order regardless of hash-map iteration order.
        let mut entries: Vec<(Gfn, EptPerm)> = self.watched.iter().map(|(g, p)| (*g, *p)).collect();
        entries.sort_by_key(|(g, _)| *g);
        w.varint(entries.len() as u64);
        for (gfn, prev) in entries {
            w.varint(gfn.value());
            w.byte(prev.to_bits());
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        let n = r.count(1 << 24, "watched frames")?;
        self.watched = HashMap::with_capacity(n);
        for _ in 0..n {
            let gfn = Gfn::new(r.varint()?);
            let start = r.offset();
            let prev = EptPerm::from_bits(r.byte()?)
                .ok_or(SnapError::BadValue { offset: start, what: "ept permission" })?;
            self.watched.insert(gfn, prev);
        }
        r.finish()
    }
}

/// Convenience: the permission that reports the given access kinds.
pub fn perm_watching(kinds: &[AccessKind]) -> EptPerm {
    let mut perm = EptPerm::RWX;
    for k in kinds {
        perm = match k {
            AccessKind::Write => match perm {
                p if p == EptPerm::RWX => EptPerm::RX,
                p if p == EptPerm::RW => EptPerm::NONE, // read-only impossible in model; drop all
                p => p,
            },
            AccessKind::Execute => match perm {
                p if p == EptPerm::RWX => EptPerm::RW,
                p if p == EptPerm::RX => EptPerm::NONE,
                p => p,
            },
            AccessKind::Read => EptPerm::NONE,
        };
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::super::testutil::machine_with;
    use super::*;
    use hypertap_hvsim::cpu::{CpuCtx, StepOutcome};
    use hypertap_hvsim::machine::GuestProgram;
    use hypertap_hvsim::mem::Gva;
    use hypertap_hvsim::paging::{AddressSpaceBuilder, FrameAllocator};
    use hypertap_hvsim::vcpu::VcpuId;

    const DATA_GVA: u64 = 0x2400_0000;

    struct WriteGuest {
        booted: bool,
    }

    impl GuestProgram for WriteGuest {
        fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
            if cpu.vcpu_id() != VcpuId(0) {
                cpu.compute(1_000_000_000);
                return StepOutcome::Continue;
            }
            if !self.booted {
                let mut falloc = FrameAllocator::new(Gfn::new(16), Gfn::new(4096));
                let vm = cpu.vm_mut();
                let mut asb = AddressSpaceBuilder::new(&mut vm.mem, &mut falloc);
                asb.map_fresh_range(&mut vm.mem, &mut falloc, Gva::new(DATA_GVA), 1);
                let pdba = asb.pdba();
                cpu.write_cr3(pdba);
                self.booted = true;
                return StepOutcome::Continue;
            }
            cpu.write_u64_gva(Gva::new(DATA_GVA + 8), 0x55).unwrap();
            let _ = cpu.read_u64_gva(Gva::new(DATA_GVA)).unwrap();
            StepOutcome::Continue
        }
    }

    #[test]
    fn watched_frame_reports_denied_accesses_only() {
        let mut m = machine_with(Box::new(FineGrainedEngine::new()));
        let mut g = WriteGuest { booted: false };
        m.run_steps(&mut g, 1); // boot
                                // Find the data frame and watch writes to it.
        let gpa = {
            let vm = m.vm();
            hypertap_hvsim::paging::walk(&vm.mem, vm.vcpu(VcpuId(0)).cr3(), Gva::new(DATA_GVA))
                .unwrap()
        };
        {
            let (vm, hv) = m.parts_mut();
            let engine = &mut hv.engine;
            // Downcast through trait object is awkward in the shared harness;
            // drive watch_frame through a fresh engine reference instead.
            let any: &mut dyn InterceptEngine = engine.as_mut();
            let _ = any;
            // Re-create: simplest is to watch via a second engine instance is
            // wrong — instead watch using the EPT directly mirrors watch_frame.
            let mut fge = FineGrainedEngine::new();
            fge.watch_frame(vm, gpa.gfn(), EptPerm::RX);
            assert_eq!(fge.watched_frames(), 1);
            *engine = Box::new(fge);
        }
        m.run_steps(&mut g, 2);
        let mems: Vec<_> = m
            .hypervisor()
            .events
            .iter()
            .filter(|(_, k)| matches!(k, EventKind::MemoryAccess { .. }))
            .collect();
        assert_eq!(mems.len(), 1, "write trapped, read allowed");
        match mems[0].1 {
            EventKind::MemoryAccess { access, value, .. } => {
                assert_eq!(access, AccessKind::Write);
                assert_eq!(value, Some(0x55));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn unwatch_restores() {
        let mut m = machine_with(Box::new(FineGrainedEngine::new()));
        let (vm, _) = m.parts_mut();
        let mut fge = FineGrainedEngine::new();
        fge.watch_frame(vm, Gfn::new(100), EptPerm::NONE);
        assert_eq!(vm.ept.restricted_frames(), 1);
        fge.unwatch_frame(vm, Gfn::new(100));
        assert_eq!(vm.ept.restricted_frames(), 0);
        assert_eq!(fge.watched_frames(), 0);
    }

    #[test]
    fn perm_watching_combinations() {
        assert_eq!(perm_watching(&[AccessKind::Write]), EptPerm::RX);
        assert_eq!(perm_watching(&[AccessKind::Execute]), EptPerm::RW);
        assert_eq!(perm_watching(&[AccessKind::Write, AccessKind::Execute]), EptPerm::NONE);
        assert_eq!(perm_watching(&[AccessKind::Read]), EptPerm::NONE);
    }
}
