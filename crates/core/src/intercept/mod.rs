//! Hardware-invariant interception engines (paper §VI, Table I, Fig. 3).
//!
//! Each engine owns one guest-event family: it programs the VM-exit controls
//! and/or EPT permissions needed to make the corresponding guest operations
//! trap, and decodes the resulting VM Exits into typed [`EventKind`]s. The
//! engines are the only components that touch exit controls, so co-deployed
//! monitors can never conflict over them — the unified-logging argument of
//! the paper's §IV-A.
//!
//! | Engine | Paper | Guest event | VM Exit | Invariant |
//! |---|---|---|---|---|
//! | [`ProcessSwitchEngine`] | §VI-A1, Fig. 3A | process context switch | `CR_ACCESS` | CR3 always holds the running process's PDBA |
//! | [`ThreadSwitchEngine`] | §VI-A2, Fig. 3B | thread switch | `EPT_VIOLATION` | TR points at the TSS; `TSS.RSP0` is unique per thread |
//! | [`TssIntegrityEngine`] | Fig. 3C | TSS relocation | (any) | TR must not move after boot |
//! | [`IntSyscallEngine`] | §VI-B1, Fig. 3D | interrupt-based syscall | `EXCEPTION` | software interrupts are the only legacy ring gate |
//! | [`FastSyscallEngine`] | §VI-B2, Fig. 3E | fast syscall | `WRMSR` + `EPT_VIOLATION` | `SYSENTER` target lives in an MSR; MSR writes trap |
//! | [`IoEngine`] | §VI-C | I/O accesses | `IO_INST`, `EPT_VIOLATION`, `EXTERNAL_INT`, `APIC_ACCESS` | I/O must use architectural channels |
//! | [`FineGrainedEngine`] | §VI-D | memory access / instruction execution | `EPT_VIOLATION` | EPT permissions bind all guest-physical accesses |

use crate::event::EventKind;
use hypertap_hvsim::exit::{ExitAction, VmExit};
use hypertap_hvsim::machine::VmState;
use hypertap_hvsim::snap::SnapError;

mod fine;
mod io;
mod process;
mod syscall;
mod thread;
mod tss;

pub use fine::{perm_watching, FineGrainedEngine};
pub use io::IoEngine;
pub use process::{ProcessCounter, ProcessSwitchEngine};
pub use syscall::{FastSyscallEngine, IntSyscallEngine};
pub use thread::ThreadSwitchEngine;
pub use tss::TssIntegrityEngine;

/// One row of the paper's Table I, as self-described by an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// Monitoring category (Table I column 1).
    pub category: &'static str,
    /// Guest event (column 2).
    pub guest_event: &'static str,
    /// Related VM Exit type(s) (column 3).
    pub vm_exit: &'static str,
    /// The architectural invariant relied upon (column 4).
    pub invariant: &'static str,
}

/// An interception engine: the logging-phase component for one guest-event
/// family.
pub trait InterceptEngine {
    /// Engine name.
    fn name(&self) -> &'static str;

    /// The Table I rows this engine implements.
    fn table1_rows(&self) -> &'static [Table1Row];

    /// Programs the exit controls / EPT protections this engine needs.
    fn enable(&mut self, vm: &mut VmState);

    /// Reverts the programming done by [`InterceptEngine::enable`].
    fn disable(&mut self, vm: &mut VmState);

    /// Inspects one VM Exit, emitting zero or more decoded events. The
    /// default action is [`ExitAction::Resume`] (emulate and continue).
    fn on_exit(
        &mut self,
        vm: &mut VmState,
        exit: &VmExit,
        emit: &mut dyn FnMut(EventKind),
    ) -> ExitAction;

    /// Upcast for engines with runtime configuration (e.g. the fine-grained
    /// watcher's frame list).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Serializes the engine's mutable runtime state (armed watches, learned
    /// entry points, ...) for a machine snapshot. Engines whose entire state
    /// is recipe configuration return an empty blob (the default). EPT
    /// permissions the engine programmed are *not* part of this blob — they
    /// are captured by the machine's own EPT serialization.
    fn snapshot_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state produced by [`InterceptEngine::snapshot_state`] into a
    /// freshly built engine of the same kind.
    ///
    /// # Errors
    ///
    /// Returns a structured [`SnapError`] on malformed bytes; the default
    /// accepts only an empty blob.
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(SnapError::Unsupported {
                what: format!("engine '{}' has no restorable state", self.name()),
            })
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared scaffolding for engine tests: a machine whose hypervisor runs
    //! a single engine and collects its events.

    use super::*;
    use crate::event::EventKind;
    use hypertap_hvsim::machine::{Hypervisor, Machine, VmConfig};

    /// Hypervisor driving exactly one engine.
    pub struct SingleEngineHv {
        pub engine: Box<dyn InterceptEngine>,
        pub events: Vec<(hypertap_hvsim::vcpu::VcpuId, EventKind)>,
    }

    impl Hypervisor for SingleEngineHv {
        fn handle_exit(&mut self, vm: &mut VmState, exit: &VmExit) -> ExitAction {
            let mut out = Vec::new();
            let action = self.engine.on_exit(vm, exit, &mut |k| out.push(k));
            self.events.extend(out.into_iter().map(|k| (exit.vcpu, k)));
            action
        }
    }

    /// A 2-vCPU machine with the engine installed and enabled.
    pub fn machine_with(engine: Box<dyn InterceptEngine>) -> Machine<SingleEngineHv> {
        let mut m =
            Machine::new(VmConfig::new(2, 64 << 20), SingleEngineHv { engine, events: Vec::new() });
        let (vm, hv) = m.parts_mut();
        hv.engine.enable(vm);
        m
    }
}
