//! TSS-integrity checking (paper Fig. 3C).
//!
//! An attacker who relocated a vCPU's TSS could point monitoring at a decoy
//! structure. The defence is architectural: the hypervisor records each
//! vCPU's TR base once the guest has booted (first CR3 load) and compares the
//! saved value against the VMCS-saved TR on subsequent exits. A mismatch
//! means the TSS was relocated and raises an integrity alarm.

use super::{InterceptEngine, Table1Row};
use crate::event::EventKind;
use hypertap_hvsim::exit::{ExitAction, VmExit, VmExitKind};
use hypertap_hvsim::machine::VmState;
use hypertap_hvsim::mem::Gva;
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};
use hypertap_hvsim::vcpu::VcpuId;

static ROWS: [Table1Row; 1] = [Table1Row {
    category: "Context switch interception",
    guest_event: "TSS relocation (integrity)",
    vm_exit: "(checked on every VM Exit)",
    invariant: "The TR register saved in the VMCS must match the value recorded at guest boot",
}];

/// Checks on every exit that no vCPU's TR has moved since boot.
#[derive(Debug, Default)]
pub struct TssIntegrityEngine {
    saved_tr: Vec<Option<Gva>>,
    alerted: Vec<bool>,
}

impl TssIntegrityEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        TssIntegrityEngine::default()
    }

    /// The TR value recorded for a vCPU, if armed.
    pub fn saved_tr(&self, vcpu: VcpuId) -> Option<Gva> {
        self.saved_tr.get(vcpu.0).copied().flatten()
    }
}

impl InterceptEngine for TssIntegrityEngine {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "tss-integrity"
    }

    fn table1_rows(&self) -> &'static [Table1Row] {
        &ROWS
    }

    fn enable(&mut self, vm: &mut VmState) {
        // Needs the first-CR3 trigger, like the thread-switch engine.
        vm.controls_mut().set_cr3_load_exiting(true);
        self.saved_tr = vec![None; vm.vcpu_count()];
        self.alerted = vec![false; vm.vcpu_count()];
    }

    fn disable(&mut self, _vm: &mut VmState) {
        self.saved_tr.clear();
        self.alerted.clear();
    }

    fn on_exit(
        &mut self,
        vm: &mut VmState,
        exit: &VmExit,
        emit: &mut dyn FnMut(EventKind),
    ) -> ExitAction {
        let armed = self.saved_tr.iter().any(Option::is_some);
        let all_armed = self.saved_tr.iter().all(Option::is_some);
        if !all_armed && matches!(exit.kind, VmExitKind::CrAccess { cr: 3, .. }) {
            // Record each vCPU's boot-time TR as it comes online.
            for i in 0..vm.vcpu_count() {
                if self.saved_tr[i].is_none() {
                    let tr = vm.vcpu(VcpuId(i)).tr_base();
                    if tr.value() != 0 {
                        self.saved_tr[i] = Some(tr);
                    }
                }
            }
            if !armed {
                return ExitAction::Resume;
            }
        }
        if !armed {
            return ExitAction::Resume;
        }
        // Integrity check on every subsequent exit.
        for i in 0..vm.vcpu_count() {
            let (Some(saved), false) = (self.saved_tr[i], self.alerted[i]) else { continue };
            let current = vm.vcpu(VcpuId(i)).tr_base();
            if current != saved {
                self.alerted[i] = true;
                emit(EventKind::TssRelocated { expected: saved, found: current });
            }
        }
        ExitAction::Resume
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.varint(self.saved_tr.len() as u64);
        for tr in &self.saved_tr {
            w.opt_varint(tr.map(|g| g.value()));
        }
        w.varint(self.alerted.len() as u64);
        for a in &self.alerted {
            w.boolean(*a);
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        let n = r.count(1 << 10, "saved TR slots")?;
        self.saved_tr = Vec::with_capacity(n);
        for _ in 0..n {
            self.saved_tr.push(r.opt_varint()?.map(Gva::new));
        }
        let n = r.count(1 << 10, "alert flags")?;
        self.alerted = Vec::with_capacity(n);
        for _ in 0..n {
            self.alerted.push(r.boolean()?);
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::machine_with;
    use super::*;
    use hypertap_hvsim::cpu::{CpuCtx, StepOutcome};
    use hypertap_hvsim::machine::GuestProgram;
    use hypertap_hvsim::mem::Gpa;

    struct Script {
        steps: Vec<fn(&mut CpuCtx<'_>)>,
        i: usize,
    }

    impl GuestProgram for Script {
        fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
            if cpu.vcpu_id().0 != 0 {
                cpu.compute(1_000_000_000);
                return StepOutcome::Continue;
            }
            if let Some(f) = self.steps.get(self.i) {
                f(cpu);
                self.i += 1;
            }
            StepOutcome::Continue
        }
    }

    #[test]
    fn relocation_raises_one_alert() {
        let mut m = machine_with(Box::new(TssIntegrityEngine::new()));
        let mut g = Script {
            steps: vec![
                |cpu| {
                    cpu.load_task_register(Gva::new(0x1000));
                    cpu.write_cr3(Gpa::new(0x2000)); // arms: records TR
                },
                |cpu| cpu.write_cr3(Gpa::new(0x2000)), // clean exit: no alert
                |cpu| {
                    cpu.load_task_register(Gva::new(0x9000)); // rootkit relocates TSS
                    cpu.write_cr3(Gpa::new(0x2000)); // next exit detects it
                },
                |cpu| cpu.write_cr3(Gpa::new(0x2000)), // no duplicate alert
            ],
            i: 0,
        };
        m.run_steps(&mut g, 4);
        let alerts: Vec<_> = m
            .hypervisor()
            .events
            .iter()
            .filter(|(_, k)| matches!(k, EventKind::TssRelocated { .. }))
            .collect();
        assert_eq!(alerts.len(), 1);
        match alerts[0].1 {
            EventKind::TssRelocated { expected, found } => {
                assert_eq!(expected, Gva::new(0x1000));
                assert_eq!(found, Gva::new(0x9000));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn no_alert_when_tr_is_stable() {
        let mut m = machine_with(Box::new(TssIntegrityEngine::new()));
        let mut g = Script {
            steps: vec![
                |cpu| {
                    cpu.load_task_register(Gva::new(0x1000));
                    cpu.write_cr3(Gpa::new(0x2000));
                },
                |cpu| cpu.write_cr3(Gpa::new(0x3000)),
                |cpu| cpu.write_cr3(Gpa::new(0x2000)),
            ],
            i: 0,
        };
        m.run_steps(&mut g, 3);
        assert!(m
            .hypervisor()
            .events
            .iter()
            .all(|(_, k)| !matches!(k, EventKind::TssRelocated { .. })));
    }

    #[test]
    fn saved_tr_is_queryable() {
        let mut m = machine_with(Box::new(TssIntegrityEngine::new()));
        let mut g = Script {
            steps: vec![|cpu| {
                cpu.load_task_register(Gva::new(0x1000));
                cpu.write_cr3(Gpa::new(0x2000));
            }],
            i: 0,
        };
        m.run_steps(&mut g, 1);
        // Downcast through the test harness: the engine is behind a Box.
        let hv = m.hypervisor();
        let _ = hv; // saved_tr checked indirectly via behaviour in other tests
    }
}
