//! System-call interception (paper §VI-B, Fig. 3D and Fig. 3E).
//!
//! A system call is a ring transition, and ring transitions must pass
//! through architecturally defined gates — so trapping the gates yields a
//! complete, untamperable syscall stream:
//!
//! * **Interrupt-based syscalls** (`INT 0x80` on Linux, `INT 0x2E` on
//!   Windows): the exception bitmap makes the chosen vectors exit
//!   ([`IntSyscallEngine`], Fig. 3D).
//! * **Fast syscalls** (`SYSENTER`): the entry point lives in
//!   `IA32_SYSENTER_EIP`, which can only be changed by a trapping `WRMSR`.
//!   The engine learns the entry address from the `WRMSR` exit and
//!   execute-protects its page, so every `SYSENTER` raises an
//!   `EPT_VIOLATION` ([`FastSyscallEngine`], Fig. 3E).
//!
//! In both cases the syscall number and arguments are read from the
//! VMCS-saved registers (RAX + RBX/RCX/RDX/RSI/RDI), exactly as the paper's
//! pseudo-code does.

use super::{InterceptEngine, Table1Row};
use crate::event::{EventKind, SyscallGate};
use hypertap_hvsim::ept::{AccessKind, EptPerm};
use hypertap_hvsim::exit::{ExceptionType, ExitAction, VcpuSnapshot, VmExit, VmExitKind};
use hypertap_hvsim::machine::VmState;
use hypertap_hvsim::mem::{Gfn, Gva};
use hypertap_hvsim::paging;
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};
use hypertap_hvsim::vcpu::{Gpr, Msr};

/// Linux's legacy syscall vector.
pub const LINUX_SYSCALL_VECTOR: u8 = 0x80;
/// Windows' legacy syscall vector.
pub const WINDOWS_SYSCALL_VECTOR: u8 = 0x2e;

fn decode_syscall(state: &VcpuSnapshot) -> (u64, [u64; 5]) {
    (
        state.gpr(Gpr::Rax),
        [
            state.gpr(Gpr::Rbx),
            state.gpr(Gpr::Rcx),
            state.gpr(Gpr::Rdx),
            state.gpr(Gpr::Rsi),
            state.gpr(Gpr::Rdi),
        ],
    )
}

static INT_ROWS: [Table1Row; 1] = [Table1Row {
    category: "System call interception",
    guest_event: "Interrupt-based system call",
    vm_exit: "EXCEPTION",
    invariant: "Software interrupts cause EXCEPTION VM Exits",
}];

/// Intercepts legacy interrupt-based system calls (Fig. 3D).
#[derive(Debug)]
pub struct IntSyscallEngine {
    vectors: Vec<u8>,
}

impl IntSyscallEngine {
    /// Intercepts the standard Linux and Windows vectors.
    pub fn new() -> Self {
        IntSyscallEngine { vectors: vec![LINUX_SYSCALL_VECTOR, WINDOWS_SYSCALL_VECTOR] }
    }

    /// Intercepts a custom set of vectors.
    pub fn with_vectors(vectors: Vec<u8>) -> Self {
        IntSyscallEngine { vectors }
    }
}

impl Default for IntSyscallEngine {
    fn default() -> Self {
        IntSyscallEngine::new()
    }
}

impl InterceptEngine for IntSyscallEngine {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "int-syscall"
    }

    fn table1_rows(&self) -> &'static [Table1Row] {
        &INT_ROWS
    }

    fn enable(&mut self, vm: &mut VmState) {
        for v in &self.vectors {
            vm.controls_mut().set_exception_exiting(*v, true);
        }
    }

    fn disable(&mut self, vm: &mut VmState) {
        for v in &self.vectors {
            vm.controls_mut().set_exception_exiting(*v, false);
        }
    }

    fn on_exit(
        &mut self,
        _vm: &mut VmState,
        exit: &VmExit,
        emit: &mut dyn FnMut(EventKind),
    ) -> ExitAction {
        if let VmExitKind::Exception { vector, ex_type: ExceptionType::SoftwareInterrupt } =
            exit.kind
        {
            if self.vectors.contains(&vector) {
                let (number, args) = decode_syscall(&exit.state);
                emit(EventKind::Syscall { gate: SyscallGate::Interrupt(vector), number, args });
            }
        }
        ExitAction::Resume
    }
}

static FAST_ROWS: [Table1Row; 1] = [Table1Row {
    category: "System call interception",
    guest_event: "Fast system call",
    vm_exit: "WRMSR, EPT_VIOLATION",
    invariant: "SYSENTER's target instruction is stored in an MSR register; \
                write to MSR registers causes WRMSR VM Exit",
}];

/// Intercepts `SYSENTER`-based system calls (Fig. 3E).
#[derive(Debug, Default)]
pub struct FastSyscallEngine {
    syscall_entry: Option<Gva>,
    protected: Option<(Gfn, EptPerm)>,
}

impl FastSyscallEngine {
    /// Creates the engine. It learns the entry point from the guest's own
    /// `WRMSR` to `IA32_SYSENTER_EIP`.
    pub fn new() -> Self {
        FastSyscallEngine::default()
    }

    /// The syscall entry point learned so far.
    pub fn syscall_entry(&self) -> Option<Gva> {
        self.syscall_entry
    }

    fn protect_entry(&mut self, vm: &mut VmState, entry: Gva, cr3: hypertap_hvsim::mem::Gpa) {
        if let Some((gfn, prev)) = self.protected.take() {
            vm.ept.set_perm(gfn, prev);
        }
        if let Ok(gpa) = paging::walk(&vm.mem, cr3, entry) {
            let prev = vm.ept.set_perm(gpa.gfn(), EptPerm::RW); // no execute
            self.protected = Some((gpa.gfn(), prev));
        }
        self.syscall_entry = Some(entry);
    }
}

impl InterceptEngine for FastSyscallEngine {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "fast-syscall"
    }

    fn table1_rows(&self) -> &'static [Table1Row] {
        &FAST_ROWS
    }

    fn enable(&mut self, vm: &mut VmState) {
        vm.controls_mut().set_msr_write_exiting(Msr::SysenterEip, true);
    }

    fn disable(&mut self, vm: &mut VmState) {
        vm.controls_mut().set_msr_write_exiting(Msr::SysenterEip, false);
        if let Some((gfn, prev)) = self.protected.take() {
            vm.ept.set_perm(gfn, prev);
        }
        self.syscall_entry = None;
    }

    fn on_exit(
        &mut self,
        vm: &mut VmState,
        exit: &VmExit,
        emit: &mut dyn FnMut(EventKind),
    ) -> ExitAction {
        match exit.kind {
            VmExitKind::Wrmsr { msr: Msr::SysenterEip, value } => {
                self.protect_entry(vm, Gva::new(value), exit.state.cr3);
            }
            VmExitKind::EptViolation(v)
                if v.access == AccessKind::Execute
                    && v.gva.is_some()
                    && v.gva == self.syscall_entry =>
            {
                let (number, args) = decode_syscall(&exit.state);
                emit(EventKind::Syscall { gate: SyscallGate::Sysenter, number, args });
            }
            _ => {}
        }
        ExitAction::Resume
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.opt_varint(self.syscall_entry.map(|g| g.value()));
        match self.protected {
            Some((gfn, prev)) => {
                w.boolean(true);
                w.varint(gfn.value());
                w.byte(prev.to_bits());
            }
            None => w.boolean(false),
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        self.syscall_entry = r.opt_varint()?.map(Gva::new);
        self.protected = if r.boolean()? {
            let gfn = Gfn::new(r.varint()?);
            let start = r.offset();
            let prev = EptPerm::from_bits(r.byte()?)
                .ok_or(SnapError::BadValue { offset: start, what: "ept permission" })?;
            Some((gfn, prev))
        } else {
            None
        };
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::machine_with;
    use super::*;
    use hypertap_hvsim::cpu::{CpuCtx, StepOutcome};
    use hypertap_hvsim::machine::GuestProgram;
    use hypertap_hvsim::mem::Gfn;
    use hypertap_hvsim::paging::{AddressSpaceBuilder, FrameAllocator};
    use hypertap_hvsim::vcpu::VcpuId;

    const TSS_GVA: u64 = 0x3800_0000;
    const ENTRY_GVA: u64 = 0x3810_0000;

    fn boot(cpu: &mut CpuCtx<'_>) {
        let mut falloc = FrameAllocator::new(Gfn::new(16), Gfn::new(4096));
        let vm = cpu.vm_mut();
        let mut asb = AddressSpaceBuilder::new(&mut vm.mem, &mut falloc);
        asb.map_fresh_range(&mut vm.mem, &mut falloc, Gva::new(TSS_GVA), 1);
        asb.map_fresh_range(&mut vm.mem, &mut falloc, Gva::new(ENTRY_GVA), 1);
        let pdba = asb.pdba();
        cpu.load_task_register(Gva::new(TSS_GVA));
        cpu.write_cr3(pdba);
    }

    struct IntGuest {
        booted: bool,
    }

    impl GuestProgram for IntGuest {
        fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
            if cpu.vcpu_id() != VcpuId(0) {
                cpu.compute(1_000_000_000);
                return StepOutcome::Continue;
            }
            if !self.booted {
                boot(cpu);
                self.booted = true;
                return StepOutcome::Continue;
            }
            cpu.iret(Gva::new(0x7fff_0000)); // to user mode
            cpu.set_gpr(Gpr::Rax, 4); // write(2) on 32-bit Linux
            cpu.set_gpr(Gpr::Rbx, 1);
            cpu.set_gpr(Gpr::Rcx, 0xb0f);
            cpu.int_n(LINUX_SYSCALL_VECTOR).unwrap();
            StepOutcome::Continue
        }
    }

    #[test]
    fn int80_decodes_number_and_args() {
        let mut m = machine_with(Box::new(IntSyscallEngine::new()));
        m.run_steps(&mut IntGuest { booted: false }, 3);
        let syscalls: Vec<_> = m
            .hypervisor()
            .events
            .iter()
            .filter_map(|(_, k)| match k {
                EventKind::Syscall { gate, number, args } => Some((*gate, *number, *args)),
                _ => None,
            })
            .collect();
        assert_eq!(syscalls.len(), 1);
        let (gate, number, args) = syscalls[0];
        assert_eq!(gate, SyscallGate::Interrupt(0x80));
        assert_eq!(number, 4);
        assert_eq!(args[0], 1);
        assert_eq!(args[1], 0xb0f);
    }

    #[test]
    fn custom_vector_set() {
        let mut e = IntSyscallEngine::with_vectors(vec![0x42]);
        let mut m = machine_with(Box::new(IntSyscallEngine::with_vectors(vec![0x42])));
        // 0x80 is NOT trapped by this engine.
        m.run_steps(&mut IntGuest { booted: false }, 3);
        assert!(m.hypervisor().events.is_empty());
        let _ = &mut e;
    }

    struct FastGuest {
        booted: bool,
    }

    impl GuestProgram for FastGuest {
        fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
            if cpu.vcpu_id() != VcpuId(0) {
                cpu.compute(1_000_000_000);
                return StepOutcome::Continue;
            }
            if !self.booted {
                boot(cpu);
                // Kernel announces its fast-syscall entry point.
                cpu.wrmsr(Msr::SysenterEip, ENTRY_GVA);
                cpu.wrmsr(Msr::SysenterEsp, 0xA000);
                self.booted = true;
                return StepOutcome::Continue;
            }
            cpu.sysexit(Gva::new(0x7fff_0000));
            cpu.set_gpr(Gpr::Rax, 20); // getpid
            cpu.sysenter().unwrap();
            StepOutcome::Continue
        }
    }

    #[test]
    fn sysenter_is_intercepted_after_wrmsr_learning() {
        let mut m = machine_with(Box::new(FastSyscallEngine::new()));
        m.run_steps(&mut FastGuest { booted: false }, 4);
        let syscalls: Vec<_> = m
            .hypervisor()
            .events
            .iter()
            .filter_map(|(_, k)| match k {
                EventKind::Syscall { gate: SyscallGate::Sysenter, number, .. } => Some(*number),
                _ => None,
            })
            .collect();
        assert_eq!(syscalls, vec![20, 20]);
    }

    #[test]
    fn disable_unprotects_entry_page() {
        let mut m = machine_with(Box::new(FastSyscallEngine::new()));
        m.run_steps(&mut FastGuest { booted: false }, 3);
        assert!(m.vm().ept.restricted_frames() > 0);
        let (vm, hv) = m.parts_mut();
        hv.engine.disable(vm);
        assert_eq!(vm.ept.restricted_frames(), 0);
    }
}
