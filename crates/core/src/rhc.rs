//! The Remote Health Checker (RHC) — who watches the watchers?
//!
//! The Event Multiplexer samples the VM-exit stream and ships every N-th
//! exit as a heartbeat to an RHC running on a *separate machine* (paper
//! Fig. 2). A healthy guest generates a continuous exit stream, so a gap
//! longer than the configured timeout means either the guest, the
//! hypervisor, or the monitoring stack itself has died — the RHC raises a
//! liveness alarm either way.
//!
//! Two transports are provided: an in-process one for deterministic
//! simulation, and a real TCP transport ([`TcpTransport`] / [`RhcServer`])
//! carrying newline-delimited JSON, used by the `remote_health` example and
//! its integration test to demonstrate genuine out-of-machine checking.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One heartbeat: a sampled VM exit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatSample {
    /// Simulated time of the sampled exit, in nanoseconds.
    pub time_ns: u64,
    /// Monotonic sample sequence number.
    pub seq: u64,
}

/// A channel capable of delivering heartbeat samples to an RHC.
pub trait RhcTransport {
    /// Delivers one sample. Transports must not block the caller for long —
    /// delivery is on the logging path.
    fn send(&mut self, sample: &HeartbeatSample);
}

/// A liveness alarm raised by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RhcAlert {
    /// Wall-clock (simulated) nanoseconds at which the check ran.
    pub checked_at_ns: u64,
    /// Time of the last heartbeat received, if any.
    pub last_heartbeat_ns: Option<u64>,
}

impl fmt::Display for RhcAlert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.last_heartbeat_ns {
            Some(t) => write!(
                f,
                "monitoring stack silent since {}ns (checked at {}ns)",
                t, self.checked_at_ns
            ),
            None => write!(f, "no heartbeat ever received (checked at {}ns)", self.checked_at_ns),
        }
    }
}

/// The health checker: receives samples, measures inter-arrival gaps.
#[derive(Debug)]
pub struct RemoteHealthChecker {
    timeout_ns: u64,
    last: Option<HeartbeatSample>,
    received: u64,
    alerts: Vec<RhcAlert>,
}

impl RemoteHealthChecker {
    /// A checker that alarms after `timeout_ns` of silence.
    pub fn new(timeout_ns: u64) -> Self {
        RemoteHealthChecker { timeout_ns, last: None, received: 0, alerts: Vec::new() }
    }

    /// Ingests one sample.
    pub fn on_sample(&mut self, sample: HeartbeatSample) {
        self.received += 1;
        self.last = Some(sample);
    }

    /// Number of samples received.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Runs a liveness check at (simulated) time `now_ns`; records and
    /// returns an alert if the silence exceeds the timeout.
    pub fn check(&mut self, now_ns: u64) -> Option<RhcAlert> {
        let stale = match &self.last {
            Some(s) => now_ns.saturating_sub(s.time_ns) > self.timeout_ns,
            None => now_ns > self.timeout_ns,
        };
        if stale {
            let alert = RhcAlert {
                checked_at_ns: now_ns,
                last_heartbeat_ns: self.last.as_ref().map(|s| s.time_ns),
            };
            self.alerts.push(alert.clone());
            Some(alert)
        } else {
            None
        }
    }

    /// All alerts raised so far.
    pub fn alerts(&self) -> &[RhcAlert] {
        &self.alerts
    }
}

/// In-process transport: delivers directly into a shared checker. Used in
/// deterministic simulations where the "remote machine" is a host-side
/// object.
#[derive(Debug, Clone)]
pub struct InProcTransport {
    checker: Rc<RefCell<RemoteHealthChecker>>,
}

impl InProcTransport {
    /// Wraps a shared checker.
    pub fn new(checker: Rc<RefCell<RemoteHealthChecker>>) -> Self {
        InProcTransport { checker }
    }
}

impl RhcTransport for InProcTransport {
    fn send(&mut self, sample: &HeartbeatSample) {
        self.checker.borrow_mut().on_sample(sample.clone());
    }
}

/// TCP transport: serialises each sample as one JSON line.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connects to an RHC server.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport { stream })
    }
}

impl RhcTransport for TcpTransport {
    fn send(&mut self, sample: &HeartbeatSample) {
        // Best-effort: a dead RHC must not take the monitoring stack down.
        if let Ok(mut line) = serde_json::to_string(sample) {
            line.push('\n');
            let _ = self.stream.write_all(line.as_bytes());
        }
    }
}

/// A TCP RHC server: accepts one connection per monitored machine and feeds
/// a thread-safe checker.
#[derive(Debug)]
pub struct RhcServer {
    addr: SocketAddr,
    checker: Arc<Mutex<RemoteHealthChecker>>,
    handle: Option<JoinHandle<()>>,
}

impl RhcServer {
    /// Binds to an ephemeral local port and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn start(timeout_ns: u64) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let checker = Arc::new(Mutex::new(RemoteHealthChecker::new(timeout_ns)));
        let sink = checker.clone();
        let handle = std::thread::spawn(move || {
            // One connection at a time is enough for the reproduction.
            while let Ok((stream, _)) = listener.accept() {
                let reader = BufReader::new(stream);
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    if let Ok(sample) = serde_json::from_str::<HeartbeatSample>(&line) {
                        sink.lock().expect("checker lock").on_sample(sample);
                    }
                }
            }
        });
        Ok(RhcServer { addr, checker, handle: Some(handle) })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared access to the checker (for running `check` and reading stats).
    pub fn checker(&self) -> Arc<Mutex<RemoteHealthChecker>> {
        self.checker.clone()
    }
}

impl Drop for RhcServer {
    fn drop(&mut self) {
        // The accept loop ends when the listener errors at process exit; we
        // deliberately detach rather than block in a destructor.
        if let Some(h) = self.handle.take() {
            drop(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checker_alarm_on_silence() {
        let mut c = RemoteHealthChecker::new(1_000_000); // 1 ms
        assert!(c.check(500_000).is_none(), "within timeout, nothing yet");
        let alert = c.check(2_000_000).expect("no heartbeat ever");
        assert_eq!(alert.last_heartbeat_ns, None);
        c.on_sample(HeartbeatSample { time_ns: 2_100_000, seq: 1 });
        assert!(c.check(2_500_000).is_none());
        let alert = c.check(4_000_000).expect("stale heartbeat");
        assert_eq!(alert.last_heartbeat_ns, Some(2_100_000));
        assert_eq!(c.alerts().len(), 2);
        assert_eq!(c.received(), 1);
    }

    #[test]
    fn in_proc_transport_delivers() {
        let checker = Rc::new(RefCell::new(RemoteHealthChecker::new(1_000)));
        let mut t = InProcTransport::new(checker.clone());
        t.send(&HeartbeatSample { time_ns: 10, seq: 1 });
        t.send(&HeartbeatSample { time_ns: 20, seq: 2 });
        assert_eq!(checker.borrow().received(), 2);
    }

    #[test]
    fn tcp_round_trip() {
        let server = RhcServer::start(1_000_000).unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        for seq in 1..=5u64 {
            client.send(&HeartbeatSample { time_ns: seq * 100, seq });
        }
        drop(client); // flush + EOF
                      // Wait for the server thread to drain the connection.
        let checker = server.checker();
        for _ in 0..200 {
            if checker.lock().unwrap().received() == 5 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let mut c = checker.lock().unwrap();
        assert_eq!(c.received(), 5);
        assert!(c.check(550).is_none());
        assert!(c.check(2_000_000).is_some());
    }

    #[test]
    fn sample_json_round_trip() {
        let s = HeartbeatSample { time_ns: 42, seq: 7 };
        let json = serde_json::to_string(&s).unwrap();
        let back: HeartbeatSample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
