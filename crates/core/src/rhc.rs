//! The Remote Health Checker (RHC) — who watches the watchers?
//!
//! The Event Multiplexer samples the VM-exit stream and ships every N-th
//! exit as a heartbeat to an RHC running on a *separate machine* (paper
//! Fig. 2). A healthy guest generates a continuous exit stream, so a gap
//! longer than the configured timeout means either the guest, the
//! hypervisor, or the monitoring stack itself has died — the RHC raises a
//! liveness alarm either way.
//!
//! Two transports are provided: an in-process one for deterministic
//! simulation, and a real TCP transport ([`TcpTransport`] / [`RhcServer`])
//! carrying newline-delimited JSON, used by the `remote_health` example and
//! its integration test to demonstrate genuine out-of-machine checking.

use crate::metrics::{Histogram, MetricsRegistry};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One heartbeat: a sampled VM exit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatSample {
    /// Simulated time of the sampled exit, in nanoseconds.
    pub time_ns: u64,
    /// Monotonic sample sequence number.
    pub seq: u64,
}

/// A channel capable of delivering heartbeat samples to an RHC.
pub trait RhcTransport {
    /// Delivers one sample. Transports must not block the caller for long —
    /// delivery is on the logging path.
    fn send(&mut self, sample: &HeartbeatSample);
}

/// A liveness alarm raised by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RhcAlert {
    /// Wall-clock (simulated) nanoseconds at which the check ran.
    pub checked_at_ns: u64,
    /// Time of the last heartbeat received, if any.
    pub last_heartbeat_ns: Option<u64>,
}

impl fmt::Display for RhcAlert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.last_heartbeat_ns {
            Some(t) => write!(
                f,
                "monitoring stack silent since {}ns (checked at {}ns)",
                t, self.checked_at_ns
            ),
            None => write!(f, "no heartbeat ever received (checked at {}ns)", self.checked_at_ns),
        }
    }
}

/// The health checker: receives samples, measures inter-arrival gaps.
#[derive(Debug)]
pub struct RemoteHealthChecker {
    timeout_ns: u64,
    last: Option<HeartbeatSample>,
    /// Time of the first `check` — silence is measured from here until the
    /// first heartbeat arrives, so a checker attached at t≫timeout does not
    /// false-alarm before it has actually waited one timeout.
    started_at_ns: Option<u64>,
    received: u64,
    alerts: Vec<RhcAlert>,
    /// Heartbeat inter-arrival gaps, simulated nanoseconds.
    gaps: Histogram,
}

impl RemoteHealthChecker {
    /// A checker that alarms after `timeout_ns` of silence.
    pub fn new(timeout_ns: u64) -> Self {
        RemoteHealthChecker {
            timeout_ns,
            last: None,
            started_at_ns: None,
            received: 0,
            alerts: Vec::new(),
            gaps: Histogram::gap_ns(),
        }
    }

    /// Ingests one sample.
    pub fn on_sample(&mut self, sample: HeartbeatSample) {
        self.received += 1;
        if let Some(prev) = &self.last {
            self.gaps.observe(sample.time_ns.saturating_sub(prev.time_ns));
        }
        self.last = Some(sample);
    }

    /// Number of samples received.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Observed heartbeat inter-arrival gaps (simulated nanoseconds; the
    /// first sample has no predecessor and records nothing).
    pub fn gap_histogram(&self) -> &Histogram {
        &self.gaps
    }

    /// Exports the checker's counters and gap histogram into a snapshot
    /// registry.
    pub fn collect_metrics(&self, reg: &mut MetricsRegistry) {
        reg.counter(
            "hypertap_rhc_samples_received_total",
            "heartbeat samples received by the checker",
            self.received,
        );
        reg.counter(
            "hypertap_rhc_alerts_total",
            "liveness alarms raised by the checker",
            self.alerts.len() as u64,
        );
        if !self.gaps.is_empty() {
            reg.histogram(
                "hypertap_rhc_gap_ns",
                "heartbeat inter-arrival gap, simulated nanoseconds",
                &self.gaps,
            );
        }
    }

    /// Runs a liveness check at (simulated) time `now_ns`; records and
    /// returns an alert if the silence exceeds the timeout.
    pub fn check(&mut self, now_ns: u64) -> Option<RhcAlert> {
        let started = *self.started_at_ns.get_or_insert(now_ns);
        let stale = match &self.last {
            Some(s) => now_ns.saturating_sub(s.time_ns) > self.timeout_ns,
            // No heartbeat yet: silence runs from the first check, not from
            // simulated t=0 — a late-attached checker has not been waiting
            // since boot.
            None => now_ns.saturating_sub(started) > self.timeout_ns,
        };
        if stale {
            let alert = RhcAlert {
                checked_at_ns: now_ns,
                last_heartbeat_ns: self.last.as_ref().map(|s| s.time_ns),
            };
            self.alerts.push(alert.clone());
            Some(alert)
        } else {
            None
        }
    }

    /// All alerts raised so far.
    pub fn alerts(&self) -> &[RhcAlert] {
        &self.alerts
    }
}

/// In-process transport: delivers directly into a shared checker. Used in
/// deterministic simulations where the "remote machine" is a host-side
/// object.
#[derive(Debug, Clone)]
pub struct InProcTransport {
    checker: Rc<RefCell<RemoteHealthChecker>>,
}

impl InProcTransport {
    /// Wraps a shared checker.
    pub fn new(checker: Rc<RefCell<RemoteHealthChecker>>) -> Self {
        InProcTransport { checker }
    }
}

impl RhcTransport for InProcTransport {
    fn send(&mut self, sample: &HeartbeatSample) {
        self.checker.borrow_mut().on_sample(sample.clone());
    }
}

/// TCP transport: serialises each sample as one JSON line.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connects to an RHC server.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport { stream })
    }
}

impl RhcTransport for TcpTransport {
    fn send(&mut self, sample: &HeartbeatSample) {
        // Best-effort: a dead RHC must not take the monitoring stack down.
        if let Ok(mut line) = serde_json::to_string(sample) {
            line.push('\n');
            let _ = self.stream.write_all(line.as_bytes());
        }
    }
}

/// A TCP RHC server: accepts any number of monitored machines concurrently
/// (one reader thread per connection) and feeds a shared thread-safe
/// checker. [`RhcServer::stop`] shuts the whole server down cleanly;
/// dropping without `stop` is best-effort and never blocks.
#[derive(Debug)]
pub struct RhcServer {
    addr: SocketAddr,
    checker: Arc<Mutex<RemoteHealthChecker>>,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Reads newline-delimited JSON heartbeats from one client until EOF, a
/// hard I/O error, or server shutdown. The short read timeout is what lets
/// the thread notice the shutdown flag while a client is idle; a timeout
/// leaves any partially-read line buffered for the next iteration.
fn serve_connection(
    stream: TcpStream,
    sink: Arc<Mutex<RemoteHealthChecker>>,
    shutdown: Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(25)));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while !shutdown.load(Ordering::SeqCst) {
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: client closed cleanly.
            Ok(_) => {
                if let Ok(sample) = serde_json::from_str::<HeartbeatSample>(line.trim_end()) {
                    sink.lock().expect("checker lock").on_sample(sample);
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
}

impl RhcServer {
    /// Binds to an ephemeral local port and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn start(timeout_ns: u64) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let checker = Arc::new(Mutex::new(RemoteHealthChecker::new(timeout_ns)));
        let shutdown = Arc::new(AtomicBool::new(false));
        let sink = checker.clone();
        let stop_flag = shutdown.clone();
        let handle = std::thread::spawn(move || {
            let mut readers: Vec<JoinHandle<()>> = Vec::new();
            while let Ok((stream, _)) = listener.accept() {
                // `stop` wakes us with a throwaway connection after setting
                // the flag; check it before serving.
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let sink = sink.clone();
                let conn_flag = stop_flag.clone();
                readers.push(std::thread::spawn(move || {
                    serve_connection(stream, sink, conn_flag);
                }));
                readers.retain(|h| !h.is_finished());
            }
            for h in readers {
                let _ = h.join();
            }
        });
        Ok(RhcServer { addr, checker, shutdown, handle: Some(handle) })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared access to the checker (for running `check` and reading stats).
    pub fn checker(&self) -> Arc<Mutex<RemoteHealthChecker>> {
        self.checker.clone()
    }

    /// Stops accepting, unblocks every reader, and joins the accept thread
    /// (which in turn joins the readers). Idempotent.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RhcServer {
    fn drop(&mut self) {
        // Best-effort, never blocking: raise the flag and nudge the accept
        // loop so the threads wind down on their own, but do not join in a
        // destructor. Call `stop` for a synchronous shutdown.
        self.shutdown.store(true, Ordering::SeqCst);
        if self.handle.is_some() {
            let _ = TcpStream::connect(self.addr);
        }
        self.handle.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checker_alarm_on_silence() {
        let mut c = RemoteHealthChecker::new(1_000_000); // 1 ms
        assert!(c.check(500_000).is_none(), "within timeout, nothing yet");
        let alert = c.check(2_000_000).expect("no heartbeat ever");
        assert_eq!(alert.last_heartbeat_ns, None);
        c.on_sample(HeartbeatSample { time_ns: 2_100_000, seq: 1 });
        assert!(c.check(2_500_000).is_none());
        let alert = c.check(4_000_000).expect("stale heartbeat");
        assert_eq!(alert.last_heartbeat_ns, Some(2_100_000));
        assert_eq!(c.alerts().len(), 2);
        assert_eq!(c.received(), 1);
    }

    #[test]
    fn in_proc_transport_delivers() {
        let checker = Rc::new(RefCell::new(RemoteHealthChecker::new(1_000)));
        let mut t = InProcTransport::new(checker.clone());
        t.send(&HeartbeatSample { time_ns: 10, seq: 1 });
        t.send(&HeartbeatSample { time_ns: 20, seq: 2 });
        assert_eq!(checker.borrow().received(), 2);
    }

    #[test]
    fn tcp_round_trip() {
        let server = RhcServer::start(1_000_000).unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        for seq in 1..=5u64 {
            client.send(&HeartbeatSample { time_ns: seq * 100, seq });
        }
        drop(client); // flush + EOF
                      // Wait for the server thread to drain the connection.
        let checker = server.checker();
        for _ in 0..200 {
            if checker.lock().unwrap().received() == 5 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let mut c = checker.lock().unwrap();
        assert_eq!(c.received(), 5);
        assert!(c.check(550).is_none());
        assert!(c.check(2_000_000).is_some());
    }

    #[test]
    fn sample_json_round_trip() {
        let s = HeartbeatSample { time_ns: 42, seq: 7 };
        let json = serde_json::to_string(&s).unwrap();
        let back: HeartbeatSample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn late_attached_checker_waits_a_full_timeout_before_alarming() {
        // Regression: a checker whose first check runs at t ≫ timeout used
        // to compare absolute simulated time against the timeout and alarm
        // immediately, despite having waited for no silence at all.
        let mut c = RemoteHealthChecker::new(1_000_000); // 1 ms
        let attach = 10_000_000_000; // attached at t = 10 s
        assert!(c.check(attach).is_none(), "first check: no silence observed yet");
        assert!(c.check(attach + 900_000).is_none(), "still within one timeout of start");
        let alert = c.check(attach + 1_500_000).expect("one full timeout of silence");
        assert_eq!(alert.last_heartbeat_ns, None);
        assert_eq!(c.alerts().len(), 1);
    }

    #[test]
    fn gap_histogram_tracks_inter_arrival() {
        let mut c = RemoteHealthChecker::new(1_000_000);
        for (i, t) in [100_000u64, 200_000, 350_000, 50_350_000].iter().enumerate() {
            c.on_sample(HeartbeatSample { time_ns: *t, seq: i as u64 + 1 });
        }
        // 4 samples => 3 gaps: 100k, 150k, 50ms.
        let h = c.gap_histogram();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 100_000 + 150_000 + 50_000_000);
        let mut reg = MetricsRegistry::new();
        c.collect_metrics(&mut reg);
        assert_eq!(
            reg.find("hypertap_rhc_samples_received_total", &[]).unwrap().as_counter(),
            Some(4)
        );
        assert_eq!(
            reg.find("hypertap_rhc_gap_ns", &[]).unwrap().as_histogram().unwrap().count(),
            3
        );
    }

    #[test]
    fn server_handles_two_concurrent_clients() {
        // Regression: the accept loop used to serve one connection at a
        // time, so a second monitored machine's heartbeats were not read
        // until the first disconnected. Both clients here stay connected
        // and interleave sends; all samples must arrive while both live.
        let mut server = RhcServer::start(1_000_000).unwrap();
        let mut a = TcpTransport::connect(server.addr()).unwrap();
        let mut b = TcpTransport::connect(server.addr()).unwrap();
        for seq in 1..=4u64 {
            a.send(&HeartbeatSample { time_ns: seq * 100, seq });
            b.send(&HeartbeatSample { time_ns: seq * 100 + 50, seq });
        }
        let checker = server.checker();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while checker.lock().unwrap().received() != 8 {
            assert!(
                std::time::Instant::now() < deadline,
                "only {} of 8 samples arrived while both clients were connected",
                checker.lock().unwrap().received()
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        // Clients are still open; a clean stop must not hang on them.
        server.stop();
        drop(a);
        drop(b);
    }

    #[test]
    fn server_stop_joins_and_is_idempotent() {
        let mut server = RhcServer::start(1_000_000).unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        client.send(&HeartbeatSample { time_ns: 100, seq: 1 });
        let checker = server.checker();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while checker.lock().unwrap().received() != 1 {
            assert!(std::time::Instant::now() < deadline, "sample never arrived");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        server.stop();
        server.stop(); // second stop is a no-op
        drop(server); // drop after stop must not block or panic
    }
}
