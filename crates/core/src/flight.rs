//! Per-VM flight recorder: a bounded black box for post-mortem forensics.
//!
//! The recorder sits at the Event Multiplexer's pre-filter boundary — the
//! same point an [`crate::em::EventTap`] observes — and keeps a bounded
//! ring of the most recent activity: forwarded events (each stamped with
//! its [`EventRef`] sequence number), periodic ticks, auditor state
//! transitions (GOSHD liveness flips, HRKD scan epochs, HT-Ninja
//! privilege-track edges), findings with their causal provenance, audit
//! container panics, and host-side pipeline / fleet-slice spans.
//!
//! Unlike the replay crate's [`crate::em::EventTap`] recorder, the flight
//! recorder is **always on** and **allocation-lean**: events are `Copy`
//! and land in a pre-sized ring; strings are only allocated for the rare
//! record kinds (transitions, findings, panics). Recording is purely
//! host-side state — the recorder-on/off conformance pair in the replay
//! crate proves the simulated event stream is byte-identical either way.
//!
//! On failure — an auditor panic, a conformance divergence, or a fleet
//! worker panic — the ring is serialized to a versioned `.htfr` dump
//! ([`FlightDump`], format [`FLIGHT_VERSION`]) that the `flightdump`
//! inspector pretty-prints or exports as Chrome trace-event JSON for
//! `chrome://tracing` / Perfetto.

use crate::audit::{Finding, Severity};
use crate::event::{Event, EventClass, EventRef, VmId};
use hypertap_hvsim::clock::SimTime;
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};
use std::collections::VecDeque;
use std::fmt;

/// Version stamped into every `.htfr` dump. Bump on any change to the
/// record encoding; [`FlightDump::decode`] rejects versions it does not
/// understand rather than misparsing them.
pub const FLIGHT_VERSION: u32 = 1;

/// Default ring capacity (records, not bytes).
pub const DEFAULT_CAPACITY: usize = 256;

const FLIGHT_MAGIC: &[u8; 4] = b"HTFR";

const TAG_EVENT: u8 = 0x01;
const TAG_TICK: u8 = 0x02;
const TAG_TRANSITION: u8 = 0x03;
const TAG_FINDING: u8 = 0x04;
const TAG_PANIC: u8 = 0x05;
const TAG_SPAN: u8 = 0x06;

/// One in-memory ring entry. Events are kept as the `Copy` struct they
/// arrived as; rendering to strings is deferred to dump time.
#[derive(Debug, Clone)]
enum RingRecord {
    Event {
        seq: EventRef,
        event: Event,
    },
    Tick {
        time: SimTime,
    },
    Transition {
        time: SimTime,
        auditor: String,
        detail: String,
    },
    Finding(Finding),
    Panic {
        container: String,
        message: String,
        count: u64,
    },
    Span {
        name: &'static str,
        start: SimTime,
        duration_ns: u64,
        track: u32,
    },
    /// A record restored from a machine snapshot. Native records are only
    /// observable through [`FlightRecorder::dump`], so carrying the already
    /// rendered form is full fidelity: a restored ring dumps byte-for-byte
    /// identically to the ring it was captured from.
    Imported(DumpRecord),
}

/// The bounded per-VM flight recorder.
///
/// The event sequence counter advances even while recording is disabled:
/// [`EventRef`]s are a property of the forwarded stream itself, so
/// finding provenance is identical whether or not the black box is
/// retaining history — which is exactly what the recorder-on/off
/// conformance pair asserts.
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: bool,
    capacity: usize,
    ring: VecDeque<RingRecord>,
    next_seq: u64,
    dropped: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` records, enabled.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            enabled: true,
            capacity,
            ring: VecDeque::with_capacity(capacity.min(4096)),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Turns retention on or off. Sequence numbering continues either way.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether the ring is retaining records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Resizes the ring, discarding oldest records if it shrinks.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        self.capacity = capacity;
        while self.ring.len() > self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
    }

    /// The ring's capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records evicted to make room so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The ref the next forwarded event will receive.
    pub fn next_ref(&self) -> EventRef {
        EventRef(self.next_seq)
    }

    fn push(&mut self, record: RingRecord) {
        if !self.enabled {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(record);
    }

    /// Assigns the next [`EventRef`] to a forwarded event and retains it.
    /// Called once per event at the EM pre-filter boundary.
    pub fn observe_event(&mut self, event: &Event) -> EventRef {
        let seq = EventRef(self.next_seq);
        self.next_seq += 1;
        self.push(RingRecord::Event { seq, event: *event });
        seq
    }

    /// Retains one EM periodic tick.
    pub fn observe_tick(&mut self, time: SimTime) {
        self.push(RingRecord::Tick { time });
    }

    /// Retains an auditor state transition (liveness flip, scan epoch,
    /// privilege-track edge, ...).
    pub fn note_transition(&mut self, time: SimTime, auditor: &str, detail: String) {
        if !self.enabled {
            return;
        }
        self.push(RingRecord::Transition { time, auditor: auditor.to_owned(), detail });
    }

    /// Retains a finding alongside the events that caused it.
    pub fn note_finding(&mut self, finding: &Finding) {
        if !self.enabled {
            return;
        }
        self.push(RingRecord::Finding(finding.clone()));
    }

    /// Retains an audit-container panic (`count` is the container's panic
    /// total including this one).
    pub fn note_panic(&mut self, container: &str, message: &str, count: u64) {
        if !self.enabled {
            return;
        }
        self.push(RingRecord::Panic {
            container: container.to_owned(),
            message: message.to_owned(),
            count,
        });
    }

    /// Retains a host-side span (pipeline stage, fleet worker slice)
    /// anchored at simulated time `start` with a measured duration.
    pub fn note_span(&mut self, name: &'static str, start: SimTime, duration_ns: u64, track: u32) {
        self.push(RingRecord::Span { name, start, duration_ns, track });
    }

    /// Renders the ring into a serializable [`FlightDump`].
    pub fn dump(&self, reason: &str) -> FlightDump {
        let records = self.ring.iter().map(render_record).collect();
        FlightDump {
            version: FLIGHT_VERSION,
            reason: reason.to_owned(),
            capacity: self.capacity as u64,
            next_seq: self.next_seq,
            dropped: self.dropped,
            records,
        }
    }

    /// Renders and encodes the ring in one step.
    pub fn dump_bytes(&self, reason: &str) -> Vec<u8> {
        self.dump(reason).encode()
    }

    /// Serializes the recorder for a machine snapshot: the sequencing and
    /// eviction counters verbatim, plus every retained record in rendered
    /// ([`DumpRecord`]) form. Records are only observable through
    /// [`FlightRecorder::dump`], so the rendered form loses nothing a
    /// restored VM could expose.
    pub(crate) fn save(&self, w: &mut SnapWriter) {
        w.boolean(self.enabled);
        w.varint(self.capacity as u64);
        w.varint(self.next_seq);
        w.varint(self.dropped);
        w.varint(self.ring.len() as u64);
        for rec in &self.ring {
            save_record(w, &render_record(rec));
        }
    }

    /// Restores state written by [`FlightRecorder::save`]. Restored records
    /// enter the ring as [`RingRecord::Imported`] and dump byte-for-byte
    /// identically to the originals.
    pub(crate) fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.enabled = r.boolean()?;
        let start = r.offset();
        let capacity = r.varint()? as usize;
        if capacity == 0 {
            return Err(SnapError::BadValue { offset: start, what: "flight capacity" });
        }
        self.capacity = capacity;
        self.next_seq = r.varint()?;
        self.dropped = r.varint()?;
        let start = r.offset();
        let n = r.count(1 << 24, "flight records")?;
        if n > capacity {
            return Err(SnapError::BadValue { offset: start, what: "flight ring length" });
        }
        self.ring = VecDeque::with_capacity(n.min(4096));
        for _ in 0..n {
            let rec = load_record(r)?;
            self.ring.push_back(RingRecord::Imported(rec));
        }
        Ok(())
    }
}

/// Renders one ring record into its dump form (imported records pass
/// through verbatim).
fn render_record(r: &RingRecord) -> DumpRecord {
    match r {
        RingRecord::Event { seq, event } => DumpRecord::Event {
            seq: seq.0,
            time: event.time,
            vm: event.vm,
            vcpu: event.vcpu.0 as u32,
            class: event.class(),
            detail: event.kind.to_string(),
        },
        RingRecord::Tick { time } => DumpRecord::Tick { time: *time },
        RingRecord::Transition { time, auditor, detail } => {
            DumpRecord::Transition { time: *time, auditor: auditor.clone(), detail: detail.clone() }
        }
        RingRecord::Finding(f) => DumpRecord::Finding {
            time: f.time,
            auditor: f.auditor.clone(),
            severity: f.severity,
            message: f.message.clone(),
            provenance: f.provenance.clone(),
        },
        RingRecord::Panic { container, message, count } => DumpRecord::Panic {
            container: container.clone(),
            message: message.clone(),
            count: *count,
        },
        RingRecord::Span { name, start, duration_ns, track } => DumpRecord::Span {
            name: (*name).to_owned(),
            start: *start,
            duration_ns: *duration_ns,
            track: *track,
        },
        RingRecord::Imported(d) => d.clone(),
    }
}

/// Encodes one rendered record in snapshot (varint) form — the machine
/// snapshot's framing, distinct from the fixed-width `.htfr` encoding.
fn save_record(w: &mut SnapWriter, rec: &DumpRecord) {
    match rec {
        DumpRecord::Event { seq, time, vm, vcpu, class, detail } => {
            w.byte(TAG_EVENT);
            w.varint(*seq);
            w.varint(time.as_nanos());
            w.varint(u64::from(vm.0));
            w.varint(u64::from(*vcpu));
            w.byte(class_index(*class));
            w.string(detail);
        }
        DumpRecord::Tick { time } => {
            w.byte(TAG_TICK);
            w.varint(time.as_nanos());
        }
        DumpRecord::Transition { time, auditor, detail } => {
            w.byte(TAG_TRANSITION);
            w.varint(time.as_nanos());
            w.string(auditor);
            w.string(detail);
        }
        DumpRecord::Finding { time, auditor, severity, message, provenance } => {
            w.byte(TAG_FINDING);
            w.varint(time.as_nanos());
            w.string(auditor);
            w.byte(severity_index(*severity));
            w.string(message);
            w.varint(provenance.len() as u64);
            for r in provenance {
                w.varint(r.0);
            }
        }
        DumpRecord::Panic { container, message, count } => {
            w.byte(TAG_PANIC);
            w.string(container);
            w.string(message);
            w.varint(*count);
        }
        DumpRecord::Span { name, start, duration_ns, track } => {
            w.byte(TAG_SPAN);
            w.string(name);
            w.varint(start.as_nanos());
            w.varint(*duration_ns);
            w.varint(u64::from(*track));
        }
    }
}

/// Decodes one record written by [`save_record`].
fn load_record(r: &mut SnapReader<'_>) -> Result<DumpRecord, SnapError> {
    let start = r.offset();
    let tag = r.byte()?;
    Ok(match tag {
        TAG_EVENT => {
            let seq = r.varint()?;
            let time = SimTime::from_nanos(r.varint()?);
            let vm = VmId(
                u32::try_from(r.varint()?)
                    .map_err(|_| SnapError::BadValue { offset: start, what: "vm id" })?,
            );
            let vcpu = u32::try_from(r.varint()?)
                .map_err(|_| SnapError::BadValue { offset: start, what: "vcpu index" })?;
            let class_off = r.offset();
            let idx = r.byte()? as usize;
            let class = *EventClass::ALL
                .get(idx)
                .ok_or(SnapError::BadValue { offset: class_off, what: "event class" })?;
            let detail = r.string()?;
            DumpRecord::Event { seq, time, vm, vcpu, class, detail }
        }
        TAG_TICK => DumpRecord::Tick { time: SimTime::from_nanos(r.varint()?) },
        TAG_TRANSITION => DumpRecord::Transition {
            time: SimTime::from_nanos(r.varint()?),
            auditor: r.string()?,
            detail: r.string()?,
        },
        TAG_FINDING => {
            let time = SimTime::from_nanos(r.varint()?);
            let auditor = r.string()?;
            let sev_off = r.offset();
            let severity = Severity::from_byte(r.byte()?)
                .ok_or(SnapError::BadValue { offset: sev_off, what: "finding severity" })?;
            let message = r.string()?;
            let n = r.count(1 << 16, "finding provenance refs")?;
            let mut provenance = Vec::with_capacity(n);
            for _ in 0..n {
                provenance.push(EventRef(r.varint()?));
            }
            DumpRecord::Finding { time, auditor, severity, message, provenance }
        }
        TAG_PANIC => {
            DumpRecord::Panic { container: r.string()?, message: r.string()?, count: r.varint()? }
        }
        TAG_SPAN => DumpRecord::Span {
            name: r.string()?,
            start: SimTime::from_nanos(r.varint()?),
            duration_ns: r.varint()?,
            track: u32::try_from(r.varint()?)
                .map_err(|_| SnapError::BadValue { offset: start, what: "span track" })?,
        },
        tag => return Err(SnapError::BadTag { offset: start, tag }),
    })
}

/// One decoded (or rendered) dump record. Events carry their rendered
/// kind rather than the full snapshot: dumps are for humans and trace
/// viewers, not for replay — replay fidelity belongs to HTRC traces.
#[derive(Debug, Clone, PartialEq)]
pub enum DumpRecord {
    /// A forwarded event with its [`EventRef`] sequence number.
    Event { seq: u64, time: SimTime, vm: VmId, vcpu: u32, class: EventClass, detail: String },
    /// An EM periodic tick.
    Tick { time: SimTime },
    /// An auditor state transition.
    Transition { time: SimTime, auditor: String, detail: String },
    /// A finding with its causal provenance.
    Finding {
        time: SimTime,
        auditor: String,
        severity: Severity,
        message: String,
        provenance: Vec<EventRef>,
    },
    /// An audit container panic.
    Panic { container: String, message: String, count: u64 },
    /// A host-side span (pipeline stage or fleet slice).
    Span { name: String, start: SimTime, duration_ns: u64, track: u32 },
}

/// A serialized flight-recorder snapshot: the versioned `.htfr` format.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Format version ([`FLIGHT_VERSION`] when freshly dumped).
    pub version: u32,
    /// Why the dump was taken ("container-panic", "conformance-divergence",
    /// "fleet-worker-panic", ...).
    pub reason: String,
    /// Ring capacity at dump time.
    pub capacity: u64,
    /// Sequence number the next event would have received — the total
    /// number of events forwarded over the recorder's lifetime.
    pub next_seq: u64,
    /// Records evicted from the ring before the dump.
    pub dropped: u64,
    /// Retained records, oldest first.
    pub records: Vec<DumpRecord>,
}

/// Decode failure for a `.htfr` blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightError {
    /// Not a flight dump at all.
    BadMagic,
    /// A version this build does not understand.
    UnsupportedVersion(u32),
    /// Truncated input.
    UnexpectedEof { offset: usize },
    /// Unknown record tag.
    BadTag { offset: usize, tag: u8 },
    /// A string field was not UTF-8.
    BadUtf8 { offset: usize },
    /// An out-of-range enum discriminant.
    BadEnum { offset: usize, value: u8 },
    /// Bytes left over after the last record.
    TrailingGarbage { offset: usize },
}

impl fmt::Display for FlightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlightError::BadMagic => write!(f, "not a HTFR flight dump (bad magic)"),
            FlightError::UnsupportedVersion(v) => write!(f, "unsupported flight-dump version {v}"),
            FlightError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of dump at offset {offset}")
            }
            FlightError::BadTag { offset, tag } => {
                write!(f, "unknown record tag {tag:#04x} at offset {offset}")
            }
            FlightError::BadUtf8 { offset } => write!(f, "invalid UTF-8 at offset {offset}"),
            FlightError::BadEnum { offset, value } => {
                write!(f, "out-of-range discriminant {value} at offset {offset}")
            }
            FlightError::TrailingGarbage { offset } => {
                write!(f, "trailing bytes after the last record (offset {offset})")
            }
        }
    }
}

impl std::error::Error for FlightError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FlightError> {
        let out = self
            .bytes
            .get(self.pos..self.pos + n)
            .ok_or(FlightError::UnexpectedEof { offset: self.pos })?;
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, FlightError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FlightError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FlightError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, FlightError> {
        let len = self.u32()? as usize;
        let offset = self.pos;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FlightError::BadUtf8 { offset })
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn class_index(class: EventClass) -> u8 {
    EventClass::ALL.iter().position(|c| *c == class).expect("every class is in ALL") as u8
}

fn severity_index(severity: Severity) -> u8 {
    severity as u8
}

impl FlightDump {
    /// Serializes the dump as `.htfr` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(FLIGHT_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        put_string(&mut out, &self.reason);
        out.extend_from_slice(&self.capacity.to_le_bytes());
        out.extend_from_slice(&self.next_seq.to_le_bytes());
        out.extend_from_slice(&self.dropped.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        for record in &self.records {
            match record {
                DumpRecord::Event { seq, time, vm, vcpu, class, detail } => {
                    out.push(TAG_EVENT);
                    out.extend_from_slice(&seq.to_le_bytes());
                    out.extend_from_slice(&time.as_nanos().to_le_bytes());
                    out.extend_from_slice(&vm.0.to_le_bytes());
                    out.extend_from_slice(&vcpu.to_le_bytes());
                    out.push(class_index(*class));
                    put_string(&mut out, detail);
                }
                DumpRecord::Tick { time } => {
                    out.push(TAG_TICK);
                    out.extend_from_slice(&time.as_nanos().to_le_bytes());
                }
                DumpRecord::Transition { time, auditor, detail } => {
                    out.push(TAG_TRANSITION);
                    out.extend_from_slice(&time.as_nanos().to_le_bytes());
                    put_string(&mut out, auditor);
                    put_string(&mut out, detail);
                }
                DumpRecord::Finding { time, auditor, severity, message, provenance } => {
                    out.push(TAG_FINDING);
                    out.extend_from_slice(&time.as_nanos().to_le_bytes());
                    put_string(&mut out, auditor);
                    out.push(severity_index(*severity));
                    put_string(&mut out, message);
                    out.extend_from_slice(&(provenance.len() as u32).to_le_bytes());
                    for r in provenance {
                        out.extend_from_slice(&r.0.to_le_bytes());
                    }
                }
                DumpRecord::Panic { container, message, count } => {
                    out.push(TAG_PANIC);
                    put_string(&mut out, container);
                    put_string(&mut out, message);
                    out.extend_from_slice(&count.to_le_bytes());
                }
                DumpRecord::Span { name, start, duration_ns, track } => {
                    out.push(TAG_SPAN);
                    put_string(&mut out, name);
                    out.extend_from_slice(&start.as_nanos().to_le_bytes());
                    out.extend_from_slice(&duration_ns.to_le_bytes());
                    out.extend_from_slice(&track.to_le_bytes());
                }
            }
        }
        out
    }

    /// Parses `.htfr` bytes back into a dump.
    pub fn decode(bytes: &[u8]) -> Result<FlightDump, FlightError> {
        let mut c = Cursor { bytes, pos: 0 };
        if c.take(4)? != FLIGHT_MAGIC {
            return Err(FlightError::BadMagic);
        }
        let version = c.u32()?;
        if version != FLIGHT_VERSION {
            return Err(FlightError::UnsupportedVersion(version));
        }
        let reason = c.string()?;
        let capacity = c.u64()?;
        let next_seq = c.u64()?;
        let dropped = c.u64()?;
        let count = c.u64()? as usize;
        let mut records = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let tag_offset = c.pos;
            let tag = c.u8()?;
            let record = match tag {
                TAG_EVENT => {
                    let seq = c.u64()?;
                    let time = SimTime::from_nanos(c.u64()?);
                    let vm = VmId(c.u32()?);
                    let vcpu = c.u32()?;
                    let class_offset = c.pos;
                    let idx = c.u8()? as usize;
                    let class = *EventClass::ALL
                        .get(idx)
                        .ok_or(FlightError::BadEnum { offset: class_offset, value: idx as u8 })?;
                    let detail = c.string()?;
                    DumpRecord::Event { seq, time, vm, vcpu, class, detail }
                }
                TAG_TICK => DumpRecord::Tick { time: SimTime::from_nanos(c.u64()?) },
                TAG_TRANSITION => DumpRecord::Transition {
                    time: SimTime::from_nanos(c.u64()?),
                    auditor: c.string()?,
                    detail: c.string()?,
                },
                TAG_FINDING => {
                    let time = SimTime::from_nanos(c.u64()?);
                    let auditor = c.string()?;
                    let sev_offset = c.pos;
                    let severity = match c.u8()? {
                        0 => Severity::Info,
                        1 => Severity::Warning,
                        2 => Severity::Alert,
                        v => return Err(FlightError::BadEnum { offset: sev_offset, value: v }),
                    };
                    let message = c.string()?;
                    let n = c.u32()? as usize;
                    let mut provenance = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        provenance.push(EventRef(c.u64()?));
                    }
                    DumpRecord::Finding { time, auditor, severity, message, provenance }
                }
                TAG_PANIC => DumpRecord::Panic {
                    container: c.string()?,
                    message: c.string()?,
                    count: c.u64()?,
                },
                TAG_SPAN => DumpRecord::Span {
                    name: c.string()?,
                    start: SimTime::from_nanos(c.u64()?),
                    duration_ns: c.u64()?,
                    track: c.u32()?,
                },
                tag => return Err(FlightError::BadTag { offset: tag_offset, tag }),
            };
            records.push(record);
        }
        if c.pos != bytes.len() {
            return Err(FlightError::TrailingGarbage { offset: c.pos });
        }
        Ok(FlightDump { version, reason, capacity, next_seq, dropped, records })
    }

    /// Human-readable rendering: a header plus one line per record,
    /// oldest first — the `flightdump` inspector's default output.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "HTFR v{} | reason: {} | {} records (capacity {}, {} dropped, {} events total)",
            self.version,
            self.reason,
            self.records.len(),
            self.capacity,
            self.dropped,
            self.next_seq,
        );
        for record in &self.records {
            match record {
                DumpRecord::Event { seq, time, vm, vcpu, class, detail } => {
                    let _ = writeln!(out, "{seq:>8}  [{time} {vm} vcpu{vcpu}] {class}: {detail}");
                }
                DumpRecord::Tick { time } => {
                    let _ = writeln!(out, "       -  [{time}] em tick");
                }
                DumpRecord::Transition { time, auditor, detail } => {
                    let _ = writeln!(out, "       ~  [{time}] {auditor} transition: {detail}");
                }
                DumpRecord::Finding { time, auditor, severity, message, provenance } => {
                    let refs = render_refs(provenance);
                    let _ = writeln!(
                        out,
                        "       !  [{time} {severity}] {auditor}: {message} \
                         (triggered by exits {refs})"
                    );
                }
                DumpRecord::Panic { container, message, count } => {
                    let _ = writeln!(
                        out,
                        "       X  container '{container}' panic #{count}: {message}"
                    );
                }
                DumpRecord::Span { name, start, duration_ns, track } => {
                    let _ = writeln!(
                        out,
                        "       =  [{start}] span {name} {duration_ns}ns (track {track})"
                    );
                }
            }
        }
        out
    }

    /// Exports the dump as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object form), loadable in
    /// `chrome://tracing` and Perfetto. Spans become complete (`"X"`)
    /// events, everything else instant (`"i"`) events; timestamps are
    /// simulated time in microseconds.
    pub fn to_chrome_json(&self) -> String {
        use serde::Value;
        let default_pid = self
            .records
            .iter()
            .find_map(|r| match r {
                DumpRecord::Event { vm, .. } => Some(u64::from(vm.0)),
                _ => None,
            })
            .unwrap_or(0);
        let ts = |t: SimTime| Value::F64(t.as_nanos() as f64 / 1000.0);
        let mut events: Vec<Value> = Vec::with_capacity(self.records.len() + 1);
        events.push(Value::Object(vec![
            ("name".into(), Value::Str("process_name".into())),
            ("ph".into(), Value::Str("M".into())),
            ("ts".into(), Value::F64(0.0)),
            ("pid".into(), Value::U64(default_pid)),
            ("tid".into(), Value::U64(0)),
            (
                "args".into(),
                Value::Object(vec![(
                    "name".into(),
                    Value::Str(format!("hypertap vm{default_pid}")),
                )]),
            ),
        ]));
        for record in &self.records {
            let value = match record {
                DumpRecord::Event { seq, time, vm, vcpu, class, detail } => Value::Object(vec![
                    ("name".into(), Value::Str(detail.clone())),
                    ("cat".into(), Value::Str(class.to_string())),
                    ("ph".into(), Value::Str("i".into())),
                    ("ts".into(), ts(*time)),
                    ("pid".into(), Value::U64(u64::from(vm.0))),
                    ("tid".into(), Value::U64(u64::from(*vcpu))),
                    ("s".into(), Value::Str("t".into())),
                    ("args".into(), Value::Object(vec![("seq".into(), Value::U64(*seq))])),
                ]),
                DumpRecord::Tick { time } => Value::Object(vec![
                    ("name".into(), Value::Str("em-tick".into())),
                    ("cat".into(), Value::Str("tick".into())),
                    ("ph".into(), Value::Str("i".into())),
                    ("ts".into(), ts(*time)),
                    ("pid".into(), Value::U64(default_pid)),
                    ("tid".into(), Value::U64(0)),
                    ("s".into(), Value::Str("p".into())),
                ]),
                DumpRecord::Transition { time, auditor, detail } => Value::Object(vec![
                    ("name".into(), Value::Str(format!("{auditor} transition"))),
                    ("cat".into(), Value::Str("transition".into())),
                    ("ph".into(), Value::Str("i".into())),
                    ("ts".into(), ts(*time)),
                    ("pid".into(), Value::U64(default_pid)),
                    ("tid".into(), Value::U64(0)),
                    ("s".into(), Value::Str("p".into())),
                    (
                        "args".into(),
                        Value::Object(vec![("detail".into(), Value::Str(detail.clone()))]),
                    ),
                ]),
                DumpRecord::Finding { time, auditor, severity, message, provenance } => {
                    Value::Object(vec![
                        ("name".into(), Value::Str(message.clone())),
                        ("cat".into(), Value::Str("finding".into())),
                        ("ph".into(), Value::Str("i".into())),
                        ("ts".into(), ts(*time)),
                        ("pid".into(), Value::U64(default_pid)),
                        ("tid".into(), Value::U64(0)),
                        ("s".into(), Value::Str("g".into())),
                        (
                            "args".into(),
                            Value::Object(vec![
                                ("auditor".into(), Value::Str(auditor.clone())),
                                ("severity".into(), Value::Str(severity.to_string())),
                                (
                                    "provenance".into(),
                                    Value::Array(
                                        provenance.iter().map(|r| Value::U64(r.0)).collect(),
                                    ),
                                ),
                            ]),
                        ),
                    ])
                }
                DumpRecord::Panic { container, message, count } => Value::Object(vec![
                    ("name".into(), Value::Str(format!("panic: {message}"))),
                    ("cat".into(), Value::Str("panic".into())),
                    ("ph".into(), Value::Str("i".into())),
                    ("ts".into(), Value::F64(0.0)),
                    ("pid".into(), Value::U64(default_pid)),
                    ("tid".into(), Value::U64(0)),
                    ("s".into(), Value::Str("g".into())),
                    (
                        "args".into(),
                        Value::Object(vec![
                            ("container".into(), Value::Str(container.clone())),
                            ("count".into(), Value::U64(*count)),
                        ]),
                    ),
                ]),
                DumpRecord::Span { name, start, duration_ns, track } => Value::Object(vec![
                    ("name".into(), Value::Str(name.clone())),
                    ("cat".into(), Value::Str("span".into())),
                    ("ph".into(), Value::Str("X".into())),
                    ("ts".into(), ts(*start)),
                    ("dur".into(), Value::F64(*duration_ns as f64 / 1000.0)),
                    ("pid".into(), Value::U64(default_pid)),
                    ("tid".into(), Value::U64(u64::from(*track))),
                ]),
            };
            events.push(value);
        }
        let top = Value::Object(vec![
            ("traceEvents".into(), Value::Array(events)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
            (
                "otherData".into(),
                Value::Object(vec![
                    ("format".into(), Value::Str("hypertap-flight".into())),
                    ("version".into(), Value::U64(u64::from(self.version))),
                    ("reason".into(), Value::Str(self.reason.clone())),
                ]),
            ),
        ]);
        serde_json::to_string_pretty(&top).expect("Value serialization is infallible")
    }
}

/// Renders a provenance list like `#3, #17` (or `-` when empty).
pub fn render_refs(refs: &[EventRef]) -> String {
    if refs.is_empty() {
        return "-".to_owned();
    }
    refs.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(", ")
}

/// Best-effort extraction of a panic payload's message — the std panic
/// machinery types payloads as `&str` or `String` in practice.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_owned(),
            Err(_) => "<non-string panic payload>".to_owned(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use hypertap_hvsim::exit::VcpuSnapshot;
    use hypertap_hvsim::mem::Gpa;
    use hypertap_hvsim::vcpu::{Vcpu, VcpuId};

    fn ev(t_ms: u64) -> Event {
        Event {
            vm: VmId(0),
            vcpu: VcpuId(0),
            time: SimTime::from_millis(t_ms),
            kind: EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000) },
            state: VcpuSnapshot::capture(&Vcpu::new(VcpuId(0))),
        }
    }

    fn event_seqs(dump: &FlightDump) -> Vec<u64> {
        dump.records
            .iter()
            .filter_map(|r| match r {
                DumpRecord::Event { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn refs_are_assigned_in_arrival_order() {
        let mut fr = FlightRecorder::new(8);
        for i in 0..3 {
            assert_eq!(fr.observe_event(&ev(i)), EventRef(i));
        }
        assert_eq!(fr.next_ref(), EventRef(3));
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 0);
    }

    #[test]
    fn capacity_one_ring_keeps_only_the_newest_event() {
        let mut fr = FlightRecorder::new(1);
        for i in 0..10 {
            fr.observe_event(&ev(i));
        }
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.dropped(), 9);
        let dump = fr.dump("test");
        assert_eq!(event_seqs(&dump), vec![9]);
        assert_eq!(dump.next_seq, 10);
    }

    #[test]
    fn exact_capacity_stream_drops_nothing() {
        let mut fr = FlightRecorder::new(16);
        for i in 0..16 {
            fr.observe_event(&ev(i));
        }
        assert_eq!(fr.len(), 16);
        assert_eq!(fr.dropped(), 0);
        assert_eq!(event_seqs(&fr.dump("test")), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn ten_times_capacity_preserves_newest_events_and_seqs() {
        let cap = 32u64;
        let mut fr = FlightRecorder::new(cap as usize);
        for i in 0..cap * 10 {
            fr.observe_event(&ev(i));
        }
        assert_eq!(fr.len(), cap as usize);
        assert_eq!(fr.dropped(), cap * 9);
        let dump = fr.dump("test");
        assert_eq!(event_seqs(&dump), (cap * 9..cap * 10).collect::<Vec<_>>());
        assert_eq!(dump.next_seq, cap * 10);
        assert_eq!(dump.dropped, cap * 9);
    }

    #[test]
    fn shrinking_capacity_discards_oldest() {
        let mut fr = FlightRecorder::new(8);
        for i in 0..8 {
            fr.observe_event(&ev(i));
        }
        fr.set_capacity(3);
        assert_eq!(fr.capacity(), 3);
        assert_eq!(event_seqs(&fr.dump("test")), vec![5, 6, 7]);
        assert_eq!(fr.dropped(), 5);
    }

    #[test]
    fn disabled_recorder_numbers_but_retains_nothing() {
        let mut fr = FlightRecorder::new(8);
        fr.set_enabled(false);
        assert_eq!(fr.observe_event(&ev(1)), EventRef(0));
        assert_eq!(fr.observe_event(&ev(2)), EventRef(1));
        fr.observe_tick(SimTime::from_millis(3));
        fr.note_transition(SimTime::from_millis(3), "goshd", "flip".into());
        fr.note_finding(&Finding::new("goshd", SimTime::from_millis(3), Severity::Alert, "x"));
        assert!(fr.is_empty());
        assert_eq!(fr.next_ref(), EventRef(2), "sequencing continues while disabled");
        fr.set_enabled(true);
        assert_eq!(fr.observe_event(&ev(4)), EventRef(2));
        assert_eq!(fr.len(), 1);
    }

    #[test]
    fn dump_roundtrips_every_record_kind() {
        let mut fr = FlightRecorder::new(16);
        let r0 = fr.observe_event(&ev(1));
        fr.observe_tick(SimTime::from_millis(2));
        fr.note_transition(SimTime::from_millis(3), "goshd", "vcpu0 up->hung".into());
        fr.note_finding(
            &Finding::new("goshd", SimTime::from_millis(3), Severity::Alert, "vcpu0 hung")
                .with_provenance(vec![r0]),
        );
        fr.note_panic("panicky", "auditor bug!", 2);
        fr.note_span("decode", SimTime::from_millis(1), 1234, 0);
        let dump = fr.dump("unit-test");
        let bytes = dump.encode();
        let back = FlightDump::decode(&bytes).expect("dump decodes");
        assert_eq!(back, dump);
        assert_eq!(back.version, FLIGHT_VERSION);
        assert_eq!(back.reason, "unit-test");
        assert_eq!(back.records.len(), 6);
        assert!(matches!(
            &back.records[3],
            DumpRecord::Finding { provenance, .. } if provenance == &vec![EventRef(0)]
        ));
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert_eq!(FlightDump::decode(b"NOPE"), Err(FlightError::BadMagic));
        let mut bytes = FlightRecorder::new(4).dump_bytes("r");
        bytes[4] = 99; // version
        assert_eq!(FlightDump::decode(&bytes), Err(FlightError::UnsupportedVersion(99)));
        let mut fr = FlightRecorder::new(4);
        fr.observe_event(&ev(1));
        let good = fr.dump_bytes("r");
        assert!(FlightDump::decode(&good[..good.len() - 1]).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(
            FlightDump::decode(&trailing),
            Err(FlightError::TrailingGarbage { offset: good.len() })
        );
    }

    #[test]
    fn render_mentions_every_record() {
        let mut fr = FlightRecorder::new(16);
        let r = fr.observe_event(&ev(1));
        fr.note_finding(
            &Finding::new("goshd", SimTime::from_millis(5), Severity::Alert, "vcpu0 hung")
                .with_provenance(vec![r]),
        );
        let text = fr.dump("render-test").render();
        assert!(text.contains("HTFR v1"), "{text}");
        assert!(text.contains("render-test"), "{text}");
        assert!(text.contains("process switch"), "{text}");
        assert!(text.contains("triggered by exits #0"), "{text}");
    }

    #[test]
    fn chrome_export_has_the_required_fields() {
        let mut fr = FlightRecorder::new(16);
        let r = fr.observe_event(&ev(1));
        fr.observe_tick(SimTime::from_millis(2));
        fr.note_finding(
            &Finding::new("goshd", SimTime::from_millis(3), Severity::Alert, "hung")
                .with_provenance(vec![r]),
        );
        fr.note_span("fleet-slice", SimTime::from_millis(0), 5_000_000, 3);
        let json = fr.dump("chrome-test").to_chrome_json();
        let top: serde::Value = serde_json::from_str(&json).expect("export is valid JSON");
        let events = match top.get("traceEvents") {
            Some(serde::Value::Array(items)) => items,
            other => panic!("traceEvents must be an array, got {other:?}"),
        };
        assert!(!events.is_empty());
        let mut phases = Vec::new();
        for e in events {
            for field in ["name", "ph", "ts", "pid", "tid"] {
                assert!(e.get(field).is_some(), "missing {field} in {e:?}");
            }
            let ph = match e.get("ph") {
                Some(serde::Value::Str(s)) => s.clone(),
                other => panic!("ph must be a string, got {other:?}"),
            };
            if ph == "X" {
                assert!(e.get("dur").is_some(), "complete events need dur: {e:?}");
            }
            phases.push(ph);
        }
        assert!(phases.contains(&"X".to_owned()), "span exported");
        assert!(phases.contains(&"i".to_owned()), "instants exported");
        assert!(json.contains("\"finding\""), "finding category present");
    }

    #[test]
    fn panic_message_extracts_str_and_string() {
        let from_str = std::panic::catch_unwind(|| panic!("plain str")).unwrap_err();
        assert_eq!(panic_message(from_str), "plain str");
        let msg = "formatted 42".to_owned();
        let from_string = std::panic::catch_unwind(move || std::panic::panic_any(msg)).unwrap_err();
        assert_eq!(panic_message(from_string), "formatted 42");
        let other = std::panic::catch_unwind(|| std::panic::panic_any(7u32)).unwrap_err();
        assert_eq!(panic_message(other), "<non-string panic payload>");
    }
}
