//! Traditional Virtual Machine Introspection — the **untrusted** view.
//!
//! Classic VMI tools (VMWatcher, XenAccess) reconstruct guest state by
//! decoding the guest kernel's own data structures from memory — here, by
//! walking the in-memory task list. The paper's point (and the reason
//! HyperTap does *not* root its monitoring here) is that this view is only
//! as trustworthy as the guest kernel's data: a DKOM rootkit that unlinks a
//! `task_struct` makes the process invisible to every list walk, ours
//! included. This module exists (a) to implement the H-Ninja baseline and
//! (b) to provide the "other view" that HRKD cross-validates its trusted
//! counts against.

use crate::profile::{OsProfile, TaskState, TaskView};
use hypertap_hvsim::mem::{Gpa, GuestMemory, Gva};
use hypertap_hvsim::paging::{self, PageFault};
use std::fmt;

/// Introspection failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmiError {
    /// A guest-virtual address failed to translate.
    PageFault(PageFault),
    /// The list walk exceeded the node budget (cycle or corruption).
    ListTooLong {
        /// The budget that was exceeded.
        max: usize,
    },
}

impl fmt::Display for VmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmiError::PageFault(pf) => write!(f, "introspection read failed: {pf}"),
            VmiError::ListTooLong { max } => {
                write!(f, "task list longer than {max} nodes (cycle or corruption)")
            }
        }
    }
}

impl std::error::Error for VmiError {}

impl From<PageFault> for VmiError {
    fn from(pf: PageFault) -> Self {
        VmiError::PageFault(pf)
    }
}

/// Reads a `u64` at a guest-virtual address under the given page directory.
///
/// # Errors
///
/// Returns [`VmiError::PageFault`] if the address does not translate.
pub fn read_u64(mem: &GuestMemory, cr3: Gpa, gva: Gva) -> Result<u64, VmiError> {
    let gpa = paging::walk(mem, cr3, gva)?;
    Ok(mem.read_u64(gpa))
}

/// Reads `len` bytes at a guest-virtual address (page-crossing handled).
///
/// # Errors
///
/// Returns [`VmiError::PageFault`] if any page of the range does not
/// translate.
pub fn read_bytes(mem: &GuestMemory, cr3: Gpa, gva: Gva, len: u64) -> Result<Vec<u8>, VmiError> {
    let mut out = Vec::with_capacity(len as usize);
    let mut done = 0u64;
    while done < len {
        let addr = gva.offset(done);
        let gpa = paging::walk(mem, cr3, addr)?;
        let chunk = u64::min(len - done, hypertap_hvsim::mem::PAGE_SIZE - addr.page_offset());
        let mut buf = vec![0u8; chunk as usize];
        mem.read(gpa, &mut buf);
        out.extend_from_slice(&buf);
        done += chunk;
    }
    Ok(out)
}

/// Decodes the `task_struct` at `gva` into a [`TaskView`].
///
/// # Errors
///
/// Returns [`VmiError::PageFault`] if the structure is unmapped.
pub fn read_task(
    mem: &GuestMemory,
    cr3: Gpa,
    profile: &OsProfile,
    gva: Gva,
) -> Result<TaskView, VmiError> {
    let f = |off: u64| read_u64(mem, cr3, gva.offset(off));
    let comm_raw = read_bytes(mem, cr3, gva.offset(profile.ts_comm), profile.ts_comm_len)?;
    let comm_end = comm_raw.iter().position(|&b| b == 0).unwrap_or(comm_raw.len());
    let comm = String::from_utf8_lossy(&comm_raw[..comm_end]).into_owned();
    Ok(TaskView {
        gva,
        pid: f(profile.ts_pid)?,
        state: TaskState::from_raw(f(profile.ts_state)?),
        uid: f(profile.ts_uid)?,
        euid: f(profile.ts_euid)?,
        parent: Gva::new(f(profile.ts_parent)?),
        pdba: f(profile.ts_pdba)?,
        kstack: f(profile.ts_kstack)?,
        comm,
    })
}

/// Walks the guest's task list, decoding every linked `task_struct`.
///
/// This is exactly what a DKOM rootkit defeats: an unlinked task simply does
/// not appear in the returned vector.
///
/// # Errors
///
/// Returns [`VmiError::PageFault`] on unmapped structures, or
/// [`VmiError::ListTooLong`] if more than `max` nodes are chained (a cycle
/// defence).
pub fn list_tasks(
    mem: &GuestMemory,
    cr3: Gpa,
    profile: &OsProfile,
    max: usize,
) -> Result<Vec<TaskView>, VmiError> {
    let mut out = Vec::new();
    let mut node = Gva::new(read_u64(mem, cr3, profile.task_list_head)?);
    while node.value() != 0 {
        if out.len() >= max {
            return Err(VmiError::ListTooLong { max });
        }
        let task = read_task(mem, cr3, profile, node)?;
        let next = task.parent; // placeholder to satisfy borrow below
        let _ = next;
        let next_gva = Gva::new(read_u64(mem, cr3, node.offset(profile.ts_next))?);
        out.push(task);
        node = next_gva;
    }
    Ok(out)
}

/// Resolves the parent [`TaskView`] of a task (if it has one).
///
/// # Errors
///
/// Returns [`VmiError::PageFault`] if the parent structure is unmapped.
pub fn parent_of(
    mem: &GuestMemory,
    cr3: Gpa,
    profile: &OsProfile,
    task: &TaskView,
) -> Result<Option<TaskView>, VmiError> {
    if task.parent.value() == 0 {
        return Ok(None);
    }
    read_task(mem, cr3, profile, task.parent).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertap_hvsim::mem::{Gfn, PAGE_SIZE};
    use hypertap_hvsim::paging::{AddressSpaceBuilder, FrameAllocator};

    /// Builds a small kernel image in guest memory: a task list of three
    /// tasks plus the head slot, all mapped at fixed kernel GVAs.
    fn build_world() -> (GuestMemory, Gpa, OsProfile, Vec<Gva>) {
        let mut mem = GuestMemory::new(32 << 20);
        let mut falloc = FrameAllocator::new(Gfn::new(16), Gfn::new((32 << 20) / PAGE_SIZE));
        let mut asb = AddressSpaceBuilder::new(&mut mem, &mut falloc);
        let base = Gva::new(0x3000_0000);
        asb.map_fresh_range(&mut mem, &mut falloc, base, 4);
        let cr3 = asb.pdba();

        let profile = OsProfile {
            task_list_head: base,
            ts_pid: 0,
            ts_state: 8,
            ts_uid: 16,
            ts_euid: 24,
            ts_parent: 32,
            ts_next: 40,
            ts_prev: 48,
            ts_pdba: 56,
            ts_kstack: 64,
            ts_comm: 72,
            ts_comm_len: 16,
            ts_size: 88,
            ti_task: 0,
            kernel_stack_size: 8192,
        };

        let write = |mem: &mut GuestMemory, gva: Gva, v: u64| {
            let gpa = paging::walk(mem, cr3, gva).unwrap();
            mem.write_u64(gpa, v);
        };
        let write_bytes = |mem: &mut GuestMemory, gva: Gva, b: &[u8]| {
            let gpa = paging::walk(mem, cr3, gva).unwrap();
            mem.write(gpa, b);
        };

        // Three tasks at base+0x100, +0x200, +0x300; head at `base`.
        let t: Vec<Gva> = (1..=3).map(|i| base.offset(i * 0x100)).collect();
        write(&mut mem, base, t[0].value());
        for (i, &task) in t.iter().enumerate() {
            write(&mut mem, task.offset(profile.ts_pid), (i as u64) + 1);
            write(&mut mem, task.offset(profile.ts_state), 0);
            write(&mut mem, task.offset(profile.ts_uid), 1000 + i as u64);
            write(&mut mem, task.offset(profile.ts_euid), 1000 + i as u64);
            let parent = if i == 0 { 0 } else { t[i - 1].value() };
            write(&mut mem, task.offset(profile.ts_parent), parent);
            let next = if i + 1 < t.len() { t[i + 1].value() } else { 0 };
            write(&mut mem, task.offset(profile.ts_next), next);
            let prev = if i == 0 { 0 } else { t[i - 1].value() };
            write(&mut mem, task.offset(profile.ts_prev), prev);
            write(&mut mem, task.offset(profile.ts_pdba), 0x1000 * (i as u64 + 1));
            write(&mut mem, task.offset(profile.ts_kstack), 0x8000 * (i as u64 + 1));
            let mut comm = [0u8; 16];
            let name = format!("task{}", i + 1);
            comm[..name.len()].copy_from_slice(name.as_bytes());
            write_bytes(&mut mem, task.offset(profile.ts_comm), &comm);
        }
        (mem, cr3, profile, t)
    }

    #[test]
    fn walks_the_full_list() {
        let (mem, cr3, profile, _) = build_world();
        let tasks = list_tasks(&mem, cr3, &profile, 100).unwrap();
        assert_eq!(tasks.len(), 3);
        assert_eq!(tasks[0].pid, 1);
        assert_eq!(tasks[2].comm, "task3");
        assert_eq!(tasks[1].uid, 1001);
    }

    #[test]
    fn dkom_unlink_hides_a_task_from_vmi() {
        let (mut mem, cr3, profile, t) = build_world();
        // Unlink task 2: task1.next = task3; task3.prev = task1.
        let w = |mem: &mut GuestMemory, gva: Gva, v: u64| {
            let gpa = paging::walk(mem, cr3, gva).unwrap();
            mem.write_u64(gpa, v);
        };
        w(&mut mem, t[0].offset(profile.ts_next), t[2].value());
        w(&mut mem, t[2].offset(profile.ts_prev), t[0].value());
        let tasks = list_tasks(&mem, cr3, &profile, 100).unwrap();
        assert_eq!(tasks.len(), 2, "the unlinked task vanished from the VMI view");
        assert!(tasks.iter().all(|task| task.pid != 2));
    }

    #[test]
    fn cycle_detection_budget() {
        let (mut mem, cr3, profile, t) = build_world();
        // Make task3 point back at task1: an (attacker-made) cycle.
        let gpa = paging::walk(&mem, cr3, t[2].offset(profile.ts_next)).unwrap();
        mem.write_u64(gpa, t[0].value());
        assert_eq!(list_tasks(&mem, cr3, &profile, 10), Err(VmiError::ListTooLong { max: 10 }));
    }

    #[test]
    fn parent_resolution() {
        let (mem, cr3, profile, _) = build_world();
        let tasks = list_tasks(&mem, cr3, &profile, 100).unwrap();
        assert!(parent_of(&mem, cr3, &profile, &tasks[0]).unwrap().is_none());
        let p = parent_of(&mem, cr3, &profile, &tasks[1]).unwrap().unwrap();
        assert_eq!(p.pid, 1);
    }

    #[test]
    fn unmapped_head_is_a_page_fault() {
        let (mem, cr3, mut profile, _) = build_world();
        profile.task_list_head = Gva::new(0x0900_0000);
        assert!(matches!(list_tasks(&mem, cr3, &profile, 10), Err(VmiError::PageFault(_))));
    }

    #[test]
    fn read_bytes_crosses_pages() {
        let (mut mem, cr3, _profile, _) = build_world();
        let gva = Gva::new(0x3000_0000 + PAGE_SIZE - 4);
        let gpa1 = paging::walk(&mem, cr3, gva).unwrap();
        mem.write(gpa1, &[1, 2, 3, 4]);
        let gpa2 = paging::walk(&mem, cr3, gva.offset(4)).unwrap();
        mem.write(gpa2, &[5, 6, 7, 8]);
        let got = read_bytes(&mem, cr3, gva, 8).unwrap();
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
