//! Coverage maps for the scenario fuzzer.
//!
//! The fuzzer in `hypertap-fuzz` steers itself with cheap, deterministic
//! feedback the monitoring stack already produces: auditor state-transition
//! edges from the flight recorder, per-class event histograms, finding
//! counts, and consecutive-class edges of the forwarded stream itself.
//! Every such observation is reduced to a *feature* (a stable 64-bit FNV
//! hash of its description) plus a *count*, and folded into a fixed-size
//! [`CoverageMap`]: an AFL-style byte map where each slot holds a bitmask
//! of count buckets seen for the features hashing there.
//!
//! The map is deliberately a join-semilattice: [`CoverageMap::merge`] is a
//! bitwise OR, so merging is commutative, associative and idempotent, and
//! the [`CoverageMap::fingerprint`] of a merged map is independent of the
//! order (or sharding) in which coverage was collected — the property the
//! fleet determinism contract extends to coverage.
//!
//! Nothing here uses wall-clock time, pointer values or hash-map iteration
//! order: the same run always produces the same map, byte for byte.

use crate::em::EventTap;
use crate::event::{Event, EventClass};
use hypertap_hvsim::clock::SimTime;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Number of slots in a [`CoverageMap`]. A power of two so feature hashes
/// fold in with a mask.
pub const MAP_SLOTS: usize = 4096;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte string. Stable across runs, platforms and
/// toolchains — the coverage fingerprint contract depends on this, so the
/// fuzzer never uses `std`'s randomized hashers.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hashes a feature description (a tag plus its parts) into a feature id.
/// A `0xFF` separator — which cannot appear in the UTF-8 parts — keeps
/// `["ab","c"]` distinct from `["a","bc"]`.
pub fn feature(tag: &str, parts: &[&str]) -> u64 {
    let mut h = FNV_OFFSET;
    for chunk in std::iter::once(tag).chain(parts.iter().copied()) {
        for &b in chunk.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^= 0xFF;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Buckets a count AFL-style: 1, 2, 3, 4–7, 8–15, 16–31, 32–127, 128+.
/// Returns the bit index (0–7), or `None` for a zero count (nothing seen).
pub fn bucket(count: u64) -> Option<u8> {
    match count {
        0 => None,
        1 => Some(0),
        2 => Some(1),
        3 => Some(2),
        4..=7 => Some(3),
        8..=15 => Some(4),
        16..=31 => Some(5),
        32..=127 => Some(6),
        _ => Some(7),
    }
}

/// Masks every ASCII digit run in a detail string with `#`, so transition
/// details that embed times, ordinals or addresses ("scan epoch 17", "pid
/// 2041") collapse onto their structural edge. Two transitions are the
/// same *edge* when they differ only in such quantities; magnitudes are
/// still distinguished by the count buckets of [`CoverageMap::observe`].
pub fn normalize_detail(detail: &str) -> String {
    let mut out = String::with_capacity(detail.len());
    let mut in_run = false;
    for c in detail.chars() {
        if c.is_ascii_digit() {
            if !in_run {
                out.push('#');
                in_run = true;
            }
        } else {
            in_run = false;
            out.push(c);
        }
    }
    out
}

/// A fixed-size coverage map: one byte of count-bucket bits per slot.
#[derive(Clone, PartialEq, Eq)]
pub struct CoverageMap {
    slots: Vec<u8>,
}

impl Default for CoverageMap {
    fn default() -> Self {
        CoverageMap::new()
    }
}

impl std::fmt::Debug for CoverageMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CoverageMap({} bits, fp {:#018x})", self.bits(), self.fingerprint())
    }
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap { slots: vec![0u8; MAP_SLOTS] }
    }

    /// Records that `feature` was seen `count` times. A zero count is a
    /// no-op. Feeding final per-run counts (rather than running partial
    /// counts) keeps the map independent of observation order.
    pub fn observe(&mut self, feature: u64, count: u64) {
        if let Some(bit) = bucket(count) {
            self.slots[(feature & (MAP_SLOTS as u64 - 1)) as usize] |= 1 << bit;
        }
    }

    /// Records a single occurrence of `feature`.
    pub fn hit(&mut self, feature: u64) {
        self.observe(feature, 1);
    }

    /// Folds another map in: bitwise OR per slot. Commutative, associative
    /// and idempotent — the semilattice join the fingerprint contract and
    /// the fleet sharding tests rely on.
    pub fn merge(&mut self, other: &CoverageMap) {
        for (s, o) in self.slots.iter_mut().zip(other.slots.iter()) {
            *s |= o;
        }
    }

    /// Number of bits `candidate` would add to this map — the novelty
    /// signal deciding corpus admission. Zero means `candidate` is fully
    /// covered already.
    pub fn novel_bits(&self, candidate: &CoverageMap) -> u32 {
        self.slots.iter().zip(candidate.slots.iter()).map(|(s, c)| (c & !s).count_ones()).sum()
    }

    /// Whether this map covers every bit of `other`.
    pub fn covers(&self, other: &CoverageMap) -> bool {
        self.novel_bits(other) == 0
    }

    /// Total set bits — the "edges reached" count reports use.
    pub fn bits(&self) -> u32 {
        self.slots.iter().map(|s| s.count_ones()).sum()
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| *s == 0)
    }

    /// A stable fingerprint of the map contents (FNV-1a over the slot
    /// bytes). Equal maps — however their coverage was accumulated or
    /// merged — fingerprint identically.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(&self.slots)
    }
}

/// Stream-derived coverage: consecutive-class edges per vCPU, per-class
/// totals and tick counts, folded from the pre-filter event stream — the
/// same stream the trace recorder logs, so coverage computed live through
/// a [`CoverageTap`] equals coverage folded from the recorded trace.
#[derive(Debug, Default)]
pub struct StreamCoverage {
    last_class: BTreeMap<usize, EventClass>,
    pair_counts: BTreeMap<(usize, u8, u8), u64>,
    class_counts: [u64; EventClass::ALL.len()],
    ticks: u64,
}

impl StreamCoverage {
    /// An empty accumulator.
    pub fn new() -> StreamCoverage {
        StreamCoverage::default()
    }

    /// Folds one forwarded event.
    pub fn see_event(&mut self, vcpu: usize, class: EventClass) {
        let cur = class.index() as u8;
        if let Some(prev) = self.last_class.insert(vcpu, class) {
            *self.pair_counts.entry((vcpu, prev.index() as u8, cur)).or_insert(0) += 1;
        }
        self.class_counts[class.index()] += 1;
    }

    /// Folds one EM tick.
    pub fn see_tick(&mut self) {
        self.ticks += 1;
    }

    /// Renders the accumulated stream features into a coverage map.
    pub fn fold_into(&self, map: &mut CoverageMap) {
        for (&(vcpu, prev, cur), &count) in &self.pair_counts {
            let f =
                feature("stream-edge", &[&vcpu.to_string(), &prev.to_string(), &cur.to_string()]);
            map.observe(f, count);
        }
        for (idx, &count) in self.class_counts.iter().enumerate() {
            map.observe(feature("class", &[&idx.to_string()]), count);
            if count > 0 {
                // A magnitude feature with finer resolution than the
                // count buckets: the bit length of the per-class total.
                let mag = 64 - count.leading_zeros();
                map.hit(feature("class-mag", &[&idx.to_string(), &mag.to_string()]));
            }
        }
        map.observe(feature("ticks", &[]), self.ticks);
    }
}

/// A [`CoverageTap`] factory sharing its accumulator with the caller, the
/// same shape as the trace recorder: the EM owns the tap box, the collector
/// keeps the other handle and folds the map after the run.
pub struct CoverageCollector {
    shared: Arc<Mutex<StreamCoverage>>,
}

impl Default for CoverageCollector {
    fn default() -> Self {
        CoverageCollector::new()
    }
}

impl CoverageCollector {
    /// A fresh collector.
    pub fn new() -> CoverageCollector {
        CoverageCollector { shared: Arc::new(Mutex::new(StreamCoverage::new())) }
    }

    /// The tap to hand to `EventMultiplexer::attach_tap` (possibly inside
    /// a [`TeeTap`](crate::em::TeeTap) next to a trace recorder).
    pub fn tap(&self) -> Box<dyn EventTap> {
        Box::new(CoverageTap { shared: Arc::clone(&self.shared) })
    }

    /// Renders everything observed so far into a coverage map.
    pub fn fold_into(&self, map: &mut CoverageMap) {
        self.shared.lock().expect("coverage accumulator").fold_into(map);
    }
}

/// The EM-boundary tap feeding a [`StreamCoverage`]. Sits at the same
/// pre-filter point as the trace recorder's tap, so it sees the full
/// forwarded stream regardless of auditor subscriptions.
struct CoverageTap {
    shared: Arc<Mutex<StreamCoverage>>,
}

impl EventTap for CoverageTap {
    fn on_event(&mut self, event: &Event) {
        self.shared.lock().expect("coverage accumulator").see_event(event.vcpu.0, event.class());
    }

    fn on_tick(&mut self, _now: SimTime) {
        self.shared.lock().expect("coverage accumulator").see_tick();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_of(features: &[(u64, u64)]) -> CoverageMap {
        let mut m = CoverageMap::new();
        for &(f, c) in features {
            m.observe(f, c);
        }
        m
    }

    #[test]
    fn feature_hashing_is_stable_and_separator_safe() {
        assert_eq!(feature("t", &["ab", "c"]), feature("t", &["ab", "c"]));
        assert_ne!(feature("t", &["ab", "c"]), feature("t", &["a", "bc"]));
        assert_ne!(feature("t", &[]), feature("u", &[]));
    }

    #[test]
    fn buckets_follow_the_afl_ladder() {
        assert_eq!(bucket(0), None);
        assert_eq!(bucket(1), Some(0));
        assert_eq!(bucket(2), Some(1));
        assert_eq!(bucket(3), Some(2));
        assert_eq!(bucket(4), Some(3));
        assert_eq!(bucket(7), Some(3));
        assert_eq!(bucket(8), Some(4));
        assert_eq!(bucket(31), Some(5));
        assert_eq!(bucket(127), Some(6));
        assert_eq!(bucket(u64::MAX), Some(7));
    }

    #[test]
    fn normalize_masks_digit_runs() {
        assert_eq!(
            normalize_detail("vcpu0 liveness: live -> hung"),
            "vcpu# liveness: live -> hung"
        );
        assert_eq!(
            normalize_detail("scan epoch 17: 2 hidden pdba(s), 0 hidden kstack(s)"),
            "scan epoch #: # hidden pdba(s), # hidden kstack(s)"
        );
        assert_eq!(normalize_detail("no digits"), "no digits");
    }

    #[test]
    fn observe_zero_is_a_noop_and_hit_sets_one_bit() {
        let mut m = CoverageMap::new();
        m.observe(feature("f", &[]), 0);
        assert!(m.is_empty());
        m.hit(feature("f", &[]));
        assert_eq!(m.bits(), 1);
    }

    #[test]
    fn novelty_is_order_independent() {
        // The same final (feature, count) observations yield the same map —
        // and therefore the same novelty verdict — in any order.
        let obs = [(feature("a", &[]), 3), (feature("b", &[]), 17), (feature("c", &[]), 1)];
        let forward = map_of(&obs);
        let mut reversed = obs;
        reversed.reverse();
        let backward = map_of(&reversed);
        assert_eq!(forward, backward);
        assert_eq!(forward.fingerprint(), backward.fingerprint());

        let base = map_of(&obs[..2]);
        assert_eq!(base.novel_bits(&forward), base.novel_bits(&backward));
        assert!(base.novel_bits(&forward) > 0, "feature c is novel");
        assert_eq!(forward.novel_bits(&base), 0, "subset adds nothing");
    }

    #[test]
    fn merge_is_commutative() {
        let a = map_of(&[(1, 1), (2, 40)]);
        let b = map_of(&[(2, 3), (99, 8)]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.fingerprint(), ba.fingerprint());
    }

    #[test]
    fn merge_is_associative() {
        let a = map_of(&[(1, 1)]);
        let b = map_of(&[(2, 2)]);
        let c = map_of(&[(3, 300)]);
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn merge_is_idempotent_and_identity_on_empty() {
        let a = map_of(&[(7, 7), (8, 128)]);
        let mut twice = a.clone();
        twice.merge(&a);
        assert_eq!(twice, a, "self-merge changes nothing");
        let mut onto_empty = CoverageMap::new();
        onto_empty.merge(&a);
        assert_eq!(onto_empty, a, "merging into an empty map copies it");
        let mut with_empty = a.clone();
        with_empty.merge(&CoverageMap::new());
        assert_eq!(with_empty, a, "merging an empty map changes nothing");
    }

    #[test]
    fn covers_is_subset_order() {
        let small = map_of(&[(1, 1)]);
        let big = map_of(&[(1, 1), (2, 2)]);
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(big.covers(&big));
    }

    #[test]
    fn stream_coverage_matches_between_tap_and_direct_fold() {
        use crate::event::{EventKind, VmId};
        use hypertap_hvsim::exit::VcpuSnapshot;
        use hypertap_hvsim::mem::{Gpa, Gva};
        use hypertap_hvsim::vcpu::{Cpl, VcpuId};

        let ev = |vcpu: usize, kind: EventKind| Event {
            vm: VmId(0),
            vcpu: VcpuId(vcpu),
            time: SimTime::from_nanos(10),
            kind,
            state: VcpuSnapshot::from_parts(
                Gpa::new(0x1000),
                Gva::new(0),
                Gva::new(0),
                Gva::new(0),
                Cpl::Kernel,
                [0; 7],
            ),
        };
        let events = [
            ev(0, EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000) }),
            ev(0, EventKind::ThreadSwitch { kernel_stack: 0xAA }),
            ev(1, EventKind::ProcessSwitch { new_pdba: Gpa::new(0x2000) }),
            ev(0, EventKind::ProcessSwitch { new_pdba: Gpa::new(0x3000) }),
        ];

        let collector = CoverageCollector::new();
        let mut tap = collector.tap();
        for e in &events {
            tap.on_event(e);
        }
        tap.on_tick(SimTime::from_nanos(50));
        let mut via_tap = CoverageMap::new();
        collector.fold_into(&mut via_tap);

        let mut direct = StreamCoverage::new();
        for e in &events {
            direct.see_event(e.vcpu.0, e.class());
        }
        direct.see_tick();
        let mut via_fold = CoverageMap::new();
        direct.fold_into(&mut via_fold);

        assert_eq!(via_tap, via_fold);
        assert!(!via_tap.is_empty());
    }
}
