//! The audit phase: the [`Auditor`] trait and findings plumbing.
//!
//! In HyperTap the audit phase of each monitor is implemented and operated
//! independently of the shared logging phase. An auditor subscribes to the
//! event classes it needs, receives each matching [`Event`] together with
//! mutable access to the VM (so it can inspect guest memory through the
//! hypervisor's eyes, pause the VM during an attack, or request suppression
//! of the intercepted operation), and reports [`Finding`]s through a
//! [`FindingSink`].

use crate::event::{Event, EventMask, EventRef};
use hypertap_hvsim::clock::SimTime;
use hypertap_hvsim::machine::VmState;
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};
use std::any::Any;
use std::fmt;

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational observation.
    Info,
    /// Suspicious but not conclusive.
    Warning,
    /// A policy violation or failure was detected.
    Alert,
}

impl Severity {
    /// The severity's stable wire discriminant (used by snapshots and the
    /// flight-dump format alike).
    pub fn to_byte(self) -> u8 {
        self as u8
    }

    /// Decodes a wire discriminant written by [`Severity::to_byte`].
    pub fn from_byte(b: u8) -> Option<Severity> {
        match b {
            0 => Some(Severity::Info),
            1 => Some(Severity::Warning),
            2 => Some(Severity::Alert),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Alert => "ALERT",
        })
    }
}

/// A report produced by an auditor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Name of the reporting auditor.
    pub auditor: String,
    /// Simulated time at which the finding was made.
    pub time: SimTime,
    /// Severity.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Causal provenance: the [`EventRef`]s of the forwarded events that
    /// triggered this finding, in the order the auditor considered them.
    /// Resolvable against the flight recorder or a recorded HTRC trace.
    pub provenance: Vec<EventRef>,
}

impl Finding {
    /// Convenience constructor (empty provenance).
    pub fn new(
        auditor: impl Into<String>,
        time: SimTime,
        severity: Severity,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            auditor: auditor.into(),
            time,
            severity,
            message: message.into(),
            provenance: Vec::new(),
        }
    }

    /// Attaches causal provenance.
    pub fn with_provenance(mut self, refs: Vec<EventRef>) -> Self {
        self.provenance = refs;
        self
    }

    /// Serializes the finding for a machine snapshot.
    pub(crate) fn save(&self, w: &mut SnapWriter) {
        w.string(&self.auditor);
        w.varint(self.time.as_nanos());
        w.byte(self.severity.to_byte());
        w.string(&self.message);
        w.varint(self.provenance.len() as u64);
        for r in &self.provenance {
            w.varint(r.0);
        }
    }

    /// Decodes a finding written by [`Finding::save`].
    pub(crate) fn load(r: &mut SnapReader<'_>) -> Result<Finding, SnapError> {
        let auditor = r.string()?;
        let time = SimTime::from_nanos(r.varint()?);
        let start = r.offset();
        let severity = Severity::from_byte(r.byte()?)
            .ok_or(SnapError::BadValue { offset: start, what: "finding severity" })?;
        let message = r.string()?;
        let n = r.count(1 << 16, "finding provenance refs")?;
        let mut provenance = Vec::with_capacity(n);
        for _ in 0..n {
            provenance.push(EventRef(r.varint()?));
        }
        Ok(Finding { auditor, time, severity, message, provenance })
    }

    /// Renders the finding together with its provenance, e.g.
    /// `[310ms ALERT] goshd: vcpu0 hung ... (triggered by exits #4, #9)`.
    pub fn explain(&self) -> String {
        if self.provenance.is_empty() {
            return format!("{self} (no recorded provenance)");
        }
        let refs = self.provenance.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(", ");
        format!("{self} (triggered by exits {refs})")
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}: {}", self.time, self.severity, self.auditor, self.message)
    }
}

/// Where auditors report findings and request actions on the intercepted
/// operation.
pub trait FindingSink {
    /// Records a finding.
    fn report(&mut self, finding: Finding);

    /// Asks the hypervisor to suppress the intercepted operation (only
    /// meaningful during synchronous, blocking delivery — the paper's
    /// "auditor may pause its target VM during analysis" enforcement hook).
    fn request_suppress(&mut self) {}

    /// The [`EventRef`] of the event currently being delivered, if the sink
    /// runs inside the Event Multiplexer's per-event fan-out (None during
    /// ticks or when reporting outside the EM). Auditors use this to stamp
    /// provenance as events arrive.
    fn current_ref(&self) -> Option<EventRef> {
        None
    }

    /// Records an auditor state transition (liveness flip, scan epoch,
    /// privilege-track edge) into the VM's flight recorder. A no-op for
    /// sinks without a recorder behind them.
    fn note_transition(&mut self, _auditor: &str, _detail: String) {}
}

impl FindingSink for Vec<Finding> {
    fn report(&mut self, finding: Finding) {
        self.push(finding);
    }
}

/// An independent RnS monitor's audit phase.
///
/// Implementations must also provide [`Auditor::as_any`]/[`Auditor::as_any_mut`]
/// so harnesses can query auditor-specific state after a run (the pattern the
/// Event Multiplexer's [`crate::em::EventMultiplexer::auditor`] accessor
/// uses).
pub trait Auditor {
    /// The auditor's name (used in findings).
    fn name(&self) -> &str;

    /// The event classes this auditor wants delivered.
    fn subscriptions(&self) -> EventMask;

    /// Handles one event. `vm` is the live VM state: auditors may read guest
    /// memory, pause the VM, or reprogram protections through it.
    fn on_event(&mut self, vm: &mut VmState, event: &Event, sink: &mut dyn FindingSink);

    /// Periodic callback driven by the multiplexer's host timer. Auditors
    /// with time-based policies (hang watchdogs, pollers) use this.
    fn on_tick(&mut self, _vm: &mut VmState, _now: SimTime, _sink: &mut dyn FindingSink) {}

    /// Upcast for read-only state queries.
    fn as_any(&self) -> &dyn Any;

    /// Upcast for mutable state queries.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Serializes the auditor's mutable runtime state (liveness machines,
    /// scan epochs, learned baselines, counters) for a machine snapshot.
    /// Stateless auditors return an empty blob (the default).
    fn snapshot_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state produced by [`Auditor::snapshot_state`] into a freshly
    /// built auditor of the same kind.
    ///
    /// # Errors
    ///
    /// Returns a structured [`SnapError`] on malformed bytes; the default
    /// accepts only an empty blob.
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(SnapError::Unsupported {
                what: format!("auditor '{}' has no restorable state", self.name()),
            })
        }
    }
}

/// A minimal auditor that counts the events it receives. Used in examples,
/// tests and as the simplest template for writing auditors.
#[derive(Debug, Default)]
pub struct CountingAuditor {
    mask: EventMask,
    events: u64,
    ticks: u64,
}

impl CountingAuditor {
    /// Counts every event class.
    pub fn new() -> Self {
        CountingAuditor { mask: EventMask::ALL, events: 0, ticks: 0 }
    }

    /// Counts only the given classes.
    pub fn with_mask(mask: EventMask) -> Self {
        CountingAuditor { mask, events: 0, ticks: 0 }
    }

    /// Number of events delivered so far.
    pub fn events_seen(&self) -> u64 {
        self.events
    }

    /// Number of timer ticks delivered so far.
    pub fn ticks_seen(&self) -> u64 {
        self.ticks
    }
}

impl Auditor for CountingAuditor {
    fn name(&self) -> &str {
        "counting"
    }

    fn subscriptions(&self) -> EventMask {
        self.mask
    }

    fn on_event(&mut self, _vm: &mut VmState, _event: &Event, _sink: &mut dyn FindingSink) {
        self.events += 1;
    }

    fn on_tick(&mut self, _vm: &mut VmState, _now: SimTime, _sink: &mut dyn FindingSink) {
        self.ticks += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.varint(self.events);
        w.varint(self.ticks);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        self.events = r.varint()?;
        self.ticks = r.varint()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventClass, EventKind, VmId};
    use hypertap_hvsim::exit::VcpuSnapshot;
    use hypertap_hvsim::machine::{VmConfig, VmState};
    use hypertap_hvsim::mem::Gpa;
    use hypertap_hvsim::vcpu::{Vcpu, VcpuId};

    fn dummy_event() -> Event {
        let vcpu = Vcpu::new(VcpuId(0));
        Event {
            vm: VmId(0),
            vcpu: VcpuId(0),
            time: SimTime::from_millis(1),
            kind: EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000) },
            state: VcpuSnapshot::capture(&vcpu),
        }
    }

    fn dummy_vm() -> VmState {
        // VmState has no public constructor; build through a machine.
        struct NoHv;
        impl hypertap_hvsim::machine::Hypervisor for NoHv {
            fn handle_exit(
                &mut self,
                _vm: &mut VmState,
                _exit: &hypertap_hvsim::exit::VmExit,
            ) -> hypertap_hvsim::exit::ExitAction {
                hypertap_hvsim::exit::ExitAction::Resume
            }
        }
        let m = hypertap_hvsim::machine::Machine::new(VmConfig::new(1, 1 << 20), NoHv);
        m.into_parts().0
    }

    #[test]
    fn counting_auditor_counts() {
        let mut a = CountingAuditor::new();
        let mut vm = dummy_vm();
        let mut sink: Vec<Finding> = Vec::new();
        a.on_event(&mut vm, &dummy_event(), &mut sink);
        a.on_event(&mut vm, &dummy_event(), &mut sink);
        a.on_tick(&mut vm, SimTime::from_millis(2), &mut sink);
        assert_eq!(a.events_seen(), 2);
        assert_eq!(a.ticks_seen(), 1);
        assert!(sink.is_empty());
    }

    #[test]
    fn with_mask_limits_subscription() {
        let a = CountingAuditor::with_mask(EventMask::only(EventClass::Syscall));
        assert!(a.subscriptions().contains(EventClass::Syscall));
        assert!(!a.subscriptions().contains(EventClass::Io));
    }

    #[test]
    fn vec_is_a_sink() {
        let mut sink: Vec<Finding> = Vec::new();
        sink.report(Finding::new("t", SimTime::ZERO, Severity::Alert, "boom"));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].severity, Severity::Alert);
        assert!(sink[0].to_string().contains("ALERT"));
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Alert);
    }
}
