//! The KVM hypervisor model with HyperTap's Event Forwarder integrated.
//!
//! In the paper, HyperTap adds fewer than 100 lines to the KVM kernel module:
//! an Event Forwarder (EF) hooked into the VM-exit dispatch path that ships
//! each exit (plus relevant guest state) to the Event Multiplexer. [`Kvm`]
//! plays that role here: it implements [`Hypervisor`] for the simulator,
//! routes every exit through the installed interception engines, wraps the
//! decoded events with the trusted state snapshot, and forwards them to its
//! embedded [`EventMultiplexer`].

use crate::em::EventMultiplexer;
use crate::event::{Event, EventKind, VmId};
use crate::intercept::{InterceptEngine, Table1Row};
use crate::metrics::{MetricsRegistry, Spans};
use crate::ring::{Ring, RingStats};
use hypertap_hvsim::clock::SimTime;
use hypertap_hvsim::exit::{ExitAction, VmExit};
use hypertap_hvsim::machine::{Hypervisor, TimerId, VmState};
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};

/// Capacity of the staging ring between the decode and fan-out stages.
/// Sized far above any realistic per-exit event count so backpressure
/// flushes are the exception, while keeping the resident footprint small
/// (`Event` is a couple hundred bytes).
const RING_CAPACITY: usize = 256;

/// Counters of the batched exit pipeline (queried by benches and tests,
/// exported as `hypertap_pipeline_*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Batches delivered to the EM via the staging ring.
    pub batches: u64,
    /// Events that travelled through the batched path.
    pub events: u64,
    /// Early flushes forced because an exit decoded more events than the
    /// ring had room for (backpressure).
    pub backpressure_flushes: u64,
}

/// Reusable scratch owned by the Event Forwarder — the `EventBatch` layer.
///
/// Every buffer here is allocated once (construction or first-use warmup)
/// and reused for the lifetime of the VM, so the steady-state exit path
/// performs no heap allocation on either the batched or the fallback
/// route. The counting-allocator test (`tests/alloc_steady_state.rs`) pins
/// that property down.
struct ExitPipeline {
    /// Decoded kinds of the current exit; cleared (not dropped) per exit.
    kinds: Vec<EventKind>,
    /// Wrapped-event scratch for the unbatched fallback path.
    events: Vec<Event>,
    /// Staging ring between decode and EM fan-out (batched path). The head
    /// keeps advancing across exits, so staged batches routinely straddle
    /// the physical edge — the wraparound the proptests hammer.
    ring: Ring<Event>,
    stats: PipelineStats,
}

impl ExitPipeline {
    fn new() -> Self {
        ExitPipeline {
            kinds: Vec::with_capacity(8),
            events: Vec::with_capacity(8),
            ring: Ring::new(RING_CAPACITY),
            stats: PipelineStats::default(),
        }
    }
}

/// The hypervisor: exit dispatch + Event Forwarder + Event Multiplexer.
pub struct Kvm {
    engines: Vec<Box<dyn InterceptEngine>>,
    /// The Event Multiplexer — register auditors and containers here.
    pub em: EventMultiplexer,
    vm_id: VmId,
    forwarded_events: u64,
    /// Host wall-clock spans over the exit→decode→fan-out path. Disabled
    /// (one branch per exit) unless metrics are switched on.
    spans: Spans,
    /// Reusable decode/staging buffers (never observable by the guest).
    pipeline: ExitPipeline,
    /// Whether exits take the batched ring path (default) or the per-event
    /// fallback. Both produce bit-identical streams — the `BATCHED_OFF`
    /// conformance pair enforces it.
    batched: bool,
}

impl std::fmt::Debug for Kvm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kvm")
            .field("vm_id", &self.vm_id)
            .field("engines", &self.engines.iter().map(|e| e.name()).collect::<Vec<_>>())
            .field("forwarded_events", &self.forwarded_events)
            .finish_non_exhaustive()
    }
}

impl Default for Kvm {
    fn default() -> Self {
        Kvm::new()
    }
}

impl Kvm {
    /// A hypervisor for VM 0 with no engines installed.
    pub fn new() -> Self {
        Kvm {
            engines: Vec::new(),
            em: EventMultiplexer::new(),
            vm_id: VmId(0),
            forwarded_events: 0,
            spans: Spans::new(false),
            pipeline: ExitPipeline::new(),
            batched: true,
        }
    }

    /// Selects the batched ring path (default) or the per-event fallback.
    /// Purely a host-side performance knob: the forwarded stream, verdicts
    /// and provenance are bit-identical either way.
    pub fn set_batched(&mut self, on: bool) {
        self.batched = on;
    }

    /// Whether exits take the batched ring path.
    pub fn batched(&self) -> bool {
        self.batched
    }

    /// Counters of the batched exit pipeline.
    pub fn pipeline_stats(&self) -> PipelineStats {
        self.pipeline.stats
    }

    /// Counters of the decode→fan-out staging ring.
    pub fn ring_stats(&self) -> RingStats {
        self.pipeline.ring.stats()
    }

    /// Switches host-side instrumentation (pipeline spans + EM dispatch
    /// latency) on or off. Never observable by the simulation.
    pub fn set_metrics_enabled(&mut self, on: bool) {
        self.spans.set_enabled(on);
        self.em.set_metrics_enabled(on);
    }

    /// Exports the Event Forwarder's counters, the pipeline-stage span
    /// histograms, and the embedded EM's metrics into a snapshot registry.
    pub fn collect_metrics(&self, reg: &mut MetricsRegistry) {
        reg.counter(
            "hypertap_ef_forwarded_events_total",
            "decoded events forwarded by the Event Forwarder to the EM",
            self.forwarded_events,
        );
        self.spans.collect(
            "hypertap_pipeline_ns",
            "host wall-clock latency per exit-pipeline stage, nanoseconds",
            reg,
        );
        reg.counter(
            "hypertap_pipeline_batches_total",
            "event batches delivered through the staging ring",
            self.pipeline.stats.batches,
        );
        reg.counter(
            "hypertap_pipeline_events_total",
            "events that travelled the batched pipeline",
            self.pipeline.stats.events,
        );
        reg.counter(
            "hypertap_pipeline_backpressure_flushes_total",
            "early batch flushes forced by a full staging ring",
            self.pipeline.stats.backpressure_flushes,
        );
        let ring = self.pipeline.ring.stats();
        reg.counter("hypertap_ring_pushed_total", "events staged into the ring", ring.pushed);
        reg.counter("hypertap_ring_popped_total", "events consumed from the ring", ring.popped);
        reg.counter(
            "hypertap_ring_rejected_total",
            "ring pushes refused at capacity (backpressure)",
            ring.rejected,
        );
        reg.gauge(
            "hypertap_ring_high_watermark",
            "largest staging-ring occupancy observed",
            ring.high_watermark as f64,
        );
        self.em.collect_metrics(reg);
    }

    /// A hypervisor tagged with an explicit VM id.
    pub fn with_vm_id(vm_id: VmId) -> Self {
        Kvm { vm_id, ..Kvm::new() }
    }

    /// The VM id stamped into every forwarded event.
    pub fn vm_id(&self) -> VmId {
        self.vm_id
    }

    /// Installs and enables an interception engine.
    pub fn install(&mut self, vm: &mut VmState, mut engine: Box<dyn InterceptEngine>) {
        engine.enable(vm);
        self.engines.push(engine);
    }

    /// Disables and removes the engine with the given name. Returns whether
    /// it was found.
    pub fn uninstall(&mut self, vm: &mut VmState, name: &str) -> bool {
        if let Some(pos) = self.engines.iter().position(|e| e.name() == name) {
            let mut engine = self.engines.remove(pos);
            engine.disable(vm);
            true
        } else {
            false
        }
    }

    /// Names of the installed engines.
    pub fn engine_names(&self) -> Vec<&'static str> {
        self.engines.iter().map(|e| e.name()).collect()
    }

    /// Mutable access to an installed engine by name (for engines with
    /// runtime configuration like the fine-grained watcher).
    pub fn engine_mut(&mut self, name: &str) -> Option<&mut (dyn InterceptEngine + '_)> {
        self.engines
            .iter_mut()
            .find(|e| e.name() == name)
            .map(|e| e.as_mut() as &mut dyn InterceptEngine)
    }

    /// The Table I rows contributed by every installed engine, in
    /// installation order — the data behind the `table1` experiment binary.
    pub fn table1(&self) -> Vec<Table1Row> {
        self.engines.iter().flat_map(|e| e.table1_rows().iter().copied()).collect()
    }

    /// Total decoded events forwarded to the EM so far.
    pub fn forwarded_events(&self) -> u64 {
        self.forwarded_events
    }

    /// Serializes the Event Forwarder's deterministic state for a machine
    /// snapshot: the forwarded-event counter, pipeline and ring counters,
    /// every installed engine's state (framed by name, in install order),
    /// and the embedded Event Multiplexer.
    ///
    /// Not captured: the wall-clock span probes (host instrumentation) and
    /// the pipeline's scratch buffers (always drained before an exit
    /// returns, so they are empty at any snapshot point).
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError::Unsupported`] from the EM when audit
    /// containers are attached.
    pub fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.varint(u64::from(self.vm_id.0));
        w.boolean(self.batched);
        w.varint(self.forwarded_events);
        w.varint(self.pipeline.stats.batches);
        w.varint(self.pipeline.stats.events);
        w.varint(self.pipeline.stats.backpressure_flushes);
        let ring = self.pipeline.ring.stats();
        w.varint(ring.pushed);
        w.varint(ring.popped);
        w.varint(ring.rejected);
        w.varint(ring.high_watermark);
        w.varint(self.engines.len() as u64);
        for e in &self.engines {
            w.string(e.name());
            w.bytes(&e.snapshot_state());
        }
        self.em.save_state(w)
    }

    /// Restores state written by [`Kvm::save_state`] into a forwarder
    /// rebuilt from the same recipe (same VM id, same engines installed in
    /// the same order, same auditor roster).
    ///
    /// # Errors
    ///
    /// Returns a structured [`SnapError`] on malformed bytes or a recipe
    /// mismatch (VM id, batched mode, or engine roster).
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let start = r.offset();
        if r.varint()? != u64::from(self.vm_id.0) {
            return Err(SnapError::BadValue { offset: start, what: "vm id mismatch" });
        }
        let start = r.offset();
        if r.boolean()? != self.batched {
            return Err(SnapError::BadValue { offset: start, what: "batched-mode mismatch" });
        }
        self.forwarded_events = r.varint()?;
        self.pipeline.stats.batches = r.varint()?;
        self.pipeline.stats.events = r.varint()?;
        self.pipeline.stats.backpressure_flushes = r.varint()?;
        let ring = RingStats {
            pushed: r.varint()?,
            popped: r.varint()?,
            rejected: r.varint()?,
            high_watermark: r.varint()?,
        };
        self.pipeline.ring.restore_stats(ring);
        let start = r.offset();
        let n = r.count(1 << 10, "engine state blobs")?;
        if n != self.engines.len() {
            return Err(SnapError::BadValue { offset: start, what: "engine roster size" });
        }
        for e in self.engines.iter_mut() {
            let name = r.string()?;
            let blob = r.bytes()?;
            if name != e.name() {
                return Err(SnapError::Unsupported {
                    what: format!(
                        "engine roster mismatch: snapshot has '{name}', target has '{}'",
                        e.name()
                    ),
                });
            }
            e.restore_state(blob)?;
        }
        self.em.restore_state(r)
    }

    /// Drains everything staged in the ring into the EM as one batch,
    /// handing the (possibly edge-straddling) contents over as the ring's
    /// two contiguous runs — zero-copy. Returns whether any synchronous
    /// auditor requested suppression.
    fn flush_ring(&mut self, vm: &mut VmState) -> bool {
        let (front, back) = self.pipeline.ring.as_slices();
        let suppress = self.em.deliver_batch(vm, front, back);
        let staged = self.pipeline.ring.len();
        self.pipeline.ring.consume(staged);
        self.pipeline.stats.batches += 1;
        suppress
    }

    /// Batched delivery of the current exit's decoded kinds: wrap each kind
    /// into an [`Event`] straight into the staging ring, then flush the
    /// whole batch to the EM in one call. The ring is always fully drained
    /// before the exit returns — suppression must be decided synchronously,
    /// which is why the batch boundary is one exit (see DESIGN.md).
    fn deliver_batched(&mut self, vm: &mut VmState, exit: &VmExit) -> bool {
        let mut suppress = false;
        self.pipeline.stats.events += self.pipeline.kinds.len() as u64;
        for i in 0..self.pipeline.kinds.len() {
            if self.pipeline.ring.is_full() {
                // Backpressure: deliver the staged prefix early (in order)
                // to make room. Ordering is preserved — the prefix fans out
                // before anything behind it is staged.
                self.pipeline.stats.backpressure_flushes += 1;
                suppress |= self.flush_ring(vm);
            }
            let event = Event {
                vm: self.vm_id,
                vcpu: exit.vcpu,
                time: exit.time,
                kind: self.pipeline.kinds[i],
                state: exit.state,
            };
            let pushed = self.pipeline.ring.try_push(event);
            debug_assert!(pushed.is_ok(), "ring has room after a backpressure flush");
        }
        suppress |= self.flush_ring(vm);
        suppress
    }

    /// Per-event fallback delivery (`batched == false`): same wrapping, but
    /// through the EM's `deliver_all` with the reusable scratch `Vec` —
    /// still allocation-free in the steady state.
    fn deliver_unbatched(&mut self, vm: &mut VmState, exit: &VmExit) -> bool {
        let vm_id = self.vm_id;
        let ExitPipeline { kinds, events, .. } = &mut self.pipeline;
        events.clear();
        events.extend(kinds.iter().map(|&kind| Event {
            vm: vm_id,
            vcpu: exit.vcpu,
            time: exit.time,
            kind,
            state: exit.state,
        }));
        self.em.deliver_all(vm, &self.pipeline.events)
    }
}

impl Hypervisor for Kvm {
    fn handle_exit(&mut self, vm: &mut VmState, exit: &VmExit) -> ExitAction {
        let mut action = ExitAction::Resume;
        // One branch decides all span work for this exit; with spans off
        // neither stage reads the host clock at all.
        let spans_on = self.spans.is_enabled();
        // 1. Logging phase: every engine inspects the exit; decoded events
        //    are collected in order into the reusable scratch buffer. This
        //    is the blocking part of the pipeline, shared by all monitors.
        let decode_started = if spans_on { self.spans.start() } else { None };
        self.pipeline.kinds.clear();
        let kinds = &mut self.pipeline.kinds;
        for engine in &mut self.engines {
            if engine.on_exit(vm, exit, &mut |k| kinds.push(k)) == ExitAction::Suppress {
                action = ExitAction::Suppress;
            }
        }
        if spans_on {
            if let Some(ns) = self.spans.record("decode", decode_started) {
                self.em.flight_mut().note_span("decode", exit.time, ns, exit.vcpu.0 as u32);
            }
        }
        // 2. Forward to the EM in one batch; auditors run their
        //    (independent) audit phases. A synchronous auditor may request
        //    suppression.
        if !self.pipeline.kinds.is_empty() {
            self.forwarded_events += self.pipeline.kinds.len() as u64;
            let fanout_started = if spans_on { self.spans.start() } else { None };
            let suppress = if self.batched {
                self.deliver_batched(vm, exit)
            } else {
                self.deliver_unbatched(vm, exit)
            };
            if spans_on {
                if let Some(ns) = self.spans.record("fanout", fanout_started) {
                    self.em.flight_mut().note_span("fanout", exit.time, ns, exit.vcpu.0 as u32);
                }
            }
            if suppress {
                action = ExitAction::Suppress;
            }
        }
        // 3. RHC heartbeat sampling sees the raw exit stream.
        self.em.note_exit(exit.time);
        action
    }

    fn on_timer(&mut self, vm: &mut VmState, _timer: TimerId, now: SimTime) {
        self.em.tick(vm, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::CountingAuditor;
    use crate::intercept::{IntSyscallEngine, IoEngine, ProcessSwitchEngine};
    use hypertap_hvsim::cpu::{CpuCtx, StepOutcome};
    use hypertap_hvsim::machine::{GuestProgram, Machine, VmConfig};
    use hypertap_hvsim::mem::Gpa;

    struct Switcher;
    impl GuestProgram for Switcher {
        fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
            cpu.write_cr3(Gpa::new(0x1000));
            StepOutcome::Continue
        }
    }

    #[test]
    fn install_enable_and_forward() {
        let mut m = Machine::new(VmConfig::new(1, 1 << 20), Kvm::new());
        let (vm, kvm) = m.parts_mut();
        kvm.install(vm, Box::new(ProcessSwitchEngine::new()));
        kvm.em.register(Box::new(CountingAuditor::new()));
        m.run_steps(&mut Switcher, 5);
        assert_eq!(m.hypervisor().forwarded_events(), 5);
        assert_eq!(m.hypervisor().em.auditor::<CountingAuditor>().unwrap().events_seen(), 5);
    }

    #[test]
    fn uninstall_reverts_controls() {
        let mut m = Machine::new(VmConfig::new(1, 1 << 20), Kvm::new());
        let (vm, kvm) = m.parts_mut();
        kvm.install(vm, Box::new(ProcessSwitchEngine::new()));
        assert!(vm.controls().cr3_load_exiting());
        assert!(kvm.uninstall(vm, "process-switch"));
        assert!(!vm.controls().cr3_load_exiting());
        assert!(!kvm.uninstall(vm, "process-switch"));
        m.run_steps(&mut Switcher, 3);
        assert_eq!(m.hypervisor().forwarded_events(), 0);
    }

    #[test]
    fn table1_aggregates_engine_rows() {
        let mut m = Machine::new(VmConfig::new(1, 1 << 20), Kvm::new());
        let (vm, kvm) = m.parts_mut();
        kvm.install(vm, Box::new(ProcessSwitchEngine::new()));
        kvm.install(vm, Box::new(IntSyscallEngine::new()));
        kvm.install(vm, Box::new(IoEngine::new()));
        let rows = kvm.table1();
        assert_eq!(rows.len(), 1 + 1 + 4);
        assert!(rows.iter().any(|r| r.vm_exit == "CR_ACCESS"));
        assert!(rows.iter().any(|r| r.guest_event == "Programmed I/O"));
    }

    #[test]
    fn engine_names_in_install_order() {
        let mut m = Machine::new(VmConfig::new(1, 1 << 20), Kvm::new());
        let (vm, kvm) = m.parts_mut();
        kvm.install(vm, Box::new(IoEngine::new()));
        kvm.install(vm, Box::new(ProcessSwitchEngine::new()));
        assert_eq!(kvm.engine_names(), vec!["io-access", "process-switch"]);
        assert!(kvm.engine_mut("io-access").is_some());
        assert!(kvm.engine_mut("nope").is_none());
    }

    struct Chatty;
    impl GuestProgram for Chatty {
        fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
            // Two engines' worth of traffic per step: a context switch and
            // a port write.
            cpu.write_cr3(Gpa::new(0x3000));
            cpu.pio_out(0x3f8, 0x41);
            StepOutcome::Continue
        }
    }

    fn run_chatty(batched: bool, steps: usize) -> Machine<Kvm> {
        let mut m = Machine::new(VmConfig::new(1, 1 << 20), Kvm::new());
        let (vm, kvm) = m.parts_mut();
        kvm.set_batched(batched);
        kvm.install(vm, Box::new(ProcessSwitchEngine::new()));
        kvm.install(vm, Box::new(IoEngine::new()));
        kvm.em.register(Box::new(CountingAuditor::new()));
        m.run_steps(&mut Chatty, steps);
        m
    }

    #[test]
    fn batched_and_unbatched_paths_are_equivalent() {
        let on = run_chatty(true, 6);
        let off = run_chatty(false, 6);
        assert_eq!(on.hypervisor().forwarded_events(), off.hypervisor().forwarded_events());
        assert_eq!(on.hypervisor().em.stats(), off.hypervisor().em.stats());
        assert_eq!(
            on.hypervisor().em.flight().dump("t").records,
            off.hypervisor().em.flight().dump("t").records,
            "flight streams (events, refs, order) must be bit-identical"
        );
        // Only the batched run exercises the ring.
        let stats = on.hypervisor().pipeline_stats();
        assert!(stats.batches >= 6, "at least one batch per eventful exit");
        assert_eq!(stats.events, on.hypervisor().forwarded_events());
        assert_eq!(off.hypervisor().pipeline_stats(), PipelineStats::default());
        let ring = on.hypervisor().ring_stats();
        assert_eq!(ring.pushed, stats.events);
        assert_eq!(ring.popped, ring.pushed, "every staged event was delivered");
        assert_eq!(ring.rejected, 0);
    }

    #[test]
    fn disabled_spans_never_touch_the_host_clock() {
        let m = run_chatty(true, 8);
        assert_eq!(
            m.hypervisor().spans.timestamps_taken(),
            0,
            "metrics off: no Instant::now() on the exit path"
        );
        let mut on = Machine::new(VmConfig::new(1, 1 << 20), Kvm::new());
        let (vm, kvm) = on.parts_mut();
        kvm.set_metrics_enabled(true);
        kvm.install(vm, Box::new(ProcessSwitchEngine::new()));
        on.run_steps(&mut Switcher, 3);
        // decode + fanout per eventful exit.
        assert_eq!(on.hypervisor().spans.timestamps_taken(), 6);
    }

    #[test]
    fn pipeline_metrics_are_exported() {
        let m = run_chatty(true, 4);
        let mut reg = crate::metrics::MetricsRegistry::new();
        m.hypervisor().collect_metrics(&mut reg);
        let events = m.hypervisor().forwarded_events();
        assert_eq!(
            reg.find("hypertap_pipeline_events_total", &[]).unwrap().as_counter(),
            Some(events)
        );
        assert_eq!(reg.find("hypertap_ring_pushed_total", &[]).unwrap().as_counter(), Some(events));
        assert_eq!(reg.find("hypertap_ring_rejected_total", &[]).unwrap().as_counter(), Some(0));
        assert!(reg.find("hypertap_ring_high_watermark", &[]).unwrap().as_gauge().unwrap() >= 1.0);
    }

    #[test]
    fn metrics_capture_pipeline_spans_without_changing_delivery() {
        let run = |metrics: bool| {
            let mut m = Machine::new(VmConfig::new(1, 1 << 20), Kvm::new());
            let (vm, kvm) = m.parts_mut();
            kvm.install(vm, Box::new(ProcessSwitchEngine::new()));
            kvm.em.register(Box::new(CountingAuditor::new()));
            kvm.set_metrics_enabled(metrics);
            m.run_steps(&mut Switcher, 5);
            m
        };
        let plain = run(false);
        let instrumented = run(true);
        // Identical observable behaviour...
        assert_eq!(
            plain.hypervisor().forwarded_events(),
            instrumented.hypervisor().forwarded_events()
        );
        assert_eq!(plain.hypervisor().em.stats(), instrumented.hypervisor().em.stats());
        // ...but only the instrumented run recorded spans.
        let mut reg = crate::metrics::MetricsRegistry::new();
        instrumented.hypervisor().collect_metrics(&mut reg);
        let decode = reg.find("hypertap_pipeline_ns", &[("stage", "decode")]).expect("decode span");
        assert_eq!(decode.as_histogram().unwrap().count(), 5);
        assert!(reg.find("hypertap_pipeline_ns", &[("stage", "fanout")]).is_some());
        assert_eq!(
            reg.find("hypertap_ef_forwarded_events_total", &[]).unwrap().as_counter(),
            Some(5)
        );

        let mut plain_reg = crate::metrics::MetricsRegistry::new();
        plain.hypervisor().collect_metrics(&mut plain_reg);
        assert!(plain_reg.find("hypertap_pipeline_ns", &[("stage", "decode")]).is_none());
    }
}
