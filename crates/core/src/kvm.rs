//! The KVM hypervisor model with HyperTap's Event Forwarder integrated.
//!
//! In the paper, HyperTap adds fewer than 100 lines to the KVM kernel module:
//! an Event Forwarder (EF) hooked into the VM-exit dispatch path that ships
//! each exit (plus relevant guest state) to the Event Multiplexer. [`Kvm`]
//! plays that role here: it implements [`Hypervisor`] for the simulator,
//! routes every exit through the installed interception engines, wraps the
//! decoded events with the trusted state snapshot, and forwards them to its
//! embedded [`EventMultiplexer`].

use crate::em::EventMultiplexer;
use crate::event::{Event, VmId};
use crate::intercept::{InterceptEngine, Table1Row};
use crate::metrics::{MetricsRegistry, Spans};
use hypertap_hvsim::clock::SimTime;
use hypertap_hvsim::exit::{ExitAction, VmExit};
use hypertap_hvsim::machine::{Hypervisor, TimerId, VmState};

/// The hypervisor: exit dispatch + Event Forwarder + Event Multiplexer.
pub struct Kvm {
    engines: Vec<Box<dyn InterceptEngine>>,
    /// The Event Multiplexer — register auditors and containers here.
    pub em: EventMultiplexer,
    vm_id: VmId,
    forwarded_events: u64,
    /// Host wall-clock spans over the exit→decode→fan-out path. Disabled
    /// (one branch per exit) unless metrics are switched on.
    spans: Spans,
}

impl std::fmt::Debug for Kvm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kvm")
            .field("vm_id", &self.vm_id)
            .field("engines", &self.engines.iter().map(|e| e.name()).collect::<Vec<_>>())
            .field("forwarded_events", &self.forwarded_events)
            .finish_non_exhaustive()
    }
}

impl Default for Kvm {
    fn default() -> Self {
        Kvm::new()
    }
}

impl Kvm {
    /// A hypervisor for VM 0 with no engines installed.
    pub fn new() -> Self {
        Kvm {
            engines: Vec::new(),
            em: EventMultiplexer::new(),
            vm_id: VmId(0),
            forwarded_events: 0,
            spans: Spans::new(false),
        }
    }

    /// Switches host-side instrumentation (pipeline spans + EM dispatch
    /// latency) on or off. Never observable by the simulation.
    pub fn set_metrics_enabled(&mut self, on: bool) {
        self.spans.set_enabled(on);
        self.em.set_metrics_enabled(on);
    }

    /// Exports the Event Forwarder's counters, the pipeline-stage span
    /// histograms, and the embedded EM's metrics into a snapshot registry.
    pub fn collect_metrics(&self, reg: &mut MetricsRegistry) {
        reg.counter(
            "hypertap_ef_forwarded_events_total",
            "decoded events forwarded by the Event Forwarder to the EM",
            self.forwarded_events,
        );
        self.spans.collect(
            "hypertap_pipeline_ns",
            "host wall-clock latency per exit-pipeline stage, nanoseconds",
            reg,
        );
        self.em.collect_metrics(reg);
    }

    /// A hypervisor tagged with an explicit VM id.
    pub fn with_vm_id(vm_id: VmId) -> Self {
        Kvm { vm_id, ..Kvm::new() }
    }

    /// The VM id stamped into every forwarded event.
    pub fn vm_id(&self) -> VmId {
        self.vm_id
    }

    /// Installs and enables an interception engine.
    pub fn install(&mut self, vm: &mut VmState, mut engine: Box<dyn InterceptEngine>) {
        engine.enable(vm);
        self.engines.push(engine);
    }

    /// Disables and removes the engine with the given name. Returns whether
    /// it was found.
    pub fn uninstall(&mut self, vm: &mut VmState, name: &str) -> bool {
        if let Some(pos) = self.engines.iter().position(|e| e.name() == name) {
            let mut engine = self.engines.remove(pos);
            engine.disable(vm);
            true
        } else {
            false
        }
    }

    /// Names of the installed engines.
    pub fn engine_names(&self) -> Vec<&'static str> {
        self.engines.iter().map(|e| e.name()).collect()
    }

    /// Mutable access to an installed engine by name (for engines with
    /// runtime configuration like the fine-grained watcher).
    pub fn engine_mut(&mut self, name: &str) -> Option<&mut (dyn InterceptEngine + '_)> {
        self.engines
            .iter_mut()
            .find(|e| e.name() == name)
            .map(|e| e.as_mut() as &mut dyn InterceptEngine)
    }

    /// The Table I rows contributed by every installed engine, in
    /// installation order — the data behind the `table1` experiment binary.
    pub fn table1(&self) -> Vec<Table1Row> {
        self.engines.iter().flat_map(|e| e.table1_rows().iter().copied()).collect()
    }

    /// Total decoded events forwarded to the EM so far.
    pub fn forwarded_events(&self) -> u64 {
        self.forwarded_events
    }
}

impl Hypervisor for Kvm {
    fn handle_exit(&mut self, vm: &mut VmState, exit: &VmExit) -> ExitAction {
        let mut action = ExitAction::Resume;
        // 1. Logging phase: every engine inspects the exit; decoded events
        //    are collected in order. This is the blocking part of the
        //    pipeline, shared by all monitors.
        let decode_started = self.spans.start();
        let mut kinds = Vec::new();
        for engine in &mut self.engines {
            if engine.on_exit(vm, exit, &mut |k| kinds.push(k)) == ExitAction::Suppress {
                action = ExitAction::Suppress;
            }
        }
        if let Some(ns) = self.spans.record("decode", decode_started) {
            self.em.flight_mut().note_span("decode", exit.time, ns, exit.vcpu.0 as u32);
        }
        // 2. Forward to the EM in one batch; auditors run their
        //    (independent) audit phases. A synchronous auditor may request
        //    suppression.
        if !kinds.is_empty() {
            self.forwarded_events += kinds.len() as u64;
            let events: Vec<Event> = kinds
                .into_iter()
                .map(|kind| Event {
                    vm: self.vm_id,
                    vcpu: exit.vcpu,
                    time: exit.time,
                    kind,
                    state: exit.state,
                })
                .collect();
            let fanout_started = self.spans.start();
            let suppress = self.em.deliver_all(vm, &events);
            if let Some(ns) = self.spans.record("fanout", fanout_started) {
                self.em.flight_mut().note_span("fanout", exit.time, ns, exit.vcpu.0 as u32);
            }
            if suppress {
                action = ExitAction::Suppress;
            }
        }
        // 3. RHC heartbeat sampling sees the raw exit stream.
        self.em.note_exit(exit.time);
        action
    }

    fn on_timer(&mut self, vm: &mut VmState, _timer: TimerId, now: SimTime) {
        self.em.tick(vm, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::CountingAuditor;
    use crate::intercept::{IntSyscallEngine, IoEngine, ProcessSwitchEngine};
    use hypertap_hvsim::cpu::{CpuCtx, StepOutcome};
    use hypertap_hvsim::machine::{GuestProgram, Machine, VmConfig};
    use hypertap_hvsim::mem::Gpa;

    struct Switcher;
    impl GuestProgram for Switcher {
        fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
            cpu.write_cr3(Gpa::new(0x1000));
            StepOutcome::Continue
        }
    }

    #[test]
    fn install_enable_and_forward() {
        let mut m = Machine::new(VmConfig::new(1, 1 << 20), Kvm::new());
        let (vm, kvm) = m.parts_mut();
        kvm.install(vm, Box::new(ProcessSwitchEngine::new()));
        kvm.em.register(Box::new(CountingAuditor::new()));
        m.run_steps(&mut Switcher, 5);
        assert_eq!(m.hypervisor().forwarded_events(), 5);
        assert_eq!(m.hypervisor().em.auditor::<CountingAuditor>().unwrap().events_seen(), 5);
    }

    #[test]
    fn uninstall_reverts_controls() {
        let mut m = Machine::new(VmConfig::new(1, 1 << 20), Kvm::new());
        let (vm, kvm) = m.parts_mut();
        kvm.install(vm, Box::new(ProcessSwitchEngine::new()));
        assert!(vm.controls().cr3_load_exiting());
        assert!(kvm.uninstall(vm, "process-switch"));
        assert!(!vm.controls().cr3_load_exiting());
        assert!(!kvm.uninstall(vm, "process-switch"));
        m.run_steps(&mut Switcher, 3);
        assert_eq!(m.hypervisor().forwarded_events(), 0);
    }

    #[test]
    fn table1_aggregates_engine_rows() {
        let mut m = Machine::new(VmConfig::new(1, 1 << 20), Kvm::new());
        let (vm, kvm) = m.parts_mut();
        kvm.install(vm, Box::new(ProcessSwitchEngine::new()));
        kvm.install(vm, Box::new(IntSyscallEngine::new()));
        kvm.install(vm, Box::new(IoEngine::new()));
        let rows = kvm.table1();
        assert_eq!(rows.len(), 1 + 1 + 4);
        assert!(rows.iter().any(|r| r.vm_exit == "CR_ACCESS"));
        assert!(rows.iter().any(|r| r.guest_event == "Programmed I/O"));
    }

    #[test]
    fn engine_names_in_install_order() {
        let mut m = Machine::new(VmConfig::new(1, 1 << 20), Kvm::new());
        let (vm, kvm) = m.parts_mut();
        kvm.install(vm, Box::new(IoEngine::new()));
        kvm.install(vm, Box::new(ProcessSwitchEngine::new()));
        assert_eq!(kvm.engine_names(), vec!["io-access", "process-switch"]);
        assert!(kvm.engine_mut("io-access").is_some());
        assert!(kvm.engine_mut("nope").is_none());
    }

    #[test]
    fn metrics_capture_pipeline_spans_without_changing_delivery() {
        let run = |metrics: bool| {
            let mut m = Machine::new(VmConfig::new(1, 1 << 20), Kvm::new());
            let (vm, kvm) = m.parts_mut();
            kvm.install(vm, Box::new(ProcessSwitchEngine::new()));
            kvm.em.register(Box::new(CountingAuditor::new()));
            kvm.set_metrics_enabled(metrics);
            m.run_steps(&mut Switcher, 5);
            m
        };
        let plain = run(false);
        let instrumented = run(true);
        // Identical observable behaviour...
        assert_eq!(
            plain.hypervisor().forwarded_events(),
            instrumented.hypervisor().forwarded_events()
        );
        assert_eq!(plain.hypervisor().em.stats(), instrumented.hypervisor().em.stats());
        // ...but only the instrumented run recorded spans.
        let mut reg = crate::metrics::MetricsRegistry::new();
        instrumented.hypervisor().collect_metrics(&mut reg);
        let decode = reg.find("hypertap_pipeline_ns", &[("stage", "decode")]).expect("decode span");
        assert_eq!(decode.as_histogram().unwrap().count(), 5);
        assert!(reg.find("hypertap_pipeline_ns", &[("stage", "fanout")]).is_some());
        assert_eq!(
            reg.find("hypertap_ef_forwarded_events_total", &[]).unwrap().as_counter(),
            Some(5)
        );

        let mut plain_reg = crate::metrics::MetricsRegistry::new();
        plain.hypervisor().collect_metrics(&mut plain_reg);
        assert!(plain_reg.find("hypertap_pipeline_ns", &[("stage", "decode")]).is_none());
    }
}
