//! OS-state derivation rooted at architectural invariants — the **trusted**
//! view (paper §IV-B).
//!
//! Instead of starting from guest-kernel globals (which rootkits forge),
//! derivation starts from registers the hardware itself maintains:
//!
//! ```text
//! TR (VMCS)  ──►  TSS  ──►  RSP0 (kernel stack top)
//!                              │ align down to the stack base
//!                              ▼
//!                        thread_info  ──►  task_struct
//! ```
//!
//! Every pointer in that chain is anchored by an architectural invariant
//! (TR/TSS) or by a *layout* convention (stack alignment, field offsets)
//! that cannot be changed without rebuilding the guest kernel. The derived
//! [`TaskView`] therefore identifies the genuinely running task even when
//! the task has been unlinked from every kernel list.

use crate::profile::{OsProfile, TaskView};
use crate::vmi::{self, VmiError};
use hypertap_hvsim::cpu::TSS_RSP0_OFFSET;
use hypertap_hvsim::machine::VmState;
use hypertap_hvsim::mem::{Gpa, GuestMemory, Gva};
use hypertap_hvsim::vcpu::VcpuId;

/// Derives the task currently running on `vcpu`, starting from the trusted
/// TR register.
///
/// # Errors
///
/// Returns [`VmiError`] if any step of the chain fails to translate — which
/// in a healthy guest only happens during early boot, before the kernel has
/// set up its TSS.
pub fn current_task(vm: &VmState, vcpu: VcpuId, profile: &OsProfile) -> Result<TaskView, VmiError> {
    let v = vm.vcpu(vcpu);
    let cr3 = v.cr3();
    let tr = v.tr_base();
    let rsp0 = vmi::read_u64(&vm.mem, cr3, tr.offset(TSS_RSP0_OFFSET))?;
    task_from_kernel_stack(&vm.mem, cr3, profile, rsp0)
}

/// Derives the task owning the kernel stack whose top is `rsp0`. Used with
/// the value carried by a thread-switch event (the RSP0 just written to the
/// TSS), which identifies the task *being switched in*.
///
/// # Errors
///
/// Returns [`VmiError`] if the `thread_info` or `task_struct` reads fail.
pub fn task_from_kernel_stack(
    mem: &GuestMemory,
    cr3: Gpa,
    profile: &OsProfile,
    rsp0: u64,
) -> Result<TaskView, VmiError> {
    let ti = profile.thread_info_base(rsp0);
    let task_gva = Gva::new(vmi::read_u64(mem, cr3, ti.offset(profile.ti_task))?);
    vmi::read_task(mem, cr3, profile, task_gva)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertap_hvsim::exit::{ExitAction, VmExit};
    use hypertap_hvsim::machine::{Hypervisor, Machine, VmConfig};
    use hypertap_hvsim::mem::{Gfn, PAGE_SIZE};
    use hypertap_hvsim::paging::{self, AddressSpaceBuilder, FrameAllocator};

    struct NoHv;
    impl Hypervisor for NoHv {
        fn handle_exit(&mut self, _vm: &mut VmState, _exit: &VmExit) -> ExitAction {
            ExitAction::Resume
        }
    }

    fn profile(head: Gva) -> OsProfile {
        OsProfile {
            task_list_head: head,
            ts_pid: 0,
            ts_state: 8,
            ts_uid: 16,
            ts_euid: 24,
            ts_parent: 32,
            ts_next: 40,
            ts_prev: 48,
            ts_pdba: 56,
            ts_kstack: 64,
            ts_comm: 72,
            ts_comm_len: 16,
            ts_size: 88,
            ti_task: 0,
            kernel_stack_size: 8192,
        }
    }

    /// Builds a VM whose memory contains a TSS, a 2-page kernel stack with a
    /// thread_info at its base, and a task_struct — then points TR at the
    /// TSS, exactly as a booted guest would.
    #[test]
    fn derivation_chain_end_to_end() {
        let mut m = Machine::new(VmConfig::new(1, 32 << 20), NoHv);
        let vm = m.vm_mut();
        let mut falloc = FrameAllocator::new(Gfn::new(16), Gfn::new((32 << 20) / PAGE_SIZE));
        let mut asb = AddressSpaceBuilder::new(&mut vm.mem, &mut falloc);

        let tss = Gva::new(0x3800_0000);
        let stack_base = Gva::new(0x3900_0000); // 8 KiB aligned
        let task = Gva::new(0x3a00_0000);
        let head = Gva::new(0x3b00_0000);
        asb.map_fresh_range(&mut vm.mem, &mut falloc, tss, 1);
        asb.map_fresh_range(&mut vm.mem, &mut falloc, stack_base, 2);
        asb.map_fresh_range(&mut vm.mem, &mut falloc, task, 1);
        asb.map_fresh_range(&mut vm.mem, &mut falloc, head, 1);
        let cr3 = asb.pdba();

        let p = profile(head);
        let rsp0 = stack_base.value() + p.kernel_stack_size; // stack top
        let w = |vm: &mut VmState, gva: Gva, v: u64| {
            let gpa = paging::walk(&vm.mem, cr3, gva).unwrap();
            vm.mem.write_u64(gpa, v);
        };
        // TSS.RSP0 -> stack top; thread_info.task -> task_struct.
        w(vm, tss.offset(TSS_RSP0_OFFSET), rsp0);
        w(vm, stack_base.offset(p.ti_task), task.value());
        w(vm, task.offset(p.ts_pid), 42);
        w(vm, task.offset(p.ts_euid), 0);
        w(vm, task.offset(p.ts_uid), 1000);
        w(vm, task.offset(p.ts_kstack), rsp0);
        let gpa = paging::walk(&vm.mem, cr3, task.offset(p.ts_comm)).unwrap();
        vm.mem.write(gpa, b"exploit\0");

        vm.vcpu_mut(VcpuId(0)).set_cr3(cr3);
        vm.vcpu_mut(VcpuId(0)).set_tr_base(tss);

        let t = current_task(vm, VcpuId(0), &p).unwrap();
        assert_eq!(t.pid, 42);
        assert_eq!(t.comm, "exploit");
        assert!(t.is_root());
        assert_eq!(t.kstack, rsp0);

        // The same task is reachable directly from the RSP0 value, as the
        // thread-switch auditing path does.
        let t2 = task_from_kernel_stack(&vm.mem, cr3, &p, rsp0).unwrap();
        assert_eq!(t2, t);

        // Mid-stack RSP values still resolve (alignment masking).
        let t3 = task_from_kernel_stack(&vm.mem, cr3, &p, rsp0 - 0x123).unwrap();
        assert_eq!(t3.pid, 42);
    }

    #[test]
    fn unmapped_tss_fails_cleanly() {
        let mut m = Machine::new(VmConfig::new(1, 32 << 20), NoHv);
        let vm = m.vm_mut();
        let mut falloc = FrameAllocator::new(Gfn::new(16), Gfn::new((32 << 20) / PAGE_SIZE));
        let asb = AddressSpaceBuilder::new(&mut vm.mem, &mut falloc);
        vm.vcpu_mut(VcpuId(0)).set_cr3(asb.pdba());
        vm.vcpu_mut(VcpuId(0)).set_tr_base(Gva::new(0x3800_0000));
        let p = profile(Gva::new(0x3b00_0000));
        assert!(matches!(current_task(vm, VcpuId(0), &p), Err(VmiError::PageFault(_))));
    }
}
