//! Detection-latency accounting: from injected fault to raised finding.
//!
//! The paper's central quantitative claim (§VIII, Fig. 5) is how fast each
//! auditor turns an architectural-invariant violation into an alert. This
//! module correlates *injection records* (when a fault campaign activated
//! a fault, in simulated time) with the findings the auditors raised and
//! the [`EventRef`] provenance those findings cite, producing per-auditor
//! latency distributions in two units:
//!
//! * **virtual-time nanoseconds** — end-to-end (activation → finding) and
//!   trigger (cited provenance event → finding) latency, and
//! * **exit count** — how many VM exits the logging layer forwarded
//!   between the cited trigger event and the finding, resolved against a
//!   flight-recorder dump via [`EventIndex`].
//!
//! The distributions export as labelled registry histograms and render as
//! a paper-style table (`examples/detection_latency.rs`).

use crate::audit::Finding;
use crate::event::{EventRef, VmId};
use crate::flight::{DumpRecord, FlightDump};
use crate::metrics::{Histogram, MetricsRegistry};
use hypertap_hvsim::clock::{Duration, SimTime};

/// Bucket bounds for detection-latency histograms, simulated nanoseconds:
/// 1 ms up to a minute, matching the paper's GOSHD thresholds (seconds).
pub const DETECTION_BOUNDS_NS: [u64; 10] = [
    1_000_000,
    10_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    4_000_000_000,
    8_000_000_000,
    16_000_000_000,
    60_000_000_000,
];

/// Bucket bounds for exit-count latency histograms.
pub const DETECTION_BOUNDS_EXITS: [u64; 6] = [10, 100, 1_000, 10_000, 100_000, 1_000_000];

/// One fault-campaign activation: the instant the injected fault actually
/// fired in the guest (not when the campaign armed it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionRecord {
    /// What was injected (campaign label, fault site, ...).
    pub label: String,
    /// The VM it was injected into.
    pub vm: VmId,
    /// Simulated activation time.
    pub time: SimTime,
}

/// Resolves [`EventRef`]s to simulated times and counts forwarded events
/// between two instants, built from a flight-recorder dump's retained
/// `Event` records.
#[derive(Debug, Default)]
pub struct EventIndex {
    /// `(seq, time)` ascending by seq.
    seq_times: Vec<(u64, SimTime)>,
    /// Event times ascending (duplicates kept), for exit counting.
    times: Vec<u64>,
}

impl EventIndex {
    /// Indexes every `Event` record retained in `dump`.
    pub fn from_dump(dump: &FlightDump) -> EventIndex {
        let mut seq_times = Vec::new();
        for r in &dump.records {
            if let DumpRecord::Event { seq, time, .. } = r {
                seq_times.push((*seq, *time));
            }
        }
        seq_times.sort_by_key(|(seq, _)| *seq);
        let mut times: Vec<u64> = seq_times.iter().map(|(_, t)| t.as_nanos()).collect();
        times.sort_unstable();
        EventIndex { seq_times, times }
    }

    /// How many events are indexed.
    pub fn len(&self) -> usize {
        self.seq_times.len()
    }

    /// Whether the index holds no events (e.g. the ring had evicted them).
    pub fn is_empty(&self) -> bool {
        self.seq_times.is_empty()
    }

    /// The simulated time of the event `r` refers to, if retained.
    pub fn resolve(&self, r: EventRef) -> Option<SimTime> {
        self.seq_times
            .binary_search_by_key(&r.0, |(seq, _)| *seq)
            .ok()
            .map(|at| self.seq_times[at].1)
    }

    /// Number of indexed events with time in `(after, upto]` — the
    /// exit-count distance from a trigger event to its finding.
    pub fn exits_between(&self, after: SimTime, upto: SimTime) -> u64 {
        let lo = self.times.partition_point(|&t| t <= after.as_nanos());
        let hi = self.times.partition_point(|&t| t <= upto.as_nanos());
        (hi - lo) as u64
    }
}

/// One finding's measured latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySample {
    /// Activation → finding, simulated nanoseconds (None without a
    /// matching injection record, or when the finding predates it).
    pub e2e_ns: Option<u64>,
    /// Cited trigger event → finding, simulated nanoseconds (None when
    /// the finding has no resolvable provenance).
    pub trigger_ns: Option<u64>,
    /// Forwarded events between the trigger and the finding (None without
    /// an [`EventIndex`]).
    pub trigger_exits: Option<u64>,
}

/// Per-auditor detection-latency accumulator.
#[derive(Debug, Default)]
pub struct DetectionLatency {
    per_auditor: Vec<(String, Vec<LatencySample>)>,
}

fn percentile(sorted: &[u64], p: u64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((sorted.len() as u64 - 1) * p) / 100;
    Some(sorted[rank as usize])
}

fn fmt_opt_ns(v: Option<u64>) -> String {
    match v {
        Some(ns) => Duration::from_nanos(ns).to_string(),
        None => "-".to_owned(),
    }
}

impl DetectionLatency {
    /// An empty accumulator.
    pub fn new() -> Self {
        DetectionLatency::default()
    }

    /// Correlates one finding: `injection` is the activation it should be
    /// measured against (already matched by the caller — e.g. the fault
    /// injected into the finding's VM), `index` resolves its provenance.
    /// The last provenance ref is taken as the trigger — auditors append
    /// refs in consideration order, so the last is the decisive event.
    pub fn record(
        &mut self,
        finding: &Finding,
        injection: Option<&InjectionRecord>,
        index: Option<&EventIndex>,
    ) {
        let e2e_ns = injection.and_then(|inj| {
            (finding.time >= inj.time).then(|| finding.time.as_nanos() - inj.time.as_nanos())
        });
        let trigger_time =
            index.and_then(|idx| finding.provenance.iter().rev().find_map(|r| idx.resolve(*r)));
        let trigger_ns = trigger_time
            .and_then(|t| (finding.time >= t).then(|| finding.time.as_nanos() - t.as_nanos()));
        let trigger_exits = match (trigger_time, index) {
            (Some(t), Some(idx)) if finding.time >= t => Some(idx.exits_between(t, finding.time)),
            _ => None,
        };
        self.push(&finding.auditor, LatencySample { e2e_ns, trigger_ns, trigger_exits });
    }

    /// Adds a pre-measured sample for `auditor`.
    pub fn push(&mut self, auditor: &str, sample: LatencySample) {
        match self.per_auditor.iter_mut().find(|(name, _)| name == auditor) {
            Some((_, samples)) => samples.push(sample),
            None => self.per_auditor.push((auditor.to_owned(), vec![sample])),
        }
    }

    /// The auditors seen so far, in first-seen order.
    pub fn auditors(&self) -> Vec<&str> {
        self.per_auditor.iter().map(|(name, _)| name.as_str()).collect()
    }

    /// All samples recorded for one auditor.
    pub fn samples(&self, auditor: &str) -> &[LatencySample] {
        self.per_auditor.iter().find(|(name, _)| name == auditor).map_or(&[], |(_, s)| s.as_slice())
    }

    fn sorted_values(
        &self,
        auditor: &str,
        pick: impl Fn(&LatencySample) -> Option<u64>,
    ) -> Vec<u64> {
        let mut vals: Vec<u64> = self.samples(auditor).iter().filter_map(pick).collect();
        vals.sort_unstable();
        vals
    }

    /// Median trigger latency (cited event → finding) for `auditor`.
    pub fn median_trigger_ns(&self, auditor: &str) -> Option<u64> {
        percentile(&self.sorted_values(auditor, |s| s.trigger_ns), 50)
    }

    /// Median end-to-end latency (activation → finding) for `auditor`.
    pub fn median_e2e_ns(&self, auditor: &str) -> Option<u64> {
        percentile(&self.sorted_values(auditor, |s| s.e2e_ns), 50)
    }

    /// Exports every auditor's distributions as labelled histograms:
    /// `hypertap_detection_latency_ns{auditor,kind}` (kind `e2e`/`trigger`)
    /// and `hypertap_detection_latency_exits{auditor}`.
    pub fn collect_metrics(&self, reg: &mut MetricsRegistry) {
        for (auditor, samples) in &self.per_auditor {
            let mut e2e = Histogram::new(&DETECTION_BOUNDS_NS);
            let mut trig = Histogram::new(&DETECTION_BOUNDS_NS);
            let mut exits = Histogram::new(&DETECTION_BOUNDS_EXITS);
            for s in samples {
                if let Some(v) = s.e2e_ns {
                    e2e.observe(v);
                }
                if let Some(v) = s.trigger_ns {
                    trig.observe(v);
                }
                if let Some(v) = s.trigger_exits {
                    exits.observe(v);
                }
            }
            if !e2e.is_empty() {
                reg.histogram_with(
                    "hypertap_detection_latency_ns",
                    &[("auditor", auditor), ("kind", "e2e")],
                    "fault activation to finding, simulated nanoseconds",
                    &e2e,
                );
            }
            if !trig.is_empty() {
                reg.histogram_with(
                    "hypertap_detection_latency_ns",
                    &[("auditor", auditor), ("kind", "trigger")],
                    "cited trigger event to finding, simulated nanoseconds",
                    &trig,
                );
            }
            if !exits.is_empty() {
                reg.histogram_with(
                    "hypertap_detection_latency_exits",
                    &[("auditor", auditor)],
                    "forwarded events between trigger and finding",
                    &exits,
                );
            }
        }
    }

    /// Renders the paper-style per-auditor table (Fig. 5's summary form):
    /// sample count, e2e and trigger percentiles, and the median exit
    /// distance.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>4}  {:>10} {:>10} {:>10}  {:>10} {:>10}  {:>9}\n",
            "auditor", "n", "e2e p50", "e2e p90", "e2e max", "trig p50", "trig p90", "exits p50"
        ));
        for (auditor, samples) in &self.per_auditor {
            let e2e = self.sorted_values(auditor, |s| s.e2e_ns);
            let trig = self.sorted_values(auditor, |s| s.trigger_ns);
            let exits = self.sorted_values(auditor, |s| s.trigger_exits);
            out.push_str(&format!(
                "{:<10} {:>4}  {:>10} {:>10} {:>10}  {:>10} {:>10}  {:>9}\n",
                auditor,
                samples.len(),
                fmt_opt_ns(percentile(&e2e, 50)),
                fmt_opt_ns(percentile(&e2e, 90)),
                fmt_opt_ns(e2e.last().copied()),
                fmt_opt_ns(percentile(&trig, 50)),
                fmt_opt_ns(percentile(&trig, 90)),
                percentile(&exits, 50).map_or("-".to_owned(), |v| v.to_string()),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::Severity;
    use crate::event::EventClass;
    use crate::flight::FLIGHT_VERSION;

    fn dump_with_events(times_ns: &[u64]) -> FlightDump {
        FlightDump {
            version: FLIGHT_VERSION,
            reason: "test".to_owned(),
            capacity: 256,
            next_seq: times_ns.len() as u64,
            dropped: 0,
            records: times_ns
                .iter()
                .enumerate()
                .map(|(seq, &t)| DumpRecord::Event {
                    seq: seq as u64,
                    time: SimTime::from_nanos(t),
                    vm: VmId(0),
                    vcpu: 0,
                    class: EventClass::ProcessSwitch,
                    detail: String::new(),
                })
                .collect(),
        }
    }

    #[test]
    fn index_resolves_refs_and_counts_exits() {
        let idx = EventIndex::from_dump(&dump_with_events(&[100, 200, 300, 400, 500]));
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.resolve(EventRef(2)), Some(SimTime::from_nanos(300)));
        assert_eq!(idx.resolve(EventRef(9)), None, "evicted/unknown seq");
        // (200, 450]: events at 300 and 400.
        assert_eq!(idx.exits_between(SimTime::from_nanos(200), SimTime::from_nanos(450)), 2);
        assert_eq!(idx.exits_between(SimTime::from_nanos(500), SimTime::from_nanos(999)), 0);
    }

    #[test]
    fn record_measures_e2e_and_trigger_latency() {
        let idx = EventIndex::from_dump(&dump_with_events(&[100, 200, 300, 400, 500]));
        let inj = InjectionRecord {
            label: "missing-unlock".to_owned(),
            vm: VmId(0),
            time: SimTime::from_nanos(150),
        };
        let finding = Finding::new("goshd", SimTime::from_nanos(450), Severity::Alert, "hang")
            .with_provenance(vec![EventRef(0), EventRef(1)]);
        let mut lat = DetectionLatency::new();
        lat.record(&finding, Some(&inj), Some(&idx));
        let s = lat.samples("goshd")[0];
        assert_eq!(s.e2e_ns, Some(300), "450 - 150");
        assert_eq!(s.trigger_ns, Some(250), "last ref #1 at 200");
        assert_eq!(s.trigger_exits, Some(2), "events at 300 and 400 in (200, 450]");
        assert_eq!(lat.median_trigger_ns("goshd"), Some(250));
        assert_eq!(lat.median_e2e_ns("goshd"), Some(300));
    }

    #[test]
    fn unresolvable_provenance_and_missing_injection_degrade_gracefully() {
        let mut lat = DetectionLatency::new();
        let finding = Finding::new("hrkd", SimTime::from_nanos(10), Severity::Warning, "x")
            .with_provenance(vec![EventRef(77)]);
        lat.record(&finding, None, Some(&EventIndex::from_dump(&dump_with_events(&[1]))));
        let s = lat.samples("hrkd")[0];
        assert_eq!(s.e2e_ns, None);
        assert_eq!(s.trigger_ns, None);
        assert_eq!(s.trigger_exits, None);
        assert!(lat.render_table().contains("hrkd"));
    }

    #[test]
    fn metrics_export_labels_by_auditor_and_kind() {
        let idx = EventIndex::from_dump(&dump_with_events(&[100, 200]));
        let inj =
            InjectionRecord { label: "f".to_owned(), vm: VmId(0), time: SimTime::from_nanos(50) };
        let finding = Finding::new("goshd", SimTime::from_nanos(400), Severity::Alert, "hang")
            .with_provenance(vec![EventRef(0)]);
        let mut lat = DetectionLatency::new();
        lat.record(&finding, Some(&inj), Some(&idx));
        let mut reg = MetricsRegistry::new();
        lat.collect_metrics(&mut reg);
        let e2e = reg
            .find("hypertap_detection_latency_ns", &[("auditor", "goshd"), ("kind", "e2e")])
            .expect("e2e histogram exported")
            .as_histogram()
            .unwrap();
        assert_eq!(e2e.count(), 1);
        assert!(reg.find("hypertap_detection_latency_exits", &[("auditor", "goshd")]).is_some());
    }

    #[test]
    fn table_lists_auditors_in_first_seen_order() {
        let mut lat = DetectionLatency::new();
        lat.push("goshd", LatencySample { e2e_ns: Some(2_000_000_000), ..Default::default() });
        lat.push("hrkd", LatencySample { e2e_ns: Some(5_000_000), ..Default::default() });
        lat.push("goshd", LatencySample { e2e_ns: Some(2_001_000_000), ..Default::default() });
        let table = lat.render_table();
        let goshd_at = table.find("goshd").unwrap();
        let hrkd_at = table.find("hrkd").unwrap();
        assert!(goshd_at < hrkd_at);
        assert!(table.contains("2.001s") || table.contains("2.000s"), "{table}");
    }
}
