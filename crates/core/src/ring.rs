//! Fixed-capacity ring buffer between exit-pipeline stages.
//!
//! The batched exit pipeline ([`crate::kvm::Kvm`]) stages decoded events in
//! a [`Ring`] between its decode stage (interception engines emitting
//! [`crate::event::EventKind`]s) and its delivery stage (the Event
//! Multiplexer fanning a whole batch out to the auditors). The ring is the
//! classic single-producer/single-consumer shape: the decode stage only
//! pushes at the tail, the delivery stage only pops at the head, and
//! capacity is fixed at construction so the steady state never allocates.
//! Both stages run on the VM's own thread (delivery must stay synchronous
//! for suppression semantics — see the determinism argument in DESIGN.md),
//! so no atomics are needed; the contract a cross-thread SPSC queue would
//! enforce with acquire/release pairs is enforced here by `&mut` borrows.
//!
//! Wraparound is exercised continuously in production use: the head keeps
//! advancing across batches, so batch contents regularly straddle the
//! physical end of the buffer. [`Ring::as_slices`] exposes exactly that
//! split — a wrapped batch comes back as two contiguous runs, which the EM
//! consumes without copying events out of the buffer.
//!
//! Backpressure is explicit: [`Ring::try_push`] refuses instead of growing
//! or overwriting, every refusal is counted, and the pipeline exports the
//! counters through the metrics registry (`hypertap_ring_*` series).

use std::collections::VecDeque;

/// Producer/consumer counters of one ring, for the metrics exporter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Items accepted at the tail over the ring's lifetime.
    pub pushed: u64,
    /// Items consumed at the head over the ring's lifetime.
    pub popped: u64,
    /// Push attempts refused because the ring was full — each refusal is a
    /// backpressure event the producer had to handle (the exit pipeline
    /// responds by flushing the staged batch to the EM early).
    pub rejected: u64,
    /// The largest occupancy ever observed.
    pub high_watermark: u64,
}

/// A fixed-capacity FIFO ring. Never grows, never overwrites: a push into a
/// full ring is refused and counted.
///
/// Backed by a [`VecDeque`] whose buffer is reserved once at construction —
/// a `VecDeque` *is* a head/tail ring; this wrapper pins its capacity,
/// exposes batch push/pop with wraparound-safe slice access, and keeps the
/// backpressure accounting the pipeline exports.
#[derive(Debug)]
pub struct Ring<T> {
    buf: VecDeque<T>,
    capacity: usize,
    stats: RingStats,
}

impl<T> Ring<T> {
    /// A ring holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Ring { buf: VecDeque::with_capacity(capacity), capacity, stats: RingStats::default() }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently staged.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the ring is full (the next push would be refused).
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.capacity - self.buf.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> RingStats {
        self.stats
    }

    /// Overwrites the lifetime counters. Used by snapshot restore: staged
    /// contents are always drained before a snapshot is taken, so only the
    /// counters carry across.
    pub fn restore_stats(&mut self, stats: RingStats) {
        self.stats = stats;
    }

    /// Pushes one item at the tail. A full ring refuses and returns the
    /// item, counting the rejection.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            self.stats.rejected += 1;
            return Err(item);
        }
        self.buf.push_back(item);
        self.stats.pushed += 1;
        self.stats.high_watermark = self.stats.high_watermark.max(self.buf.len() as u64);
        Ok(())
    }

    /// Pops one item from the head.
    pub fn try_pop(&mut self) -> Option<T> {
        let item = self.buf.pop_front();
        if item.is_some() {
            self.stats.popped += 1;
        }
        item
    }

    /// The staged batch as (up to) two contiguous runs in FIFO order — the
    /// second run is non-empty exactly when the batch straddles the
    /// physical end of the buffer. Consuming from these slices is zero-copy;
    /// pair with [`Ring::consume`] once the items have been processed.
    pub fn as_slices(&self) -> (&[T], &[T]) {
        self.buf.as_slices()
    }

    /// Drops the `n` oldest staged items (they were processed in place via
    /// [`Ring::as_slices`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the staged count.
    pub fn consume(&mut self, n: usize) {
        assert!(n <= self.buf.len(), "consume({n}) exceeds staged count {}", self.buf.len());
        // pop_front (not drain): a full-range drain would snap the head
        // back to slot 0, and the ring would never physically wrap.
        for _ in 0..n {
            self.buf.pop_front();
        }
        self.stats.popped += n as u64;
    }

    /// Pops up to `max` items from the head into `out` (appending), in FIFO
    /// order. Returns how many were moved.
    pub fn pop_into(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let n = max.min(self.buf.len());
        for _ in 0..n {
            out.push(self.buf.pop_front().expect("n bounded by len"));
        }
        self.stats.popped += n as u64;
        n
    }

    /// Discards everything staged without counting it as consumed work
    /// (used on teardown; counted separately from `popped`).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl<T: Copy> Ring<T> {
    /// Pushes as many items from `items` as fit, in order, returning how
    /// many were accepted. A partial acceptance counts one rejection (the
    /// batch hit backpressure once, however many items were left over).
    pub fn push_slice(&mut self, items: &[T]) -> usize {
        let n = items.len().min(self.free());
        self.buf.extend(items[..n].iter().copied());
        self.stats.pushed += n as u64;
        self.stats.high_watermark = self.stats.high_watermark.max(self.buf.len() as u64);
        if n < items.len() {
            self.stats.rejected += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let mut r = Ring::new(4);
        for i in 0..4 {
            assert!(r.try_push(i).is_ok());
        }
        assert!(r.is_full());
        assert_eq!(r.try_push(99), Err(99));
        assert_eq!(r.stats().rejected, 1);
        assert_eq!((0..4).map(|_| r.try_pop().unwrap()).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(r.is_empty());
        assert_eq!(r.try_pop(), None);
        let s = r.stats();
        assert_eq!((s.pushed, s.popped, s.high_watermark), (4, 4, 4));
    }

    #[test]
    fn slices_straddle_the_edge_after_wraparound() {
        // The VecDeque may reserve more physical slots than the logical
        // capacity, so the wrap point isn't at a fixed offset — keep the
        // head advancing with mixed push/consume sizes until a staged
        // batch straddles it, checking FIFO order against a model.
        let mut r = Ring::new(4);
        let mut model = VecDeque::new();
        let mut next = 0u32;
        let mut straddled = false;
        for i in 0..200usize {
            for _ in 0..(i % 3) + 1 {
                if r.try_push(next).is_ok() {
                    model.push_back(next);
                }
                next += 1;
            }
            let (a, b) = r.as_slices();
            straddled |= !b.is_empty();
            let got: Vec<u32> = a.iter().chain(b).copied().collect();
            let want: Vec<u32> = model.iter().copied().collect();
            assert_eq!(got, want, "FIFO order across the physical split");
            let pop = (i * 7) % (r.len() + 1);
            r.consume(pop);
            for _ in 0..pop {
                model.pop_front();
            }
        }
        assert!(straddled, "head never wrapped a 4-slot ring in 200 mixed cycles");
    }

    #[test]
    fn partial_push_slice_counts_one_rejection() {
        let mut r = Ring::new(3);
        assert_eq!(r.push_slice(&[1, 2, 3, 4, 5]), 3);
        assert_eq!(r.stats().rejected, 1);
        assert_eq!(r.stats().pushed, 3);
        let mut out = Vec::new();
        assert_eq!(r.pop_into(&mut out, 10), 3);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_refused() {
        let _ = Ring::<u8>::new(0);
    }

    #[test]
    #[should_panic(expected = "exceeds staged count")]
    fn over_consume_is_refused() {
        let mut r = Ring::new(2);
        r.try_push(1u8).unwrap();
        r.consume(2);
    }
}
