//! The unified event model shared by every RnS monitor.
//!
//! HyperTap's central observation is that reliability monitors and security
//! monitors can consume the *same* logged events even though they audit them
//! under different policies. The [`Event`] type is that common currency: a
//! typed guest operation (decoded from one or more VM Exits by an
//! interception engine) plus the trusted hardware state captured at the exit.
//!
//! Events are grouped into [`EventClass`]es so auditors can subscribe to the
//! granularity they need (paper §V-B: "an auditor starts by registering for
//! a set of events needed to enforce its policy").

use hypertap_hvsim::clock::SimTime;
use hypertap_hvsim::ept::AccessKind;
use hypertap_hvsim::exit::VcpuSnapshot;
use hypertap_hvsim::mem::{Gpa, Gva};
use hypertap_hvsim::vcpu::VcpuId;
use std::fmt;

/// Identifier of a monitored VM. The reproduction drives one VM per
/// machine, but the event model keeps the id so multi-VM auditors (one
/// auditing container per VM, as in the paper's Fig. 2) stay expressible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VmId(pub u32);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// Position of one forwarded event in a VM's pre-filter event stream.
///
/// The Event Multiplexer assigns refs in arrival order starting at `#0`,
/// at the same boundary where an [`crate::em::EventTap`] observes the
/// stream. Because a recorded HTRC trace captures exactly that stream, an
/// `EventRef` doubles as the index of the event among a trace's event
/// records — replaying a trace reproduces every ref bit-for-bit, and a
/// [`crate::audit::Finding`]'s provenance can be resolved against either
/// the in-memory flight recorder or the trace on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventRef(pub u64);

impl fmt::Display for EventRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Which architectural gate a system call came through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallGate {
    /// A software interrupt (e.g. `INT 0x80` on Linux, `INT 0x2E` on
    /// Windows) — intercepted via the exception bitmap (Fig. 3D).
    Interrupt(u8),
    /// `SYSENTER` — intercepted via WRMSR tracking plus execute-protection
    /// of the entry page (Fig. 3E).
    Sysenter,
}

impl fmt::Display for SyscallGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyscallGate::Interrupt(v) => write!(f, "int {v:#x}"),
            SyscallGate::Sysenter => f.write_str("sysenter"),
        }
    }
}

/// A decoded guest operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The guest loaded a new Page-Directory Base Address into CR3: a
    /// process context switch.
    ProcessSwitch {
        /// The PDBA being loaded — the architectural process identifier.
        new_pdba: Gpa,
    },
    /// The guest rewrote `TSS.RSP0`: a thread switch. The kernel stack
    /// pointer is the architectural thread identifier.
    ThreadSwitch {
        /// The new ring-0 stack pointer (thread identifier).
        kernel_stack: u64,
    },
    /// A system call entered the kernel.
    Syscall {
        /// Which gate it used.
        gate: SyscallGate,
        /// The system-call number (from RAX).
        number: u64,
        /// Up to five register-carried arguments (RBX, RCX, RDX, RSI, RDI).
        args: [u64; 5],
    },
    /// A port I/O instruction.
    IoPort {
        /// The port accessed.
        port: u16,
        /// True for `OUT`.
        write: bool,
        /// The value written (writes only).
        value: u64,
    },
    /// A memory-mapped I/O access.
    MmioAccess {
        /// The guest-physical address inside the MMIO window.
        gpa: Gpa,
        /// True for writes.
        write: bool,
    },
    /// A hardware interrupt was delivered to the guest.
    HardwareInterrupt {
        /// Interrupt vector.
        vector: u8,
    },
    /// An APIC register access.
    ApicAccess {
        /// Register offset within the APIC page.
        offset: u16,
    },
    /// A fine-grained watched memory access (paper §VI-D).
    MemoryAccess {
        /// Guest-physical address.
        gpa: Gpa,
        /// Guest-virtual address, when known.
        gva: Option<Gva>,
        /// Access kind.
        access: AccessKind,
        /// Written value, for small writes.
        value: Option<u64>,
    },
    /// Integrity alarm: the saved TR no longer matches the value recorded at
    /// boot — somebody relocated a TSS (Fig. 3C).
    TssRelocated {
        /// TR base recorded when the guest finished booting.
        expected: Gva,
        /// TR base observed now.
        found: Gva,
    },
}

impl EventKind {
    /// The class used for subscription filtering.
    pub fn class(&self) -> EventClass {
        match self {
            EventKind::ProcessSwitch { .. } => EventClass::ProcessSwitch,
            EventKind::ThreadSwitch { .. } => EventClass::ThreadSwitch,
            EventKind::Syscall { .. } => EventClass::Syscall,
            EventKind::IoPort { .. } | EventKind::MmioAccess { .. } => EventClass::Io,
            EventKind::HardwareInterrupt { .. } | EventKind::ApicAccess { .. } => {
                EventClass::Interrupt
            }
            EventKind::MemoryAccess { .. } => EventClass::Memory,
            EventKind::TssRelocated { .. } => EventClass::Integrity,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::ProcessSwitch { new_pdba } => write!(f, "process switch -> {new_pdba}"),
            EventKind::ThreadSwitch { kernel_stack } => {
                write!(f, "thread switch -> rsp0 {kernel_stack:#x}")
            }
            EventKind::Syscall { gate, number, .. } => write!(f, "syscall {number} via {gate}"),
            EventKind::IoPort { port, write, .. } => {
                write!(f, "pio {} port {port:#x}", if *write { "out" } else { "in" })
            }
            EventKind::MmioAccess { gpa, write } => {
                write!(f, "mmio {} {gpa}", if *write { "write" } else { "read" })
            }
            EventKind::HardwareInterrupt { vector } => write!(f, "irq {vector:#x}"),
            EventKind::ApicAccess { offset } => write!(f, "apic access {offset:#x}"),
            EventKind::MemoryAccess { gpa, access, .. } => write!(f, "watched {access} {gpa}"),
            EventKind::TssRelocated { expected, found } => {
                write!(f, "TSS relocated: expected {expected}, found {found}")
            }
        }
    }
}

/// Coarse event classes for subscriptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventClass {
    /// Process context switches (CR3 loads).
    ProcessSwitch,
    /// Thread switches (TSS.RSP0 writes).
    ThreadSwitch,
    /// System calls.
    Syscall,
    /// Port and memory-mapped I/O.
    Io,
    /// Hardware interrupts and APIC traffic.
    Interrupt,
    /// Fine-grained watched memory accesses.
    Memory,
    /// Integrity alarms from the logging layer itself.
    Integrity,
}

impl EventClass {
    /// All classes.
    pub const ALL: [EventClass; 7] = [
        EventClass::ProcessSwitch,
        EventClass::ThreadSwitch,
        EventClass::Syscall,
        EventClass::Io,
        EventClass::Interrupt,
        EventClass::Memory,
        EventClass::Integrity,
    ];

    /// Dense index of the class in [`EventClass::ALL`] order — the key into
    /// the EM's precomputed routing table.
    pub fn index(self) -> usize {
        match self {
            EventClass::ProcessSwitch => 0,
            EventClass::ThreadSwitch => 1,
            EventClass::Syscall => 2,
            EventClass::Io => 3,
            EventClass::Interrupt => 4,
            EventClass::Memory => 5,
            EventClass::Integrity => 6,
        }
    }

    fn bit(self) -> u16 {
        match self {
            EventClass::ProcessSwitch => 1 << 0,
            EventClass::ThreadSwitch => 1 << 1,
            EventClass::Syscall => 1 << 2,
            EventClass::Io => 1 << 3,
            EventClass::Interrupt => 1 << 4,
            EventClass::Memory => 1 << 5,
            EventClass::Integrity => 1 << 6,
        }
    }
}

impl fmt::Display for EventClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EventClass::ProcessSwitch => "process-switch",
            EventClass::ThreadSwitch => "thread-switch",
            EventClass::Syscall => "syscall",
            EventClass::Io => "io",
            EventClass::Interrupt => "interrupt",
            EventClass::Memory => "memory",
            EventClass::Integrity => "integrity",
        })
    }
}

/// A set of [`EventClass`]es — an auditor's subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EventMask(u16);

impl EventMask {
    /// The empty subscription.
    pub const NONE: EventMask = EventMask(0);
    /// Every event class.
    pub const ALL: EventMask = EventMask(0x7F);

    /// A mask containing exactly one class.
    pub const fn only(class: EventClass) -> EventMask {
        // `bit` is not const-callable through the method; inline the match.
        EventMask(match class {
            EventClass::ProcessSwitch => 1 << 0,
            EventClass::ThreadSwitch => 1 << 1,
            EventClass::Syscall => 1 << 2,
            EventClass::Io => 1 << 3,
            EventClass::Interrupt => 1 << 4,
            EventClass::Memory => 1 << 5,
            EventClass::Integrity => 1 << 6,
        })
    }

    /// This mask extended with another class.
    pub const fn with(self, class: EventClass) -> EventMask {
        EventMask(self.0 | EventMask::only(class).0)
    }

    /// The union of two masks — used by the EM to pre-compute the combined
    /// subscription of every registered auditor and container.
    pub const fn union(self, other: EventMask) -> EventMask {
        EventMask(self.0 | other.0)
    }

    /// Whether the mask contains a class.
    pub fn contains(self, class: EventClass) -> bool {
        self.0 & class.bit() != 0
    }

    /// Whether the mask is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl FromIterator<EventClass> for EventMask {
    fn from_iter<I: IntoIterator<Item = EventClass>>(iter: I) -> Self {
        iter.into_iter().fold(EventMask::NONE, EventMask::with)
    }
}

/// One logged event: a decoded guest operation plus the trusted hardware
/// state captured when the triggering VM Exit fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The VM the event came from.
    pub vm: VmId,
    /// The vCPU that performed the operation.
    pub vcpu: VcpuId,
    /// Simulated time at which the operation was intercepted.
    pub time: SimTime,
    /// The decoded operation.
    pub kind: EventKind,
    /// Trusted architectural state at the exit (the root of trust for any
    /// OS-state derivation the auditor performs).
    pub state: VcpuSnapshot,
}

impl Event {
    /// The event's class.
    pub fn class(&self) -> EventClass {
        self.kind.class()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {} {}] {}", self.time, self.vm, self.vcpu, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_only_and_with() {
        let m = EventMask::only(EventClass::Syscall).with(EventClass::Io);
        assert!(m.contains(EventClass::Syscall));
        assert!(m.contains(EventClass::Io));
        assert!(!m.contains(EventClass::ProcessSwitch));
        assert!(!m.is_empty());
        assert!(EventMask::NONE.is_empty());
    }

    #[test]
    fn mask_all_covers_every_class() {
        for c in EventClass::ALL {
            assert!(EventMask::ALL.contains(c), "ALL should contain {c}");
        }
    }

    #[test]
    fn mask_union() {
        let a = EventMask::only(EventClass::Syscall);
        let b = EventMask::only(EventClass::Io);
        let u = a.union(b);
        assert!(u.contains(EventClass::Syscall));
        assert!(u.contains(EventClass::Io));
        assert!(!u.contains(EventClass::Memory));
        assert_eq!(EventMask::NONE.union(EventMask::NONE), EventMask::NONE);
    }

    #[test]
    fn mask_from_iterator() {
        let m: EventMask = [EventClass::Memory, EventClass::Integrity].into_iter().collect();
        assert!(m.contains(EventClass::Memory));
        assert!(m.contains(EventClass::Integrity));
        assert!(!m.contains(EventClass::Syscall));
    }

    #[test]
    fn kinds_map_to_classes() {
        assert_eq!(
            EventKind::ProcessSwitch { new_pdba: Gpa::new(0) }.class(),
            EventClass::ProcessSwitch
        );
        assert_eq!(EventKind::ThreadSwitch { kernel_stack: 0 }.class(), EventClass::ThreadSwitch);
        assert_eq!(
            EventKind::Syscall { gate: SyscallGate::Sysenter, number: 1, args: [0; 5] }.class(),
            EventClass::Syscall
        );
        assert_eq!(EventKind::IoPort { port: 0, write: false, value: 0 }.class(), EventClass::Io);
        assert_eq!(EventKind::MmioAccess { gpa: Gpa::new(0), write: true }.class(), EventClass::Io);
        assert_eq!(EventKind::HardwareInterrupt { vector: 3 }.class(), EventClass::Interrupt);
        assert_eq!(
            EventKind::MemoryAccess {
                gpa: Gpa::new(0),
                gva: None,
                access: AccessKind::Read,
                value: None
            }
            .class(),
            EventClass::Memory
        );
        assert_eq!(
            EventKind::TssRelocated { expected: Gva::new(0), found: Gva::new(1) }.class(),
            EventClass::Integrity
        );
    }

    #[test]
    fn class_index_matches_all_order() {
        for (i, c) in EventClass::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i, "{c} should sit at routing slot {i}");
        }
    }

    #[test]
    fn display_is_informative() {
        let k = EventKind::Syscall { gate: SyscallGate::Interrupt(0x80), number: 5, args: [0; 5] };
        assert_eq!(k.to_string(), "syscall 5 via int 0x80");
        assert_eq!(VmId(2).to_string(), "vm2");
    }
}
