//! Fleet monitoring: many independent monitored VMs sharded over workers.
//!
//! The paper pitches HyperTap as a *cloud-side* framework — one
//! hypervisor-level logging layer covering every guest on a host — yet a
//! single [`crate::kvm::Kvm`] monitors a single VM. This module adds the
//! fleet layer: a [`FleetHost`] owns N independent simulated VMs (each with
//! its own `VmState`, `Kvm`, `EventMultiplexer` and monitor set, keyed by
//! [`VmId`]), shards them across a configurable pool of worker threads, and
//! steps them in deterministic per-VM order. A [`FleetAggregator`] merges
//! the per-VM [`DeliveryStats`], findings (tagged by [`VmId`]) and
//! [`MetricsRegistry`] snapshots into one host-wide view.
//!
//! # Determinism contract
//!
//! Fleet VMs are **fully independent**: no simulated state is shared
//! between them, and the host hands every VM the *same* slice schedule —
//! build, then repeat [`FleetVm::step_slice`] until [`SliceOutcome::Done`]
//! — regardless of how many workers the fleet runs on. Worker count only
//! changes which host thread a VM's slices execute on, never what a slice
//! does, so a fleet run with any worker count produces bit-identical
//! per-VM findings, metrics-free observables and trace recordings to
//! running each VM alone ([`run_vm_alone`]). The replay crate's fleet
//! conformance suite and the fleet determinism proptest enforce this.
//!
//! # Sharding model
//!
//! Static modulo sharding: worker `w` of `W` owns every VM whose id `i`
//! satisfies `i % W == w`, builds its VMs in ascending id order, then
//! round-robins one slice per live VM (ascending id order) until all are
//! done. There is no work stealing — rebalancing would not change any
//! per-VM result (slices are per-VM), but static shards keep the schedule
//! trivially auditable and the worker→VM map reproducible in logs.

use crate::audit::Finding;
use crate::em::DeliveryStats;
use crate::event::VmId;
use crate::flight::panic_message;
use crate::metrics::MetricsRegistry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// What one scheduling slice did to a fleet VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceOutcome {
    /// The VM consumed the slice and wants more.
    Running,
    /// The VM is finished (campaign deadline reached, guest shut down, or
    /// nothing can ever run again). The host will call [`FleetVm::finish`]
    /// and never step it again.
    Done,
}

/// One monitored VM as the fleet host drives it.
///
/// Implementations are built *on* a worker thread by
/// [`FleetWorkload::build_vm`] and never cross threads afterwards, so the
/// trait deliberately has no `Send` bound — a `TapVm` (whose guest kernel
/// holds non-`Send` program factories) qualifies.
pub trait FleetVm {
    /// Advances the VM by one scheduling slice of simulated time.
    fn step_slice(&mut self) -> SliceOutcome;

    /// Drains the VM into its report. Called exactly once per VM — after
    /// [`SliceOutcome::Done`], or early when the fleet is stopped.
    fn finish(&mut self) -> VmReport;

    /// Serializes the VM's flight recorder (`.htfr` bytes) for a failure
    /// dump, or `None` when the VM has no recorder. Called best-effort
    /// after [`FleetVm::step_slice`] panics, before the failure is
    /// rethrown on the host.
    fn flight_dump(&mut self, _reason: &str) -> Option<Vec<u8>> {
        None
    }
}

/// A recipe for the fleet's VMs: called once per [`VmId`], *on the worker
/// thread that owns the VM*.
///
/// # Determinism
///
/// `build_vm` must be a pure function of the `VmId` (plus the workload's
/// own immutable configuration). Anything else — host clocks, shared
/// mutable state, ambient randomness — would break the fleet determinism
/// contract, because worker count changes *when* and *where* each VM is
/// built.
pub trait FleetWorkload: Send + Sync {
    /// Builds the VM with the given id.
    fn build_vm(&self, vm: VmId) -> Box<dyn FleetVm>;
}

/// Everything one fleet VM produced, drained when the VM finishes.
#[derive(Debug, Clone)]
pub struct VmReport {
    /// Which VM this is.
    pub vm: VmId,
    /// Every finding its monitors raised, in delivery order.
    pub findings: Vec<Finding>,
    /// Its Event Multiplexer's delivery counters.
    pub stats: DeliveryStats,
    /// Its full metrics snapshot (simulator + EF + EM layers).
    pub metrics: MetricsRegistry,
    /// Whether the guest halted (shutdown/pause/wedge) before its campaign
    /// deadline.
    pub halted: bool,
    /// Opaque extra payload — e.g. the replay crate stores the VM's
    /// encoded HTRC trace here. Empty when unused.
    pub payload: Vec<u8>,
}

/// Fleet shape: how many VMs over how many workers.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of VMs, ids `0..vms`.
    pub vms: usize,
    /// Requested worker threads (clamped to `1..=vms`; a zero-VM fleet
    /// spawns no workers at all).
    pub workers: usize,
}

impl FleetConfig {
    /// A fleet of `vms` VMs over `workers` threads.
    pub fn new(vms: usize, workers: usize) -> Self {
        FleetConfig { vms, workers }
    }

    /// The worker count actually spawned.
    pub fn effective_workers(&self) -> usize {
        self.workers.max(1).min(self.vms)
    }
}

/// The collected result of a fleet run: per-VM reports in ascending
/// [`VmId`] order.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// One report per VM, sorted by id.
    pub per_vm: Vec<VmReport>,
}

impl FleetReport {
    /// Merges every per-VM report into one aggregate view.
    pub fn aggregate(&self) -> FleetAggregator {
        let mut agg = FleetAggregator::new();
        for r in &self.per_vm {
            agg.absorb(r);
        }
        agg
    }
}

/// A running fleet: worker threads stepping their VM shards.
///
/// Always joins its workers — via [`FleetHost::join`], [`FleetHost::stop`]
/// or `Drop` — so a fleet can never leak threads (the same lifecycle
/// discipline as `RhcServer::stop`).
pub struct FleetHost {
    handles: Vec<JoinHandle<Result<Vec<VmReport>, WorkerFailure>>>,
    stop: Arc<AtomicBool>,
    cfg: FleetConfig,
}

/// Why a worker abandoned its shard: one VM's slice panicked. The worker
/// grabs the VM's flight-recorder dump before unwinding so the host can
/// reference it in the rethrown error.
struct WorkerFailure {
    vm: VmId,
    message: String,
    dump: Option<Vec<u8>>,
}

impl FleetHost {
    /// Launches the fleet: spawns the worker pool and starts stepping.
    pub fn launch(workload: Arc<dyn FleetWorkload>, cfg: FleetConfig) -> FleetHost {
        let stop = Arc::new(AtomicBool::new(false));
        let workers = cfg.effective_workers();
        let mut handles = Vec::new();
        if cfg.vms > 0 {
            for w in 0..workers {
                let shard: Vec<VmId> =
                    (w..cfg.vms).step_by(workers).map(|i| VmId(i as u32)).collect();
                let workload = Arc::clone(&workload);
                let stop = Arc::clone(&stop);
                let handle = std::thread::Builder::new()
                    .name(format!("fleet-worker-{w}"))
                    .spawn(move || worker_loop(&shard, &*workload, &stop))
                    .expect("spawn fleet worker");
                handles.push(handle);
            }
        }
        FleetHost { handles, stop, cfg }
    }

    /// The fleet's shape.
    pub fn config(&self) -> FleetConfig {
        self.cfg
    }

    /// Number of worker threads actually spawned.
    pub fn worker_count(&self) -> usize {
        self.handles.len()
    }

    /// Waits for every VM to finish and returns the per-VM reports in
    /// ascending [`VmId`] order.
    pub fn join(mut self) -> FleetReport {
        let mut per_vm = Vec::with_capacity(self.cfg.vms);
        for handle in std::mem::take(&mut self.handles) {
            match handle.join() {
                Ok(Ok(reports)) => per_vm.extend(reports),
                Ok(Err(failure)) => {
                    let mut msg = format!(
                        "fleet worker panicked stepping {}: {}",
                        failure.vm, failure.message
                    );
                    if let Some(bytes) = failure.dump {
                        let path = std::env::temp_dir().join(format!(
                            "hypertap-{}-worker-panic-{}.htfr",
                            failure.vm,
                            std::process::id()
                        ));
                        if std::fs::write(&path, bytes).is_ok() {
                            msg.push_str(&format!(" (flight dump: {})", path.display()));
                        }
                    }
                    panic!("{msg}");
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        per_vm.sort_by_key(|r| r.vm.0);
        FleetReport { per_vm }
    }

    /// Requests shutdown and joins every worker. VMs that had not finished
    /// are drained early, so their (partial) reports still appear in the
    /// result. Returns once all worker threads have exited — no thread
    /// outlives the call.
    pub fn stop(self) -> FleetReport {
        self.stop.store(true, Ordering::SeqCst);
        self.join()
    }
}

impl Drop for FleetHost {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for handle in std::mem::take(&mut self.handles) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    shard: &[VmId],
    workload: &dyn FleetWorkload,
    stop: &AtomicBool,
) -> Result<Vec<VmReport>, WorkerFailure> {
    // Build in ascending id order, step round-robin in ascending id order:
    // the per-VM slice schedule is identical for every worker count.
    let mut vms: Vec<(VmId, Option<Box<dyn FleetVm>>)> =
        shard.iter().map(|&id| (id, Some(workload.build_vm(id)))).collect();
    let mut reports = Vec::with_capacity(vms.len());
    let mut live = vms.len();
    while live > 0 && !stop.load(Ordering::SeqCst) {
        for (id, slot) in vms.iter_mut() {
            let Some(vm) = slot.as_mut() else { continue };
            let outcome = match catch_unwind(AssertUnwindSafe(|| vm.step_slice())) {
                Ok(outcome) => outcome,
                Err(payload) => {
                    // The slice panicked: snapshot the VM's black box
                    // (best-effort — the VM may be mid-mutation) and hand
                    // the payload + dump to the host instead of unwinding
                    // the whole worker anonymously.
                    let message = panic_message(payload);
                    let reason = format!("fleet-worker-panic: {id}: {message}");
                    let dump =
                        catch_unwind(AssertUnwindSafe(|| vm.flight_dump(&reason))).ok().flatten();
                    return Err(WorkerFailure { vm: *id, message, dump });
                }
            };
            if outcome == SliceOutcome::Done {
                reports.push(vm.finish());
                *slot = None;
                live -= 1;
            }
        }
    }
    // Early stop: drain what remains so partial reports are not lost.
    for (_, slot) in vms.iter_mut() {
        if let Some(vm) = slot.as_mut() {
            reports.push(vm.finish());
            *slot = None;
        }
    }
    Ok(reports)
}

/// Runs a whole fleet to completion: launch + join.
pub fn run_fleet(workload: Arc<dyn FleetWorkload>, cfg: FleetConfig) -> FleetReport {
    FleetHost::launch(workload, cfg).join()
}

/// Runs one VM of the workload alone on the calling thread — the
/// sequential baseline the determinism contract compares fleet runs
/// against. Uses the exact same build/step/finish cycle as a worker.
pub fn run_vm_alone(workload: &dyn FleetWorkload, vm: VmId) -> VmReport {
    let mut boxed = workload.build_vm(vm);
    while boxed.step_slice() == SliceOutcome::Running {}
    boxed.finish()
}

/// Merges per-VM reports into one host-wide view: [`DeliveryStats`] sum
/// field-wise, findings accumulate tagged by [`VmId`] (in ascending-id
/// order when fed from a [`FleetReport`]), and metrics snapshots merge via
/// [`MetricsRegistry::merge`] (counters and histogram buckets add; gauges
/// sum, so ratio-style gauges should be recomputed from merged counters).
#[derive(Debug, Clone, Default)]
pub struct FleetAggregator {
    vms: u64,
    halted: u64,
    stats: DeliveryStats,
    findings: Vec<(VmId, Finding)>,
    metrics: MetricsRegistry,
}

impl FleetAggregator {
    /// An empty aggregator.
    pub fn new() -> Self {
        FleetAggregator::default()
    }

    /// Folds one VM's report in.
    pub fn absorb(&mut self, report: &VmReport) {
        self.vms += 1;
        if report.halted {
            self.halted += 1;
        }
        self.stats.merge(report.stats);
        self.findings.extend(report.findings.iter().map(|f| (report.vm, f.clone())));
        self.metrics.merge(&report.metrics);
    }

    /// Number of VM reports absorbed.
    pub fn vm_count(&self) -> u64 {
        self.vms
    }

    /// How many of them halted before their deadline.
    pub fn halted_count(&self) -> u64 {
        self.halted
    }

    /// The summed delivery counters.
    pub fn stats(&self) -> DeliveryStats {
        self.stats
    }

    /// Every finding, tagged by the VM that raised it.
    pub fn findings(&self) -> &[(VmId, Finding)] {
        &self.findings
    }

    /// The merged metrics snapshot.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::Severity;
    use hypertap_hvsim::clock::SimTime;
    use std::sync::atomic::AtomicU64;

    /// A deterministic stub VM: runs `slices` slices, then reports
    /// id-derived findings, stats and metrics.
    struct StubVm {
        id: VmId,
        remaining: u64,
        taken: u64,
        halt_after: Option<u64>,
        halted: bool,
    }

    impl FleetVm for StubVm {
        fn step_slice(&mut self) -> SliceOutcome {
            self.taken += 1;
            if let Some(h) = self.halt_after {
                if self.taken >= h {
                    self.halted = true;
                    return SliceOutcome::Done;
                }
            }
            if self.taken >= self.remaining {
                SliceOutcome::Done
            } else {
                SliceOutcome::Running
            }
        }

        fn finish(&mut self) -> VmReport {
            let mut metrics = MetricsRegistry::new();
            metrics.counter("stub_slices_total", "slices taken", self.taken);
            VmReport {
                vm: self.id,
                findings: vec![Finding {
                    auditor: "stub".to_owned(),
                    time: SimTime::from_nanos(self.id.0 as u64 * 10 + self.taken),
                    severity: Severity::Info,
                    message: format!("vm {} took {} slices", self.id.0, self.taken),
                    provenance: Vec::new(),
                }],
                stats: DeliveryStats { events_in: self.taken * 3, ..Default::default() },
                metrics,
                halted: self.halted,
                payload: self.id.0.to_le_bytes().to_vec(),
            }
        }
    }

    struct StubFleet {
        /// VM i runs `2 + i % 5` slices; VM ids divisible by 7 halt early.
        halters: bool,
    }

    impl FleetWorkload for StubFleet {
        fn build_vm(&self, vm: VmId) -> Box<dyn FleetVm> {
            let halt_after =
                if self.halters && vm.0.is_multiple_of(7) && vm.0 > 0 { Some(1) } else { None };
            Box::new(StubVm {
                id: vm,
                remaining: 2 + (vm.0 as u64) % 5,
                taken: 0,
                halt_after,
                halted: false,
            })
        }
    }

    #[test]
    fn zero_vms_is_an_empty_fleet() {
        let host =
            FleetHost::launch(Arc::new(StubFleet { halters: false }), FleetConfig::new(0, 8));
        assert_eq!(host.worker_count(), 0);
        let report = host.join();
        assert!(report.per_vm.is_empty());
        assert_eq!(report.aggregate().vm_count(), 0);
    }

    #[test]
    fn one_vm_on_eight_workers() {
        let report = run_fleet(Arc::new(StubFleet { halters: false }), FleetConfig::new(1, 8));
        assert_eq!(report.per_vm.len(), 1);
        assert_eq!(report.per_vm[0].vm, VmId(0));
        assert_eq!(report.per_vm[0].stats.events_in, 6, "VM 0 runs 2 slices of 3 events");
    }

    #[test]
    fn any_worker_count_matches_running_each_vm_alone() {
        let workload = Arc::new(StubFleet { halters: true });
        let vms = 13;
        let baseline: Vec<VmReport> =
            (0..vms).map(|i| run_vm_alone(&*workload, VmId(i as u32))).collect();
        for workers in [1usize, 2, 4, 8] {
            let report = run_fleet(
                Arc::clone(&workload) as Arc<dyn FleetWorkload>,
                FleetConfig::new(vms, workers),
            );
            assert_eq!(report.per_vm.len(), vms, "workers={workers}");
            for (got, want) in report.per_vm.iter().zip(baseline.iter()) {
                assert_eq!(got.vm, want.vm);
                assert_eq!(got.findings, want.findings, "workers={workers}");
                assert_eq!(got.stats, want.stats, "workers={workers}");
                assert_eq!(got.metrics, want.metrics, "workers={workers}");
                assert_eq!(got.payload, want.payload, "workers={workers}");
            }
        }
    }

    #[test]
    fn halting_vm_finishes_early_and_is_counted() {
        let report = run_fleet(Arc::new(StubFleet { halters: true }), FleetConfig::new(8, 4));
        assert_eq!(report.per_vm.len(), 8);
        let halted = &report.per_vm[7];
        assert!(halted.halted, "vm 7 halts after one slice");
        assert_eq!(halted.stats.events_in, 3);
        let agg = report.aggregate();
        assert_eq!(agg.halted_count(), 1);
        assert_eq!(agg.vm_count(), 8);
    }

    /// A VM that never finishes on its own — only `stop()` can end it.
    struct Endless(VmId, Arc<AtomicU64>);

    impl FleetVm for Endless {
        fn step_slice(&mut self) -> SliceOutcome {
            self.1.fetch_add(1, Ordering::Relaxed);
            std::thread::yield_now();
            SliceOutcome::Running
        }

        fn finish(&mut self) -> VmReport {
            VmReport {
                vm: self.0,
                findings: Vec::new(),
                stats: DeliveryStats::default(),
                metrics: MetricsRegistry::new(),
                halted: false,
                payload: Vec::new(),
            }
        }
    }

    struct EndlessFleet(Arc<AtomicU64>);

    impl FleetWorkload for EndlessFleet {
        fn build_vm(&self, vm: VmId) -> Box<dyn FleetVm> {
            Box::new(Endless(vm, Arc::clone(&self.0)))
        }
    }

    #[test]
    fn stop_joins_all_workers_and_drains_partial_reports() {
        let slices = Arc::new(AtomicU64::new(0));
        let host =
            FleetHost::launch(Arc::new(EndlessFleet(Arc::clone(&slices))), FleetConfig::new(6, 3));
        assert_eq!(host.worker_count(), 3);
        // Let the workers demonstrably make progress, then pull the plug.
        while slices.load(Ordering::Relaxed) < 100 {
            std::thread::yield_now();
        }
        let report = host.stop();
        assert_eq!(report.per_vm.len(), 6, "stopped VMs must still be drained");
        let ids: Vec<u32> = report.per_vm.iter().map(|r| r.vm.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn drop_without_join_does_not_leak_or_hang() {
        let slices = Arc::new(AtomicU64::new(0));
        let host =
            FleetHost::launch(Arc::new(EndlessFleet(Arc::clone(&slices))), FleetConfig::new(2, 2));
        while slices.load(Ordering::Relaxed) < 10 {
            std::thread::yield_now();
        }
        drop(host); // must set the stop flag and join, not hang or leak
    }

    #[test]
    fn aggregator_merges_stats_findings_and_metrics() {
        let report = run_fleet(Arc::new(StubFleet { halters: false }), FleetConfig::new(5, 2));
        let agg = report.aggregate();
        // Slices: 2,3,4,5,6 → 20 slices → 60 events.
        assert_eq!(agg.stats().events_in, 60);
        assert_eq!(agg.findings().len(), 5);
        assert!(agg.findings().iter().zip(report.per_vm.iter()).all(|((id, _), r)| *id == r.vm));
        let merged = agg.metrics().find("stub_slices_total", &[]).unwrap();
        assert_eq!(merged.as_counter(), Some(20));
    }

    /// A VM that panics on its third slice and carries a tiny flight
    /// recorder for the failure dump.
    struct Crasher {
        id: VmId,
        taken: u64,
        flight: crate::flight::FlightRecorder,
    }

    impl FleetVm for Crasher {
        fn step_slice(&mut self) -> SliceOutcome {
            self.taken += 1;
            if self.taken == 3 {
                panic!("slice exploded on vm {}", self.id.0);
            }
            SliceOutcome::Running
        }

        fn finish(&mut self) -> VmReport {
            VmReport {
                vm: self.id,
                findings: Vec::new(),
                stats: DeliveryStats::default(),
                metrics: MetricsRegistry::new(),
                halted: false,
                payload: Vec::new(),
            }
        }

        fn flight_dump(&mut self, reason: &str) -> Option<Vec<u8>> {
            Some(self.flight.dump_bytes(reason))
        }
    }

    struct CrashFleet;

    impl FleetWorkload for CrashFleet {
        fn build_vm(&self, vm: VmId) -> Box<dyn FleetVm> {
            Box::new(Crasher { id: vm, taken: 0, flight: crate::flight::FlightRecorder::new(8) })
        }
    }

    #[test]
    fn worker_panic_rethrows_with_a_flight_dump_reference() {
        let result =
            std::panic::catch_unwind(|| run_fleet(Arc::new(CrashFleet), FleetConfig::new(1, 1)));
        let message = panic_message(result.expect_err("the worker panic must propagate"));
        assert!(message.contains("fleet worker panicked stepping vm0"), "{message}");
        assert!(message.contains("slice exploded on vm 0"), "{message}");
        assert!(message.contains("flight dump: "), "{message}");
        let path = message
            .split("flight dump: ")
            .nth(1)
            .and_then(|rest| rest.strip_suffix(')'))
            .expect("message references the dump path");
        let bytes = std::fs::read(path).expect("dump file written");
        let dump = crate::flight::FlightDump::decode(&bytes).expect("dump decodes");
        assert!(dump.reason.contains("fleet-worker-panic: vm0"), "{}", dump.reason);
        assert!(dump.reason.contains("slice exploded"), "{}", dump.reason);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn effective_workers_clamps() {
        assert_eq!(FleetConfig::new(64, 8).effective_workers(), 8);
        assert_eq!(FleetConfig::new(3, 8).effective_workers(), 3);
        assert_eq!(FleetConfig::new(5, 0).effective_workers(), 1);
    }
}
