//! Fleet monitoring: many independent monitored VMs sharded over workers.
//!
//! The paper pitches HyperTap as a *cloud-side* framework — one
//! hypervisor-level logging layer covering every guest on a host — yet a
//! single [`crate::kvm::Kvm`] monitors a single VM. This module adds the
//! fleet layer: a [`FleetHost`] owns N independent simulated VMs (each with
//! its own `VmState`, `Kvm`, `EventMultiplexer` and monitor set, keyed by
//! [`VmId`]), shards them across a configurable pool of worker threads, and
//! steps them in deterministic per-VM order. A [`FleetAggregator`] merges
//! the per-VM [`DeliveryStats`], findings (tagged by [`VmId`]) and
//! [`MetricsRegistry`] snapshots into one host-wide view.
//!
//! # Determinism contract
//!
//! Fleet VMs are **fully independent**: no simulated state is shared
//! between them, and the host hands every VM the *same* slice schedule —
//! build, then repeat [`FleetVm::step_slice`] until [`SliceOutcome::Done`]
//! — regardless of how many workers the fleet runs on. Worker count only
//! changes which host thread a VM's slices execute on, never what a slice
//! does, so a fleet run with any worker count produces bit-identical
//! per-VM findings, metrics-free observables and trace recordings to
//! running each VM alone ([`run_vm_alone`]). The replay crate's fleet
//! conformance suite and the fleet determinism proptest enforce this.
//!
//! # Sharding model
//!
//! Static modulo sharding: worker `w` of `W` owns every VM whose id `i`
//! satisfies `i % W == w`, builds its VMs in ascending id order, then
//! round-robins one slice per live VM (ascending id order) until all are
//! done. There is no work stealing — rebalancing would not change any
//! per-VM result (slices are per-VM), but static shards keep the schedule
//! trivially auditable and the worker→VM map reproducible in logs.

use crate::audit::Finding;
use crate::em::DeliveryStats;
use crate::event::VmId;
use crate::flight::panic_message;
use crate::metrics::MetricsRegistry;
use crate::telemetry::{FindingBus, TelemetryHub, VmProbe};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// What one scheduling slice did to a fleet VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceOutcome {
    /// The VM consumed the slice and wants more.
    Running,
    /// The VM is finished (campaign deadline reached, guest shut down, or
    /// nothing can ever run again). The host will call [`FleetVm::finish`]
    /// and never step it again.
    Done,
}

/// One monitored VM as the fleet host drives it.
///
/// Implementations are built *on* a worker thread by
/// [`FleetWorkload::build_vm`] and never cross threads afterwards, so the
/// trait deliberately has no `Send` bound — a `TapVm` (whose guest kernel
/// holds non-`Send` program factories) qualifies.
pub trait FleetVm {
    /// Advances the VM by one scheduling slice of simulated time.
    fn step_slice(&mut self) -> SliceOutcome;

    /// Drains the VM into its report. Called exactly once per VM — after
    /// [`SliceOutcome::Done`], or early when the fleet is stopped.
    fn finish(&mut self) -> VmReport;

    /// Serializes the VM's flight recorder (`.htfr` bytes) for a failure
    /// dump, or `None` when the VM has no recorder. Called best-effort
    /// after [`FleetVm::step_slice`] panics, before the failure is
    /// rethrown on the host.
    fn flight_dump(&mut self, _reason: &str) -> Option<Vec<u8>> {
        None
    }

    /// Serializes the VM for migration to another worker, or `None` when
    /// the VM cannot be snapshotted (the default) — a non-migratable VM
    /// simply stays on its current worker when a rebalance is requested.
    fn snapshot(&mut self) -> Option<Vec<u8>> {
        None
    }

    /// Restores a [`FleetVm::snapshot`] blob into this VM, which was
    /// freshly built by [`FleetWorkload::build_vm`] on the receiving
    /// worker. A failed restore fails the whole fleet run (the VM's state
    /// is in flight and cannot be recovered).
    fn restore(&mut self, _bytes: &[u8]) -> Result<(), String> {
        Err("this fleet VM does not support migration".to_owned())
    }

    /// A cheap read-only probe of the VM's monitoring plane — simulated
    /// time, event intake, audit backpressure — for the telemetry hub's
    /// `/vms` endpoint. Called after every slice when a hub is attached;
    /// `None` (the default) reports nothing. Must not mutate simulated
    /// state: probing is host-side observation only.
    fn telemetry_probe(&mut self) -> Option<VmProbe> {
        None
    }
}

/// Decides when a fleet VM migrates to another worker mid-campaign.
///
/// Consulted after every slice a VM takes. Returning `Some(target)` asks
/// the host to snapshot the VM on its current worker and restore it on
/// worker `target` before its next slice; `None`, a target equal to the
/// current worker, or an out-of-range target leaves the VM where it is,
/// as does a VM whose [`FleetVm::snapshot`] returns `None`.
///
/// # Determinism
///
/// Migration never changes what a VM computes — the snapshot/restore
/// equivalence contract guarantees slice `k + 1` after a migration is the
/// same slice `k + 1` the VM would have taken in place, so per-VM
/// findings, traces and metrics-free observables are identical for *any*
/// policy and any worker count. For reproducible worker→VM placement logs,
/// prefer policies that are pure functions of `(vm, slices_taken)`.
pub trait RebalancePolicy: Send + Sync {
    /// Decides whether `vm` (which has taken `slices_taken` slices and
    /// currently lives on `worker` of `workers`) should migrate.
    fn migrate(&self, vm: VmId, slices_taken: u64, worker: usize, workers: usize) -> Option<usize>;
}

/// The default policy: never migrate.
pub struct NoRebalance;

impl RebalancePolicy for NoRebalance {
    fn migrate(&self, _: VmId, _: u64, _: usize, _: usize) -> Option<usize> {
        None
    }
}

/// Rotates every VM to the next worker each time it completes `period`
/// slices — the forced-migration schedule the determinism tests use.
pub struct RotateEvery(pub u64);

impl RebalancePolicy for RotateEvery {
    fn migrate(
        &self,
        _vm: VmId,
        slices_taken: u64,
        worker: usize,
        workers: usize,
    ) -> Option<usize> {
        if self.0 > 0 && workers > 1 && slices_taken.is_multiple_of(self.0) {
            Some((worker + 1) % workers)
        } else {
            None
        }
    }
}

/// A VM in flight between two workers: snapshotted on the source, waiting
/// in the target's mailbox to be rebuilt and restored.
struct Migrant {
    vm: VmId,
    slices_taken: u64,
    bytes: Vec<u8>,
}

/// Shared mailboxes for in-flight migrations, plus the global live-VM
/// count workers use to decide when an empty shard is *finished* (no VM
/// anywhere can still migrate in) rather than merely idle.
struct MigrationBoard {
    inboxes: Mutex<Vec<Vec<Migrant>>>,
    live: AtomicUsize,
    /// Workers still in their stepping loop — the only phase that posts
    /// migrants. Once it hits zero, one final mailbox sweep sees every
    /// migrant that will ever arrive.
    stepping: AtomicUsize,
}

impl MigrationBoard {
    fn new(workers: usize, vms: usize) -> Self {
        MigrationBoard {
            inboxes: Mutex::new((0..workers).map(|_| Vec::new()).collect()),
            live: AtomicUsize::new(vms),
            stepping: AtomicUsize::new(workers),
        }
    }

    fn post(&self, target: usize, migrant: Migrant) {
        self.inboxes.lock().expect("migration board")[target].push(migrant);
    }

    fn take(&self, worker: usize) -> Vec<Migrant> {
        std::mem::take(&mut self.inboxes.lock().expect("migration board")[worker])
    }

    fn vm_finished(&self) {
        self.live.fetch_sub(1, Ordering::SeqCst);
    }

    fn all_finished(&self) -> bool {
        self.live.load(Ordering::SeqCst) == 0
    }

    fn stepping_done(&self) {
        self.stepping.fetch_sub(1, Ordering::SeqCst);
    }

    fn no_one_stepping(&self) -> bool {
        self.stepping.load(Ordering::SeqCst) == 0
    }
}

/// A recipe for the fleet's VMs: called once per [`VmId`], *on the worker
/// thread that owns the VM*.
///
/// # Determinism
///
/// `build_vm` must be a pure function of the `VmId` (plus the workload's
/// own immutable configuration). Anything else — host clocks, shared
/// mutable state, ambient randomness — would break the fleet determinism
/// contract, because worker count changes *when* and *where* each VM is
/// built.
pub trait FleetWorkload: Send + Sync {
    /// Builds the VM with the given id.
    fn build_vm(&self, vm: VmId) -> Box<dyn FleetVm>;
}

/// Everything one fleet VM produced, drained when the VM finishes.
#[derive(Debug, Clone)]
pub struct VmReport {
    /// Which VM this is.
    pub vm: VmId,
    /// Every finding its monitors raised, in delivery order.
    pub findings: Vec<Finding>,
    /// Its Event Multiplexer's delivery counters.
    pub stats: DeliveryStats,
    /// Its full metrics snapshot (simulator + EF + EM layers).
    pub metrics: MetricsRegistry,
    /// Whether the guest halted (shutdown/pause/wedge) before its campaign
    /// deadline.
    pub halted: bool,
    /// Opaque extra payload — e.g. the replay crate stores the VM's
    /// encoded HTRC trace here. Empty when unused.
    pub payload: Vec<u8>,
}

/// Fleet shape: how many VMs over how many workers.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of VMs, ids `0..vms`.
    pub vms: usize,
    /// Requested worker threads (clamped to `1..=vms`; a zero-VM fleet
    /// spawns no workers at all).
    pub workers: usize,
}

impl FleetConfig {
    /// A fleet of `vms` VMs over `workers` threads.
    pub fn new(vms: usize, workers: usize) -> Self {
        FleetConfig { vms, workers }
    }

    /// The worker count actually spawned.
    pub fn effective_workers(&self) -> usize {
        self.workers.max(1).min(self.vms)
    }
}

/// The collected result of a fleet run: per-VM reports in ascending
/// [`VmId`] order.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// One report per VM, sorted by id.
    pub per_vm: Vec<VmReport>,
}

impl FleetReport {
    /// Merges every per-VM report into one aggregate view.
    pub fn aggregate(&self) -> FleetAggregator {
        let mut agg = FleetAggregator::new();
        for r in &self.per_vm {
            agg.absorb(r);
        }
        agg
    }
}

/// A running fleet: worker threads stepping their VM shards.
///
/// Always joins its workers — via [`FleetHost::join`], [`FleetHost::stop`]
/// or `Drop` — so a fleet can never leak threads (the same lifecycle
/// discipline as `RhcServer::stop`).
pub struct FleetHost {
    handles: Vec<JoinHandle<Result<Vec<VmReport>, WorkerFailure>>>,
    stop: Arc<AtomicBool>,
    cfg: FleetConfig,
}

/// Why a worker abandoned its shard: one VM's slice panicked. The worker
/// grabs the VM's flight-recorder dump before unwinding so the host can
/// reference it in the rethrown error.
struct WorkerFailure {
    vm: VmId,
    message: String,
    dump: Option<Vec<u8>>,
}

impl FleetHost {
    /// Launches the fleet: spawns the worker pool and starts stepping.
    /// VMs stay on their initial shard for the whole campaign.
    pub fn launch(workload: Arc<dyn FleetWorkload>, cfg: FleetConfig) -> FleetHost {
        FleetHost::launch_with_policy(workload, cfg, Arc::new(NoRebalance))
    }

    /// Launches the fleet with a mid-campaign [`RebalancePolicy`]: after
    /// every slice the policy may migrate the VM — snapshot on the source
    /// worker, rebuild-and-restore on the target — without changing any
    /// per-VM result (see the policy's determinism notes).
    pub fn launch_with_policy(
        workload: Arc<dyn FleetWorkload>,
        cfg: FleetConfig,
        policy: Arc<dyn RebalancePolicy>,
    ) -> FleetHost {
        FleetHost::launch_inner(workload, cfg, policy, None)
    }

    /// Launches the fleet with a live [`TelemetryHub`] attached: workers
    /// report lifecycle (build/run/done), per-slice progress probes and
    /// finished [`VmReport`]s to the hub, whose [`FindingBus`] streams
    /// findings to subscribers as they land. Telemetry is host-side
    /// observation only — the per-VM schedule, traces and findings are
    /// bit-identical to an untapped [`FleetHost::launch`].
    pub fn launch_with_telemetry(
        workload: Arc<dyn FleetWorkload>,
        cfg: FleetConfig,
        hub: Arc<TelemetryHub>,
    ) -> FleetHost {
        FleetHost::launch_inner(workload, cfg, Arc::new(NoRebalance), Some(hub))
    }

    fn launch_inner(
        workload: Arc<dyn FleetWorkload>,
        cfg: FleetConfig,
        policy: Arc<dyn RebalancePolicy>,
        hub: Option<Arc<TelemetryHub>>,
    ) -> FleetHost {
        let stop = Arc::new(AtomicBool::new(false));
        let workers = cfg.effective_workers();
        let board = Arc::new(MigrationBoard::new(workers, cfg.vms));
        let mut handles = Vec::new();
        if cfg.vms > 0 {
            for w in 0..workers {
                let shard: Vec<VmId> =
                    (w..cfg.vms).step_by(workers).map(|i| VmId(i as u32)).collect();
                let workload = Arc::clone(&workload);
                let stop = Arc::clone(&stop);
                let policy = Arc::clone(&policy);
                let board = Arc::clone(&board);
                let hub = hub.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("fleet-worker-{w}"))
                    .spawn(move || {
                        worker_loop(
                            w,
                            workers,
                            &shard,
                            &*workload,
                            &stop,
                            &*policy,
                            &board,
                            hub.as_deref(),
                        )
                    })
                    .expect("spawn fleet worker");
                handles.push(handle);
            }
        }
        FleetHost { handles, stop, cfg }
    }

    /// The fleet's shape.
    pub fn config(&self) -> FleetConfig {
        self.cfg
    }

    /// Number of worker threads actually spawned.
    pub fn worker_count(&self) -> usize {
        self.handles.len()
    }

    /// Waits for every VM to finish and returns the per-VM reports in
    /// ascending [`VmId`] order.
    pub fn join(mut self) -> FleetReport {
        let mut per_vm = Vec::with_capacity(self.cfg.vms);
        for handle in std::mem::take(&mut self.handles) {
            match handle.join() {
                Ok(Ok(reports)) => per_vm.extend(reports),
                Ok(Err(failure)) => {
                    let mut msg = format!(
                        "fleet worker panicked stepping {}: {}",
                        failure.vm, failure.message
                    );
                    if let Some(bytes) = failure.dump {
                        let path = std::env::temp_dir().join(format!(
                            "hypertap-{}-worker-panic-{}.htfr",
                            failure.vm,
                            std::process::id()
                        ));
                        if std::fs::write(&path, bytes).is_ok() {
                            msg.push_str(&format!(" (flight dump: {})", path.display()));
                        }
                    }
                    panic!("{msg}");
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        per_vm.sort_by_key(|r| r.vm.0);
        FleetReport { per_vm }
    }

    /// Requests shutdown and joins every worker. VMs that had not finished
    /// are drained early, so their (partial) reports still appear in the
    /// result. Returns once all worker threads have exited — no thread
    /// outlives the call.
    pub fn stop(self) -> FleetReport {
        self.stop.store(true, Ordering::SeqCst);
        self.join()
    }
}

impl Drop for FleetHost {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for handle in std::mem::take(&mut self.handles) {
            let _ = handle.join();
        }
    }
}

/// One VM on a worker: its identity, how many slices it has taken (the
/// rebalance policy's clock), and the VM itself.
struct WorkerSlot {
    id: VmId,
    slices_taken: u64,
    vm: Box<dyn FleetVm>,
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    worker: usize,
    workers: usize,
    shard: &[VmId],
    workload: &dyn FleetWorkload,
    stop: &AtomicBool,
    policy: &dyn RebalancePolicy,
    board: &MigrationBoard,
    hub: Option<&TelemetryHub>,
) -> Result<Vec<VmReport>, WorkerFailure> {
    if let Some(h) = hub {
        h.worker_started(worker);
    }
    // Build in ascending id order, step round-robin in ascending id order:
    // the per-VM slice schedule is identical for every worker count. A
    // migrated VM resumes its own schedule on the target worker — slices
    // are per-VM, so interleaving with the new shard changes nothing.
    let mut vms: Vec<WorkerSlot> = shard
        .iter()
        .map(|&id| {
            if let Some(h) = hub {
                h.vm_started(id, worker);
            }
            WorkerSlot { id, slices_taken: 0, vm: workload.build_vm(id) }
        })
        .collect();
    let mut reports = Vec::new();
    'run: while !stop.load(Ordering::SeqCst) {
        // Accept VMs migrating in: rebuild from the recipe, then restore.
        for m in board.take(worker) {
            let mut vm = workload.build_vm(m.vm);
            if let Err(e) = vm.restore(&m.bytes) {
                // Fail the run, but first unblock peers idling on the
                // board (their VMs can never all finish now).
                stop.store(true, Ordering::SeqCst);
                board.stepping_done();
                return Err(WorkerFailure {
                    vm: m.vm,
                    message: format!("restoring migrated VM: {e}"),
                    dump: None,
                });
            }
            if let Some(h) = hub {
                h.vm_started(m.vm, worker);
            }
            let at = vms.partition_point(|s| s.id.0 < m.vm.0);
            vms.insert(at, WorkerSlot { id: m.vm, slices_taken: m.slices_taken, vm });
        }
        if vms.is_empty() {
            if board.all_finished() {
                break 'run;
            }
            // Idle but the campaign is not over: a VM may still migrate in.
            std::thread::yield_now();
            continue 'run;
        }
        let mut i = 0;
        while i < vms.len() {
            if stop.load(Ordering::SeqCst) {
                break 'run;
            }
            let slot = &mut vms[i];
            let outcome = match catch_unwind(AssertUnwindSafe(|| slot.vm.step_slice())) {
                Ok(outcome) => outcome,
                Err(payload) => {
                    // The slice panicked: snapshot the VM's black box
                    // (best-effort — the VM may be mid-mutation) and hand
                    // the payload + dump to the host instead of unwinding
                    // the whole worker anonymously.
                    let message = panic_message(payload);
                    let reason = format!("fleet-worker-panic: {}: {message}", slot.id);
                    let dump = catch_unwind(AssertUnwindSafe(|| slot.vm.flight_dump(&reason)))
                        .ok()
                        .flatten();
                    stop.store(true, Ordering::SeqCst);
                    board.stepping_done();
                    return Err(WorkerFailure { vm: slot.id, message, dump });
                }
            };
            slot.slices_taken += 1;
            if let Some(h) = hub {
                h.vm_progress(slot.id, worker, slot.vm.telemetry_probe());
            }
            if outcome == SliceOutcome::Done {
                let mut slot = vms.remove(i);
                let report = slot.vm.finish();
                if let Some(h) = hub {
                    h.vm_finished(&report, worker);
                }
                reports.push(report);
                board.vm_finished();
                continue;
            }
            if let Some(target) = policy.migrate(slot.id, slot.slices_taken, worker, workers) {
                if target != worker && target < workers {
                    if let Some(bytes) = slot.vm.snapshot() {
                        let slot = vms.remove(i);
                        board.post(
                            target,
                            Migrant { vm: slot.id, slices_taken: slot.slices_taken, bytes },
                        );
                        continue;
                    }
                    // A VM that cannot snapshot stays put.
                }
            }
            i += 1;
        }
    }
    // Early stop (or natural exit): drain local VMs so partial reports are
    // not lost, then adopt anything posted to this worker's mailbox — a VM
    // caught mid-migration must be reported, not dropped. Migrants are
    // only posted from stepping loops, so once every worker has left its
    // stepping loop one final sweep is guaranteed to see them all.
    for mut slot in vms {
        let report = slot.vm.finish();
        if let Some(h) = hub {
            h.vm_finished(&report, worker);
        }
        reports.push(report);
        board.vm_finished();
    }
    board.stepping_done();
    let adopt = |m: Migrant, reports: &mut Vec<VmReport>| {
        let mut vm = workload.build_vm(m.vm);
        // Best-effort: if the restore fails mid-stop the VM's identity is
        // still reported, just with recipe-fresh observables.
        let _ = vm.restore(&m.bytes);
        let mut report = vm.finish();
        report.vm = m.vm;
        // The migrant never reached its deadline: report it as halted.
        report.halted = true;
        if let Some(h) = hub {
            h.vm_finished(&report, worker);
        }
        reports.push(report);
        board.vm_finished();
    };
    loop {
        for m in board.take(worker) {
            adopt(m, &mut reports);
        }
        if board.no_one_stepping() {
            for m in board.take(worker) {
                adopt(m, &mut reports);
            }
            break;
        }
        std::thread::yield_now();
    }
    if let Some(h) = hub {
        h.worker_done(worker);
    }
    Ok(reports)
}

/// Runs a whole fleet to completion: launch + join.
pub fn run_fleet(workload: Arc<dyn FleetWorkload>, cfg: FleetConfig) -> FleetReport {
    FleetHost::launch(workload, cfg).join()
}

/// Runs a whole fleet to completion under a [`RebalancePolicy`].
pub fn run_fleet_with_policy(
    workload: Arc<dyn FleetWorkload>,
    cfg: FleetConfig,
    policy: Arc<dyn RebalancePolicy>,
) -> FleetReport {
    FleetHost::launch_with_policy(workload, cfg, policy).join()
}

/// Runs a whole fleet to completion with a live [`TelemetryHub`]
/// attached: launch + join.
pub fn run_fleet_telemetry(
    workload: Arc<dyn FleetWorkload>,
    cfg: FleetConfig,
    hub: Arc<TelemetryHub>,
) -> FleetReport {
    FleetHost::launch_with_telemetry(workload, cfg, hub).join()
}

/// Runs one VM of the workload alone on the calling thread — the
/// sequential baseline the determinism contract compares fleet runs
/// against. Uses the exact same build/step/finish cycle as a worker.
pub fn run_vm_alone(workload: &dyn FleetWorkload, vm: VmId) -> VmReport {
    let mut boxed = workload.build_vm(vm);
    while boxed.step_slice() == SliceOutcome::Running {}
    boxed.finish()
}

/// Merges per-VM reports into one host-wide view: [`DeliveryStats`] sum
/// field-wise, findings accumulate tagged by [`VmId`] (in ascending-id
/// order when fed from a [`FleetReport`]), and metrics snapshots merge via
/// [`MetricsRegistry::merge`] (counters and histogram buckets add; gauges
/// sum, so ratio-style gauges should be recomputed from merged counters).
#[derive(Debug, Clone, Default)]
pub struct FleetAggregator {
    vms: u64,
    halted: u64,
    stats: DeliveryStats,
    findings: Vec<(VmId, Finding)>,
    metrics: MetricsRegistry,
    bus: Option<FindingBus>,
}

impl FleetAggregator {
    /// An empty aggregator.
    pub fn new() -> Self {
        FleetAggregator::default()
    }

    /// Taps the aggregator with a live [`FindingBus`]: every finding in a
    /// subsequently [`FleetAggregator::absorb`]ed report is also published
    /// on the bus, tagged with the originating VM. The tap never blocks —
    /// slow subscribers drop (and count) instead.
    pub fn attach_bus(&mut self, bus: FindingBus) {
        self.bus = Some(bus);
    }

    /// Folds one VM's report in.
    pub fn absorb(&mut self, report: &VmReport) {
        self.vms += 1;
        if report.halted {
            self.halted += 1;
        }
        self.stats.merge(report.stats);
        self.findings.extend(report.findings.iter().map(|f| (report.vm, f.clone())));
        self.metrics.merge(&report.metrics);
        if let Some(bus) = &self.bus {
            bus.publish_all(report.vm, &report.findings);
        }
    }

    /// Number of VM reports absorbed.
    pub fn vm_count(&self) -> u64 {
        self.vms
    }

    /// How many of them halted before their deadline.
    pub fn halted_count(&self) -> u64 {
        self.halted
    }

    /// The summed delivery counters.
    pub fn stats(&self) -> DeliveryStats {
        self.stats
    }

    /// Every finding, tagged by the VM that raised it.
    pub fn findings(&self) -> &[(VmId, Finding)] {
        &self.findings
    }

    /// The merged metrics snapshot.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::Severity;
    use hypertap_hvsim::clock::SimTime;
    use std::sync::atomic::AtomicU64;

    /// A deterministic stub VM: runs `slices` slices, then reports
    /// id-derived findings, stats and metrics.
    struct StubVm {
        id: VmId,
        remaining: u64,
        taken: u64,
        halt_after: Option<u64>,
        halted: bool,
    }

    impl FleetVm for StubVm {
        fn step_slice(&mut self) -> SliceOutcome {
            self.taken += 1;
            if let Some(h) = self.halt_after {
                if self.taken >= h {
                    self.halted = true;
                    return SliceOutcome::Done;
                }
            }
            if self.taken >= self.remaining {
                SliceOutcome::Done
            } else {
                SliceOutcome::Running
            }
        }

        fn finish(&mut self) -> VmReport {
            let mut metrics = MetricsRegistry::new();
            metrics.counter("stub_slices_total", "slices taken", self.taken);
            VmReport {
                vm: self.id,
                findings: vec![Finding {
                    auditor: "stub".to_owned(),
                    time: SimTime::from_nanos(self.id.0 as u64 * 10 + self.taken),
                    severity: Severity::Info,
                    message: format!("vm {} took {} slices", self.id.0, self.taken),
                    provenance: Vec::new(),
                }],
                stats: DeliveryStats { events_in: self.taken * 3, ..Default::default() },
                metrics,
                halted: self.halted,
                payload: self.id.0.to_le_bytes().to_vec(),
            }
        }
    }

    struct StubFleet {
        /// VM i runs `2 + i % 5` slices; VM ids divisible by 7 halt early.
        halters: bool,
    }

    impl FleetWorkload for StubFleet {
        fn build_vm(&self, vm: VmId) -> Box<dyn FleetVm> {
            let halt_after =
                if self.halters && vm.0.is_multiple_of(7) && vm.0 > 0 { Some(1) } else { None };
            Box::new(StubVm {
                id: vm,
                remaining: 2 + (vm.0 as u64) % 5,
                taken: 0,
                halt_after,
                halted: false,
            })
        }
    }

    #[test]
    fn zero_vms_is_an_empty_fleet() {
        let host =
            FleetHost::launch(Arc::new(StubFleet { halters: false }), FleetConfig::new(0, 8));
        assert_eq!(host.worker_count(), 0);
        let report = host.join();
        assert!(report.per_vm.is_empty());
        assert_eq!(report.aggregate().vm_count(), 0);
    }

    #[test]
    fn one_vm_on_eight_workers() {
        let report = run_fleet(Arc::new(StubFleet { halters: false }), FleetConfig::new(1, 8));
        assert_eq!(report.per_vm.len(), 1);
        assert_eq!(report.per_vm[0].vm, VmId(0));
        assert_eq!(report.per_vm[0].stats.events_in, 6, "VM 0 runs 2 slices of 3 events");
    }

    #[test]
    fn any_worker_count_matches_running_each_vm_alone() {
        let workload = Arc::new(StubFleet { halters: true });
        let vms = 13;
        let baseline: Vec<VmReport> =
            (0..vms).map(|i| run_vm_alone(&*workload, VmId(i as u32))).collect();
        for workers in [1usize, 2, 4, 8] {
            let report = run_fleet(
                Arc::clone(&workload) as Arc<dyn FleetWorkload>,
                FleetConfig::new(vms, workers),
            );
            assert_eq!(report.per_vm.len(), vms, "workers={workers}");
            for (got, want) in report.per_vm.iter().zip(baseline.iter()) {
                assert_eq!(got.vm, want.vm);
                assert_eq!(got.findings, want.findings, "workers={workers}");
                assert_eq!(got.stats, want.stats, "workers={workers}");
                assert_eq!(got.metrics, want.metrics, "workers={workers}");
                assert_eq!(got.payload, want.payload, "workers={workers}");
            }
        }
    }

    #[test]
    fn halting_vm_finishes_early_and_is_counted() {
        let report = run_fleet(Arc::new(StubFleet { halters: true }), FleetConfig::new(8, 4));
        assert_eq!(report.per_vm.len(), 8);
        let halted = &report.per_vm[7];
        assert!(halted.halted, "vm 7 halts after one slice");
        assert_eq!(halted.stats.events_in, 3);
        let agg = report.aggregate();
        assert_eq!(agg.halted_count(), 1);
        assert_eq!(agg.vm_count(), 8);
    }

    /// A VM that never finishes on its own — only `stop()` can end it.
    struct Endless(VmId, Arc<AtomicU64>);

    impl FleetVm for Endless {
        fn step_slice(&mut self) -> SliceOutcome {
            self.1.fetch_add(1, Ordering::Relaxed);
            std::thread::yield_now();
            SliceOutcome::Running
        }

        fn finish(&mut self) -> VmReport {
            VmReport {
                vm: self.0,
                findings: Vec::new(),
                stats: DeliveryStats::default(),
                metrics: MetricsRegistry::new(),
                halted: false,
                payload: Vec::new(),
            }
        }
    }

    struct EndlessFleet(Arc<AtomicU64>);

    impl FleetWorkload for EndlessFleet {
        fn build_vm(&self, vm: VmId) -> Box<dyn FleetVm> {
            Box::new(Endless(vm, Arc::clone(&self.0)))
        }
    }

    #[test]
    fn stop_joins_all_workers_and_drains_partial_reports() {
        let slices = Arc::new(AtomicU64::new(0));
        let host =
            FleetHost::launch(Arc::new(EndlessFleet(Arc::clone(&slices))), FleetConfig::new(6, 3));
        assert_eq!(host.worker_count(), 3);
        // Let the workers demonstrably make progress, then pull the plug.
        while slices.load(Ordering::Relaxed) < 100 {
            std::thread::yield_now();
        }
        let report = host.stop();
        assert_eq!(report.per_vm.len(), 6, "stopped VMs must still be drained");
        let ids: Vec<u32> = report.per_vm.iter().map(|r| r.vm.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn drop_without_join_does_not_leak_or_hang() {
        let slices = Arc::new(AtomicU64::new(0));
        let host =
            FleetHost::launch(Arc::new(EndlessFleet(Arc::clone(&slices))), FleetConfig::new(2, 2));
        while slices.load(Ordering::Relaxed) < 10 {
            std::thread::yield_now();
        }
        drop(host); // must set the stop flag and join, not hang or leak
    }

    #[test]
    fn aggregator_merges_stats_findings_and_metrics() {
        let report = run_fleet(Arc::new(StubFleet { halters: false }), FleetConfig::new(5, 2));
        let agg = report.aggregate();
        // Slices: 2,3,4,5,6 → 20 slices → 60 events.
        assert_eq!(agg.stats().events_in, 60);
        assert_eq!(agg.findings().len(), 5);
        assert!(agg.findings().iter().zip(report.per_vm.iter()).all(|((id, _), r)| *id == r.vm));
        let merged = agg.metrics().find("stub_slices_total", &[]).unwrap();
        assert_eq!(merged.as_counter(), Some(20));
    }

    /// A VM that panics on its third slice and carries a tiny flight
    /// recorder for the failure dump.
    struct Crasher {
        id: VmId,
        taken: u64,
        flight: crate::flight::FlightRecorder,
    }

    impl FleetVm for Crasher {
        fn step_slice(&mut self) -> SliceOutcome {
            self.taken += 1;
            if self.taken == 3 {
                panic!("slice exploded on vm {}", self.id.0);
            }
            SliceOutcome::Running
        }

        fn finish(&mut self) -> VmReport {
            VmReport {
                vm: self.id,
                findings: Vec::new(),
                stats: DeliveryStats::default(),
                metrics: MetricsRegistry::new(),
                halted: false,
                payload: Vec::new(),
            }
        }

        fn flight_dump(&mut self, reason: &str) -> Option<Vec<u8>> {
            Some(self.flight.dump_bytes(reason))
        }
    }

    struct CrashFleet;

    impl FleetWorkload for CrashFleet {
        fn build_vm(&self, vm: VmId) -> Box<dyn FleetVm> {
            Box::new(Crasher { id: vm, taken: 0, flight: crate::flight::FlightRecorder::new(8) })
        }
    }

    #[test]
    fn worker_panic_rethrows_with_a_flight_dump_reference() {
        let result =
            std::panic::catch_unwind(|| run_fleet(Arc::new(CrashFleet), FleetConfig::new(1, 1)));
        let message = panic_message(result.expect_err("the worker panic must propagate"));
        assert!(message.contains("fleet worker panicked stepping vm0"), "{message}");
        assert!(message.contains("slice exploded on vm 0"), "{message}");
        assert!(message.contains("flight dump: "), "{message}");
        let path = message
            .split("flight dump: ")
            .nth(1)
            .and_then(|rest| rest.strip_suffix(')'))
            .expect("message references the dump path");
        let bytes = std::fs::read(path).expect("dump file written");
        let dump = crate::flight::FlightDump::decode(&bytes).expect("dump decodes");
        assert!(dump.reason.contains("fleet-worker-panic: vm0"), "{}", dump.reason);
        assert!(dump.reason.contains("slice exploded"), "{}", dump.reason);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn effective_workers_clamps() {
        assert_eq!(FleetConfig::new(64, 8).effective_workers(), 8);
        assert_eq!(FleetConfig::new(3, 8).effective_workers(), 3);
        assert_eq!(FleetConfig::new(5, 0).effective_workers(), 1);
    }

    /// A migratable stub VM: its whole state is (taken, remaining), carried
    /// across workers as little-endian bytes. Also records how many times
    /// it was restored, so tests can prove migrations actually happened.
    struct MigratableVm {
        id: VmId,
        remaining: u64,
        taken: u64,
        restores: Arc<AtomicU64>,
        was_restored: bool,
    }

    impl FleetVm for MigratableVm {
        fn step_slice(&mut self) -> SliceOutcome {
            self.taken += 1;
            if self.taken >= self.remaining {
                SliceOutcome::Done
            } else {
                SliceOutcome::Running
            }
        }

        fn finish(&mut self) -> VmReport {
            VmReport {
                vm: self.id,
                findings: vec![Finding {
                    auditor: "migratable".to_owned(),
                    time: SimTime::from_nanos(self.taken),
                    severity: Severity::Info,
                    message: format!("vm {} took {} slices", self.id.0, self.taken),
                    provenance: Vec::new(),
                }],
                stats: DeliveryStats { events_in: self.taken * 3, ..Default::default() },
                metrics: MetricsRegistry::new(),
                halted: false,
                payload: self.taken.to_le_bytes().to_vec(),
            }
        }

        fn snapshot(&mut self) -> Option<Vec<u8>> {
            let mut bytes = self.taken.to_le_bytes().to_vec();
            bytes.extend_from_slice(&self.remaining.to_le_bytes());
            Some(bytes)
        }

        fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
            if bytes.len() != 16 {
                return Err(format!("bad migration blob: {} bytes", bytes.len()));
            }
            self.taken = u64::from_le_bytes(bytes[..8].try_into().unwrap());
            self.remaining = u64::from_le_bytes(bytes[8..].try_into().unwrap());
            self.restores.fetch_add(1, Ordering::SeqCst);
            self.was_restored = true;
            Ok(())
        }
    }

    struct MigratableFleet {
        restores: Arc<AtomicU64>,
    }

    impl FleetWorkload for MigratableFleet {
        fn build_vm(&self, vm: VmId) -> Box<dyn FleetVm> {
            Box::new(MigratableVm {
                id: vm,
                remaining: 4 + (vm.0 as u64) % 7,
                taken: 0,
                restores: Arc::clone(&self.restores),
                was_restored: false,
            })
        }
    }

    #[test]
    fn rotating_migration_preserves_every_per_vm_report() {
        let restores = Arc::new(AtomicU64::new(0));
        let workload = Arc::new(MigratableFleet { restores: Arc::clone(&restores) });
        let vms = 9;
        let baseline: Vec<VmReport> =
            (0..vms).map(|i| run_vm_alone(&*workload, VmId(i as u32))).collect();
        for workers in [1usize, 2, 3, 8] {
            restores.store(0, Ordering::SeqCst);
            let report = run_fleet_with_policy(
                Arc::clone(&workload) as Arc<dyn FleetWorkload>,
                FleetConfig::new(vms, workers),
                Arc::new(RotateEvery(2)),
            );
            assert_eq!(report.per_vm.len(), vms, "workers={workers}");
            for (got, want) in report.per_vm.iter().zip(baseline.iter()) {
                assert_eq!(got.vm, want.vm);
                assert_eq!(got.findings, want.findings, "workers={workers}");
                assert_eq!(got.stats, want.stats, "workers={workers}");
                assert_eq!(got.payload, want.payload, "workers={workers}");
            }
            if workers > 1 {
                // Every VM runs ≥ 4 slices, so each migrates at least once.
                assert!(
                    restores.load(Ordering::SeqCst) >= vms as u64,
                    "workers={workers}: migrations must actually happen"
                );
            } else {
                assert_eq!(
                    restores.load(Ordering::SeqCst),
                    0,
                    "RotateEvery on one worker never migrates"
                );
            }
        }
    }

    #[test]
    fn non_migratable_vms_stay_put_under_a_rotating_policy() {
        // StubVm keeps the default snapshot() -> None: the policy asks for
        // migration but the fleet must silently keep the VM on its worker
        // and produce exactly the baseline results.
        let workload = Arc::new(StubFleet { halters: true });
        let vms = 8;
        let baseline: Vec<VmReport> =
            (0..vms).map(|i| run_vm_alone(&*workload, VmId(i as u32))).collect();
        let report = run_fleet_with_policy(
            Arc::clone(&workload) as Arc<dyn FleetWorkload>,
            FleetConfig::new(vms, 4),
            Arc::new(RotateEvery(1)),
        );
        assert_eq!(report.per_vm.len(), vms);
        for (got, want) in report.per_vm.iter().zip(baseline.iter()) {
            assert_eq!(got.vm, want.vm);
            assert_eq!(got.findings, want.findings);
        }
    }

    /// An endless migratable VM, for stopping the fleet while migrations
    /// are in flight.
    struct EndlessMigratable {
        id: VmId,
        slices: Arc<AtomicU64>,
    }

    impl FleetVm for EndlessMigratable {
        fn step_slice(&mut self) -> SliceOutcome {
            self.slices.fetch_add(1, Ordering::Relaxed);
            std::thread::yield_now();
            SliceOutcome::Running
        }

        fn finish(&mut self) -> VmReport {
            VmReport {
                vm: self.id,
                findings: Vec::new(),
                stats: DeliveryStats::default(),
                metrics: MetricsRegistry::new(),
                halted: false,
                payload: Vec::new(),
            }
        }

        fn snapshot(&mut self) -> Option<Vec<u8>> {
            Some(vec![7])
        }

        fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
            if bytes == [7] {
                Ok(())
            } else {
                Err("bad blob".to_owned())
            }
        }
    }

    struct EndlessMigratableFleet(Arc<AtomicU64>);

    impl FleetWorkload for EndlessMigratableFleet {
        fn build_vm(&self, vm: VmId) -> Box<dyn FleetVm> {
            Box::new(EndlessMigratable { id: vm, slices: Arc::clone(&self.0) })
        }
    }

    #[test]
    fn stop_mid_migration_reports_in_flight_vms_as_halted() {
        // Rotate every slice so at any instant several VMs sit in worker
        // mailboxes mid-restore. Stopping must join every worker (no thread
        // leak) and report every VM — the in-flight ones as halted, never
        // silently dropped.
        for _ in 0..20 {
            let slices = Arc::new(AtomicU64::new(0));
            let host = FleetHost::launch_with_policy(
                Arc::new(EndlessMigratableFleet(Arc::clone(&slices))),
                FleetConfig::new(6, 3),
                Arc::new(RotateEvery(1)),
            );
            while slices.load(Ordering::Relaxed) < 50 {
                std::thread::yield_now();
            }
            let report = host.stop();
            let ids: Vec<u32> = report.per_vm.iter().map(|r| r.vm.0).collect();
            assert_eq!(ids, vec![0, 1, 2, 3, 4, 5], "every VM must be reported");
        }
    }

    #[test]
    fn failed_migration_restore_fails_the_run() {
        struct BadRestoreVm {
            id: VmId,
        }
        impl FleetVm for BadRestoreVm {
            fn step_slice(&mut self) -> SliceOutcome {
                SliceOutcome::Running
            }
            fn finish(&mut self) -> VmReport {
                VmReport {
                    vm: self.id,
                    findings: Vec::new(),
                    stats: DeliveryStats::default(),
                    metrics: MetricsRegistry::new(),
                    halted: false,
                    payload: Vec::new(),
                }
            }
            fn snapshot(&mut self) -> Option<Vec<u8>> {
                Some(vec![1, 2, 3])
            }
            fn restore(&mut self, _bytes: &[u8]) -> Result<(), String> {
                Err("corrupt snapshot".to_owned())
            }
        }
        struct BadRestoreFleet;
        impl FleetWorkload for BadRestoreFleet {
            fn build_vm(&self, vm: VmId) -> Box<dyn FleetVm> {
                Box::new(BadRestoreVm { id: vm })
            }
        }
        let result = std::panic::catch_unwind(|| {
            run_fleet_with_policy(
                Arc::new(BadRestoreFleet),
                FleetConfig::new(2, 2),
                Arc::new(RotateEvery(1)),
            )
        });
        let message = panic_message(result.expect_err("restore failure must fail the run"));
        assert!(message.contains("restoring migrated VM"), "{message}");
        assert!(message.contains("corrupt snapshot"), "{message}");
    }

    #[test]
    fn rotate_policy_is_a_pure_function() {
        let p = RotateEvery(3);
        assert_eq!(p.migrate(VmId(0), 3, 0, 4), Some(1));
        assert_eq!(p.migrate(VmId(0), 3, 3, 4), Some(0));
        assert_eq!(p.migrate(VmId(0), 2, 0, 4), None);
        assert_eq!(p.migrate(VmId(0), 3, 0, 1), None, "one worker: nowhere to go");
        assert_eq!(RotateEvery(0).migrate(VmId(0), 5, 0, 4), None, "period 0 never rotates");
    }
}
