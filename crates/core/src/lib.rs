//! # hypertap-core — unified reliability-and-security event logging
//!
//! This crate is the reproduction of HyperTap's primary contribution (DSN
//! 2014): a hypervisor-level monitoring framework in which the **logging**
//! phase is shared by all reliability and security (RnS) monitors and rooted
//! in hardware architectural invariants, while each monitor's **audit**
//! phase runs independently.
//!
//! The pieces map onto the paper's architecture (its Fig. 1 and Fig. 2):
//!
//! * [`intercept`] — the interception engines of §VI, one per row group of
//!   the paper's Table I. Each engine programs VM-exit controls or EPT
//!   permissions on the [`hypertap_hvsim`] substrate and turns raw VM Exits
//!   into typed guest [`event::Event`]s. The pseudo-code of Fig. 3A–E lives
//!   here, tested directly.
//! * [`kvm`] — the KVM hypervisor model with the **Event Forwarder** (EF)
//!   integrated at the exit-dispatch point (the paper's <100-line KVM patch).
//! * [`em`] — the **Event Multiplexer** (EM): buffers events from the EF and
//!   delivers them to registered auditors, either synchronously (blocking
//!   logging, non-blocking audit in-line) or into panic-isolated *audit
//!   containers* (the paper runs auditors in LXC containers on the host).
//! * [`audit`] — the [`audit::Auditor`] trait plus findings plumbing; the
//!   concrete example auditors (GOSHD, HRKD, the Ninjas) live in the
//!   `hypertap-monitors` crate.
//! * [`vmi`] — *traditional* virtual-machine introspection: decoding guest
//!   kernel data structures from memory. Deliberately **untrusted** — this
//!   is the surface DKOM rootkits corrupt — and used only for baseline
//!   monitors and for cross-view validation.
//! * [`derive`] — OS-state derivation rooted at architectural invariants
//!   (TR → TSS → kernel stack → `thread_info` → `task_struct`), the trusted
//!   path of the paper's §IV-B.
//! * [`rhc`] — the **Remote Health Checker**: samples of the event stream
//!   are shipped to an external observer that alarms when the stream stops,
//!   watching the liveness of the monitoring stack itself.
//! * [`metrics`] — zero-dependency observability: a [`metrics::MetricsRegistry`]
//!   of counters/gauges/histograms, span timing for the
//!   exit→decode→fan-out→audit path, and JSON + Prometheus exporters. Host
//!   bookkeeping only — provably side-effect-free on the simulation (the
//!   replay conformance suite diffs metrics-on vs metrics-off runs byte for
//!   byte).
//! * [`fleet`] — the cloud-side fleet layer: a [`fleet::FleetHost`] shards
//!   N independent monitored VMs over a worker-thread pool with a
//!   determinism contract (any worker count reproduces each VM's findings
//!   and traces bit-for-bit), and a [`fleet::FleetAggregator`] merges
//!   per-VM delivery stats, findings and metrics snapshots.
//! * [`telemetry`] — the live telemetry plane: a zero-dependency HTTP
//!   server scraping `/metrics`, `/healthz` and `/vms`, a
//!   [`telemetry::FindingBus`] streaming findings as NDJSON, and the
//!   [`telemetry::SelfWatch`] watchdog that raises `MonitorStalled` when
//!   the monitor itself wedges. Host-side only, like [`metrics`].
//! * [`latency`] — detection-latency accounting: correlates fault-campaign
//!   injection records with finding provenance into per-auditor latency
//!   histograms (virtual-time ns and exit count), the paper's Fig. 5.
//!
//! ## Example: observing process switches from CR3 loads
//!
//! ```
//! use hypertap_core::prelude::*;
//! use hypertap_hvsim::prelude::*;
//!
//! // Assemble a VM whose hypervisor is the HyperTap-enabled KVM model.
//! let mut machine = Machine::new(VmConfig::new(1, 16 << 20), Kvm::new());
//! let (vm, kvm) = machine.parts_mut();
//! kvm.install(vm, Box::new(ProcessSwitchEngine::new()));
//! kvm.em.register(Box::new(CountingAuditor::new()));
//!
//! // A guest that "context switches" between two address spaces.
//! struct TwoProcs;
//! impl GuestProgram for TwoProcs {
//!     fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
//!         cpu.write_cr3(Gpa::new(0x1000));
//!         cpu.write_cr3(Gpa::new(0x2000));
//!         StepOutcome::Continue
//!     }
//! }
//!
//! machine.run_steps(&mut TwoProcs, 4);
//! let counter = machine.hypervisor().em.auditor::<CountingAuditor>().unwrap();
//! assert_eq!(counter.events_seen(), 8);
//! ```

pub mod audit;
pub mod coverage;
pub mod derive;
pub mod em;
pub mod event;
pub mod fleet;
pub mod flight;
pub mod intercept;
pub mod kvm;
pub mod latency;
pub mod metrics;
pub mod profile;
pub mod rhc;
pub mod ring;
pub mod telemetry;
pub mod vmi;

/// Glob import of the framework's main types.
pub mod prelude {
    pub use crate::audit::{Auditor, CountingAuditor, Finding, FindingSink, Severity};
    pub use crate::coverage::{CoverageCollector, CoverageMap, StreamCoverage};
    pub use crate::em::{DeliveryStats, EventMultiplexer, EventTap, TeeTap};
    pub use crate::event::{Event, EventClass, EventKind, EventMask, EventRef, SyscallGate, VmId};
    pub use crate::fleet::{
        run_fleet, run_fleet_telemetry, run_vm_alone, FleetAggregator, FleetConfig, FleetHost,
        FleetReport, FleetVm, FleetWorkload, SliceOutcome, VmReport,
    };
    pub use crate::flight::{FlightDump, FlightError, FlightRecorder, FLIGHT_VERSION};
    pub use crate::intercept::{
        FastSyscallEngine, FineGrainedEngine, IntSyscallEngine, InterceptEngine, IoEngine,
        ProcessSwitchEngine, ThreadSwitchEngine, TssIntegrityEngine,
    };
    pub use crate::kvm::{Kvm, PipelineStats};
    pub use crate::latency::{DetectionLatency, EventIndex, InjectionRecord, LatencySample};
    pub use crate::metrics::{
        collect_vm, Histogram, MetricValue, MetricsArg, MetricsRegistry, Spans,
    };
    pub use crate::profile::OsProfile;
    pub use crate::rhc::{HeartbeatSample, RemoteHealthChecker, RhcTransport};
    pub use crate::ring::{Ring, RingStats};
    pub use crate::telemetry::{
        FindingBus, FindingSubscriber, SelfWatch, TelemetryHub, TelemetryServer, VmPhase, VmProbe,
        VmStatus, WorkerHealth,
    };
}

pub use prelude::*;
