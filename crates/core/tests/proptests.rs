//! Property-based tests for the framework's invariant-bearing pieces: the
//! subscription mask, the Event Multiplexer's delivery accounting, the
//! process counter, and the RHC gap detector.

use hypertap_core::audit::CountingAuditor;
use hypertap_core::em::EventMultiplexer;
use hypertap_core::event::{Event, EventClass, EventKind, EventMask, SyscallGate, VmId};
use hypertap_core::intercept::ProcessCounter;
use hypertap_core::rhc::{HeartbeatSample, RemoteHealthChecker};
use hypertap_hvsim::clock::SimTime;
use hypertap_hvsim::exit::{ExitAction, VcpuSnapshot, VmExit};
use hypertap_hvsim::machine::{Hypervisor, Machine, VmConfig, VmState};
use hypertap_hvsim::mem::Gpa;
use hypertap_hvsim::vcpu::{Vcpu, VcpuId};
use proptest::prelude::*;

struct NoHv;
impl Hypervisor for NoHv {
    fn handle_exit(&mut self, _vm: &mut VmState, _exit: &VmExit) -> ExitAction {
        ExitAction::Resume
    }
}

fn vm_state() -> VmState {
    Machine::new(VmConfig::new(1, 1 << 20), NoHv).into_parts().0
}

fn class_strategy() -> impl Strategy<Value = EventClass> {
    prop::sample::select(EventClass::ALL.to_vec())
}

fn event_of(class: EventClass) -> Event {
    let kind = match class {
        EventClass::ProcessSwitch => EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000) },
        EventClass::ThreadSwitch => EventKind::ThreadSwitch { kernel_stack: 0xA000 },
        EventClass::Syscall => {
            EventKind::Syscall { gate: SyscallGate::Sysenter, number: 1, args: [0; 5] }
        }
        EventClass::Io => EventKind::IoPort { port: 1, write: true, value: 0 },
        EventClass::Interrupt => EventKind::HardwareInterrupt { vector: 0x20 },
        EventClass::Memory => EventKind::MemoryAccess {
            gpa: Gpa::new(0),
            gva: None,
            access: hypertap_hvsim::ept::AccessKind::Read,
            value: None,
        },
        EventClass::Integrity => EventKind::TssRelocated {
            expected: hypertap_hvsim::mem::Gva::new(0),
            found: hypertap_hvsim::mem::Gva::new(1),
        },
    };
    Event {
        vm: VmId(0),
        vcpu: VcpuId(0),
        time: SimTime::from_millis(1),
        kind,
        state: VcpuSnapshot::capture(&Vcpu::new(VcpuId(0))),
    }
}

proptest! {
    /// A mask built from a set of classes contains exactly those classes.
    #[test]
    fn event_mask_is_a_set(classes in prop::collection::vec(class_strategy(), 0..10)) {
        let mask: EventMask = classes.iter().copied().collect();
        for c in EventClass::ALL {
            prop_assert_eq!(mask.contains(c), classes.contains(&c));
        }
        prop_assert_eq!(mask.is_empty(), classes.is_empty());
    }

    /// The EM's delivery statistics are conserved: each event is delivered
    /// to exactly the auditors whose mask matches, and unmatched events are
    /// counted unclaimed.
    #[test]
    fn em_delivery_is_conserved(
        sub_a in class_strategy(),
        sub_b in class_strategy(),
        events in prop::collection::vec(class_strategy(), 1..50),
    ) {
        let mut em = EventMultiplexer::new();
        em.register(Box::new(CountingAuditor::with_mask(EventMask::only(sub_a))));
        em.register(Box::new(CountingAuditor::with_mask(EventMask::only(sub_b))));
        let mut vm = vm_state();
        let mut expected_deliveries = 0u64;
        let mut expected_unclaimed = 0u64;
        for class in &events {
            let matching = [sub_a, sub_b].iter().filter(|s| **s == *class).count() as u64;
            expected_deliveries += matching;
            if matching == 0 {
                expected_unclaimed += 1;
            }
            em.dispatch(&mut vm, &event_of(*class));
        }
        prop_assert_eq!(em.stats().sync_delivered, expected_deliveries);
        prop_assert_eq!(em.stats().unclaimed, expected_unclaimed);
    }

    /// The process counter's raw count equals the number of distinct PDBAs
    /// observed, independent of order and duplication.
    #[test]
    fn process_counter_counts_distinct(pdbas in prop::collection::vec(1u64..64, 1..100)) {
        let mut c = ProcessCounter::new();
        for p in &pdbas {
            c.observe(Gpa::new(p * 0x1000));
        }
        let mut distinct = pdbas.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(c.raw_count(), distinct.len());
        for p in &distinct {
            prop_assert!(c.contains(Gpa::new(p * 0x1000)));
        }
    }

    /// The RHC alarms exactly when the gap since the last sample exceeds
    /// the timeout, for arbitrary monotone sample/check sequences.
    #[test]
    fn rhc_gap_detection(
        timeout in 1u64..1_000_000,
        gaps in prop::collection::vec(1u64..2_000_000, 1..30),
    ) {
        let mut rhc = RemoteHealthChecker::new(timeout);
        let mut now = 0u64;
        let mut last_sample = None;
        for (i, gap) in gaps.iter().enumerate() {
            now += gap;
            if i % 2 == 0 {
                rhc.on_sample(HeartbeatSample { time_ns: now, seq: i as u64 });
                last_sample = Some(now);
            } else {
                let expect_alert = match last_sample {
                    Some(t) => now - t > timeout,
                    None => now > timeout,
                };
                prop_assert_eq!(rhc.check(now).is_some(), expect_alert);
            }
        }
    }
}
