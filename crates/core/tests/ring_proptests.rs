//! Property-based tests for the exit-pipeline ring buffer: FIFO order under
//! arbitrary push/consume interleavings (including wraparound), batch
//! boundaries straddling the physical edge, full/empty transition
//! accounting, and leak-freedom when a non-empty ring is dropped.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use hypertap_core::ring::Ring;
use proptest::prelude::*;

proptest! {
    /// Under any interleaving of pushes, consumes and pops the ring agrees
    /// item-for-item with an unbounded FIFO model, `as_slices` always
    /// presents the staged batch in FIFO order across the physical split,
    /// and the push/pop/reject counters balance with occupancy.
    #[test]
    fn ring_matches_fifo_model(
        capacity in 1usize..16,
        ops in prop::collection::vec((0usize..3, 0usize..16), 1..200),
    ) {
        let mut r = Ring::new(capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        let mut expected_rejected = 0u64;
        for (kind, amount) in ops {
            match kind {
                0 => {
                    for _ in 0..amount {
                        match r.try_push(next) {
                            Ok(()) => model.push_back(next),
                            Err(v) => {
                                prop_assert_eq!(v, next, "refused push returns the item");
                                expected_rejected += 1;
                            }
                        }
                        next += 1;
                    }
                }
                1 => {
                    let n = amount.min(r.len());
                    let (a, b) = r.as_slices();
                    let staged: Vec<u32> = a.iter().chain(b).copied().collect();
                    let want: Vec<u32> = model.iter().copied().collect();
                    prop_assert_eq!(staged, want, "FIFO order across the physical split");
                    r.consume(n);
                    for _ in 0..n {
                        model.pop_front();
                    }
                }
                _ => {
                    let mut out = Vec::new();
                    let moved = r.pop_into(&mut out, amount);
                    prop_assert_eq!(moved, out.len());
                    for v in out {
                        prop_assert_eq!(Some(v), model.pop_front());
                    }
                }
            }
            prop_assert_eq!(r.len(), model.len());
            prop_assert_eq!(r.is_empty(), model.is_empty());
            prop_assert_eq!(r.is_full(), model.len() == capacity);
            prop_assert_eq!(r.free(), capacity - model.len());
            let s = r.stats();
            prop_assert_eq!(s.rejected, expected_rejected);
            // Conservation: everything pushed is either still staged or
            // was popped/consumed.
            prop_assert_eq!(s.pushed - s.popped, model.len() as u64);
            prop_assert!(s.high_watermark <= capacity as u64);
        }
    }

    /// A small ring driven long enough must physically wrap: some staged
    /// batch straddles the buffer edge and comes back from `as_slices` as
    /// two non-empty runs whose concatenation is still FIFO-ordered.
    #[test]
    fn batches_straddle_the_edge(
        capacity in 2usize..8,
        seeds in prop::collection::vec((1usize..8, 0usize..8), 64..128),
    ) {
        let mut r = Ring::new(capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        let mut straddled = false;
        for (push_n, consume_seed) in seeds {
            for _ in 0..push_n {
                if r.try_push(next).is_ok() {
                    model.push_back(next);
                }
                next += 1;
            }
            let (a, b) = r.as_slices();
            if !a.is_empty() && !b.is_empty() {
                straddled = true;
                let glued: Vec<u32> = a.iter().chain(b).copied().collect();
                let want: Vec<u32> = model.iter().copied().collect();
                prop_assert_eq!(glued, want, "straddled batch stays FIFO");
            }
            // Keep the head advancing so the ring must eventually wrap:
            // always consume at least one staged item when any is staged.
            let n = (consume_seed % (r.len() + 1)).max(usize::from(!r.is_empty()));
            r.consume(n);
            for _ in 0..n {
                model.pop_front();
            }
        }
        prop_assert!(straddled, "head never wrapped a {}-slot ring", capacity);
    }

    /// Filling to capacity and draining to empty round-trips cleanly for
    /// any capacity and any number of cycles: the full/empty predicates
    /// flip exactly at the boundaries and no rejection is ever counted for
    /// an in-capacity push.
    #[test]
    fn full_empty_transitions(capacity in 1usize..32, cycles in 1usize..8) {
        let mut r = Ring::new(capacity);
        let mut next = 0u32;
        for _ in 0..cycles {
            prop_assert!(r.is_empty());
            for i in 0..capacity {
                prop_assert!(!r.is_full());
                prop_assert!(r.try_push(next).is_ok());
                next += 1;
                prop_assert_eq!(r.len(), i + 1);
            }
            prop_assert!(r.is_full());
            prop_assert_eq!(r.try_push(next), Err(next));
            for i in 0..capacity {
                prop_assert!(!r.is_empty());
                prop_assert!(r.try_pop().is_some());
                prop_assert_eq!(r.len(), capacity - i - 1);
            }
            prop_assert!(r.is_empty());
            prop_assert_eq!(r.try_pop(), None);
        }
        let s = r.stats();
        prop_assert_eq!(s.pushed, (cycles * capacity) as u64);
        prop_assert_eq!(s.popped, (cycles * capacity) as u64);
        prop_assert_eq!(s.rejected, cycles as u64);
        prop_assert_eq!(s.high_watermark, capacity as u64);
    }

    /// Dropping a ring (or clearing it) drops every staged item exactly
    /// once — no leaks, no double drops — for any occupancy, including a
    /// head that has wrapped partway around the buffer.
    #[test]
    fn drop_drains_without_leaks(
        capacity in 1usize..16,
        advance in 0usize..32,
        staged in 0usize..16,
        clear_first in any::<bool>(),
    ) {
        static LIVE: AtomicUsize = AtomicUsize::new(0);

        struct Tracked;
        impl Tracked {
            fn new() -> Self {
                LIVE.fetch_add(1, Ordering::SeqCst);
                Tracked
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }

        prop_assert_eq!(LIVE.load(Ordering::SeqCst), 0);
        {
            let mut r = Ring::new(capacity);
            // Advance the head so the staged run may straddle the edge.
            // (A refused push returns the item, whose Drop balances LIVE.)
            for _ in 0..advance {
                drop(r.try_push(Tracked::new()));
                drop(r.try_pop());
            }
            let mut accepted = 0usize;
            for _ in 0..staged {
                match r.try_push(Tracked::new()) {
                    Ok(()) => accepted += 1,
                    Err(t) => drop(t),
                }
            }
            prop_assert_eq!(LIVE.load(Ordering::SeqCst), accepted);
            if clear_first {
                r.clear();
                prop_assert_eq!(LIVE.load(Ordering::SeqCst), 0);
                prop_assert!(r.is_empty());
            }
        }
        prop_assert_eq!(LIVE.load(Ordering::SeqCst), 0, "drop leaked or double-dropped");
    }
}
