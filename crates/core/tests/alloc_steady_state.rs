//! Steady-state allocation audit of the exit hot path.
//!
//! The forwarder→EM→auditor path must not allocate once warmed up: the
//! decode scratch, the staging ring and the EM's findings buffer are all
//! reused across exits. Before the batched-pipeline rework,
//! `Kvm::handle_exit` built two fresh `Vec`s per eventful exit (one of
//! `EventKind`s from the engines, one of assembled `Event`s), so this test
//! failed with hundreds of counted allocations; it now passes with zero on
//! both the batched and the unbatched fallback path.
//!
//! Lives in `tests/` so the counting `#[global_allocator]` is scoped to
//! this one integration-test binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use hypertap_core::prelude::*;
use hypertap_hvsim::cpu::{CpuCtx, StepOutcome};
use hypertap_hvsim::machine::{GuestProgram, Machine, VmConfig};
use hypertap_hvsim::mem::Gpa;

/// Counts heap allocations while `ARMED`; delegates to the system
/// allocator either way.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Two engines' worth of traffic per step: a context switch and a port
/// write — the same workload the pipeline equivalence tests use.
struct Chatty;
impl GuestProgram for Chatty {
    fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
        cpu.write_cr3(Gpa::new(0x3000));
        cpu.pio_out(0x3f8, 0x41);
        StepOutcome::Continue
    }
}

fn steady_state_allocs(batched: bool) -> u64 {
    // The armed window must not overlap another test's allocations: the
    // harness runs tests on concurrent threads, and ARMED is global.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = SERIAL.lock().unwrap();

    let mut m = Machine::new(VmConfig::new(1, 1 << 20), Kvm::new());
    let (vm, kvm) = m.parts_mut();
    kvm.set_batched(batched);
    kvm.install(vm, Box::new(ProcessSwitchEngine::new()));
    kvm.install(vm, Box::new(IoEngine::new()));
    kvm.em.register(Box::new(CountingAuditor::new()));

    // Warm up: first exits grow the decode scratch to its working size and
    // fill the flight recorder's fixed ring.
    m.run_steps(&mut Chatty, 300);

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    m.run_steps(&mut Chatty, 200);
    ARMED.store(false, Ordering::SeqCst);
    let counted = ALLOCS.load(Ordering::SeqCst);

    // The workload really ran through the whole path.
    assert!(m.hypervisor().forwarded_events() >= 1000);
    counted
}

#[test]
fn batched_path_is_allocation_free_in_steady_state() {
    let allocs = steady_state_allocs(true);
    assert_eq!(allocs, 0, "batched exit path allocated {allocs} times in steady state");
}

#[test]
fn unbatched_fallback_is_allocation_free_in_steady_state() {
    let allocs = steady_state_allocs(false);
    assert_eq!(allocs, 0, "unbatched exit path allocated {allocs} times in steady state");
}
