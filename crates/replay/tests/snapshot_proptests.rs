//! Property-based snapshot equivalence: interrupting a monitored guest at
//! a random slice boundary — serializing the whole machine to a `.htsp`
//! blob, restoring it into a recipe-fresh VM, and running on — must be
//! indistinguishable from never interrupting it.
//!
//! The property sweeps random scenarios (workload mixes, lock faults,
//! rootkit insertions) across vCPU counts 1–4, software TLB on/off and the
//! batched exit pipeline on/off, and compares *everything* the monitoring
//! stack produces: findings (with their provenance [`EventRef`]s), the
//! recorded HTRC trace bytes, the EM delivery counters, and the merged
//! metrics snapshot.
//!
//! Durations are capped at 40 ms per case; CI runs a reduced case count
//! via `PROPTEST_CASES`.
//!
//! [`EventRef`]: hypertap_core::event::EventRef

use hypertap_core::audit::Finding;
use hypertap_core::em::DeliveryStats;
use hypertap_core::metrics::MetricsRegistry;
use hypertap_core::prelude::VmId;
use hypertap_hvsim::clock::Duration;
use hypertap_hvsim::machine::RunExit;
use hypertap_replay::recorder::TraceRecorder;
use hypertap_replay::scenario::{build_scenario_vm, ConfigVariant, Scenario};
use hypertap_replay::trace::TraceHeader;
use proptest::prelude::*;

const CAP: Duration = Duration::from_millis(40);
const SLICE: Duration = Duration::from_millis(10);

fn variant_for(tlb: bool, batched: bool) -> ConfigVariant {
    let label = match (tlb, batched) {
        (true, true) => "snapprop/tlb-on/batch-on",
        (true, false) => "snapprop/tlb-on/batch-off",
        (false, true) => "snapprop/tlb-off/batch-on",
        (false, false) => "snapprop/tlb-off/batch-off",
    };
    ConfigVariant {
        label,
        tlb,
        fine: true,
        extra_vectors: &[],
        metrics: false,
        flight: true,
        batched,
    }
}

/// Everything a run produces that the equivalence contract covers.
struct Outcome {
    trace: Vec<u8>,
    findings: Vec<Finding>,
    stats: DeliveryStats,
    metrics: MetricsRegistry,
}

fn recorded_vm(s: &Scenario, v: &ConfigVariant) -> (hypertap_monitors::TapVm, TraceRecorder) {
    let mut vm = build_scenario_vm(s, v, VmId(0));
    let recorder =
        TraceRecorder::new(TraceHeader::new(s.vcpus as u64, s.seed, s.name.clone(), v.label));
    vm.machine.hypervisor_mut().em.attach_tap(recorder.tap());
    (vm, recorder)
}

fn collect(mut vm: hypertap_monitors::TapVm, recorder: TraceRecorder) -> Outcome {
    vm.machine.hypervisor_mut().em.detach_tap();
    Outcome {
        trace: recorder.finish().encode(),
        findings: vm.drain_findings(),
        stats: vm.machine.hypervisor().em.stats(),
        metrics: vm.metrics_snapshot(),
    }
}

/// The control: one uninterrupted run to the scenario deadline.
fn run_uninterrupted(s: &Scenario, v: &ConfigVariant) -> Outcome {
    let (mut vm, recorder) = recorded_vm(s, v);
    vm.run_for(s.duration);
    collect(vm, recorder)
}

/// The interrupted run: `boundary` slices, then snapshot → recipe-fresh
/// rebuild → restore → run to the deadline on the restored copy.
fn run_interrupted(s: &Scenario, v: &ConfigVariant, boundary: u64) -> Outcome {
    let (mut vm, recorder) = recorded_vm(s, v);
    let deadline = vm.now() + s.duration;
    for _ in 0..boundary {
        let before = vm.now();
        let target = (before + SLICE).min(deadline);
        match vm.run_until(target) {
            RunExit::Shutdown | RunExit::Paused => break,
            RunExit::AllIdle if vm.now() == before => break,
            _ => {}
        }
        if vm.now() >= deadline {
            break;
        }
    }
    let bytes = vm.snapshot().expect("scenario VM snapshots at a slice boundary");
    let (mut restored, _old_tap) = {
        let mut fresh = build_scenario_vm(s, v, VmId(0));
        fresh.restore(&bytes).expect("snapshot restores into the same recipe");
        // The recorder's buffer is shared: hand the restored VM a new tap
        // into it and let the interrupted VM (and its tap box) drop.
        fresh.machine.hypervisor_mut().em.attach_tap(recorder.tap());
        (fresh, vm)
    };
    drop(_old_tap);
    restored.run_until(deadline);
    collect(restored, recorder)
}

proptest! {
    /// snapshot → restore → run ≡ run, over scenarios × vCPUs 1–4 ×
    /// TLB on/off × batched on/off × random interruption boundary.
    #[test]
    fn snapshot_restore_run_equals_uninterrupted_run(
        seed in 0u64..u64::MAX,
        ordinal in 0u64..64,
        vcpus in 1usize..=4,
        tlb in any::<bool>(),
        batched in any::<bool>(),
        boundary in 0u64..5,
    ) {
        let mut s = Scenario::sample(seed, ordinal);
        s.vcpus = vcpus;
        if s.duration > CAP {
            s.duration = CAP;
        }
        let v = variant_for(tlb, batched);
        let control = run_uninterrupted(&s, &v);
        let interrupted = run_interrupted(&s, &v, boundary);
        prop_assert_eq!(
            &interrupted.findings, &control.findings,
            "{} vcpus={} tlb={} batched={} boundary={}: findings (with provenance) must match",
            s.name, vcpus, tlb, batched, boundary
        );
        prop_assert_eq!(&interrupted.stats, &control.stats, "{}: delivery stats", s.name);
        prop_assert_eq!(
            &interrupted.metrics, &control.metrics,
            "{}: merged metrics snapshots must match", s.name
        );
        prop_assert_eq!(
            &interrupted.trace, &control.trace,
            "{}: recorded HTRC trace bytes must match", s.name
        );
    }
}
