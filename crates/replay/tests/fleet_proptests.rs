//! Property-based fleet determinism: a sharded fleet run at ANY worker
//! count must reproduce, per VM, the findings and the recorded HTRC
//! trace of running that VM alone, byte for byte.
//!
//! This is the tentpole contract of `hypertap_core::fleet` exercised
//! end-to-end through real monitored guests: random base seeds sample
//! random scenario mixes (workloads, lock faults, rootkit insertions)
//! per VM, and random worker counts in {1, 2, 4, 8} shard them. The
//! recorded traces are compared with [`diff_traces`] under
//! [`DiffPolicy::Exact`] on top of the raw byte equality, so a failure
//! names the first divergent record instead of just "bytes differ".
//!
//! Durations are capped at 30 ms per member to keep the property cheap
//! enough for many cases; CI runs a reduced case count via
//! `PROPTEST_CASES`.

use hypertap_core::prelude::VmId;
use hypertap_hvsim::clock::Duration;
use hypertap_replay::diff::{diff_traces, DiffPolicy};
use hypertap_replay::fleet::{run_member_alone, run_scenario_fleet, ScenarioFleet};
use hypertap_replay::trace::Trace;
use proptest::prelude::*;

fn quick_fleet(base_seed: u64) -> ScenarioFleet {
    ScenarioFleet::new(base_seed).capped(Duration::from_millis(30))
}

proptest! {
    /// Per-VM findings and recorded traces from a sharded fleet run are
    /// byte-identical to running each VM alone, for every sampled
    /// worker count.
    #[test]
    fn fleet_runs_are_bit_identical_to_single_vm_runs(
        base_seed in 0u64..u64::MAX,
        vms in 1usize..6,
        workers_sel in 0usize..4,
    ) {
        let workers = [1, 2, 4, 8][workers_sel];
        let fleet = quick_fleet(base_seed);
        let report = run_scenario_fleet(&fleet, vms, workers);
        prop_assert_eq!(report.per_vm.len(), vms);
        for (i, got) in report.per_vm.iter().enumerate() {
            prop_assert_eq!(got.vm, VmId(i as u32));
            let want = run_member_alone(&fleet, got.vm);
            prop_assert_eq!(
                &got.findings, &want.findings,
                "vm {} findings under {} workers", i, workers
            );
            prop_assert_eq!(&got.stats, &want.stats, "vm {} stats", i);
            if got.payload != want.payload {
                // Decode for a diagnosis that names the divergent record.
                let lt = Trace::decode(&got.payload).expect("fleet trace decodes");
                let rt = Trace::decode(&want.payload).expect("baseline trace decodes");
                let div = diff_traces(&lt, &rt, DiffPolicy::Exact);
                prop_assert!(
                    false,
                    "vm {} trace diverged under {} workers: {:?}",
                    i, workers, div
                );
            }
            prop_assert!(!got.payload.is_empty(), "member must record events");
        }
    }
}
