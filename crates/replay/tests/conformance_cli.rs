//! CLI contract tests for the `conformance` binary: malformed
//! `--inject-divergence` values are rejected with an error instead of
//! silently degrading to index 0, and well-formed values still drive the
//! self-test.

use std::process::Command;

fn conformance() -> Command {
    Command::new(env!("CARGO_BIN_EXE_conformance"))
}

#[test]
fn malformed_inject_divergence_is_rejected() {
    for bad in ["zero", "-1", "1.5", ""] {
        let out = conformance()
            .args(["--scenarios", "1", "--inject-divergence", bad])
            .output()
            .expect("spawn conformance");
        assert_eq!(
            out.status.code(),
            Some(2),
            "value {bad:?} must be rejected, got {:?}\nstdout: {}",
            out.status,
            String::from_utf8_lossy(&out.stdout)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--inject-divergence") && stderr.contains("record index"),
            "stderr must name the flag and the expectation, got: {stderr}"
        );
    }
}

#[test]
fn well_formed_inject_divergence_runs_the_self_test() {
    let out = conformance()
        .args(["--scenarios", "1", "--pair", "tlb-off", "--inject-divergence", "5"])
        .output()
        .expect("spawn conformance");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "self-test run must pass, got {:?}\nstdout: {stdout}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("self-test: injected divergence at index 5 detected in 1/1"),
        "stdout must report the self-test at the requested index, got: {stdout}"
    );
}
