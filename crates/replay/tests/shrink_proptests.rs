//! Property-based tests for the divergence shrinker: a trace tampered at
//! index *i* must shrink to a still-diverging prefix of at most *i* + 1
//! records, for arbitrary record mixes and arbitrary tamper positions.

use hypertap_core::event::{Event, EventKind, VmId};
use hypertap_hvsim::clock::SimTime;
use hypertap_hvsim::exit::VcpuSnapshot;
use hypertap_hvsim::mem::{Gpa, Gva};
use hypertap_hvsim::vcpu::{Cpl, VcpuId};
use hypertap_replay::diff::{diff_traces, DiffPolicy};
use hypertap_replay::mutate::{apply_all, TraceMutation};
use hypertap_replay::shrink::{minimize_mutations, shrink_diverging_prefix};
use hypertap_replay::trace::{Trace, TraceHeader, TraceRecord};
use proptest::prelude::*;

fn record_of(kind_sel: u8, time_ns: u64, vcpu: u8) -> TraceRecord {
    let kind = match kind_sel % 4 {
        0 => return TraceRecord::Tick(SimTime::from_nanos(time_ns)),
        1 => EventKind::ProcessSwitch { new_pdba: Gpa::new((time_ns & !0xFFF) | 0x1000) },
        2 => EventKind::ThreadSwitch { kernel_stack: time_ns ^ 0xAA },
        _ => EventKind::HardwareInterrupt { vector: kind_sel },
    };
    TraceRecord::Event(Event {
        vm: VmId(0),
        vcpu: VcpuId(vcpu as usize % 4),
        time: SimTime::from_nanos(time_ns),
        kind,
        state: VcpuSnapshot::from_parts(
            Gpa::new(0x1000),
            Gva::new(time_ns),
            Gva::new(0),
            Gva::new(0),
            Cpl::Kernel,
            [0; 7],
        ),
    })
}

fn trace_of(raw: &[(u8, u64, u8)]) -> Trace {
    Trace {
        header: TraceHeader::new(4, 42, "shrink-proptest", "any"),
        records: raw.iter().map(|&(k, t, v)| record_of(k, t, v)).collect(),
    }
}

proptest! {
    /// The satellite contract: tampering at index i (modulo length) makes
    /// the pair diverge, and the shrinker returns a prefix that still
    /// diverges and holds no more than i + 1 records.
    #[test]
    fn tampered_trace_shrinks_to_at_most_index_plus_one(
        raw in prop::collection::vec((0u8..=255, 0u64..1_000_000, 0u8..=255), 1..120),
        at in 0u64..10_000,
    ) {
        let base = trace_of(&raw);
        let i = at % base.records.len() as u64;
        let mut tampered = base.clone();
        tampered.tamper(at);
        let shrunk = shrink_diverging_prefix(&base, &tampered, DiffPolicy::Exact)
            .expect("a tampered trace diverges from its base");
        prop_assert!(
            shrunk.keep as u64 <= i + 1,
            "prefix of {} records for a tamper at index {i}",
            shrunk.keep
        );
        prop_assert!(
            diff_traces(&shrunk.left, &shrunk.right, DiffPolicy::Exact).is_some(),
            "the shrunk prefix must still diverge"
        );
        prop_assert_eq!(shrunk.divergence.index, i, "divergence sits at the tampered record");
    }

    /// Mutation-set minimization never returns a superset and always
    /// returns a subset that still triggers the predicate.
    #[test]
    fn minimized_mutation_sets_still_trigger(
        raw in prop::collection::vec((0u8..=255, 0u64..1_000_000, 0u8..=255), 4..60),
        tamper_at in 0u64..10_000,
        noise_at in 0u64..10_000,
        noise_delta in 1u64..1_000,
    ) {
        let base = trace_of(&raw);
        let muts = vec![
            TraceMutation::PerturbTime { index: noise_at, delta_ns: noise_delta },
            TraceMutation::Tamper { index: tamper_at },
        ];
        let still_diverges = |t: &Trace| diff_traces(&base, t, DiffPolicy::Exact).is_some();
        let minimal = minimize_mutations(&base, &muts, still_diverges)
            .expect("tamper plus noise diverges");
        prop_assert!(!minimal.is_empty(), "an empty mutation set cannot diverge from base");
        prop_assert!(minimal.len() <= muts.len());
        let mut t = base.clone();
        apply_all(&mut t, &minimal);
        prop_assert!(still_diverges(&t), "the minimized set must still diverge");
    }
}
