//! Property-based tests for the trace codec: encoding round-trips exactly,
//! and malformed input — truncation anywhere, byte corruption anywhere —
//! produces a structured [`TraceError`], never a panic.

use hypertap_core::event::{Event, EventKind, SyscallGate, VmId};
use hypertap_hvsim::clock::SimTime;
use hypertap_hvsim::ept::AccessKind;
use hypertap_hvsim::exit::VcpuSnapshot;
use hypertap_hvsim::mem::{Gpa, Gva};
use hypertap_hvsim::vcpu::{Cpl, VcpuId};
use hypertap_replay::trace::{compress, decompress, Trace, TraceHeader, TraceRecord};
use proptest::prelude::*;

/// Builds a record from sampled raw material. `kind_sel` picks among all
/// nine event kinds plus the tick record; `payload` seeds every field so
/// round-tripping exercises full-width values.
fn record_of(kind_sel: u8, time_ns: u64, vcpu: u8, payload: u64) -> TraceRecord {
    let kind = match kind_sel % 10 {
        0 => return TraceRecord::Tick(SimTime::from_nanos(time_ns)),
        1 => EventKind::ProcessSwitch { new_pdba: Gpa::new(payload & !0xFFF) },
        2 => EventKind::ThreadSwitch { kernel_stack: payload },
        3 => EventKind::Syscall {
            gate: if payload & 1 == 0 {
                SyscallGate::Interrupt((payload >> 1) as u8)
            } else {
                SyscallGate::Sysenter
            },
            number: payload >> 8,
            args: [payload, !payload, payload.rotate_left(13), 0, u64::MAX],
        },
        4 => EventKind::IoPort {
            port: payload as u16,
            write: payload & 1 == 1,
            value: payload >> 16,
        },
        5 => EventKind::MmioAccess { gpa: Gpa::new(payload), write: payload & 2 == 2 },
        6 => EventKind::HardwareInterrupt { vector: payload as u8 },
        7 => EventKind::ApicAccess { offset: (payload & 0xFFF) as u16 },
        8 => EventKind::MemoryAccess {
            gpa: Gpa::new(payload),
            gva: if payload & 1 == 0 { Some(Gva::new(!payload)) } else { None },
            access: match payload % 3 {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                _ => AccessKind::Execute,
            },
            value: if payload & 2 == 0 { Some(payload >> 2) } else { None },
        },
        _ => EventKind::TssRelocated {
            expected: Gva::new(payload),
            found: Gva::new(payload.wrapping_add(0x1000)),
        },
    };
    TraceRecord::Event(Event {
        vm: VmId(0),
        vcpu: VcpuId(vcpu as usize % 4),
        time: SimTime::from_nanos(time_ns),
        kind,
        state: VcpuSnapshot::from_parts(
            Gpa::new(payload & !0xFFF),
            Gva::new(payload ^ 0xAAAA),
            Gva::new(payload >> 1),
            Gva::new(payload.rotate_right(7)),
            if payload & 4 == 0 { Cpl::Kernel } else { Cpl::User },
            [payload, payload >> 1, 0, u64::MAX, payload.wrapping_mul(3), 1, payload ^ u64::MAX],
        ),
    })
}

fn trace_of(raw: &[(u8, u64, u8, u64)]) -> Trace {
    Trace {
        header: TraceHeader::new(4, 42, "proptest", "any"),
        records: raw.iter().map(|&(k, t, v, p)| record_of(k, t, v, p)).collect(),
    }
}

proptest! {
    /// Arbitrary record sequences — any kind mix, non-monotone times, full
    /// 64-bit payloads — survive encode/decode and compress/decompress
    /// without loss.
    #[test]
    fn encode_decode_round_trips(
        raw in prop::collection::vec(
            (0u8..=255, 0u64..u64::MAX, 0u8..=255, 0u64..u64::MAX),
            0..300,
        ),
    ) {
        let trace = trace_of(&raw);
        let bytes = trace.encode();
        let decoded = Trace::decode(&bytes).expect("well-formed bytes decode");
        prop_assert_eq!(&decoded, &trace);
        let unpacked = decompress(&compress(&bytes)).expect("round-trip");
        prop_assert_eq!(unpacked, bytes);
    }

    /// Truncating an encoded trace at any point yields a structured error,
    /// never a panic and never a silent partial decode.
    #[test]
    fn truncation_never_panics(
        raw in prop::collection::vec(
            (0u8..=255, 0u64..u64::MAX, 0u8..=255, 0u64..u64::MAX),
            1..80,
        ),
        cut_frac in 0u64..10_000,
    ) {
        let bytes = trace_of(&raw).encode();
        let cut = (cut_frac as usize * (bytes.len() - 1)) / 10_000;
        prop_assert!(
            Trace::decode(&bytes[..cut]).is_err(),
            "decode of a {cut}-byte prefix of {} bytes must fail",
            bytes.len()
        );
    }

    /// Flipping any single byte leaves decode panic-free: it either still
    /// decodes (e.g. a flipped bit inside an unvalidated payload) or
    /// returns a structured error — and decompression of corrupted
    /// compressed bytes behaves the same.
    #[test]
    fn corruption_never_panics(
        raw in prop::collection::vec(
            (0u8..=255, 0u64..u64::MAX, 0u8..=255, 0u64..u64::MAX),
            1..80,
        ),
        pos_frac in 0u64..10_000,
        flip in 1u8..=255,
    ) {
        let mut bytes = trace_of(&raw).encode();
        let pos = (pos_frac as usize * (bytes.len() - 1)) / 10_000;
        bytes[pos] ^= flip;
        let _ = Trace::decode(&bytes);

        let mut packed = compress(&bytes);
        let pos = (pos_frac as usize * (packed.len() - 1)) / 10_000;
        packed[pos] ^= flip;
        let _ = decompress(&packed);
    }
}
