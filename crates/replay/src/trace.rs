//! The versioned binary trace format.
//!
//! A trace is the full record of what the Event Forwarder handed the Event
//! Multiplexer during one run: every decoded [`Event`] (with the trusted
//! [`VcpuSnapshot`] captured at its VM Exit) plus every EM periodic tick, in
//! delivery order. The format is designed around two properties:
//!
//! * **Compactness.** Integers are LEB128 varints, event times are
//!   zigzag-encoded deltas from the previous record, and vCPU snapshots are
//!   delta-encoded against the previous snapshot of the *same* vCPU with a
//!   changed-field bitmask — consecutive exits of one vCPU usually change
//!   only RIP and a register or two.
//! * **Seekability.** Every [`SYNC_INTERVAL`] records the encoder emits a
//!   *sync barrier*: the per-vCPU delta state is reset and the next record
//!   is written in absolute form (absolute timestamp, full snapshot). The
//!   trailing index lists every barrier's record ordinal, byte offset and
//!   timestamp, so a reader can decode from any barrier without touching
//!   the bytes before it.
//!
//! Layout:
//!
//! ```text
//! "HTRC"  varint(version) varint(vcpus) varint(seed)
//!         str(scenario) str(config)
//! records: 0x01 delta event | 0x02 delta tick | 0x03 sync event
//!          | 0x04 sync tick, ... , 0xFF end
//! index:  varint(count) { varint(ordinal) varint(offset) varint(time_ns) }*
//! "HTRE"
//! ```
//!
//! Decoding never panics on malformed input: every failure mode is a
//! structured [`TraceError`].

use hypertap_core::event::{Event, EventKind, SyscallGate, VmId};
use hypertap_hvsim::clock::SimTime;
use hypertap_hvsim::ept::AccessKind;
use hypertap_hvsim::exit::VcpuSnapshot;
use hypertap_hvsim::mem::{Gpa, Gva};
use hypertap_hvsim::vcpu::{Cpl, VcpuId};
use std::collections::HashMap;
use std::fmt;

/// Leading magic of an uncompressed trace.
pub const TRACE_MAGIC: [u8; 4] = *b"HTRC";
/// Trailing magic sealing the index.
const END_MAGIC: [u8; 4] = *b"HTRE";
/// Leading magic of an RLE-compressed trace (golden files on disk).
pub const COMPRESSED_MAGIC: [u8; 4] = *b"HTRZ";
/// Current format version.
pub const TRACE_VERSION: u64 = 1;
/// Records between sync barriers (index granularity).
pub const SYNC_INTERVAL: usize = 256;

const REC_EVENT_DELTA: u8 = 0x01;
const REC_TICK_DELTA: u8 = 0x02;
const REC_EVENT_SYNC: u8 = 0x03;
const REC_TICK_SYNC: u8 = 0x04;
const REC_END: u8 = 0xFF;

/// Structured decode failure. Carries the byte offset at which decoding
/// stopped so corrupt golden files are diagnosable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The input does not start with `HTRC`.
    BadMagic,
    /// The input does not end with the `HTRE` seal.
    BadTrailer,
    /// A version this reader does not understand.
    UnsupportedVersion(u64),
    /// Input ended inside a field.
    UnexpectedEof { offset: usize },
    /// A varint ran past 10 bytes.
    VarintOverflow { offset: usize },
    /// An unknown record or field tag.
    BadTag { offset: usize, tag: u8 },
    /// A structurally valid field with an impossible value.
    BadValue { offset: usize, what: &'static str },
    /// A string field was not UTF-8.
    BadString { offset: usize },
    /// A delta record referenced a vCPU with no snapshot base since the
    /// last sync barrier.
    MissingSnapshotBase { offset: usize, vcpu: usize },
    /// Bytes remained after the trailer.
    TrailingGarbage { offset: usize },
    /// The compressed wrapper does not start with `HTRZ`.
    BadCompressionMagic,
    /// A compressed run ran past the end of input or output.
    CorruptCompression { offset: usize },
    /// Decompressed length does not match the header's claim.
    LengthMismatch { expected: usize, got: usize },
    /// An index entry points outside the record section.
    BadIndexEntry { ordinal: u64 },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => f.write_str("not a trace: bad magic (want HTRC)"),
            TraceError::BadTrailer => f.write_str("trace trailer missing (want HTRE)"),
            TraceError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of input at byte {offset}")
            }
            TraceError::VarintOverflow { offset } => write!(f, "varint overflow at byte {offset}"),
            TraceError::BadTag { offset, tag } => {
                write!(f, "unknown tag {tag:#04x} at byte {offset}")
            }
            TraceError::BadValue { offset, what } => write!(f, "bad {what} at byte {offset}"),
            TraceError::BadString { offset } => write!(f, "non-UTF-8 string at byte {offset}"),
            TraceError::MissingSnapshotBase { offset, vcpu } => {
                write!(f, "delta for vcpu{vcpu} without snapshot base at byte {offset}")
            }
            TraceError::TrailingGarbage { offset } => {
                write!(f, "trailing garbage after trailer at byte {offset}")
            }
            TraceError::BadCompressionMagic => {
                f.write_str("not a compressed trace: bad magic (want HTRZ)")
            }
            TraceError::CorruptCompression { offset } => {
                write!(f, "corrupt compression run at byte {offset}")
            }
            TraceError::LengthMismatch { expected, got } => {
                write!(f, "decompressed length mismatch: header says {expected}, got {got}")
            }
            TraceError::BadIndexEntry { ordinal } => {
                write!(f, "index entry for record {ordinal} points outside the record section")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Trace metadata: identifies what produced the record stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version (see [`TRACE_VERSION`]).
    pub version: u64,
    /// vCPU count of the recorded machine.
    pub vcpus: u64,
    /// Scenario seed (0 when not seed-derived).
    pub seed: u64,
    /// Scenario label (e.g. `quickstart`).
    pub scenario: String,
    /// Configuration label (e.g. `tlb-on/fine`).
    pub config: String,
}

impl TraceHeader {
    /// A header for the current version.
    pub fn new(
        vcpus: u64,
        seed: u64,
        scenario: impl Into<String>,
        config: impl Into<String>,
    ) -> Self {
        TraceHeader {
            version: TRACE_VERSION,
            vcpus,
            seed,
            scenario: scenario.into(),
            config: config.into(),
        }
    }
}

/// One entry of the record stream: a forwarded event or an EM tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceRecord {
    /// A decoded guest operation delivered to the EM.
    Event(Event),
    /// An EM periodic tick at the given simulated time.
    Tick(SimTime),
}

impl TraceRecord {
    /// The record's simulated time.
    pub fn time(&self) -> SimTime {
        match self {
            TraceRecord::Event(e) => e.time,
            TraceRecord::Tick(t) => *t,
        }
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceRecord::Event(e) => write!(f, "{e}"),
            TraceRecord::Tick(t) => write!(f, "[{t}] em tick"),
        }
    }
}

/// One sync barrier in the trailing index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Ordinal of the barrier record in the stream (0-based).
    pub ordinal: u64,
    /// Byte offset of the barrier record from the start of the trace.
    pub offset: u64,
    /// Absolute simulated time of the barrier record, in nanoseconds.
    pub time_ns: u64,
}

/// The seek index: every sync barrier, in stream order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceIndex {
    /// Barrier entries in ascending ordinal order.
    pub entries: Vec<IndexEntry>,
}

impl TraceIndex {
    /// The last barrier at or before `t` — the place to start decoding to
    /// cover everything from `t` on.
    pub fn seek(&self, t: SimTime) -> Option<&IndexEntry> {
        self.entries.iter().rev().find(|e| e.time_ns <= t.as_nanos())
    }
}

/// A recorded run: header plus the ordered record stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Metadata.
    pub header: TraceHeader,
    /// Events and ticks in delivery order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Number of event records.
    pub fn event_count(&self) -> u64 {
        self.records.iter().filter(|r| matches!(r, TraceRecord::Event(_))).count() as u64
    }

    /// Number of tick records.
    pub fn tick_count(&self) -> u64 {
        self.records.iter().filter(|r| matches!(r, TraceRecord::Tick(_))).count() as u64
    }

    /// Deliberately corrupts the record at `index` (modulo the stream
    /// length) by shifting its time one nanosecond forward. Used by the
    /// conformance fuzzer's `--inject-divergence` self-test: a harness
    /// that cannot detect a known-bad trace proves nothing.
    pub fn tamper(&mut self, index: u64) {
        if self.records.is_empty() {
            return;
        }
        let i = (index as usize) % self.records.len();
        match &mut self.records[i] {
            TraceRecord::Event(e) => e.time = SimTime::from_nanos(e.time.as_nanos() + 1),
            TraceRecord::Tick(t) => *t = SimTime::from_nanos(t.as_nanos() + 1),
        }
    }

    /// Iterates over the event records.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.records.iter().filter_map(|r| match r {
            TraceRecord::Event(e) => Some(e),
            TraceRecord::Tick(_) => None,
        })
    }

    /// Serializes the trace (records + index + trailer).
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Enc { buf: Vec::new() };
        enc.buf.extend_from_slice(&TRACE_MAGIC);
        enc.varint(self.header.version);
        enc.varint(self.header.vcpus);
        enc.varint(self.header.seed);
        enc.string(&self.header.scenario);
        enc.string(&self.header.config);

        let mut index = Vec::new();
        let mut snaps: HashMap<usize, VcpuSnapshot> = HashMap::new();
        let mut last_ns = 0u64;
        let mut since_sync = SYNC_INTERVAL; // force a barrier on the first record
        for (ordinal, rec) in self.records.iter().enumerate() {
            let barrier = since_sync >= SYNC_INTERVAL;
            if barrier {
                snaps.clear();
                since_sync = 0;
                index.push(IndexEntry {
                    ordinal: ordinal as u64,
                    offset: enc.buf.len() as u64,
                    time_ns: rec.time().as_nanos(),
                });
            }
            since_sync += 1;
            match rec {
                TraceRecord::Tick(t) => {
                    if barrier {
                        enc.byte(REC_TICK_SYNC);
                        enc.varint(t.as_nanos());
                    } else {
                        enc.byte(REC_TICK_DELTA);
                        enc.varint(zigzag(t.as_nanos().wrapping_sub(last_ns) as i64));
                    }
                    last_ns = t.as_nanos();
                }
                TraceRecord::Event(e) => {
                    // Outside a barrier a vCPU's first appearance still needs
                    // a full snapshot; it is written in sync form but is not
                    // an index target (the barrier before it is).
                    let full = barrier || !snaps.contains_key(&e.vcpu.0);
                    enc.byte(if full { REC_EVENT_SYNC } else { REC_EVENT_DELTA });
                    enc.varint(e.vcpu.0 as u64);
                    if full {
                        enc.varint(e.time.as_nanos());
                    } else {
                        enc.varint(zigzag(e.time.as_nanos().wrapping_sub(last_ns) as i64));
                    }
                    enc.varint(e.vm.0 as u64);
                    enc.kind(&e.kind);
                    if full {
                        enc.snapshot_full(&e.state);
                    } else {
                        // `full` is false only when the map has the base.
                        let prev = snaps[&e.vcpu.0];
                        enc.snapshot_delta(&prev, &e.state);
                    }
                    snaps.insert(e.vcpu.0, e.state);
                    last_ns = e.time.as_nanos();
                }
            }
        }
        enc.byte(REC_END);
        enc.varint(index.len() as u64);
        for entry in &index {
            enc.varint(entry.ordinal);
            enc.varint(entry.offset);
            enc.varint(entry.time_ns);
        }
        enc.buf.extend_from_slice(&END_MAGIC);
        enc.buf
    }

    /// Deserializes a trace, discarding the index.
    pub fn decode(bytes: &[u8]) -> Result<Trace, TraceError> {
        Trace::decode_with_index(bytes).map(|(t, _)| t)
    }

    /// Deserializes a trace together with its seek index. The index is
    /// validated against the decoded records.
    pub fn decode_with_index(bytes: &[u8]) -> Result<(Trace, TraceIndex), TraceError> {
        let mut dec = Dec { bytes, pos: 0 };
        let magic = dec.take(4)?;
        if magic != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = dec.varint()?;
        if version != TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let vcpus = dec.varint()?;
        let seed = dec.varint()?;
        let scenario = dec.string()?;
        let config = dec.string()?;
        let header = TraceHeader { version, vcpus, seed, scenario, config };

        let mut records = Vec::new();
        let mut offsets = Vec::new();
        let mut snaps: HashMap<usize, VcpuSnapshot> = HashMap::new();
        let mut last_ns = 0u64;
        loop {
            let rec_offset = dec.pos;
            let tag = dec.byte()?;
            match tag {
                REC_END => break,
                REC_TICK_SYNC => {
                    last_ns = dec.varint()?;
                    offsets.push(rec_offset);
                    records.push(TraceRecord::Tick(SimTime::from_nanos(last_ns)));
                }
                REC_TICK_DELTA => {
                    last_ns = apply_delta(last_ns, dec.varint()?);
                    offsets.push(rec_offset);
                    records.push(TraceRecord::Tick(SimTime::from_nanos(last_ns)));
                }
                REC_EVENT_SYNC | REC_EVENT_DELTA => {
                    let vcpu = dec.varint()? as usize;
                    last_ns = if tag == REC_EVENT_SYNC {
                        dec.varint()?
                    } else {
                        apply_delta(last_ns, dec.varint()?)
                    };
                    let vm = dec.varint()?;
                    if vm > u32::MAX as u64 {
                        return Err(TraceError::BadValue { offset: rec_offset, what: "vm id" });
                    }
                    let kind = dec.kind()?;
                    let state = if tag == REC_EVENT_SYNC {
                        dec.snapshot_full()?
                    } else {
                        let base = *snaps
                            .get(&vcpu)
                            .ok_or(TraceError::MissingSnapshotBase { offset: rec_offset, vcpu })?;
                        dec.snapshot_delta(&base)?
                    };
                    snaps.insert(vcpu, state);
                    offsets.push(rec_offset);
                    records.push(TraceRecord::Event(Event {
                        vm: VmId(vm as u32),
                        vcpu: VcpuId(vcpu),
                        time: SimTime::from_nanos(last_ns),
                        kind,
                        state,
                    }));
                }
                _ => return Err(TraceError::BadTag { offset: rec_offset, tag }),
            }
        }

        let count = dec.varint()?;
        let mut index = TraceIndex::default();
        for _ in 0..count {
            let ordinal = dec.varint()?;
            let offset = dec.varint()?;
            let time_ns = dec.varint()?;
            let valid = offsets.get(ordinal as usize).is_some_and(|&o| o as u64 == offset)
                && records.get(ordinal as usize).is_some_and(|r| r.time().as_nanos() == time_ns);
            if !valid {
                return Err(TraceError::BadIndexEntry { ordinal });
            }
            index.entries.push(IndexEntry { ordinal, offset, time_ns });
        }
        let trailer = dec.take(4)?;
        if trailer != END_MAGIC {
            return Err(TraceError::BadTrailer);
        }
        if dec.pos != bytes.len() {
            return Err(TraceError::TrailingGarbage { offset: dec.pos });
        }
        Ok((Trace { header, records }, index))
    }

    /// Decodes the record suffix starting at a sync barrier, without
    /// touching any byte before it — the seek path. The entry must come
    /// from this trace's own index.
    pub fn decode_from(bytes: &[u8], entry: &IndexEntry) -> Result<Vec<TraceRecord>, TraceError> {
        let start = entry.offset as usize;
        if start >= bytes.len() {
            return Err(TraceError::BadIndexEntry { ordinal: entry.ordinal });
        }
        let mut dec = Dec { bytes, pos: start };
        let mut records = Vec::new();
        let mut snaps: HashMap<usize, VcpuSnapshot> = HashMap::new();
        let mut last_ns = 0u64;
        let mut first = true;
        loop {
            let rec_offset = dec.pos;
            let tag = dec.byte()?;
            if first && tag != REC_EVENT_SYNC && tag != REC_TICK_SYNC {
                return Err(TraceError::BadValue {
                    offset: rec_offset,
                    what: "seek target (not a sync record)",
                });
            }
            first = false;
            match tag {
                REC_END => break,
                REC_TICK_SYNC => {
                    last_ns = dec.varint()?;
                    records.push(TraceRecord::Tick(SimTime::from_nanos(last_ns)));
                }
                REC_TICK_DELTA => {
                    last_ns = apply_delta(last_ns, dec.varint()?);
                    records.push(TraceRecord::Tick(SimTime::from_nanos(last_ns)));
                }
                REC_EVENT_SYNC | REC_EVENT_DELTA => {
                    let vcpu = dec.varint()? as usize;
                    last_ns = if tag == REC_EVENT_SYNC {
                        dec.varint()?
                    } else {
                        apply_delta(last_ns, dec.varint()?)
                    };
                    let vm = dec.varint()?;
                    if vm > u32::MAX as u64 {
                        return Err(TraceError::BadValue { offset: rec_offset, what: "vm id" });
                    }
                    let kind = dec.kind()?;
                    let state = if tag == REC_EVENT_SYNC {
                        dec.snapshot_full()?
                    } else {
                        let base = *snaps
                            .get(&vcpu)
                            .ok_or(TraceError::MissingSnapshotBase { offset: rec_offset, vcpu })?;
                        dec.snapshot_delta(&base)?
                    };
                    snaps.insert(vcpu, state);
                    records.push(TraceRecord::Event(Event {
                        vm: VmId(vm as u32),
                        vcpu: VcpuId(vcpu),
                        time: SimTime::from_nanos(last_ns),
                        kind,
                        state,
                    }));
                }
                _ => return Err(TraceError::BadTag { offset: rec_offset, tag }),
            }
        }
        Ok(records)
    }
}

fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Wrapping delta application: together with the wrapping subtraction on
/// the encode side this round-trips *any* pair of u64 timestamps exactly,
/// while keeping ordinary monotone traces one-or-two-byte compact.
fn apply_delta(last_ns: u64, encoded: u64) -> u64 {
    last_ns.wrapping_add(unzigzag(encoded) as u64)
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn byte(&mut self, b: u8) {
        self.buf.push(b);
    }

    fn varint(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                return;
            }
            self.buf.push(b | 0x80);
        }
    }

    fn string(&mut self, s: &str) {
        self.varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn kind(&mut self, kind: &EventKind) {
        match kind {
            EventKind::ProcessSwitch { new_pdba } => {
                self.byte(0);
                self.varint(new_pdba.value());
            }
            EventKind::ThreadSwitch { kernel_stack } => {
                self.byte(1);
                self.varint(*kernel_stack);
            }
            EventKind::Syscall { gate, number, args } => {
                self.byte(2);
                match gate {
                    SyscallGate::Interrupt(v) => {
                        self.byte(0);
                        self.byte(*v);
                    }
                    SyscallGate::Sysenter => self.byte(1),
                }
                self.varint(*number);
                for a in args {
                    self.varint(*a);
                }
            }
            EventKind::IoPort { port, write, value } => {
                self.byte(3);
                self.varint(*port as u64);
                self.byte(*write as u8);
                self.varint(*value);
            }
            EventKind::MmioAccess { gpa, write } => {
                self.byte(4);
                self.varint(gpa.value());
                self.byte(*write as u8);
            }
            EventKind::HardwareInterrupt { vector } => {
                self.byte(5);
                self.byte(*vector);
            }
            EventKind::ApicAccess { offset } => {
                self.byte(6);
                self.varint(*offset as u64);
            }
            EventKind::MemoryAccess { gpa, gva, access, value } => {
                self.byte(7);
                self.varint(gpa.value());
                match gva {
                    Some(g) => {
                        self.byte(1);
                        self.varint(g.value());
                    }
                    None => self.byte(0),
                }
                self.byte(match access {
                    AccessKind::Read => 0,
                    AccessKind::Write => 1,
                    AccessKind::Execute => 2,
                });
                match value {
                    Some(v) => {
                        self.byte(1);
                        self.varint(*v);
                    }
                    None => self.byte(0),
                }
            }
            EventKind::TssRelocated { expected, found } => {
                self.byte(8);
                self.varint(expected.value());
                self.varint(found.value());
            }
        }
    }

    fn snapshot_full(&mut self, s: &VcpuSnapshot) {
        self.varint(s.cr3.value());
        self.varint(s.tr_base.value());
        self.varint(s.rsp.value());
        self.varint(s.rip.value());
        self.byte(cpl_code(s.cpl));
        for g in s.gprs_raw() {
            self.varint(g);
        }
    }

    fn snapshot_delta(&mut self, prev: &VcpuSnapshot, s: &VcpuSnapshot) {
        let mut mask = 0u8;
        if s.cr3 != prev.cr3 {
            mask |= 1 << 0;
        }
        if s.tr_base != prev.tr_base {
            mask |= 1 << 1;
        }
        if s.rsp != prev.rsp {
            mask |= 1 << 2;
        }
        if s.rip != prev.rip {
            mask |= 1 << 3;
        }
        if s.cpl != prev.cpl {
            mask |= 1 << 4;
        }
        let (gprs, prev_gprs) = (s.gprs_raw(), prev.gprs_raw());
        let mut gpr_mask = 0u8;
        for (i, (now, was)) in gprs.iter().zip(prev_gprs.iter()).enumerate() {
            if now != was {
                gpr_mask |= 1 << i;
            }
        }
        self.byte(mask);
        self.byte(gpr_mask);
        if mask & (1 << 0) != 0 {
            self.varint(s.cr3.value());
        }
        if mask & (1 << 1) != 0 {
            self.varint(s.tr_base.value());
        }
        if mask & (1 << 2) != 0 {
            self.varint(s.rsp.value());
        }
        if mask & (1 << 3) != 0 {
            self.varint(s.rip.value());
        }
        if mask & (1 << 4) != 0 {
            self.byte(cpl_code(s.cpl));
        }
        for (i, g) in gprs.iter().enumerate() {
            if gpr_mask & (1 << i) != 0 {
                self.varint(*g);
            }
        }
    }
}

fn cpl_code(c: Cpl) -> u8 {
    match c {
        Cpl::Kernel => 0,
        Cpl::User => 1,
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn byte(&mut self) -> Result<u8, TraceError> {
        let b = *self.bytes.get(self.pos).ok_or(TraceError::UnexpectedEof { offset: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(TraceError::UnexpectedEof { offset: self.pos })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let start = self.pos;
        let mut v = 0u64;
        for i in 0..10 {
            let b = self.byte()?;
            let payload = (b & 0x7F) as u64;
            if i == 9 && payload > 1 {
                return Err(TraceError::VarintOverflow { offset: start });
            }
            v |= payload << (7 * i);
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(TraceError::VarintOverflow { offset: start })
    }

    fn string(&mut self) -> Result<String, TraceError> {
        let start = self.pos;
        let len = self.varint()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| TraceError::BadString { offset: start })
    }

    fn kind(&mut self) -> Result<EventKind, TraceError> {
        let start = self.pos;
        let tag = self.byte()?;
        Ok(match tag {
            0 => EventKind::ProcessSwitch { new_pdba: Gpa::new(self.varint()?) },
            1 => EventKind::ThreadSwitch { kernel_stack: self.varint()? },
            2 => {
                let gate = match self.byte()? {
                    0 => SyscallGate::Interrupt(self.byte()?),
                    1 => SyscallGate::Sysenter,
                    _ => return Err(TraceError::BadValue { offset: start, what: "syscall gate" }),
                };
                let number = self.varint()?;
                let mut args = [0u64; 5];
                for a in &mut args {
                    *a = self.varint()?;
                }
                EventKind::Syscall { gate, number, args }
            }
            3 => {
                let port = self.varint()?;
                if port > u16::MAX as u64 {
                    return Err(TraceError::BadValue { offset: start, what: "io port" });
                }
                let write = self.flag(start, "io direction")?;
                EventKind::IoPort { port: port as u16, write, value: self.varint()? }
            }
            4 => {
                let gpa = Gpa::new(self.varint()?);
                EventKind::MmioAccess { gpa, write: self.flag(start, "mmio direction")? }
            }
            5 => EventKind::HardwareInterrupt { vector: self.byte()? },
            6 => {
                let offset = self.varint()?;
                if offset > u16::MAX as u64 {
                    return Err(TraceError::BadValue { offset: start, what: "apic offset" });
                }
                EventKind::ApicAccess { offset: offset as u16 }
            }
            7 => {
                let gpa = Gpa::new(self.varint()?);
                let gva = if self.flag(start, "gva presence")? {
                    Some(Gva::new(self.varint()?))
                } else {
                    None
                };
                let access = match self.byte()? {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    2 => AccessKind::Execute,
                    _ => return Err(TraceError::BadValue { offset: start, what: "access kind" }),
                };
                let value =
                    if self.flag(start, "value presence")? { Some(self.varint()?) } else { None };
                EventKind::MemoryAccess { gpa, gva, access, value }
            }
            8 => EventKind::TssRelocated {
                expected: Gva::new(self.varint()?),
                found: Gva::new(self.varint()?),
            },
            _ => return Err(TraceError::BadTag { offset: start, tag }),
        })
    }

    fn flag(&mut self, offset: usize, what: &'static str) -> Result<bool, TraceError> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(TraceError::BadValue { offset, what }),
        }
    }

    fn cpl(&mut self) -> Result<Cpl, TraceError> {
        let offset = self.pos;
        match self.byte()? {
            0 => Ok(Cpl::Kernel),
            1 => Ok(Cpl::User),
            _ => Err(TraceError::BadValue { offset, what: "cpl" }),
        }
    }

    fn snapshot_full(&mut self) -> Result<VcpuSnapshot, TraceError> {
        let cr3 = Gpa::new(self.varint()?);
        let tr_base = Gva::new(self.varint()?);
        let rsp = Gva::new(self.varint()?);
        let rip = Gva::new(self.varint()?);
        let cpl = self.cpl()?;
        let mut gprs = [0u64; 7];
        for g in &mut gprs {
            *g = self.varint()?;
        }
        Ok(VcpuSnapshot::from_parts(cr3, tr_base, rsp, rip, cpl, gprs))
    }

    fn snapshot_delta(&mut self, base: &VcpuSnapshot) -> Result<VcpuSnapshot, TraceError> {
        let mask = self.byte()?;
        let gpr_mask = self.byte()?;
        if mask & 0xE0 != 0 || gpr_mask & 0x80 != 0 {
            return Err(TraceError::BadValue { offset: self.pos - 2, what: "snapshot mask" });
        }
        let cr3 = if mask & (1 << 0) != 0 { Gpa::new(self.varint()?) } else { base.cr3 };
        let tr_base = if mask & (1 << 1) != 0 { Gva::new(self.varint()?) } else { base.tr_base };
        let rsp = if mask & (1 << 2) != 0 { Gva::new(self.varint()?) } else { base.rsp };
        let rip = if mask & (1 << 3) != 0 { Gva::new(self.varint()?) } else { base.rip };
        let cpl = if mask & (1 << 4) != 0 { self.cpl()? } else { base.cpl };
        let mut gprs = base.gprs_raw();
        for (i, g) in gprs.iter_mut().enumerate() {
            if gpr_mask & (1 << i) != 0 {
                *g = self.varint()?;
            }
        }
        Ok(VcpuSnapshot::from_parts(cr3, tr_base, rsp, rip, cpl, gprs))
    }
}

// ---------------------------------------------------------------------------
// RLE compression (golden files on disk)
// ---------------------------------------------------------------------------

/// Wraps trace bytes in the simple byte-RLE used for checked-in golden
/// traces: `HTRZ`, varint decompressed length, then runs — a control byte
/// `< 0x80` means "the next `c + 1` bytes are literal", `>= 0x80` means
/// "repeat the next byte `(c & 0x7F) + 3` times".
pub fn compress(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() / 2 + 16);
    out.extend_from_slice(&COMPRESSED_MAGIC);
    let mut len = bytes.len() as u64;
    loop {
        let b = (len & 0x7F) as u8;
        len >>= 7;
        if len == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
    let mut i = 0;
    let mut lit_start = 0;
    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut s = from;
        while s < to {
            let n = (to - s).min(128);
            out.push((n - 1) as u8);
            out.extend_from_slice(&bytes[s..s + n]);
            s += n;
        }
    };
    while i < bytes.len() {
        let b = bytes[i];
        let mut run = 1;
        while i + run < bytes.len() && bytes[i + run] == b && run < 130 {
            run += 1;
        }
        if run >= 3 {
            flush_literals(&mut out, lit_start, i);
            out.push(0x80 | (run - 3) as u8);
            out.push(b);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, lit_start, bytes.len());
    out
}

/// Inverse of [`compress`]. Structured errors, no panics, and the output
/// is bounded by the length claimed in the header.
pub fn decompress(bytes: &[u8]) -> Result<Vec<u8>, TraceError> {
    let mut dec = Dec { bytes, pos: 0 };
    if dec.take(4).map_err(|_| TraceError::BadCompressionMagic)? != COMPRESSED_MAGIC {
        return Err(TraceError::BadCompressionMagic);
    }
    let expected = dec.varint()? as usize;
    let mut out = Vec::new();
    while dec.pos < bytes.len() {
        let at = dec.pos;
        let c = dec.byte()?;
        if c < 0x80 {
            let lit = dec
                .take(c as usize + 1)
                .map_err(|_| TraceError::CorruptCompression { offset: at })?;
            out.extend_from_slice(lit);
        } else {
            let n = (c & 0x7F) as usize + 3;
            let b = dec.byte().map_err(|_| TraceError::CorruptCompression { offset: at })?;
            out.resize(out.len() + n, b);
        }
        if out.len() > expected {
            return Err(TraceError::LengthMismatch { expected, got: out.len() });
        }
    }
    if out.len() != expected {
        return Err(TraceError::LengthMismatch { expected, got: out.len() });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(seed: u64) -> VcpuSnapshot {
        VcpuSnapshot::from_parts(
            Gpa::new(seed * 0x1000),
            Gva::new(0xffff_8000_0000 + seed),
            Gva::new(0x7fff_0000 + seed * 8),
            Gva::new(0x40_0000 + seed * 4),
            if seed.is_multiple_of(2) { Cpl::Kernel } else { Cpl::User },
            [seed, seed + 1, 0, 0, seed * 3, 0, 7],
        )
    }

    fn sample_trace(n: usize) -> Trace {
        let mut records = Vec::new();
        for i in 0..n {
            let t = SimTime::from_nanos(1_000 + i as u64 * 137);
            if i % 7 == 3 {
                records.push(TraceRecord::Tick(t));
            } else {
                records.push(TraceRecord::Event(Event {
                    vm: VmId(0),
                    vcpu: VcpuId(i % 2),
                    time: t,
                    kind: match i % 4 {
                        0 => EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000 * i as u64) },
                        1 => EventKind::Syscall {
                            gate: SyscallGate::Interrupt(0x80),
                            number: i as u64,
                            args: [1, 2, 3, 4, 5],
                        },
                        2 => EventKind::ThreadSwitch { kernel_stack: 0xffff + i as u64 },
                        _ => EventKind::IoPort { port: 0x3f8, write: true, value: i as u64 },
                    },
                    state: snap((i / 3) as u64),
                }));
            }
        }
        Trace { header: TraceHeader::new(2, 42, "unit", "tlb-on"), records }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = sample_trace(600);
        let bytes = trace.encode();
        let (back, index) = Trace::decode_with_index(&bytes).expect("decode");
        assert_eq!(back, trace);
        // 600 records at a 256-record sync interval → 3 barriers.
        assert_eq!(index.entries.len(), 3);
        assert_eq!(index.entries[0].ordinal, 0);
    }

    #[test]
    fn delta_encoding_is_compact() {
        let trace = sample_trace(600);
        let bytes = trace.encode();
        // Full snapshots alone would be ≥ 11 varints/event; the delta form
        // should land well under 40 bytes per record on this stream.
        assert!(
            bytes.len() < trace.records.len() * 40,
            "{} bytes for {} records",
            bytes.len(),
            trace.records.len()
        );
    }

    #[test]
    fn seek_decodes_identical_suffix() {
        let trace = sample_trace(600);
        let bytes = trace.encode();
        let (full, index) = Trace::decode_with_index(&bytes).expect("decode");
        let entry = index.entries.last().expect("barriers exist");
        let suffix = Trace::decode_from(&bytes, entry).expect("seek decode");
        assert_eq!(suffix.as_slice(), &full.records[entry.ordinal as usize..]);
        let sought = index.seek(SimTime::from_nanos(entry.time_ns)).expect("seek hit");
        assert_eq!(sought.ordinal, entry.ordinal);
    }

    #[test]
    fn truncation_is_a_structured_error_everywhere() {
        let bytes = sample_trace(40).encode();
        for cut in 0..bytes.len() {
            // Any structured error is fine; what's forbidden is a panic or
            // a silent partial decode.
            assert!(
                Trace::decode(&bytes[..cut]).is_err(),
                "truncated input at {cut} decoded successfully"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        assert_eq!(Trace::decode(b"NOPE"), Err(TraceError::BadMagic));
        let mut bytes = sample_trace(5).encode();
        bytes[4] = 0x63; // version 99
        assert_eq!(Trace::decode(&bytes), Err(TraceError::UnsupportedVersion(99)));
    }

    #[test]
    fn compression_round_trips() {
        let bytes = sample_trace(300).encode();
        let z = compress(&bytes);
        assert_eq!(decompress(&z).expect("decompress"), bytes);
        // Degenerate inputs.
        assert_eq!(decompress(&compress(&[])).expect("empty"), Vec::<u8>::new());
        let runs = vec![0u8; 1000];
        let z = compress(&runs);
        assert!(z.len() < 30, "pure run should collapse, got {} bytes", z.len());
        assert_eq!(decompress(&z).expect("runs"), runs);
    }

    #[test]
    fn corrupt_compression_is_structured() {
        assert_eq!(decompress(b"????"), Err(TraceError::BadCompressionMagic));
        let z = compress(&sample_trace(50).encode());
        assert!(decompress(&z[..z.len() - 3]).is_err());
        let mut lying = z.clone();
        let n = lying.len();
        lying.truncate(n - 1);
        assert!(decompress(&lying).is_err());
    }
}
