//! Fleet conformance: per-VM trace recording under the sharded fleet
//! host, diffed against the sequential single-VM baseline.
//!
//! The fleet determinism contract (see `hypertap_core::fleet`) promises
//! that a VM's recorded [`EventTap`](hypertap_core::em::EventTap) stream
//! is a pure function of the VM, never of the worker count or of its
//! fleet neighbours. This module makes the promise testable with the
//! machinery this crate already has:
//!
//! * [`ScenarioFleet`] — a [`FleetWorkload`] whose members are sampled
//!   [`Scenario`]s (same sampler the conformance fuzzer uses), each
//!   wrapped in a [`FleetMember`] with a [`TraceRecorder`] attached at
//!   the Event Forwarder boundary. The encoded trace rides back in
//!   [`VmReport::payload`].
//! * [`diff_fleet_reports`] — compares two fleet runs per VM: findings,
//!   delivery stats, and the recorded trace bytes; a byte mismatch is
//!   decoded and handed to [`diff_traces`] under [`DiffPolicy::Exact`]
//!   so the report names the first divergent record.
//! * [`encode_fleet_archive`] / [`decode_fleet_archive`] — a `HTFL`
//!   container bundling every per-VM trace of a run into one blob, used
//!   by the fleet golden fixture (compressed to `.htrz` like the
//!   single-VM goldens).

use crate::diff::{diff_traces, DiffPolicy};
use crate::recorder::TraceRecorder;
use crate::scenario::{build_scenario_vm, ConfigVariant, Scenario, BASE};
use crate::trace::{Trace, TraceError, TraceHeader};
use hypertap_core::fleet::{
    run_fleet, run_fleet_with_policy, run_vm_alone, FleetConfig, FleetReport, FleetVm,
    FleetWorkload, RebalancePolicy, SliceOutcome, VmReport,
};
use hypertap_core::prelude::VmId;
use hypertap_hvsim::clock::Duration;
use hypertap_hvsim::snap::{SnapReader, SnapWriter};
use hypertap_monitors::fleet::FleetMember;
use std::sync::Arc;

/// A fleet whose members are sampled conformance [`Scenario`]s, each
/// recording its forwarded stream.
#[derive(Debug, Clone)]
pub struct ScenarioFleet {
    /// Seed the per-VM scenario sampling derives from; VM `i` runs
    /// `Scenario::sample(base_seed, i)`.
    pub base_seed: u64,
    /// The monitoring-plane configuration every member runs under.
    pub variant: ConfigVariant,
    /// Scheduling slice handed to each member per fleet round.
    pub slice: Duration,
    /// Optional cap on each sampled scenario's duration — sampled
    /// durations run 150–400 ms, which is slow for proptest case counts.
    pub duration_cap: Option<Duration>,
}

impl ScenarioFleet {
    /// A fleet over the [`BASE`] variant with 10 ms slices, uncapped.
    pub fn new(base_seed: u64) -> Self {
        ScenarioFleet {
            base_seed,
            variant: BASE,
            slice: Duration::from_millis(10),
            duration_cap: None,
        }
    }

    /// Caps each member's simulated run length (for fast proptests).
    pub fn capped(mut self, cap: Duration) -> Self {
        self.duration_cap = Some(cap);
        self
    }

    /// The scenario VM `vm` runs — a pure function of `(base_seed, vm)`.
    pub fn scenario_for(&self, vm: VmId) -> Scenario {
        let mut s = Scenario::sample(self.base_seed, vm.0 as u64);
        if let Some(cap) = self.duration_cap {
            if s.duration > cap {
                s.duration = cap;
            }
        }
        s
    }
}

/// A fleet member with a [`TraceRecorder`] tapped in at build time; the
/// encoded trace is stowed in [`VmReport::payload`] at finish.
struct RecordingMember {
    member: FleetMember,
    recorder: Option<TraceRecorder>,
}

impl FleetVm for RecordingMember {
    fn step_slice(&mut self) -> SliceOutcome {
        self.member.step_slice()
    }

    fn flight_dump(&mut self, reason: &str) -> Option<Vec<u8>> {
        self.member.flight_dump(reason)
    }

    fn finish(&mut self) -> VmReport {
        self.member.vm_mut().machine.hypervisor_mut().em.detach_tap();
        let mut report = self.member.finish();
        if let Some(recorder) = self.recorder.take() {
            report.payload = recorder.finish().encode();
        }
        report
    }

    fn snapshot(&mut self) -> Option<Vec<u8>> {
        // Member bytes (the VM's `.htsp` plus campaign progress) and the
        // recorder's captured stream — the tap box itself is recipe state
        // and is rebuilt, already attached, on the target worker.
        let recorder = self.recorder.as_ref()?;
        let member = self.member.snapshot_member().ok()?;
        let mut w = SnapWriter::new();
        w.bytes(&member);
        w.bytes(&recorder.snapshot_records());
        Some(w.into_bytes())
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = SnapReader::new(bytes);
        let member = r.bytes().map_err(|e| e.to_string())?.to_vec();
        let records = r.bytes().map_err(|e| e.to_string())?.to_vec();
        r.finish().map_err(|e| e.to_string())?;
        self.member.restore_member(&member).map_err(|e| e.to_string())?;
        let recorder =
            self.recorder.as_mut().ok_or_else(|| "recorder already drained".to_string())?;
        recorder.restore_records(&records)
    }
}

impl FleetWorkload for ScenarioFleet {
    fn build_vm(&self, vm: VmId) -> Box<dyn FleetVm> {
        let scenario = self.scenario_for(vm);
        let mut tap_vm = build_scenario_vm(&scenario, &self.variant, vm);
        let recorder = TraceRecorder::new(TraceHeader::new(
            scenario.vcpus as u64,
            scenario.seed,
            scenario.name.clone(),
            self.variant.label,
        ));
        tap_vm.machine.hypervisor_mut().em.attach_tap(recorder.tap());
        let member = FleetMember::new(tap_vm, vm, scenario.duration, self.slice);
        Box::new(RecordingMember { member, recorder: Some(recorder) })
    }
}

/// Runs a scenario fleet of `vms` VMs on `workers` threads.
pub fn run_scenario_fleet(fleet: &ScenarioFleet, vms: usize, workers: usize) -> FleetReport {
    run_fleet(Arc::new(fleet.clone()), FleetConfig::new(vms, workers))
}

/// Runs a scenario fleet under a mid-campaign [`RebalancePolicy`]: members
/// are live-migrated between workers (snapshot on the source, restore on
/// the target, trace records riding along) without changing any per-VM
/// result — the migration determinism test proves it bit-for-bit.
pub fn run_scenario_fleet_with_policy(
    fleet: &ScenarioFleet,
    vms: usize,
    workers: usize,
    policy: Arc<dyn RebalancePolicy>,
) -> FleetReport {
    run_fleet_with_policy(Arc::new(fleet.clone()), FleetConfig::new(vms, workers), policy)
}

/// Runs one fleet member alone, sequentially — the baseline every
/// worker count must reproduce bit-for-bit.
pub fn run_member_alone(fleet: &ScenarioFleet, vm: VmId) -> VmReport {
    run_vm_alone(fleet, vm)
}

/// Decodes every per-VM recorded trace out of a fleet report.
pub fn fleet_traces(report: &FleetReport) -> Result<Vec<Trace>, TraceError> {
    report.per_vm.iter().map(|r| Trace::decode(&r.payload)).collect()
}

/// Where two fleet runs first disagreed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetDivergence {
    /// The VM whose outputs differ (`VmId(u32::MAX)` for shape mismatches
    /// that precede any per-VM comparison).
    pub vm: VmId,
    /// Human-readable description of the first difference.
    pub detail: String,
}

/// Diffs two fleet runs VM by VM: report shape, findings, delivery
/// stats, then recorded trace bytes (byte mismatches are decoded and
/// diffed [`DiffPolicy::Exact`] to name the first divergent record).
/// Returns `None` when the runs are bit-identical.
pub fn diff_fleet_reports(a: &FleetReport, b: &FleetReport) -> Option<FleetDivergence> {
    if a.per_vm.len() != b.per_vm.len() {
        return Some(FleetDivergence {
            vm: VmId(u32::MAX),
            detail: format!("VM counts differ: {} vs {}", a.per_vm.len(), b.per_vm.len()),
        });
    }
    for (left, right) in a.per_vm.iter().zip(b.per_vm.iter()) {
        if left.vm != right.vm {
            return Some(FleetDivergence {
                vm: left.vm,
                detail: format!("VM order differs: {:?} vs {:?}", left.vm, right.vm),
            });
        }
        if left.findings != right.findings {
            return Some(FleetDivergence {
                vm: left.vm,
                detail: format!(
                    "findings differ: {} vs {}",
                    left.findings.len(),
                    right.findings.len()
                ),
            });
        }
        if left.stats != right.stats {
            return Some(FleetDivergence {
                vm: left.vm,
                detail: format!("delivery stats differ: {:?} vs {:?}", left.stats, right.stats),
            });
        }
        if left.payload != right.payload {
            let detail = match (Trace::decode(&left.payload), Trace::decode(&right.payload)) {
                (Ok(lt), Ok(rt)) => match diff_traces(&lt, &rt, DiffPolicy::Exact) {
                    Some(d) => format!(
                        "traces diverge at record {}: `{}` vs `{}`",
                        d.index, d.left, d.right
                    ),
                    None => "trace bytes differ outside the record stream".to_string(),
                },
                (l, r) => format!("trace decode failed: {l:?} / {r:?}"),
            };
            return Some(FleetDivergence { vm: left.vm, detail });
        }
    }
    None
}

/// Runs the same fleet at two worker counts and diffs the results — the
/// fleet conformance pair. `None` means the sharded run reproduced the
/// other bit-for-bit.
pub fn fleet_conformance_pair(
    fleet: &ScenarioFleet,
    vms: usize,
    workers_a: usize,
    workers_b: usize,
) -> Option<FleetDivergence> {
    let a = run_scenario_fleet(fleet, vms, workers_a);
    let b = run_scenario_fleet(fleet, vms, workers_b);
    diff_fleet_reports(&a, &b)
}

/// Name of the checked-in golden fleet fixture
/// (`crates/replay/golden/fleet_quad.htrz`).
pub const GOLDEN_FLEET_NAME: &str = "fleet_quad";

/// The golden fleet scenario: four sampled VMs under the baseline
/// variant, capped to 60 ms each so the fixture stays small. Recorded by
/// `record-golden` and asserted byte-for-byte in `tests/replay_golden.rs`.
pub fn golden_fleet() -> (ScenarioFleet, usize) {
    (ScenarioFleet::new(0x5EED_F1EE).capped(Duration::from_millis(60)), 4)
}

const FLEET_MAGIC: &[u8; 4] = b"HTFL";

/// Bundles per-VM traces into one `HTFL` blob: magic, little-endian
/// `u32` count, then each trace as a `u64` length prefix plus its
/// [`Trace::encode`] bytes. Wrap in [`compress`](crate::trace::compress)
/// for an `.htrz` fixture.
pub fn encode_fleet_archive(traces: &[Trace]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(FLEET_MAGIC);
    out.extend_from_slice(&(traces.len() as u32).to_le_bytes());
    for trace in traces {
        let bytes = trace.encode();
        out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&bytes);
    }
    out
}

/// Decodes a `HTFL` archive back into its per-VM traces.
pub fn decode_fleet_archive(bytes: &[u8]) -> Result<Vec<Trace>, TraceError> {
    let take = |offset: usize, len: usize| -> Result<&[u8], TraceError> {
        bytes.get(offset..offset + len).ok_or(TraceError::UnexpectedEof { offset })
    };
    if take(0, 4)? != FLEET_MAGIC {
        return Err(TraceError::BadMagic);
    }
    let count = u32::from_le_bytes(take(4, 4)?.try_into().unwrap()) as usize;
    let mut offset = 8;
    let mut traces = Vec::with_capacity(count);
    for _ in 0..count {
        let len = u64::from_le_bytes(take(offset, 8)?.try_into().unwrap()) as usize;
        offset += 8;
        traces.push(Trace::decode(take(offset, len)?)?);
        offset += len;
    }
    if offset != bytes.len() {
        return Err(TraceError::TrailingGarbage { offset });
    }
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_fleet(seed: u64) -> ScenarioFleet {
        ScenarioFleet::new(seed).capped(Duration::from_millis(40))
    }

    #[test]
    fn fleet_traces_match_the_single_vm_baseline_bit_for_bit() {
        let fleet = quick_fleet(0xC0FFEE);
        let vms = 5;
        let report = run_scenario_fleet(&fleet, vms, 3);
        assert_eq!(report.per_vm.len(), vms);
        for got in &report.per_vm {
            let want = run_member_alone(&fleet, got.vm);
            assert_eq!(got.payload, want.payload, "vm {:?} trace", got.vm);
            assert_eq!(got.findings, want.findings, "vm {:?} findings", got.vm);
            assert!(!got.payload.is_empty(), "member must record a trace");
        }
    }

    #[test]
    fn conformance_pair_is_clean_across_worker_counts() {
        let fleet = quick_fleet(0xBEEF);
        assert_eq!(fleet_conformance_pair(&fleet, 6, 1, 4), None);
    }

    #[test]
    fn diff_reports_names_the_divergent_vm() {
        let fleet = quick_fleet(0xD1FF);
        let a = run_scenario_fleet(&fleet, 3, 2);
        let mut b = a.clone();
        b.per_vm[1].payload = run_member_alone(&quick_fleet(0xD1FE), VmId(1)).payload;
        let div = diff_fleet_reports(&a, &b).expect("tampered run must diverge");
        assert_eq!(div.vm, VmId(1));
    }

    #[test]
    fn forced_migrations_preserve_findings_and_traces_bit_for_bit() {
        // The ISSUE's migration determinism test: an 8-VM campaign with
        // forced rebalances (every member migrates at fixed slice indices)
        // must reproduce the 1-worker no-migration run exactly — findings,
        // delivery stats, and recorded HTRC trace bytes.
        use hypertap_core::fleet::RotateEvery;
        let fleet = quick_fleet(0x1417_ECAF);
        let vms = 8;
        let baseline = run_scenario_fleet(&fleet, vms, 1);
        assert_eq!(baseline.per_vm.len(), vms);
        for workers in [1usize, 2, 4, 8] {
            let migrated =
                run_scenario_fleet_with_policy(&fleet, vms, workers, Arc::new(RotateEvery(1)));
            assert_eq!(
                diff_fleet_reports(&baseline, &migrated),
                None,
                "workers={workers}: migration must not change any per-VM output"
            );
        }
    }

    #[test]
    fn fleet_archive_roundtrips() {
        let fleet = quick_fleet(0xA5);
        let report = run_scenario_fleet(&fleet, 3, 2);
        let traces = fleet_traces(&report).expect("payloads decode");
        let blob = encode_fleet_archive(&traces);
        let back = decode_fleet_archive(&blob).expect("archive decodes");
        assert_eq!(back.len(), traces.len());
        for (a, b) in traces.iter().zip(back.iter()) {
            assert_eq!(a.encode(), b.encode());
        }
        assert_eq!(decode_fleet_archive(b"HTXX"), Err(TraceError::BadMagic));
        assert!(decode_fleet_archive(&blob[..blob.len() - 1]).is_err());
    }
}
