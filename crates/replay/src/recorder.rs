//! The trace recorder: an [`EventTap`] at the Event Forwarder boundary.
//!
//! The recorder attaches to the Event Multiplexer's tap point, which sits
//! *before* the combined-subscription fast-skip — so the trace is the full
//! forwarded stream, including events no registered auditor subscribed to.
//! That is the stream the conformance harness diffs: the logging layer's
//! output, independent of which auditors happen to be listening.

use crate::trace::{Trace, TraceHeader, TraceRecord};
use hypertap_core::em::EventTap;
use hypertap_core::event::Event;
use hypertap_hvsim::clock::SimTime;
use std::sync::{Arc, Mutex};

/// Records the forwarded event stream into an in-memory [`Trace`].
///
/// The recorder hands the EM a tap via [`TraceRecorder::tap`]; both share
/// the same buffer, so the recorder can assemble the trace after the run
/// while the EM still owns the tap box.
pub struct TraceRecorder {
    header: TraceHeader,
    shared: Arc<Mutex<Vec<TraceRecord>>>,
}

impl TraceRecorder {
    /// A recorder for a run described by `header`.
    pub fn new(header: TraceHeader) -> Self {
        TraceRecorder { header, shared: Arc::new(Mutex::new(Vec::new())) }
    }

    /// The tap to hand to [`EventMultiplexer::attach_tap`].
    ///
    /// [`EventMultiplexer::attach_tap`]: hypertap_core::em::EventMultiplexer::attach_tap
    pub fn tap(&self) -> Box<dyn EventTap> {
        Box::new(RecorderTap { shared: Arc::clone(&self.shared) })
    }

    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        self.shared.lock().expect("recorder buffer").len()
    }

    /// Whether nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Assembles the trace from everything captured so far.
    pub fn finish(self) -> Trace {
        let records = std::mem::take(&mut *self.shared.lock().expect("recorder buffer"));
        Trace { header: self.header, records }
    }

    /// Serializes everything captured so far as HTRC trace bytes — the
    /// recorder's contribution to a VM migration blob. The EM's tap box is
    /// deliberately not serialized (it is recipe state); only the shared
    /// record buffer travels.
    pub fn snapshot_records(&self) -> Vec<u8> {
        let records = self.shared.lock().expect("recorder buffer").clone();
        Trace { header: self.header.clone(), records }.encode()
    }

    /// Replaces the captured buffer with records from
    /// [`TraceRecorder::snapshot_records`]. The recorder keeps its own
    /// (recipe-built) header; the snapshot's header must match it.
    pub fn restore_records(&mut self, bytes: &[u8]) -> Result<(), String> {
        let trace = Trace::decode(bytes).map_err(|e| e.to_string())?;
        if trace.header != self.header {
            return Err(format!(
                "migrated trace header mismatch: got {}/{}, want {}/{}",
                trace.header.scenario,
                trace.header.config,
                self.header.scenario,
                self.header.config
            ));
        }
        *self.shared.lock().expect("recorder buffer") = trace.records;
        Ok(())
    }
}

struct RecorderTap {
    shared: Arc<Mutex<Vec<TraceRecord>>>,
}

impl EventTap for RecorderTap {
    fn on_event(&mut self, event: &Event) {
        self.shared.lock().expect("recorder buffer").push(TraceRecord::Event(*event));
    }

    fn on_tick(&mut self, now: SimTime) {
        self.shared.lock().expect("recorder buffer").push(TraceRecord::Tick(now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertap_core::event::{EventKind, VmId};
    use hypertap_hvsim::exit::VcpuSnapshot;
    use hypertap_hvsim::mem::{Gpa, Gva};
    use hypertap_hvsim::vcpu::{Cpl, VcpuId};

    #[test]
    fn tap_and_recorder_share_the_buffer() {
        let rec = TraceRecorder::new(TraceHeader::new(1, 0, "unit", "default"));
        let mut tap = rec.tap();
        let ev = Event {
            vm: VmId(0),
            vcpu: VcpuId(0),
            time: SimTime::from_nanos(5),
            kind: EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000) },
            state: VcpuSnapshot::from_parts(
                Gpa::new(0x1000),
                Gva::new(0),
                Gva::new(0),
                Gva::new(0),
                Cpl::Kernel,
                [0; 7],
            ),
        };
        tap.on_event(&ev);
        tap.on_tick(SimTime::from_nanos(9));
        assert_eq!(rec.len(), 2);
        let trace = rec.finish();
        assert_eq!(trace.records[0], TraceRecord::Event(ev));
        assert_eq!(trace.records[1], TraceRecord::Tick(SimTime::from_nanos(9)));
    }
}
