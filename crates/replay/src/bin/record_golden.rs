//! Regenerates the checked-in golden traces.
//!
//! ```text
//! cargo run --release -p hypertap-replay --bin record-golden
//! ```
//!
//! Writes `crates/replay/golden/<name>.htrz` for each golden scenario,
//! plus the 4-VM fleet archive `fleet_quad.htrz`.
//! Run this only when a deliberate behaviour change invalidates the
//! fixtures, and review the byte-size deltas in the commit.

use hypertap_replay::fleet::{
    encode_fleet_archive, fleet_traces, golden_fleet, run_scenario_fleet, GOLDEN_FLEET_NAME,
};
use hypertap_replay::golden::{
    golden_path, golden_scenarios, golden_snapshots, record_snapshot, snapshot_path,
};
use hypertap_replay::scenario::{run_scenario, BASE};
use hypertap_replay::trace::compress;

fn main() {
    for scenario in golden_scenarios() {
        let (trace, verdict) = run_scenario(&scenario, &BASE);
        let raw = trace.encode();
        let packed = compress(&raw);
        let path = golden_path(&scenario.name);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create golden dir");
        }
        std::fs::write(&path, &packed).expect("write golden trace");
        println!(
            "{:<16} {:>7} events {:>6} ticks {:>8} raw B {:>8} packed B  findings {:>3}  -> {}",
            scenario.name,
            trace.event_count(),
            trace.tick_count(),
            raw.len(),
            packed.len(),
            verdict.findings.len(),
            path.display()
        );
    }

    for (name, scenario, at) in golden_snapshots() {
        let bytes = record_snapshot(&scenario, at);
        let path = snapshot_path(&name);
        std::fs::write(&path, &bytes).expect("write golden snapshot");
        println!(
            "{:<16} snapshot of {} at {:?} {:>8} B  -> {}",
            name,
            scenario.name,
            at,
            bytes.len(),
            path.display()
        );
    }

    let (fleet, vms) = golden_fleet();
    let report = run_scenario_fleet(&fleet, vms, 2);
    let traces = fleet_traces(&report).expect("fleet payloads decode");
    let raw = encode_fleet_archive(&traces);
    let packed = compress(&raw);
    let path = golden_path(GOLDEN_FLEET_NAME);
    std::fs::write(&path, &packed).expect("write golden fleet archive");
    println!(
        "{:<16} {:>7} VMs {:>21} raw B {:>8} packed B  -> {}",
        GOLDEN_FLEET_NAME,
        traces.len(),
        raw.len(),
        packed.len(),
        path.display()
    );
}
