//! Differential conformance fuzzer.
//!
//! Samples seeded guest scenarios and runs each under configuration pairs
//! that must be logging-equivalent — software TLB on/off (exact), fine vs
//! coarse interception (projected onto the shared classes), and extra
//! never-firing exception-bitmap vectors (exact) — then diffs the recorded
//! traces and cross-checks that replaying the baseline trace reproduces
//! the live verdict. The flight-recorder pair (retention on/off, exact)
//! rides in the same table. When a pair diverges, both sides' flight
//! recorders are dumped to `.htfr` files and the paths printed; every
//! replayed verdict's finding provenance is validated against the trace
//! it cites.
//!
//! ```text
//! cargo run --release -p hypertap-replay --bin conformance -- \
//!     --scenarios 100 --seed 42
//! ```
//!
//! `--inject-divergence <index>` is the harness self-test: it tampers a
//! copy of each baseline trace (shifting one record's time by 1 ns) and
//! requires the differ to detect and report it — exiting nonzero if the
//! known-bad trace slips through.
//!
//! `--pair <substring>` restricts the run to configuration pairs whose
//! right-hand label contains the substring (e.g. `--pair metrics` for the
//! metrics-on/off determinism check CI runs in isolation).
//!
//! `--fleet <vms>` switches to the fleet conformance pair instead: the
//! same VM fleet is run on `--workers-left` (default 1) and
//! `--workers-right` (default 8) worker threads, and every VM's findings,
//! delivery stats and recorded trace must match byte for byte — the
//! fleet determinism contract under real sharding.

use hypertap_bench::cli::Args;
use hypertap_hvsim::clock::Duration;
use hypertap_replay::diff::{diff_traces, DiffPolicy};
use hypertap_replay::fleet::{fleet_conformance_pair, ScenarioFleet};
use hypertap_replay::replay::{replay_trace, validate_provenance};
use hypertap_replay::scenario::{
    conformance_pairs, register_auditors, run_scenario, run_scenario_variant, scenario_flight_dump,
    Scenario,
};

fn run_fleet_mode(args: &Args, vms: usize, seed: u64) {
    let workers_left = args.get::<usize>("workers-left", 1);
    let workers_right = args.get::<usize>("workers-right", 8);
    let cap_ms = args.get::<u64>("cap-ms", 60);
    println!("== HyperTap fleet conformance ==");
    println!(
        "{vms} VMs   base seed: {seed}   workers: {workers_left} vs {workers_right}   \
         cap: {cap_ms} ms"
    );
    let fleet = ScenarioFleet::new(seed).capped(Duration::from_millis(cap_ms));
    match fleet_conformance_pair(&fleet, vms, workers_left, workers_right) {
        Some(d) => {
            println!("DIVERGENT vm {:?}: {}", d.vm, d.detail);
            eprintln!("fleet conformance FAILED");
            std::process::exit(1);
        }
        None => println!(
            "fleet conformance OK: {vms} VMs bit-identical at {workers_left} and \
             {workers_right} workers"
        ),
    }
}

fn main() {
    let args = Args::parse();
    let seed = args.get::<u64>("seed", 42);
    if args.has("fleet") {
        run_fleet_mode(&args, args.get::<usize>("fleet", 8), seed);
        return;
    }
    let scenarios = args.get::<u64>("scenarios", 25);
    // A malformed index must not silently degrade to 0: the self-test
    // would then "pass" while testing a different record than asked for.
    let inject = args.get_str("inject-divergence").map(|v| match v.parse::<u64>() {
        Ok(at) => at,
        Err(e) => {
            eprintln!("--inject-divergence expects a record index, got {v:?}: {e}");
            std::process::exit(2);
        }
    });
    let pair_filter = args.get_str("pair").map(str::to_owned);

    println!("== HyperTap differential conformance ==");
    println!("scenarios: {scenarios}   base seed: {seed}");

    let mut pairs = conformance_pairs();
    if let Some(filter) = &pair_filter {
        pairs.retain(|(_, right, _)| right.label.contains(filter.as_str()));
        if pairs.is_empty() {
            eprintln!("--pair {filter:?} matched no configuration pair");
            std::process::exit(2);
        }
        let labels: Vec<&str> = pairs.iter().map(|(_, r, _)| r.label).collect();
        println!("pair filter {filter:?}: {labels:?}");
    }
    let mut runs = 0u64;
    let mut divergences = 0u64;
    let mut replay_mismatches = 0u64;
    let mut provenance_failures = 0u64;
    let mut injected_detected = 0u64;
    let mut total_events = 0u64;

    for ordinal in 0..scenarios {
        let scenario = Scenario::sample(seed, ordinal);
        let (base_trace, live_verdict) = run_scenario(&scenario, &pairs[0].0);
        total_events += base_trace.event_count();

        for (left, right, policy) in &pairs {
            let (other_trace, _) = run_scenario_variant(&scenario, right);
            runs += 1;
            let label = format!("{} vs {}", left.label, right.label);
            if let Some(d) = diff_traces(&base_trace, &other_trace, *policy) {
                divergences += 1;
                println!("DIVERGENT {:<24} {}", scenario.name, label);
                println!("{d}");
                // Post-mortem: dump both sides' flight recorders so the
                // divergence can be inspected offline with `flightdump`.
                for (side, variant) in [("left", left), ("right", right)] {
                    let reason =
                        format!("conformance-divergence: {} {label} ({side})", scenario.name);
                    let bytes = scenario_flight_dump(&scenario, variant, &reason);
                    let path = std::env::temp_dir().join(format!(
                        "hypertap-divergence-{ordinal}-{side}-{}.htfr",
                        std::process::id()
                    ));
                    match std::fs::write(&path, bytes) {
                        Ok(()) => println!("  flight dump ({side}): {}", path.display()),
                        Err(e) => println!("  flight dump ({side}) failed: {e}"),
                    }
                }
            }
        }

        // Replay cross-check: audit without the simulator, same verdict.
        let replayed = replay_trace(&base_trace, |em| register_auditors(em, scenario.vcpus));
        if replayed != live_verdict {
            replay_mismatches += 1;
            println!("REPLAY MISMATCH {:<24}", scenario.name);
            println!("  live:     {live_verdict:?}");
            println!("  replayed: {replayed:?}");
        }
        if let Err(e) = validate_provenance(&replayed, &base_trace) {
            provenance_failures += 1;
            println!("PROVENANCE INVALID {:<24} {e}", scenario.name);
        }

        if let Some(at) = inject {
            let mut tampered = base_trace.clone();
            tampered.tamper(at);
            match diff_traces(&base_trace, &tampered, DiffPolicy::Exact) {
                Some(d) => {
                    injected_detected += 1;
                    if ordinal == 0 {
                        println!("injected divergence detected in {}:", scenario.name);
                        println!("{d}");
                    }
                }
                None => {
                    println!("MISSED injected divergence at index {at} in {}", scenario.name);
                }
            }
        }
    }

    println!(
        "{runs} config-pair runs over {scenarios} scenarios ({total_events} baseline events): \
         {divergences} divergences, {replay_mismatches} replay mismatches, \
         {provenance_failures} invalid provenances"
    );
    if let Some(at) = inject {
        println!(
            "self-test: injected divergence at index {at} detected in \
             {injected_detected}/{scenarios} scenarios"
        );
        if injected_detected != scenarios {
            eprintln!("self-test FAILED: tampered traces were not all detected");
            std::process::exit(2);
        }
    }
    if divergences > 0 || replay_mismatches > 0 || provenance_failures > 0 {
        eprintln!("conformance FAILED");
        std::process::exit(1);
    }
    println!("conformance OK");
}
