//! Randomized guest scenarios and interception-configuration variants.
//!
//! The conformance fuzzer samples a [`Scenario`] — a seeded program mix,
//! optionally a locking-discipline fault from the `hypertap-faultinject`
//! catalogue and a rootkit insertion from `hypertap-attacks` — and runs it
//! under several [`ConfigVariant`]s. The scenario fully determines guest
//! behaviour; the variant only changes monitoring-plane knobs that must
//! not be observable in the logged stream (or only by projection).

use crate::diff::DiffPolicy;
use crate::recorder::TraceRecorder;
use crate::replay::Verdict;
use crate::trace::{Trace, TraceHeader};
use hypertap_attacks::rootkits::all_rootkits;
use hypertap_core::audit::CountingAuditor;
use hypertap_core::em::EventMultiplexer;
use hypertap_core::event::{EventClass, EventMask};
use hypertap_core::prelude::VmId;
use hypertap_core::telemetry::{TelemetryHub, TelemetryServer};
use hypertap_faultinject::spec::FaultKind;
use hypertap_guestos::fault::SingleFault;
use hypertap_guestos::kernel::KernelConfig;
use hypertap_guestos::klocks::SITE_COUNT;
use hypertap_guestos::layout;
use hypertap_guestos::program::{UserOp, UserProgram, UserView};
use hypertap_guestos::syscalls::Sysno;
use hypertap_hvsim::clock::Duration;
use hypertap_hvsim::machine::RunExit;
use hypertap_hvsim::snap::{SnapReader, SnapWriter};
use hypertap_monitors::goshd::{Goshd, GoshdConfig};
use hypertap_monitors::harness::{EngineSelection, TapVm};
use hypertap_monitors::hrkd::Hrkd;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The guest program mix of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadMix {
    /// A syscall-heavy writer loop.
    Writer,
    /// The Tower-of-Hanoi compute workload.
    Hanoi,
    /// Serial compilation.
    MakeJ1,
    /// Two-way parallel compilation.
    MakeJ2,
    /// Writer and Hanoi side by side.
    WriterPlusHanoi,
}

impl WorkloadMix {
    /// All mixes, in sampling order.
    pub const ALL: [WorkloadMix; 5] = [
        WorkloadMix::Writer,
        WorkloadMix::Hanoi,
        WorkloadMix::MakeJ1,
        WorkloadMix::MakeJ2,
        WorkloadMix::WriterPlusHanoi,
    ];

    /// The mix's stable label, used in scenario names and the fuzz
    /// corpus's on-disk scenario format.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadMix::Writer => "writer",
            WorkloadMix::Hanoi => "hanoi",
            WorkloadMix::MakeJ1 => "make-j1",
            WorkloadMix::MakeJ2 => "make-j2",
            WorkloadMix::WriterPlusHanoi => "writer+hanoi",
        }
    }

    /// The inverse of [`WorkloadMix::label`].
    pub fn from_label(label: &str) -> Option<WorkloadMix> {
        WorkloadMix::ALL.into_iter().find(|m| m.label() == label)
    }
}

/// One sampled guest scenario. Everything the guest does is a pure
/// function of this description.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name (`s<ordinal>/<mix>` for sampled scenarios).
    pub name: String,
    /// Seed controlling every sampled choice below.
    pub seed: u64,
    /// vCPU count.
    pub vcpus: usize,
    /// Kernel preemption configuration.
    pub preemptible: bool,
    /// Simulated run length.
    pub duration: Duration,
    /// The program mix.
    pub mix: WorkloadMix,
    /// A fault-injection spec: catalogue site + persistence, with the
    /// fault type derived per-site exactly as the campaign derives it.
    pub fault: Option<(u32, bool)>,
    /// Index into [`all_rootkits`] of a rootkit to insert mid-run.
    pub rootkit: Option<usize>,
}

impl Scenario {
    /// Samples scenario number `ordinal` from the fuzzer's base seed.
    pub fn sample(base_seed: u64, ordinal: u64) -> Scenario {
        let seed = base_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(ordinal);
        let mut rng = StdRng::seed_from_u64(seed);
        let mix = WorkloadMix::ALL[rng.gen_range(0usize..WorkloadMix::ALL.len())];
        let vcpus = rng.gen_range(1usize..3);
        let preemptible = rng.gen_range(0u32..2) == 1;
        let duration = Duration::from_millis(rng.gen_range(150u64..400));
        let fault = if rng.gen_range(0u32..3) == 0 {
            Some((rng.gen_range(0u32..SITE_COUNT as u32), rng.gen_range(0u32..2) == 1))
        } else {
            None
        };
        let rootkit = if rng.gen_range(0u32..4) == 0 {
            Some(rng.gen_range(0usize..all_rootkits().len()))
        } else {
            None
        };
        Scenario {
            name: format!("s{ordinal}/{}", mix.label()),
            seed,
            vcpus,
            preemptible,
            duration,
            mix,
            fault,
            rootkit,
        }
    }
}

/// A monitoring-plane configuration under test.
#[derive(Debug, Clone)]
pub struct ConfigVariant {
    /// Display label, also written into the trace header.
    pub label: &'static str,
    /// Software TLB on or off (PR 1's byte-identical invariant).
    pub tlb: bool,
    /// Full engine set (fine) or the context-switch + syscall subset
    /// (coarse). Both program the same exit controls; they differ only in
    /// which classes they decode.
    pub fine: bool,
    /// Extra exception-bitmap vectors to force-enable. Chosen among
    /// vectors the simulated guest never raises, so the exit stream — and
    /// therefore the trace — must not change at all.
    pub extra_vectors: &'static [u8],
    /// Host-side metrics instrumentation on or off. Host bookkeeping only;
    /// the trace must be byte-identical either way.
    pub metrics: bool,
    /// Flight-recorder retention on or off. The ring is host bookkeeping:
    /// event ordinals (and so finding provenance) advance identically
    /// either way, and the trace must be byte-identical.
    pub flight: bool,
    /// Event Forwarder batched ring path (default) or per-event fallback.
    /// A pure performance knob: event ordering, verdicts and provenance
    /// must be bit-identical on both paths.
    pub batched: bool,
}

/// The baseline configuration every pair compares against.
pub const BASE: ConfigVariant = ConfigVariant {
    label: "tlb-on/fine",
    tlb: true,
    fine: true,
    extra_vectors: &[],
    metrics: false,
    flight: true,
    batched: true,
};

/// Baseline with the software TLB off.
pub const NO_TLB: ConfigVariant = ConfigVariant {
    label: "tlb-off/fine",
    tlb: false,
    fine: true,
    extra_vectors: &[],
    metrics: false,
    flight: true,
    batched: true,
};

/// Baseline with the coarse engine subset.
pub const COARSE: ConfigVariant = ConfigVariant {
    label: "tlb-on/coarse",
    tlb: true,
    fine: false,
    extra_vectors: &[],
    metrics: false,
    flight: true,
    batched: true,
};

/// Baseline with never-firing exception vectors added to the exit
/// controls (0x21 / 0x7f / 0xf1: nothing in the simulated guest raises
/// them; 0x80 is the syscall gate and stays untouched).
pub const EXTRA_BITMAP: ConfigVariant = ConfigVariant {
    label: "tlb-on/extra-bitmap",
    tlb: true,
    fine: true,
    extra_vectors: &[0x21, 0x7f, 0xf1],
    metrics: false,
    flight: true,
    batched: true,
};

/// Baseline with full metrics instrumentation (pipeline spans, dispatch
/// latency, per-auditor counters). All of it host-side wall-clock
/// bookkeeping: the simulated stream must be byte-identical to [`BASE`].
pub const METRICS_ON: ConfigVariant = ConfigVariant {
    label: "tlb-on/metrics",
    tlb: true,
    fine: true,
    extra_vectors: &[],
    metrics: true,
    flight: true,
    batched: true,
};

/// Baseline with flight-recorder retention switched off. Ordinal
/// assignment still runs (provenance must not depend on the knob), so
/// both the trace and the verdict — provenance included — must match
/// [`BASE`] exactly.
pub const FLIGHT_OFF: ConfigVariant = ConfigVariant {
    label: "tlb-on/flight-off",
    tlb: true,
    fine: true,
    extra_vectors: &[],
    metrics: false,
    flight: false,
    batched: true,
};

/// Baseline with the Event Forwarder's batched ring path switched off
/// (per-event fallback). Batching is pure plumbing between decode and
/// fan-out: the trace, verdict and provenance must match [`BASE`] exactly.
pub const BATCHED_OFF: ConfigVariant = ConfigVariant {
    label: "tlb-on/batch-off",
    tlb: true,
    fine: true,
    extra_vectors: &[],
    metrics: false,
    flight: true,
    batched: false,
};

/// Baseline knobs, but driven through a snapshot/restore cycle: the run is
/// interrupted every [`SNAPSHOT_CYCLE_EVERY`] slices, serialized to a
/// `.htsp` blob, restored into a freshly built VM, and continued. The
/// machine state crosses the codec repeatedly, so the trace, verdict and
/// provenance must still match [`BASE`] exactly — the snapshot equivalence
/// contract as a conformance pair.
pub const SNAPSHOT_CYCLE: ConfigVariant = ConfigVariant {
    label: "tlb-on/snapshot-cycle",
    tlb: true,
    fine: true,
    extra_vectors: &[],
    metrics: false,
    flight: true,
    batched: true,
};

/// How many 10 ms slices a [`SNAPSHOT_CYCLE`] run takes between snapshot
/// cycles.
pub const SNAPSHOT_CYCLE_EVERY: u64 = 3;

/// Baseline knobs, but driven with the whole live telemetry plane
/// attached: a [`TelemetryHub`] + HTTP server scraped mid-run, an NDJSON
/// findings subscriber draining concurrently, and the EM's finding-bus
/// tap. Telemetry is host-side observation only, so the trace, verdict
/// and provenance must match [`BASE`] exactly.
pub const TELEMETRY_ON: ConfigVariant = ConfigVariant {
    label: "tlb-on/telemetry",
    tlb: true,
    fine: true,
    extra_vectors: &[],
    metrics: false,
    flight: true,
    batched: true,
};

/// The configuration pairs the fuzzer differences, with their policies.
pub fn conformance_pairs() -> Vec<(ConfigVariant, ConfigVariant, DiffPolicy)> {
    vec![
        (BASE, NO_TLB, DiffPolicy::Exact),
        (BASE, COARSE, DiffPolicy::Projected(shared_classes())),
        (BASE, EXTRA_BITMAP, DiffPolicy::Exact),
        (BASE, METRICS_ON, DiffPolicy::Exact),
        (BASE, FLIGHT_OFF, DiffPolicy::Exact),
        (BASE, BATCHED_OFF, DiffPolicy::Exact),
        (BASE, SNAPSHOT_CYCLE, DiffPolicy::Exact),
        (BASE, TELEMETRY_ON, DiffPolicy::Exact),
    ]
}

/// The classes both fine and coarse configurations decode.
pub fn shared_classes() -> EventMask {
    EventMask::only(EventClass::ProcessSwitch)
        .with(EventClass::ThreadSwitch)
        .with(EventClass::Syscall)
}

fn coarse_selection() -> EngineSelection {
    let mut sel = EngineSelection::all();
    sel.tss_integrity = false;
    sel.io = false;
    sel.fine_grained = false;
    sel
}

/// Registers the replayable auditor set used by every conformance run:
/// GOSHD (paper threshold), event-driven HRKD, and a counting auditor.
/// Live runs and replays must call this identically for verdicts to be
/// comparable.
pub fn register_auditors(em: &mut EventMultiplexer, vcpus: usize) {
    em.register(Box::new(Goshd::new(vcpus, GoshdConfig::paper_default())));
    em.register(Box::new(Hrkd::new(layout::os_profile(), layout::KERNEL_TEXT)));
    em.register(Box::new(CountingAuditor::new()));
}

/// The open/write/close loop every scenario can schedule. Serializable so
/// scenario guests can be snapshotted mid-campaign; the op stream is
/// identical to the closure it replaced, keeping the golden fixtures valid.
#[derive(Debug, Default)]
struct WriterLoop {
    n: u32,
}

impl UserProgram for WriterLoop {
    fn next_op(&mut self, _view: &UserView<'_>) -> UserOp {
        self.n += 1;
        match self.n % 3 {
            1 => UserOp::sys(Sysno::Open, &[7]),
            2 => UserOp::sys(Sysno::Write, &[0, 4096]),
            _ => UserOp::sys(Sysno::Close, &[0]),
        }
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut w = SnapWriter::new();
        w.varint(self.n as u64);
        Some(w.into_bytes())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = SnapReader::new(bytes);
        let n = r.varint().map_err(|e| e.to_string())?;
        r.finish().map_err(|e| e.to_string())?;
        self.n = u32::try_from(n).map_err(|_| "writer counter overflow".to_string())?;
        Ok(())
    }
}

/// The stateless malware body a staged rootkit hides: a pure compute spin.
#[derive(Debug, Default)]
struct ComputeSpin;

impl UserProgram for ComputeSpin {
    fn next_op(&mut self, _view: &UserView<'_>) -> UserOp {
        UserOp::Compute(100_000)
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(Vec::new())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err("compute spin carries no state".to_string())
        }
    }
}

/// The scenario init program: spawns each workload, then (optionally) the
/// malware and its hiding rootkit, then settles into a wait loop.
#[derive(Debug)]
struct ScenarioInit {
    workloads: Vec<u64>,
    rootkit: Option<(u64, u64)>,
    stage: u64,
    malware_pid: u64,
}

impl UserProgram for ScenarioInit {
    fn next_op(&mut self, v: &UserView<'_>) -> UserOp {
        self.stage += 1;
        let stage = self.stage as usize;
        if stage <= self.workloads.len() {
            return UserOp::sys(Sysno::Spawn, &[self.workloads[stage - 1], 1000]);
        }
        if let Some((module, malware)) = self.rootkit {
            match stage - self.workloads.len() {
                1 => return UserOp::sys(Sysno::Spawn, &[malware, 1000]),
                2 => {
                    self.malware_pid = v.last_ret;
                    return UserOp::sys(Sysno::Nanosleep, &[20_000_000]);
                }
                3 => return UserOp::sys(Sysno::InstallModule, &[module, self.malware_pid]),
                _ => {}
            }
        }
        UserOp::sys(Sysno::Waitpid, &[])
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        // The workload/rootkit tables are recipe state; only the staging
        // progress and the pid learned from `Spawn` move.
        let mut w = SnapWriter::new();
        w.varint(self.stage);
        w.varint(self.malware_pid);
        Some(w.into_bytes())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = SnapReader::new(bytes);
        self.stage = r.varint().map_err(|e| e.to_string())?;
        self.malware_pid = r.varint().map_err(|e| e.to_string())?;
        r.finish().map_err(|e| e.to_string())
    }
}

/// Builds the scenario's guest inside a fresh monitored VM.
fn install_guest(vm: &mut TapVm, scenario: &Scenario) {
    let writer = vm.kernel.register_program("writer", Box::new(|| Box::new(WriterLoop::default())));
    let hanoi = vm.kernel.register_program(
        "hanoi",
        Box::new(|| Box::new(hypertap_workloads::hanoi::Hanoi::paper_default())),
    );
    let workloads: Vec<u64> = match scenario.mix {
        WorkloadMix::Writer => vec![writer.0],
        WorkloadMix::Hanoi => vec![hanoi.0],
        WorkloadMix::MakeJ1 => vec![hypertap_workloads::make::install(&mut vm.kernel, 1, 12).0],
        WorkloadMix::MakeJ2 => vec![hypertap_workloads::make::install(&mut vm.kernel, 2, 12).0],
        WorkloadMix::WriterPlusHanoi => vec![writer.0, hanoi.0],
    };

    let rootkit = scenario.rootkit.map(|idx| {
        let spec = all_rootkits().swap_remove(idx);
        let module = vm.kernel.register_module(spec);
        let malware = vm.kernel.register_program("malware", Box::new(|| Box::new(ComputeSpin)));
        (module, malware.0)
    });

    let init = vm.kernel.register_program(
        "init",
        Box::new(move || {
            Box::new(ScenarioInit {
                workloads: workloads.clone(),
                rootkit,
                stage: 0,
                malware_pid: 0,
            })
        }),
    );
    vm.kernel.set_init_program(init);

    if let Some((site, persistent)) = scenario.fault {
        let fault = FaultKind::for_site(site);
        vm.kernel.set_fault_hook(Box::new(SingleFault::new(site, fault.into(), persistent)));
    }
}

/// Builds the scenario's monitored VM under a configuration variant,
/// tagged with `id`. Guest programs, auditors and fault hooks are all
/// installed; the caller only decides how to drive it (a single
/// [`run_scenario`] pass, or slice-by-slice as a fleet member).
///
/// Single-VM runs pass [`VmId`]`(0)`, which is the builder default —
/// the recorded stream is byte-identical to what this crate produced
/// before fleets existed, so the golden fixtures stay valid.
pub fn build_scenario_vm(scenario: &Scenario, variant: &ConfigVariant, id: VmId) -> TapVm {
    let engines = if variant.fine { EngineSelection::all() } else { coarse_selection() };
    let mut vm = TapVm::builder()
        .vm_id(id)
        .vcpus(scenario.vcpus)
        .memory(1 << 28)
        .kernel(KernelConfig::new(scenario.vcpus).with_preemption(scenario.preemptible))
        .engines(engines)
        .tlb(variant.tlb)
        .metrics(variant.metrics)
        .flight(variant.flight)
        .batched(variant.batched)
        .build();
    for &v in variant.extra_vectors {
        vm.machine.vm_mut().controls_mut().set_exception_exiting(v, true);
    }
    register_auditors(&mut vm.machine.hypervisor_mut().em, scenario.vcpus);
    install_guest(&mut vm, scenario);
    vm
}

/// Re-runs a scenario under a variant and serializes its flight recorder
/// into a `.htfr` dump — the post-mortem payload the conformance fuzzer
/// writes when a pair diverges. Guests are deterministic, so the re-run
/// reproduces the diverging run exactly; retention is forced on (it is
/// host-side only, which the flight conformance pair proves) so the dump
/// is populated even for `FLIGHT_OFF`.
pub fn scenario_flight_dump(scenario: &Scenario, variant: &ConfigVariant, reason: &str) -> Vec<u8> {
    let mut forced = variant.clone();
    forced.flight = true;
    let mut vm = build_scenario_vm(scenario, &forced, VmId(0));
    vm.run_for(scenario.duration);
    vm.flight_dump(reason)
}

/// Runs a scenario under a configuration variant, recording the forwarded
/// stream at the EM tap point. Returns the trace and the live verdict.
pub fn run_scenario(scenario: &Scenario, variant: &ConfigVariant) -> (Trace, Verdict) {
    let mut vm = build_scenario_vm(scenario, variant, VmId(0));

    let recorder = TraceRecorder::new(TraceHeader::new(
        scenario.vcpus as u64,
        scenario.seed,
        scenario.name.clone(),
        variant.label,
    ));
    vm.machine.hypervisor_mut().em.attach_tap(recorder.tap());
    vm.run_for(scenario.duration);
    vm.machine.hypervisor_mut().em.detach_tap();

    let trace = recorder.finish();
    let verdict = Verdict::collect(&mut vm.machine.hypervisor_mut().em, &trace);
    (trace, verdict)
}

/// Runs a scenario under `variant`, dispatching [`SNAPSHOT_CYCLE`] runs to
/// the snapshot-cycling driver. The conformance fuzzer uses this for the
/// right side of every pair so variant labels can select a *driving mode*,
/// not just a knob setting.
pub fn run_scenario_variant(scenario: &Scenario, variant: &ConfigVariant) -> (Trace, Verdict) {
    if variant.label == SNAPSHOT_CYCLE.label {
        run_scenario_snapshot_cycle(scenario, variant, SNAPSHOT_CYCLE_EVERY)
    } else if variant.label == TELEMETRY_ON.label {
        run_scenario_telemetry(scenario, variant)
    } else {
        run_scenario(scenario, variant)
    }
}

/// Runs a scenario with the whole live telemetry plane attached: a
/// [`TelemetryHub`] with its HTTP server started and `/metrics` scraped
/// mid-run, a findings subscriber draining concurrently, and the EM's
/// [`FindingBus`] tap publishing every drained finding. All of it is
/// host-side observation, so the recorded trace and the verdict must be
/// bit-identical to an untapped run — the conformance pair that proves
/// the telemetry plane cannot perturb the simulation.
///
/// [`FindingBus`]: hypertap_core::telemetry::FindingBus
pub fn run_scenario_telemetry(scenario: &Scenario, variant: &ConfigVariant) -> (Trace, Verdict) {
    let hub = std::sync::Arc::new(TelemetryHub::new());
    let mut server = TelemetryServer::start(std::sync::Arc::clone(&hub))
        .expect("telemetry server binds an ephemeral loopback port");
    let subscriber = hub.subscribe(64);

    let mut vm = build_scenario_vm(scenario, variant, VmId(0));
    vm.machine.hypervisor_mut().em.set_finding_bus(hub.bus(), VmId(0));

    let recorder = TraceRecorder::new(TraceHeader::new(
        scenario.vcpus as u64,
        scenario.seed,
        scenario.name.clone(),
        variant.label,
    ));
    vm.machine.hypervisor_mut().em.attach_tap(recorder.tap());
    // Split the run so a scrape + drain genuinely happen *mid-run*, with
    // the guest stopped at an arbitrary point — the server is live the
    // whole time for external scrapers. Absolute targets, so the final
    // deadline is identical to the baseline's single run_for (a relative
    // second leg would compound the first leg's overshoot).
    let deadline = vm.now() + scenario.duration;
    let mid = vm.now() + Duration::from_nanos(scenario.duration.as_nanos() / 2);
    vm.run_until(mid);
    let _ = hub.scrape().to_prometheus();
    let _ = subscriber.drain();
    vm.run_until(deadline);
    vm.machine.hypervisor_mut().em.detach_tap();

    let trace = recorder.finish();
    let verdict = Verdict::collect(&mut vm.machine.hypervisor_mut().em, &trace);
    vm.machine.hypervisor_mut().em.clear_finding_bus();
    let _ = subscriber.drain();
    server.stop();
    (trace, verdict)
}

/// Runs a scenario slice-by-slice, and every `every` slices serializes the
/// whole VM to a `.htsp` blob, rebuilds a fresh VM from the recipe,
/// restores the blob into it, and continues on the restored copy. The
/// recorder's shared buffer survives across cycles (each fresh VM gets a
/// new tap into the same buffer), so the result is one continuous trace.
///
/// # Panics
///
/// Panics if the VM fails to snapshot or restore — in a conformance run
/// that *is* the divergence being hunted.
pub fn run_scenario_snapshot_cycle(
    scenario: &Scenario,
    variant: &ConfigVariant,
    every: u64,
) -> (Trace, Verdict) {
    assert!(every > 0, "snapshot cycle period must be positive");
    let slice = Duration::from_millis(10);
    let mut vm = build_scenario_vm(scenario, variant, VmId(0));
    let recorder = TraceRecorder::new(TraceHeader::new(
        scenario.vcpus as u64,
        scenario.seed,
        scenario.name.clone(),
        variant.label,
    ));
    vm.machine.hypervisor_mut().em.attach_tap(recorder.tap());
    let deadline = vm.now() + scenario.duration;
    let mut slices = 0u64;
    while vm.now() < deadline {
        let before = vm.now();
        let target = (before + slice).min(deadline);
        match vm.run_until(target) {
            RunExit::Shutdown | RunExit::Paused => break,
            RunExit::AllIdle if vm.now() == before => break,
            _ => {}
        }
        slices += 1;
        if vm.now() >= deadline {
            break;
        }
        if slices.is_multiple_of(every) {
            let bytes = vm.snapshot().unwrap_or_else(|e| {
                panic!("snapshot cycle: {} failed to snapshot: {e}", scenario.name)
            });
            let mut fresh = build_scenario_vm(scenario, variant, VmId(0));
            fresh.restore(&bytes).unwrap_or_else(|e| {
                panic!("snapshot cycle: {} failed to restore: {e}", scenario.name)
            });
            fresh.machine.hypervisor_mut().em.attach_tap(recorder.tap());
            vm = fresh;
        }
    }
    vm.machine.hypervisor_mut().em.detach_tap();
    let trace = recorder.finish();
    let verdict = Verdict::collect(&mut vm.machine.hypervisor_mut().em, &trace);
    (trace, verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::diff_traces;
    use crate::replay::replay_trace;

    #[test]
    fn sampling_is_deterministic_and_varied() {
        let a = Scenario::sample(42, 3);
        let b = Scenario::sample(42, 3);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.mix, b.mix);
        assert_eq!(a.duration, b.duration);
        let mixes: std::collections::HashSet<&'static str> =
            (0..32).map(|i| Scenario::sample(42, i).mix.label()).collect();
        assert!(mixes.len() >= 3, "sampler should cover several mixes, got {mixes:?}");
    }

    #[test]
    fn same_scenario_same_config_is_byte_identical() {
        let s = Scenario::sample(7, 0);
        let (t1, v1) = run_scenario(&s, &BASE);
        let (t2, v2) = run_scenario(&s, &BASE);
        assert_eq!(t1.encode(), t2.encode(), "identical runs must produce identical traces");
        assert_eq!(v1, v2);
        assert!(t1.event_count() > 0, "the guest must actually produce events");
    }

    #[test]
    fn tlb_pair_is_conformant_and_replay_matches_live() {
        let s = Scenario::sample(7, 1);
        let (base, live) = run_scenario(&s, &BASE);
        let (other, _) = run_scenario(&s, &NO_TLB);
        assert_eq!(diff_traces(&base, &other, DiffPolicy::Exact), None);
        let replayed = replay_trace(&base, |em| register_auditors(em, s.vcpus));
        assert_eq!(replayed, live, "replay must reproduce the live verdict bit-for-bit");
    }

    #[test]
    fn snapshot_cycle_pair_is_conformant_and_verdicts_match() {
        // The snapshot equivalence contract as a conformance pair: a run
        // that round-trips the whole machine through the `.htsp` codec
        // every few slices must record a byte-identical trace and reach
        // the same verdict — provenance refs included — under Exact.
        for ordinal in [0u64, 1, 2] {
            let s = Scenario::sample(7, ordinal);
            let (base, live) = run_scenario(&s, &BASE);
            let (cycled, live_cycled) = run_scenario_variant(&s, &SNAPSHOT_CYCLE);
            assert_eq!(
                diff_traces(&base, &cycled, DiffPolicy::Exact),
                None,
                "{}: snapshot cycling must not change the trace",
                s.name
            );
            let mut relabeled = live_cycled.clone();
            relabeled.config = live.config.clone();
            assert_eq!(relabeled, live, "{}", s.name);
            assert_eq!(live_cycled.findings_provenance, live.findings_provenance);
        }
    }

    #[test]
    fn coarse_pair_is_conformant_under_projection() {
        let s = Scenario::sample(7, 2);
        let (base, _) = run_scenario(&s, &BASE);
        let (coarse, _) = run_scenario(&s, &COARSE);
        assert_eq!(diff_traces(&base, &coarse, DiffPolicy::Projected(shared_classes())), None);
    }

    #[test]
    fn flight_pair_is_conformant_and_provenance_is_identical() {
        // Switching off flight-recorder retention must change nothing the
        // guest or the auditors can observe: byte-identical trace, and the
        // same verdict — including every finding's provenance refs, since
        // ordinal assignment runs whether or not records are retained.
        let s = Scenario::sample(7, 4);
        let (base, live) = run_scenario(&s, &BASE);
        let (dark, live_dark) = run_scenario(&s, &FLIGHT_OFF);
        assert_eq!(diff_traces(&base, &dark, DiffPolicy::Exact), None);
        let mut relabeled = live_dark.clone();
        relabeled.config = live.config.clone();
        assert_eq!(relabeled, live);
        assert_eq!(live_dark.findings_provenance, live.findings_provenance);
    }

    #[test]
    fn batched_pair_is_conformant_and_verdicts_match() {
        // The tentpole's determinism proof: the batched ring path and the
        // per-event fallback must record byte-identical traces and reach
        // the same verdict — provenance refs included — under Exact.
        let s = Scenario::sample(7, 5);
        let (base, live) = run_scenario(&s, &BASE);
        let (unbatched, live_unbatched) = run_scenario(&s, &BATCHED_OFF);
        assert_eq!(diff_traces(&base, &unbatched, DiffPolicy::Exact), None);
        let mut relabeled = live_unbatched.clone();
        relabeled.config = live.config.clone();
        assert_eq!(relabeled, live);
        assert_eq!(live_unbatched.findings_provenance, live.findings_provenance);
        assert!(base.event_count() > 0);
    }

    #[test]
    fn telemetry_pair_is_conformant_and_verdicts_match() {
        // The telemetry plane's determinism proof: running with the HTTP
        // server live, a subscriber draining and the EM finding-bus tap
        // attached must record a byte-identical trace and reach the same
        // verdict — provenance refs included — as the untapped baseline.
        let s = Scenario::sample(7, 6);
        let (base, live) = run_scenario(&s, &BASE);
        let (tapped, live_tapped) = run_scenario_variant(&s, &TELEMETRY_ON);
        assert_eq!(diff_traces(&base, &tapped, DiffPolicy::Exact), None);
        let mut relabeled = live_tapped.clone();
        relabeled.config = live.config.clone();
        assert_eq!(relabeled, live);
        assert_eq!(live_tapped.findings_provenance, live.findings_provenance);
        assert!(base.event_count() > 0);
    }

    #[test]
    fn metrics_pair_is_conformant_and_verdicts_match() {
        // The tentpole's determinism proof, in miniature: a fully
        // instrumented run (spans + dispatch latency + per-auditor
        // counters) must record a byte-identical trace and reach the same
        // verdict as the uninstrumented baseline, under the Exact policy.
        let s = Scenario::sample(7, 3);
        let (base, live) = run_scenario(&s, &BASE);
        let (instrumented, live_metrics) = run_scenario(&s, &METRICS_ON);
        assert_eq!(diff_traces(&base, &instrumented, DiffPolicy::Exact), None);
        // Verdicts agree on everything but the config label.
        let mut relabeled = live_metrics.clone();
        relabeled.config = live.config.clone();
        assert_eq!(relabeled, live);
        assert!(base.event_count() > 0);
    }
}
