//! Trace differencing: the heart of the conformance check.
//!
//! Two configurations are *conformant* when the event streams they log are
//! equal under a policy:
//!
//! * [`DiffPolicy::Exact`] — byte-for-byte identical streams. Used for
//!   knobs that must not be observable at all: the software TLB (PR 1's
//!   invariant) and exit-control bits for vectors the guest never raises.
//! * [`DiffPolicy::Projected`] — identical after projecting both streams
//!   onto an [`EventMask`]. Used for engine-set pairs: a coarse
//!   interception configuration legitimately logs fewer event *classes*
//!   than a fine one, but on the shared classes the two streams must agree
//!   on everything — ordering, timestamps, payloads, and snapshots.

use crate::trace::{Trace, TraceRecord};
use hypertap_core::event::EventMask;
use std::fmt;

/// How two traces are compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffPolicy {
    /// Streams must match record-for-record, ticks included.
    Exact,
    /// Streams are first projected: only events whose class is in the mask
    /// are kept (ticks are always kept — the EM timer is part of the
    /// logging contract). The projections must then match exactly.
    Projected(EventMask),
}

/// The first point at which two traces disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the first divergent record in the (projected) stream.
    pub index: u64,
    /// The left trace's record at that index, rendered (`<end of trace>`
    /// if the left stream ended first).
    pub left: String,
    /// The right trace's record at that index, rendered.
    pub right: String,
    /// Up to the three records preceding the divergence (shared prefix),
    /// rendered — context for the report.
    pub context: Vec<String>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "first divergent event at index {}:", self.index)?;
        for c in &self.context {
            writeln!(f, "      ... {c}")?;
        }
        writeln!(f, "  left:  {}", self.left)?;
        write!(f, "  right: {}", self.right)
    }
}

fn project(trace: &Trace, policy: DiffPolicy) -> Vec<&TraceRecord> {
    trace
        .records
        .iter()
        .filter(|r| match (policy, r) {
            (DiffPolicy::Exact, _) => true,
            (DiffPolicy::Projected(_), TraceRecord::Tick(_)) => true,
            (DiffPolicy::Projected(mask), TraceRecord::Event(e)) => mask.contains(e.class()),
        })
        .collect()
}

/// Compares two traces under a policy. Returns `None` when conformant,
/// otherwise the first divergence with context.
pub fn diff_traces(left: &Trace, right: &Trace, policy: DiffPolicy) -> Option<Divergence> {
    let a = project(left, policy);
    let b = project(right, policy);
    let end = "<end of trace>".to_string();
    let n = a.len().max(b.len());
    for i in 0..n {
        let (la, lb) = (a.get(i), b.get(i));
        if la.map(|r| **r) == lb.map(|r| **r) {
            continue;
        }
        let context = a[i.saturating_sub(3)..i].iter().map(|r| r.to_string()).collect();
        let mut left = la.map_or(end.clone(), |r| r.to_string());
        let mut right = lb.map_or(end, |r| r.to_string());
        if left == right {
            // The difference is below display resolution (e.g. a
            // sub-microsecond time shift): fall back to the full debug
            // form so the report actually shows it.
            left = la.map(|r| format!("{r:?}")).unwrap_or(left);
            right = lb.map(|r| format!("{r:?}")).unwrap_or(right);
        }
        return Some(Divergence { index: i as u64, left, right, context });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceHeader;
    use hypertap_core::event::{Event, EventClass, EventKind, VmId};
    use hypertap_hvsim::clock::SimTime;
    use hypertap_hvsim::exit::VcpuSnapshot;
    use hypertap_hvsim::mem::{Gpa, Gva};
    use hypertap_hvsim::vcpu::{Cpl, VcpuId};

    fn ev(ns: u64, kind: EventKind) -> TraceRecord {
        TraceRecord::Event(Event {
            vm: VmId(0),
            vcpu: VcpuId(0),
            time: SimTime::from_nanos(ns),
            kind,
            state: VcpuSnapshot::from_parts(
                Gpa::new(0x1000),
                Gva::new(0),
                Gva::new(0),
                Gva::new(0),
                Cpl::Kernel,
                [0; 7],
            ),
        })
    }

    fn trace(records: Vec<TraceRecord>) -> Trace {
        Trace { header: TraceHeader::new(1, 0, "diff-unit", "x"), records }
    }

    #[test]
    fn identical_traces_are_conformant() {
        let t = trace(vec![
            ev(10, EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000) }),
            TraceRecord::Tick(SimTime::from_nanos(20)),
        ]);
        assert_eq!(diff_traces(&t, &t, DiffPolicy::Exact), None);
    }

    #[test]
    fn first_divergence_index_and_context_are_reported() {
        let shared = [
            ev(10, EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000) }),
            ev(20, EventKind::ThreadSwitch { kernel_stack: 0xAA }),
            ev(30, EventKind::ProcessSwitch { new_pdba: Gpa::new(0x2000) }),
        ];
        let mut a = shared.to_vec();
        let mut b = shared.to_vec();
        a.push(ev(40, EventKind::ProcessSwitch { new_pdba: Gpa::new(0x3000) }));
        b.push(ev(40, EventKind::ProcessSwitch { new_pdba: Gpa::new(0x4000) }));
        let d = diff_traces(&trace(a), &trace(b), DiffPolicy::Exact).expect("diverges");
        assert_eq!(d.index, 3);
        assert_eq!(d.context.len(), 3);
        assert!(d.left.contains("0x0000003000"), "left: {}", d.left);
        assert!(d.right.contains("0x0000004000"), "right: {}", d.right);
    }

    #[test]
    fn length_mismatch_diverges_at_the_shorter_end() {
        let a = trace(vec![ev(10, EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000) })]);
        let b = trace(vec![
            ev(10, EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000) }),
            TraceRecord::Tick(SimTime::from_nanos(20)),
        ]);
        let d = diff_traces(&a, &b, DiffPolicy::Exact).expect("diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.left, "<end of trace>");
    }

    #[test]
    fn projection_hides_unshared_classes_but_not_shared_payloads() {
        let mask = EventMask::only(EventClass::ProcessSwitch);
        let a = trace(vec![
            ev(10, EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000) }),
            ev(15, EventKind::IoPort { port: 0x3f8, write: true, value: 1 }),
        ]);
        let b = trace(vec![ev(10, EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000) })]);
        // The I/O event is outside the mask: conformant.
        assert_eq!(diff_traces(&a, &b, DiffPolicy::Projected(mask)), None);
        // But it IS a divergence under Exact.
        assert!(diff_traces(&a, &b, DiffPolicy::Exact).is_some());
        // A payload difference inside the mask still diverges.
        let c = trace(vec![ev(10, EventKind::ProcessSwitch { new_pdba: Gpa::new(0x9999) })]);
        assert!(diff_traces(&b, &c, DiffPolicy::Projected(mask)).is_some());
    }
}
