//! Golden-trace regression fixtures.
//!
//! Five deterministic scenarios — one per repo example — recorded under the
//! baseline configuration, RLE-compressed, and checked in under
//! `crates/replay/golden/`. The regression test (`tests/replay_golden.rs`)
//! re-runs each scenario live and asserts the freshly recorded bytes equal
//! the checked-in bytes, then replays the golden trace and asserts the
//! verdict matches the live one. Any change to the forwarding path, the
//! engines, the guest kernel's scheduling, or the codec that alters the
//! logged stream shows up as a byte diff here.
//!
//! The HTTP workload is deliberately absent: its load model goes through
//! `f64::ln`, whose last bit is not guaranteed identical across libm
//! builds, and golden traces must be stable across toolchains.

use crate::scenario::{build_scenario_vm, Scenario, WorkloadMix, BASE};
use hypertap_attacks::rootkits::all_rootkits;
use hypertap_core::prelude::VmId;
use hypertap_guestos::kpath;
use hypertap_hvsim::clock::Duration;
use std::path::PathBuf;

/// Where the compressed golden traces live: `golden/` inside this crate,
/// resolved at compile time so callers from any workspace member agree.
pub const GOLDEN_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/golden");

/// Path of the golden trace file for a scenario name.
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(GOLDEN_DIR).join(format!("{name}.htrz"))
}

/// Path of the golden `.htsp` machine snapshot for a fixture name.
pub fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(GOLDEN_DIR).join(format!("{name}.htsp"))
}

/// The golden machine snapshots: fixture name, the golden scenario whose
/// VM is captured, and the simulated time at which the snapshot is taken.
///
/// * `idle` — the quickstart guest before its first instruction (an
///   unbooted machine: lifecycle, empty tables, pristine devices).
/// * `mid_hang` — the hang-detection guest 60 ms in: the persistent ext3
///   fault has landed and GOSHD's per-vCPU silence clocks are running.
/// * `mid_rootkit_scan` — the rootkit-hunt guest 60 ms in: SucKIT is
///   installed and hiding the malware process from untrusted views.
pub fn golden_snapshots() -> Vec<(String, Scenario, Duration)> {
    let by_name = |name: &str| {
        golden_scenarios()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name:?} is a golden scenario"))
    };
    vec![
        ("idle".to_string(), by_name("quickstart"), Duration::ZERO),
        ("mid_hang".to_string(), by_name("hang_detection"), Duration::from_millis(60)),
        ("mid_rootkit_scan".to_string(), by_name("rootkit_hunt"), Duration::from_millis(60)),
    ]
}

/// Records one golden snapshot: builds the scenario VM under [`BASE`],
/// runs it for `at` (zero means "never started"), and serializes it.
pub fn record_snapshot(scenario: &Scenario, at: Duration) -> Vec<u8> {
    let mut vm = build_scenario_vm(scenario, &BASE, VmId(0));
    if at > Duration::ZERO {
        vm.run_for(at);
    }
    vm.snapshot().unwrap_or_else(|e| {
        panic!("golden scenario {} must snapshot at {at:?}: {e}", scenario.name)
    })
}

fn rootkit_index(name: &str) -> usize {
    all_rootkits()
        .iter()
        .position(|r| r.name == name)
        .unwrap_or_else(|| panic!("rootkit {name:?} is in the Table II catalogue"))
}

/// The five fixed golden scenarios, named after the repo examples whose
/// setup they mirror.
pub fn golden_scenarios() -> Vec<Scenario> {
    vec![
        // examples/quickstart.rs: a syscall-heavy writer under full
        // monitoring.
        Scenario {
            name: "quickstart".to_string(),
            seed: 0x5EED_0001,
            vcpus: 2,
            preemptible: true,
            duration: Duration::from_millis(200),
            mix: WorkloadMix::Writer,
            fault: None,
            rootkit: None,
        },
        // examples/hang_detection.rs: parallel make with a persistent
        // missing-unlock fault in ext3 — the GOSHD bread-and-butter run.
        Scenario {
            name: "hang_detection".to_string(),
            seed: 0x5EED_0002,
            vcpus: 2,
            preemptible: false,
            duration: Duration::from_millis(300),
            mix: WorkloadMix::MakeJ2,
            fault: Some((kpath::site_for("ext3", 1) as u32, true)),
            rootkit: None,
        },
        // examples/rootkit_hunt.rs: SucKIT hiding a compute-bound process.
        Scenario {
            name: "rootkit_hunt".to_string(),
            seed: 0x5EED_0003,
            vcpus: 2,
            preemptible: true,
            duration: Duration::from_millis(250),
            mix: WorkloadMix::Writer,
            fault: None,
            rootkit: Some(rootkit_index("SucKIT")),
        },
        // examples/three_ninjas.rs: compute workload plus a DKOM rootkit.
        Scenario {
            name: "three_ninjas".to_string(),
            seed: 0x5EED_0004,
            vcpus: 1,
            preemptible: true,
            duration: Duration::from_millis(250),
            mix: WorkloadMix::Hanoi,
            fault: None,
            rootkit: Some(rootkit_index("FU")),
        },
        // examples/remote_health.rs: mixed interactive + compute load on a
        // single vCPU.
        Scenario {
            name: "remote_health".to_string(),
            seed: 0x5EED_0005,
            vcpus: 1,
            preemptible: false,
            duration: Duration::from_millis(200),
            mix: WorkloadMix::WriterPlusHanoi,
            fault: None,
            rootkit: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_scenarios_are_five_and_uniquely_named() {
        let scenarios = golden_scenarios();
        assert_eq!(scenarios.len(), 5);
        let names: std::collections::HashSet<_> =
            scenarios.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), 5);
        for s in &scenarios {
            assert!(golden_path(&s.name).to_string_lossy().ends_with(".htrz"));
        }
    }
}
