//! Automatic divergence shrinking.
//!
//! When a configuration pair (or a tampered self-test trace) diverges, the
//! full streams are thousands of records; the failure is one. The shrinker
//! reduces a diverging pair to the *minimal prefix* that still diverges —
//! generalizing the conformance fuzzer's `--inject-divergence` check, where
//! a trace tampered at index *i* must shrink to at most *i* + 1 records —
//! and reduces a mutation list to the *minimal subset* that still triggers
//! the predicate (greedy ddmin).
//!
//! Prefix search is an exponential gallop plus binary search over the
//! prefix length. For [`DiffPolicy::Exact`] the "still diverges" predicate
//! is monotone in the prefix length (the first divergent record either is
//! or is not included), so the search is exact; a final verify-and-grow
//! pass keeps the result correct even for non-monotone projected cases.

use crate::diff::{diff_traces, DiffPolicy, Divergence};
use crate::mutate::{apply_all, TraceMutation};
use crate::trace::Trace;

/// A copy of `trace` keeping only the first `keep` records.
pub fn truncated(trace: &Trace, keep: usize) -> Trace {
    Trace {
        header: trace.header.clone(),
        records: trace.records[..keep.min(trace.records.len())].to_vec(),
    }
}

/// A diverging pair shrunk to its minimal diverging prefix.
#[derive(Debug, Clone)]
pub struct ShrunkPair {
    /// Records kept from each side (the shorter side may hold fewer).
    pub keep: usize,
    /// Left prefix.
    pub left: Trace,
    /// Right prefix.
    pub right: Trace,
    /// The divergence the prefix still exhibits.
    pub divergence: Divergence,
}

/// Shrinks a diverging trace pair to the minimal prefix that still
/// diverges under `policy`. Returns `None` when the full pair is already
/// conformant — a non-diverging input has nothing to shrink.
pub fn shrink_diverging_prefix(
    left: &Trace,
    right: &Trace,
    policy: DiffPolicy,
) -> Option<ShrunkPair> {
    diff_traces(left, right, policy)?;
    let max = left.records.len().max(right.records.len());
    let diverges = |keep: usize| {
        diff_traces(&truncated(left, keep), &truncated(right, keep), policy).is_some()
    };

    // Gallop to the first power-of-two-ish prefix that diverges, then
    // binary search inside the last doubling.
    let mut hi = 1usize;
    while hi < max && !diverges(hi) {
        hi = (hi * 2).min(max);
    }
    let mut lo = hi / 2 + 1;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if diverges(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    // Verify-and-grow: under Exact the found prefix always diverges; a
    // projected pair could in principle be non-monotone, in which case we
    // walk forward to the nearest prefix that does (bounded by `max`,
    // where divergence is given).
    let mut keep = hi;
    while keep < max && !diverges(keep) {
        keep += 1;
    }
    let (l, r) = (truncated(left, keep), truncated(right, keep));
    let divergence = diff_traces(&l, &r, policy)?;
    Some(ShrunkPair { keep, left: l, right: r, divergence })
}

/// Reduces a mutation list to a minimal subset for which `still_fails`
/// holds on `base` with the subset applied (greedy drop-one ddmin, run to
/// a fixpoint). Returns `None` when the full list does not trigger the
/// predicate in the first place.
pub fn minimize_mutations<F>(
    base: &Trace,
    mutations: &[TraceMutation],
    still_fails: F,
) -> Option<Vec<TraceMutation>>
where
    F: Fn(&Trace) -> bool,
{
    let check = |muts: &[TraceMutation]| {
        let mut t = base.clone();
        apply_all(&mut t, muts);
        still_fails(&t)
    };
    if !check(mutations) {
        return None;
    }
    let mut kept: Vec<TraceMutation> = mutations.to_vec();
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < kept.len() {
            let mut candidate = kept.clone();
            candidate.remove(i);
            if check(&candidate) {
                kept = candidate;
                progressed = true;
            } else {
                i += 1;
            }
        }
        if !progressed {
            return Some(kept);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceHeader, TraceRecord};
    use hypertap_core::event::{Event, EventKind, VmId};
    use hypertap_hvsim::clock::SimTime;
    use hypertap_hvsim::exit::VcpuSnapshot;
    use hypertap_hvsim::mem::{Gpa, Gva};
    use hypertap_hvsim::vcpu::{Cpl, VcpuId};

    fn ev(ns: u64) -> TraceRecord {
        TraceRecord::Event(Event {
            vm: VmId(0),
            vcpu: VcpuId(0),
            time: SimTime::from_nanos(ns),
            kind: EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000) },
            state: VcpuSnapshot::from_parts(
                Gpa::new(0x1000),
                Gva::new(0),
                Gva::new(0),
                Gva::new(0),
                Cpl::Kernel,
                [0; 7],
            ),
        })
    }

    fn trace(n: u64) -> Trace {
        Trace {
            header: TraceHeader::new(1, 0, "shrink-unit", "x"),
            records: (0..n).map(|i| ev(10 * (i + 1))).collect(),
        }
    }

    #[test]
    fn non_diverging_pair_has_nothing_to_shrink() {
        let t = trace(16);
        assert!(shrink_diverging_prefix(&t, &t, DiffPolicy::Exact).is_none());
    }

    #[test]
    fn tamper_at_index_shrinks_to_that_prefix() {
        let base = trace(64);
        for at in [0u64, 1, 17, 63] {
            let mut tampered = base.clone();
            tampered.tamper(at);
            let shrunk =
                shrink_diverging_prefix(&base, &tampered, DiffPolicy::Exact).expect("diverges");
            assert_eq!(shrunk.keep as u64, at + 1, "minimal prefix includes the tampered record");
            assert_eq!(shrunk.divergence.index, at);
            assert!(diff_traces(&shrunk.left, &shrunk.right, DiffPolicy::Exact).is_some());
        }
    }

    #[test]
    fn already_minimal_divergence_stays_at_one_record() {
        let base = trace(8);
        let mut tampered = base.clone();
        tampered.tamper(0);
        let shrunk =
            shrink_diverging_prefix(&base, &tampered, DiffPolicy::Exact).expect("diverges");
        assert_eq!(shrunk.keep, 1);
        assert_eq!(shrunk.left.records.len(), 1);
        assert_eq!(shrunk.right.records.len(), 1);
    }

    #[test]
    fn length_divergence_shrinks_to_one_past_the_shorter_side() {
        let long = trace(32);
        let short = truncated(&long, 5);
        let shrunk = shrink_diverging_prefix(&long, &short, DiffPolicy::Exact).expect("diverges");
        assert_eq!(shrunk.keep, 6, "first prefix where one side has ended");
        assert_eq!(shrunk.divergence.right, "<end of trace>");
    }

    #[test]
    fn minimize_mutations_drops_redundant_edits() {
        let base = trace(32);
        // Only the tamper matters for "diverges from base at index 3";
        // the two later perturbations are noise the minimizer must drop.
        let muts = vec![
            TraceMutation::PerturbTime { index: 20, delta_ns: 4 },
            TraceMutation::Tamper { index: 3 },
            TraceMutation::PerturbTime { index: 25, delta_ns: 9 },
        ];
        let minimal = minimize_mutations(&base, &muts, |t| {
            diff_traces(&base, t, DiffPolicy::Exact).map(|d| d.index) == Some(3)
        })
        .expect("full list triggers");
        assert_eq!(minimal, vec![TraceMutation::Tamper { index: 3 }]);
    }

    #[test]
    fn minimize_mutations_rejects_a_non_triggering_list() {
        let base = trace(8);
        let muts = vec![TraceMutation::PerturbTime { index: 1, delta_ns: 2 }];
        assert!(minimize_mutations(&base, &muts, |_| false).is_none());
    }
}
