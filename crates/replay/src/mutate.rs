//! Structured mutations over recorded HTRC traces.
//!
//! The scenario fuzzer perturbs recorded streams through the codec's own
//! data model: every mutation is a small, named edit of `Trace::records`
//! (truncate, drop, duplicate, splice, time perturbation, the classic
//! 1 ns [`Trace::tamper`]). Mutations are values, so a fuzzing run can
//! log exactly which edits produced an input, re-apply them later, and
//! hand the list to the shrinker's mutation-set minimizer.
//!
//! All indices are taken modulo the stream length, mirroring `tamper` —
//! a mutation sampled for one trace stays applicable to any other.

use crate::trace::{Trace, TraceRecord};
use hypertap_hvsim::clock::SimTime;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// One structured edit of a trace's record stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMutation {
    /// Keep only the first `keep` records.
    Truncate {
        /// Number of leading records to keep (modulo length + 1).
        keep: u64,
    },
    /// Remove the record at `index`.
    Remove {
        /// Record index (modulo length).
        index: u64,
    },
    /// Insert a copy of the record at `index` right after it.
    Duplicate {
        /// Record index (modulo length).
        index: u64,
    },
    /// Overwrite the record at `dst` with a copy of the record at `src` —
    /// an in-trace splice through the codec's record model.
    Splice {
        /// Destination index (modulo length).
        dst: u64,
        /// Source index (modulo length).
        src: u64,
    },
    /// Shift the record at `index` forward in time by `delta_ns`
    /// (wrapping, like the codec's delta arithmetic).
    PerturbTime {
        /// Record index (modulo length).
        index: u64,
        /// Nanoseconds to add to the record's time.
        delta_ns: u64,
    },
    /// The conformance self-test's 1 ns shift ([`Trace::tamper`]).
    Tamper {
        /// Record index (modulo length).
        index: u64,
    },
}

impl fmt::Display for TraceMutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceMutation::Truncate { keep } => write!(f, "truncate[keep={keep}]"),
            TraceMutation::Remove { index } => write!(f, "remove[{index}]"),
            TraceMutation::Duplicate { index } => write!(f, "duplicate[{index}]"),
            TraceMutation::Splice { dst, src } => write!(f, "splice[{src}->{dst}]"),
            TraceMutation::PerturbTime { index, delta_ns } => {
                write!(f, "perturb[{index}+{delta_ns}ns]")
            }
            TraceMutation::Tamper { index } => write!(f, "tamper[{index}]"),
        }
    }
}

fn shift_time(record: &mut TraceRecord, delta_ns: u64) {
    match record {
        TraceRecord::Event(e) => {
            e.time = SimTime::from_nanos(e.time.as_nanos().wrapping_add(delta_ns));
        }
        TraceRecord::Tick(t) => *t = SimTime::from_nanos(t.as_nanos().wrapping_add(delta_ns)),
    }
}

impl TraceMutation {
    /// Applies the mutation in place. A no-op on an empty trace.
    pub fn apply(&self, trace: &mut Trace) {
        let len = trace.records.len();
        if len == 0 {
            return;
        }
        match *self {
            TraceMutation::Truncate { keep } => {
                trace.records.truncate((keep as usize) % (len + 1));
            }
            TraceMutation::Remove { index } => {
                trace.records.remove(index as usize % len);
            }
            TraceMutation::Duplicate { index } => {
                let i = index as usize % len;
                let copy = trace.records[i];
                trace.records.insert(i + 1, copy);
            }
            TraceMutation::Splice { dst, src } => {
                let copy = trace.records[src as usize % len];
                trace.records[dst as usize % len] = copy;
            }
            TraceMutation::PerturbTime { index, delta_ns } => {
                shift_time(&mut trace.records[index as usize % len], delta_ns);
            }
            TraceMutation::Tamper { index } => trace.tamper(index),
        }
    }

    /// Samples a mutation for a trace of `len` records from a seeded RNG.
    pub fn sample(rng: &mut StdRng, len: u64) -> TraceMutation {
        let span = len.max(1);
        match rng.gen_range(0u32..6) {
            0 => TraceMutation::Truncate { keep: rng.gen_range(0u64..span + 1) },
            1 => TraceMutation::Remove { index: rng.gen_range(0u64..span) },
            2 => TraceMutation::Duplicate { index: rng.gen_range(0u64..span) },
            3 => TraceMutation::Splice {
                dst: rng.gen_range(0u64..span),
                src: rng.gen_range(0u64..span),
            },
            4 => TraceMutation::PerturbTime {
                index: rng.gen_range(0u64..span),
                delta_ns: rng.gen_range(1u64..1_000_000),
            },
            _ => TraceMutation::Tamper { index: rng.gen_range(0u64..span) },
        }
    }
}

/// Applies a mutation list in order.
pub fn apply_all(trace: &mut Trace, mutations: &[TraceMutation]) {
    for m in mutations {
        m.apply(trace);
    }
}

/// Cross-trace splice: the first `cut_a` records of `a` followed by `b`'s
/// records from `cut_b` on, under `a`'s header. Cuts are clamped to the
/// respective stream lengths.
pub fn cross_splice(a: &Trace, b: &Trace, cut_a: usize, cut_b: usize) -> Trace {
    let mut records: Vec<TraceRecord> = a.records[..cut_a.min(a.records.len())].to_vec();
    records.extend_from_slice(&b.records[cut_b.min(b.records.len())..]);
    Trace { header: a.header.clone(), records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceHeader;
    use hypertap_core::event::{Event, EventKind, VmId};
    use hypertap_hvsim::exit::VcpuSnapshot;
    use hypertap_hvsim::mem::{Gpa, Gva};
    use hypertap_hvsim::vcpu::{Cpl, VcpuId};
    use rand::SeedableRng;

    fn ev(ns: u64) -> TraceRecord {
        TraceRecord::Event(Event {
            vm: VmId(0),
            vcpu: VcpuId(0),
            time: SimTime::from_nanos(ns),
            kind: EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000) },
            state: VcpuSnapshot::from_parts(
                Gpa::new(0x1000),
                Gva::new(0),
                Gva::new(0),
                Gva::new(0),
                Cpl::Kernel,
                [0; 7],
            ),
        })
    }

    fn trace(n: u64) -> Trace {
        Trace {
            header: TraceHeader::new(1, 0, "mutate-unit", "x"),
            records: (0..n).map(|i| ev(10 * (i + 1))).collect(),
        }
    }

    #[test]
    fn every_mutation_is_a_noop_on_an_empty_trace() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..32 {
            let m = TraceMutation::sample(&mut rng, 0);
            let mut t = trace(0);
            m.apply(&mut t);
            assert!(t.records.is_empty());
        }
    }

    #[test]
    fn structural_mutations_change_length_as_documented() {
        let mut t = trace(5);
        TraceMutation::Truncate { keep: 3 }.apply(&mut t);
        assert_eq!(t.records.len(), 3);
        TraceMutation::Remove { index: 1 }.apply(&mut t);
        assert_eq!(t.records.len(), 2);
        TraceMutation::Duplicate { index: 0 }.apply(&mut t);
        assert_eq!(t.records.len(), 3);
        assert_eq!(t.records[0], t.records[1]);
    }

    #[test]
    fn splice_and_perturb_edit_in_place() {
        let mut t = trace(4);
        TraceMutation::Splice { dst: 3, src: 0 }.apply(&mut t);
        assert_eq!(t.records[3], t.records[0]);
        TraceMutation::PerturbTime { index: 2, delta_ns: 5 }.apply(&mut t);
        assert_eq!(t.records[2].time().as_nanos(), 35);
    }

    #[test]
    fn mutated_traces_round_trip_through_the_codec() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            let mut t = trace(20);
            let muts: Vec<TraceMutation> =
                (0..3).map(|_| TraceMutation::sample(&mut rng, 20)).collect();
            apply_all(&mut t, &muts);
            let decoded = Trace::decode(&t.encode()).expect("mutated trace re-encodes");
            assert_eq!(decoded, t, "codec round-trip after {muts:?}");
        }
    }

    #[test]
    fn cross_splice_concatenates_under_the_left_header() {
        let a = trace(3);
        let b = trace(5);
        let s = cross_splice(&a, &b, 2, 4);
        assert_eq!(s.records.len(), 3);
        assert_eq!(s.records[..2], a.records[..2]);
        assert_eq!(s.records[2], b.records[4]);
        assert_eq!(s.header, a.header);
        // Cuts beyond either length clamp instead of panicking.
        let clamped = cross_splice(&a, &b, 99, 99);
        assert_eq!(clamped.records.len(), 3);
    }
}
