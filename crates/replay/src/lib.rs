//! Deterministic record–replay and differential conformance testing for
//! the HyperTap monitoring stack.
//!
//! The paper's passive monitoring guarantee (§IV) is that the logging
//! layer observes the guest without perturbing it: monitoring-plane knobs
//! — the software TLB, the engine decode set, extra never-firing
//! exit-control bits — must not change what gets logged. This crate turns
//! that guarantee into a testable contract:
//!
//! * [`recorder`] — an [`EventTap`](hypertap_core::em::EventTap) at the
//!   Event Forwarder boundary records the full pre-subscription stream.
//! * [`trace`] — a compact versioned binary codec (delta-encoded, sync
//!   barriers, trailing seek index, optional RLE compression).
//! * [`replay`] — re-feeds a trace into a fresh Event Multiplexer and
//!   auditor set *without the simulator* and extracts a [`Verdict`]
//!   that must equal the live run's bit-for-bit.
//! * [`diff`] — finds the first divergent record between two traces,
//!   exactly or after projection onto a shared event-class mask.
//! * [`scenario`] — seeded random guest scenarios (program mixes, lock
//!   faults, rootkit insertions) and the configuration variants under
//!   differential test.
//! * [`golden`] — checked-in regression traces mirroring the repo
//!   examples, plus a recorded 4-VM fleet archive.
//! * [`fleet`] — per-VM trace recording under the sharded
//!   `hypertap_core::fleet` host, diffed against the sequential
//!   single-VM baseline (the fleet determinism contract, §tested).
//!
//! The `conformance` binary drives the loop:
//! `cargo run --release -p hypertap-replay --bin conformance -- --scenarios 100 --seed 42`.
//!
//! [`Verdict`]: crate::replay::Verdict

pub mod diff;
pub mod fleet;
pub mod golden;
pub mod mutate;
pub mod recorder;
pub mod replay;
pub mod scenario;
pub mod shrink;
pub mod trace;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::diff::{diff_traces, DiffPolicy, Divergence};
    pub use crate::fleet::{
        decode_fleet_archive, diff_fleet_reports, encode_fleet_archive, fleet_conformance_pair,
        fleet_traces, golden_fleet, run_member_alone, run_scenario_fleet, FleetDivergence,
        ScenarioFleet, GOLDEN_FLEET_NAME,
    };
    pub use crate::golden::{golden_path, golden_scenarios};
    pub use crate::mutate::{apply_all, cross_splice, TraceMutation};
    pub use crate::recorder::TraceRecorder;
    pub use crate::replay::{replay_trace, validate_provenance, Verdict};
    pub use crate::scenario::{
        build_scenario_vm, conformance_pairs, register_auditors, run_scenario, ConfigVariant,
        Scenario, BASE,
    };
    pub use crate::shrink::{minimize_mutations, shrink_diverging_prefix, truncated, ShrunkPair};
    pub use crate::trace::{compress, decompress, Trace, TraceError, TraceHeader, TraceRecord};
}
