//! The replay engine: auditors without the simulator.
//!
//! Replay rebuilds an Event Multiplexer, registers the same auditors a live
//! run used, and re-feeds a recorded trace — events through
//! `deliver_all`, ticks through `tick` — against an inert placeholder
//! `VmState`. Auditors that only consume the event stream (GOSHD entirely;
//! HRKD's event-driven half) then reproduce the live run's verdict
//! bit-for-bit, which decouples audit-phase regression testing from guest
//! execution: a broken auditor bisects against a fixed trace instead of a
//! whole simulation.
//!
//! Auditors that read live guest memory (periodic HRKD cross-validation,
//! the VMI Ninjas) are outside replay's contract — the trace records
//! architectural state at exits, not full memory images — and are not
//! registered in replayable scenarios.

use crate::trace::{Trace, TraceRecord};
use hypertap_core::audit::CountingAuditor;
use hypertap_core::em::EventMultiplexer;
use hypertap_core::event::EventClass;
use hypertap_hvsim::exit::{ExitAction, VmExit};
use hypertap_hvsim::machine::{Hypervisor, Machine, VmConfig, VmState};
use hypertap_monitors::goshd::Goshd;
use serde::{Deserialize, Serialize};

/// A hypervisor model that does nothing: replay never runs the machine, it
/// only needs a structurally valid [`VmState`] to satisfy auditor
/// signatures.
struct InertHv;

impl Hypervisor for InertHv {
    fn handle_exit(&mut self, _vm: &mut VmState, _exit: &VmExit) -> ExitAction {
        ExitAction::Resume
    }
}

/// A placeholder [`VmState`] for replay delivery. Small (1 MiB of guest
/// memory) — replayable auditors never read it.
pub fn placeholder_vm(vcpus: usize) -> VmState {
    Machine::new(VmConfig::new(vcpus.max(1), 1 << 20), InertHv).into_parts().0
}

/// The observable outcome of a run — live or replayed — reduced to the
/// state the paper's detectors expose. Two runs that agree on a `Verdict`
/// agreed on every finding, every GOSHD alarm, and every per-class event
/// count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Verdict {
    /// Scenario label (from the trace header).
    pub scenario: String,
    /// Configuration label (from the trace header).
    pub config: String,
    /// Total events in the stream.
    pub events_total: u64,
    /// Total EM ticks in the stream.
    pub ticks_total: u64,
    /// Event counts per class, in [`EventClass::ALL`] order.
    pub class_counts: Vec<u64>,
    /// Every finding the auditors reported, in order, rendered.
    pub findings: Vec<String>,
    /// Causal provenance per finding: the pre-filter exit ordinals that
    /// triggered it, resolvable against the trace's event records. Same
    /// order as `findings`.
    pub findings_provenance: Vec<Vec<u64>>,
    /// Every GOSHD hang alarm, in order, rendered.
    pub goshd_alarms: Vec<String>,
    /// Events seen by the subscribed [`CountingAuditor`] (post-filter).
    pub counted_events: u64,
}

impl Verdict {
    /// Extracts the verdict from an EM that just finished consuming the
    /// given trace (live or replayed). Drains the EM's findings.
    pub fn collect(em: &mut EventMultiplexer, trace: &Trace) -> Verdict {
        let mut class_counts = vec![0u64; EventClass::ALL.len()];
        for ev in trace.events() {
            let idx = EventClass::ALL
                .iter()
                .position(|c| *c == ev.class())
                .expect("every class is in ALL");
            class_counts[idx] += 1;
        }
        let drained = em.drain_findings();
        let findings = drained.iter().map(|f| f.to_string()).collect();
        let findings_provenance =
            drained.iter().map(|f| f.provenance.iter().map(|r| r.0).collect()).collect();
        let goshd_alarms = em
            .auditor::<Goshd>()
            .map(|g| {
                g.alarms()
                    .iter()
                    .map(|a| {
                        format!(
                            "{} hung at {} (last switch {}, {:?})",
                            a.vcpu, a.detected_at, a.last_switch, a.scope
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        let counted_events =
            em.auditor::<CountingAuditor>().map(|c| c.events_seen()).unwrap_or_default();
        Verdict {
            scenario: trace.header.scenario.clone(),
            config: trace.header.config.clone(),
            events_total: trace.event_count(),
            ticks_total: trace.tick_count(),
            class_counts,
            findings,
            findings_provenance,
            goshd_alarms,
            counted_events,
        }
    }
}

/// Cross-checks a verdict's provenance against the trace it came from:
/// every finding must cite at least one exit, and every cited ordinal must
/// identify an event the trace actually recorded (refs are assigned at the
/// EM pre-filter boundary, which is exactly what the trace logs).
pub fn validate_provenance(verdict: &Verdict, trace: &Trace) -> Result<(), String> {
    let events = trace.event_count();
    for (i, refs) in verdict.findings_provenance.iter().enumerate() {
        let rendered = verdict.findings.get(i).map(String::as_str).unwrap_or("<missing>");
        if refs.is_empty() {
            return Err(format!("finding #{i} carries no provenance: {rendered}"));
        }
        for &r in refs {
            if r >= events {
                return Err(format!(
                    "finding #{i} cites exit #{r} but the trace only has {events} events: \
                     {rendered}"
                ));
            }
        }
    }
    Ok(())
}

/// Re-feeds a recorded trace into a fresh EM and returns the verdict.
///
/// `register` receives the empty EM and must install the same auditor set
/// the live run used (replayable auditors only — see the module docs).
pub fn replay_trace(trace: &Trace, register: impl FnOnce(&mut EventMultiplexer)) -> Verdict {
    let mut em = EventMultiplexer::new();
    register(&mut em);
    let mut vm = placeholder_vm(trace.header.vcpus as usize);
    for rec in &trace.records {
        match rec {
            TraceRecord::Event(ev) => {
                em.deliver_all(&mut vm, std::slice::from_ref(ev));
            }
            TraceRecord::Tick(t) => em.tick(&mut vm, *t),
        }
    }
    Verdict::collect(&mut em, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceHeader, TraceRecord};
    use hypertap_core::event::{Event, EventKind, VmId};
    use hypertap_hvsim::clock::{Duration, SimTime};
    use hypertap_hvsim::exit::VcpuSnapshot;
    use hypertap_hvsim::mem::{Gpa, Gva};
    use hypertap_hvsim::vcpu::{Cpl, VcpuId};
    use hypertap_monitors::goshd::GoshdConfig;

    fn switch_at(ns: u64, pdba: u64) -> TraceRecord {
        TraceRecord::Event(Event {
            vm: VmId(0),
            vcpu: VcpuId(0),
            time: SimTime::from_nanos(ns),
            kind: EventKind::ProcessSwitch { new_pdba: Gpa::new(pdba) },
            state: VcpuSnapshot::from_parts(
                Gpa::new(pdba),
                Gva::new(0),
                Gva::new(0),
                Gva::new(0),
                Cpl::Kernel,
                [0; 7],
            ),
        })
    }

    #[test]
    fn goshd_raises_the_same_alarm_from_a_synthetic_trace() {
        // One early context switch, then silence long past the threshold:
        // GOSHD must alarm during replay exactly as it would live.
        let mut records = vec![switch_at(1_000_000, 0x1000)];
        for sec in 1..=6u64 {
            records.push(TraceRecord::Tick(SimTime::from_secs(sec)));
        }
        let trace = Trace { header: TraceHeader::new(1, 7, "synthetic", "default"), records };
        let verdict = replay_trace(&trace, |em| {
            em.register(Box::new(Goshd::new(1, GoshdConfig { threshold: Duration::from_secs(4) })));
            em.register(Box::new(CountingAuditor::new()));
        });
        assert_eq!(verdict.events_total, 1);
        assert_eq!(verdict.ticks_total, 6);
        assert_eq!(verdict.counted_events, 1);
        assert_eq!(verdict.goshd_alarms.len(), 1, "alarms: {:?}", verdict.goshd_alarms);
        assert!(!verdict.findings.is_empty(), "GOSHD reports the hang as a finding");
        assert_eq!(verdict.class_counts[0], 1); // ProcessSwitch is class 0
    }

    #[test]
    fn verdict_is_deterministic_across_replays() {
        let trace = Trace {
            header: TraceHeader::new(1, 7, "synthetic", "default"),
            records: (0..50).map(|i| switch_at(1_000 * (i + 1), 0x1000 * (i % 5 + 1))).collect(),
        };
        let reg = |em: &mut EventMultiplexer| {
            em.register(Box::new(Goshd::new(1, GoshdConfig::paper_default())));
            em.register(Box::new(CountingAuditor::new()));
        };
        assert_eq!(replay_trace(&trace, reg), replay_trace(&trace, reg));
    }
}
