//! The HTTP-server workload plus its external load generator.
//!
//! The server blocks in `net_recv`, and each inbound request (delivered by
//! an external-interrupt + NIC-queue pair, like a packet from an
//! ApacheBench machine) wakes it to parse, read the requested file from
//! disk, and send the response. The load generator pre-schedules Poisson
//! arrivals on the VM — it stands in for the separate ApacheBench host of
//! the paper's setup.

use hypertap_guestos::devices::{NicDevice, NIC_IRQ_VECTOR};
use hypertap_guestos::kernel::Kernel;
use hypertap_guestos::program::{ProgId, UserOp, UserProgram, UserView};
use hypertap_guestos::syscalls::Sysno;
use hypertap_hvsim::clock::{Duration, SimTime};
use hypertap_hvsim::machine::VmState;
use hypertap_hvsim::vcpu::VcpuId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The HTTP daemon.
#[derive(Debug, Default)]
pub struct Httpd {
    stage: u32,
    served: u64,
}

impl Httpd {
    /// A fresh daemon.
    pub fn new() -> Self {
        Httpd::default()
    }
}

impl UserProgram for Httpd {
    fn next_op(&mut self, view: &UserView<'_>) -> UserOp {
        self.stage += 1;
        match self.stage {
            1 => UserOp::sys(Sysno::NetRecv, &[1500]),
            2 => {
                if view.last_ret == 0 {
                    // Spurious wake; wait again.
                    self.stage = 0;
                    UserOp::Compute(1_000)
                } else {
                    UserOp::Compute(50_000) // parse request
                }
            }
            3 => UserOp::sys(Sysno::Open, &[42]),
            4 => UserOp::sys(Sysno::Read, &[view.last_ret, 4096]),
            5 => UserOp::sys(Sysno::NetSend, &[1024]),
            6 => UserOp::sys(Sysno::Close, &[0]),
            _ => {
                self.stage = 0;
                self.served += 1;
                UserOp::Emit("http-served".into(), format!("{}", self.served))
            }
        }
    }
}

/// Registers the HTTP server program.
pub fn install(kernel: &mut Kernel) -> ProgId {
    kernel.register_program("httpd", Box::new(|| Box::new(Httpd::new())))
}

/// Schedules `duration` of Poisson-arrival HTTP load at `rate_hz` onto a
/// booted VM: each request is one entry in the NIC receive queue plus an
/// external interrupt at its arrival time (delivered to vCPU 0, as a
/// single-queue NIC would).
///
/// # Panics
///
/// Panics if the kernel has not booted yet (no NIC registered).
pub fn offer_load(
    vm: &mut VmState,
    kernel: &Kernel,
    start: SimTime,
    rate_hz: f64,
    duration: Duration,
    request_bytes: u64,
    seed: u64,
) -> u64 {
    let nic_id = kernel.nic_device_id().expect("kernel booted");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = start;
    let end = start + duration;
    let mut count = 0u64;
    loop {
        // Exponential inter-arrival times.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap_ns = (-u.ln() / rate_hz * 1e9) as u64;
        t += Duration::from_nanos(gap_ns.max(1));
        if t >= end {
            break;
        }
        let nic =
            vm.io.device_mut(nic_id).as_any().downcast_mut::<NicDevice>().expect("nic device");
        nic.push_rx(request_bytes);
        vm.schedule_irq(t, VcpuId(0), NIC_IRQ_VECTOR);
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(ret: u64) -> UserView<'static> {
        UserView { last_ret: ret, now: SimTime::ZERO, pid: 2, uid: 1000, euid: 1000, procs: &[] }
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let mut h = Httpd::new();
        assert_eq!(h.next_op(&view(0)), UserOp::sys(Sysno::NetRecv, &[1500]));
        assert!(matches!(h.next_op(&view(512)), UserOp::Compute(_)));
        assert!(matches!(h.next_op(&view(0)), UserOp::Syscall(Sysno::Open, _)));
        assert!(matches!(h.next_op(&view(1)), UserOp::Syscall(Sysno::Read, _)));
        assert!(matches!(h.next_op(&view(4096)), UserOp::Syscall(Sysno::NetSend, _)));
        assert!(matches!(h.next_op(&view(0)), UserOp::Syscall(Sysno::Close, _)));
        assert!(matches!(h.next_op(&view(0)), UserOp::Emit(tag, _) if tag == "http-served"));
        // Loops back to recv.
        assert_eq!(h.next_op(&view(0)), UserOp::sys(Sysno::NetRecv, &[1500]));
    }

    #[test]
    fn spurious_wake_retries() {
        let mut h = Httpd::new();
        let _ = h.next_op(&view(0)); // recv
        let op = h.next_op(&view(0)); // woke with nothing
        assert!(matches!(op, UserOp::Compute(_)));
        assert_eq!(h.next_op(&view(0)), UserOp::sys(Sysno::NetRecv, &[1500]));
    }
}
