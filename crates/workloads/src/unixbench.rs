//! The UnixBench-style micro-benchmark suite (for the Fig. 7 overhead
//! measurements).
//!
//! Each benchmark is a user program performing a fixed amount of work and
//! then rebooting the VM; the harness measures the simulated completion
//! time under different monitoring configurations and reports the relative
//! slowdown. The suite covers the workload classes in the paper's Fig. 7:
//! CPU-intensive loops, process creation, file copies at several buffer
//! sizes, pipe throughput, pipe-based context switching, shell scripts, and
//! raw system-call overhead.

use hypertap_guestos::kernel::Kernel;
use hypertap_guestos::program::{FnProgram, ProgId, UserOp, UserProgram, UserView};
use hypertap_guestos::syscalls::Sysno;
use std::fmt;

/// One benchmark of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ubench {
    /// Integer-heavy compute loop.
    Dhrystone,
    /// Floating-point-heavy compute loop.
    Whetstone,
    /// `execl` throughput (spawn + exec + exit).
    Execl,
    /// File copy with the given buffer size over the given block count.
    FileCopy {
        /// Copy buffer size in bytes.
        bufsize: u64,
        /// Number of buffers copied per iteration.
        max_blocks: u64,
    },
    /// Pipe throughput (single process, write+read per iteration).
    PipeThroughput,
    /// Pipe-based context switching (two processes ping-pong).
    PipeContextSwitch,
    /// Process creation (fork + wait).
    ProcessCreation,
    /// Concurrent shell scripts (the given number in parallel).
    ShellScripts(u32),
    /// System-call overhead (getpid loop).
    SyscallOverhead,
}

impl Ubench {
    /// The full suite, in Fig. 7 row order.
    pub fn suite() -> Vec<Ubench> {
        vec![
            Ubench::Dhrystone,
            Ubench::Whetstone,
            Ubench::Execl,
            Ubench::FileCopy { bufsize: 1024, max_blocks: 2000 },
            Ubench::FileCopy { bufsize: 256, max_blocks: 500 },
            Ubench::FileCopy { bufsize: 4096, max_blocks: 8000 },
            Ubench::PipeThroughput,
            Ubench::PipeContextSwitch,
            Ubench::ProcessCreation,
            Ubench::ShellScripts(1),
            Ubench::ShellScripts(8),
            Ubench::SyscallOverhead,
        ]
    }

    /// The workload class (used for the per-class summaries in the paper's
    /// §IX prose: disk-I/O intensive, CPU intensive, context switching,
    /// system call).
    pub fn class(&self) -> &'static str {
        match self {
            Ubench::Dhrystone | Ubench::Whetstone => "cpu",
            Ubench::FileCopy { .. } => "disk-io",
            Ubench::PipeContextSwitch => "context-switch",
            Ubench::SyscallOverhead | Ubench::PipeThroughput => "syscall",
            Ubench::Execl | Ubench::ProcessCreation | Ubench::ShellScripts(_) => "process",
        }
    }
}

impl fmt::Display for Ubench {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ubench::Dhrystone => f.write_str("Dhrystone 2"),
            Ubench::Whetstone => f.write_str("Double Whetstone"),
            Ubench::Execl => f.write_str("Execl Throughput"),
            Ubench::FileCopy { bufsize, max_blocks } => {
                write!(f, "File Copy ({bufsize} bufsize, {max_blocks} max blocks)")
            }
            Ubench::PipeThroughput => f.write_str("Pipe Throughput"),
            Ubench::PipeContextSwitch => f.write_str("Pipe-based Context Switching"),
            Ubench::ProcessCreation => f.write_str("Process Creation"),
            Ubench::ShellScripts(n) => write!(f, "Shell Scripts ({n} concurrent)"),
            Ubench::SyscallOverhead => f.write_str("System Call Overhead"),
        }
    }
}

/// A compute-loop program: `iters` × `chunk_ns`, then done.
struct ComputeLoop {
    iters: u64,
    chunk_ns: u64,
    done: bool,
}

impl UserProgram for ComputeLoop {
    fn next_op(&mut self, _v: &UserView<'_>) -> UserOp {
        if self.iters == 0 {
            if self.done {
                return UserOp::Exit(0);
            }
            self.done = true;
            return UserOp::Exit(0);
        }
        self.iters -= 1;
        UserOp::Compute(self.chunk_ns)
    }
}

/// A syscall-loop program with per-iteration user-space loop work (real
/// UnixBench loops do argument setup, counters and timing checks around
/// each call).
struct SyscallLoop {
    iters: u64,
    op: fn(u64) -> UserOp,
    state: u64,
    pad_ns: u64,
    padded: bool,
}

impl UserProgram for SyscallLoop {
    fn next_op(&mut self, v: &UserView<'_>) -> UserOp {
        if self.iters == 0 {
            return UserOp::Exit(0);
        }
        if self.pad_ns > 0 && !self.padded {
            self.padded = true;
            return UserOp::Compute(self.pad_ns);
        }
        self.padded = false;
        self.iters -= 1;
        self.state = v.last_ret;
        (self.op)(self.state)
    }
}

/// File-copy program: open, then `max_blocks` × (read+write), close, exit.
struct FileCopy {
    bufsize: u64,
    blocks_left: u64,
    stage: u32,
    reading: bool,
}

impl UserProgram for FileCopy {
    fn next_op(&mut self, _v: &UserView<'_>) -> UserOp {
        if self.stage == 0 {
            self.stage = 1;
            return UserOp::sys(Sysno::Open, &[9]);
        }
        if self.blocks_left == 0 {
            if self.stage == 1 {
                self.stage = 2;
                return UserOp::sys(Sysno::Close, &[0]);
            }
            return UserOp::Exit(0);
        }
        if self.reading {
            self.reading = false;
            UserOp::sys(Sysno::Read, &[0, self.bufsize])
        } else {
            self.reading = true;
            self.blocks_left -= 1;
            UserOp::sys(Sysno::Write, &[1, self.bufsize])
        }
    }
}

/// Pipe ping-pong side: write, yield, repeat (forces a dispatch per
/// iteration, like UnixBench's pipe-based context-switch test).
struct PingPong {
    iters: u64,
    stage: u8,
}

impl UserProgram for PingPong {
    fn next_op(&mut self, _v: &UserView<'_>) -> UserOp {
        if self.iters == 0 {
            return UserOp::Exit(0);
        }
        match self.stage {
            0 => {
                self.stage = 1;
                // Per-iteration user work (message prep, bookkeeping).
                UserOp::Compute(60_000)
            }
            1 => {
                self.stage = 2;
                // args[2] = 1 marks pipe I/O (no disk involvement).
                UserOp::Syscall(Sysno::Write, [0, 512, 1, 0, 0])
            }
            _ => {
                self.stage = 0;
                self.iters -= 1;
                UserOp::sys(Sysno::Nanosleep, &[0]) // yield to the partner
            }
        }
    }
}

/// Spawn-wait loop (process creation / execl / shells).
struct SpawnLoop {
    child: u64,
    iters: u64,
    waiting: bool,
}

impl UserProgram for SpawnLoop {
    fn next_op(&mut self, _v: &UserView<'_>) -> UserOp {
        if self.iters == 0 {
            return UserOp::Exit(0);
        }
        if self.waiting {
            self.waiting = false;
            self.iters -= 1;
            UserOp::sys(Sysno::Waitpid, &[])
        } else {
            self.waiting = true;
            UserOp::sys(Sysno::Spawn, &[self.child, u64::MAX])
        }
    }
}

/// Installs the benchmark into a kernel, returning the program id of a
/// benchmark "driver" that performs the fixed work, emits
/// `ubench-done`, and powers the machine off (so the harness can read the
/// completion time from the machine clock).
pub fn install(kernel: &mut Kernel, bench: Ubench) -> ProgId {
    let body: ProgId = match bench {
        Ubench::Dhrystone => kernel.register_program(
            "dhrystone",
            Box::new(|| Box::new(ComputeLoop { iters: 3_000, chunk_ns: 100_000, done: false })),
        ),
        Ubench::Whetstone => kernel.register_program(
            "whetstone",
            Box::new(|| Box::new(ComputeLoop { iters: 2_000, chunk_ns: 120_000, done: false })),
        ),
        Ubench::Execl => {
            let noop = kernel.register_program(
                "execl-child",
                Box::new(|| Box::new(ComputeLoop { iters: 1, chunk_ns: 50_000, done: false })),
            );
            kernel.register_program(
                "execl",
                Box::new(move || Box::new(SpawnLoop { child: noop.0, iters: 300, waiting: false })),
            )
        }
        Ubench::FileCopy { bufsize, max_blocks } => kernel.register_program(
            "filecopy",
            Box::new(move || {
                Box::new(FileCopy { bufsize, blocks_left: max_blocks, stage: 0, reading: true })
            }),
        ),
        Ubench::PipeThroughput => kernel.register_program(
            "pipe-tp",
            Box::new(|| {
                Box::new(SyscallLoop {
                    iters: 6_000,
                    op: |_| UserOp::Syscall(Sysno::Write, [0, 512, 1, 0, 0]),
                    state: 0,
                    pad_ns: 7_000,
                    padded: false,
                })
            }),
        ),
        Ubench::PipeContextSwitch => {
            let partner = kernel.register_program(
                "pingpong-b",
                Box::new(|| Box::new(PingPong { iters: 2_000, stage: 0 })),
            );
            let partner_raw = partner.0;
            kernel.register_program(
                "pingpong-a",
                Box::new(move || {
                    let mut spawned = false;
                    let mut body = PingPong { iters: 2_000, stage: 0 };
                    Box::new(FnProgram(move |v: &UserView<'_>| {
                        if !spawned {
                            spawned = true;
                            return UserOp::sys(Sysno::Spawn, &[partner_raw, u64::MAX]);
                        }
                        body.next_op(v)
                    }))
                }),
            )
        }
        Ubench::ProcessCreation => {
            let noop = kernel.register_program(
                "forked",
                Box::new(|| Box::new(ComputeLoop { iters: 1, chunk_ns: 10_000, done: false })),
            );
            kernel.register_program(
                "proc-create",
                Box::new(move || Box::new(SpawnLoop { child: noop.0, iters: 400, waiting: false })),
            )
        }
        Ubench::ShellScripts(n) => {
            let cmd = kernel.register_program(
                "cmd",
                Box::new(|| {
                    let mut stage = 0u32;
                    Box::new(FnProgram(move |_v: &UserView<'_>| {
                        stage += 1;
                        match stage {
                            1 => UserOp::sys(Sysno::Open, &[3]),
                            2 => UserOp::sys(Sysno::Read, &[0, 2048]),
                            3 => UserOp::Compute(500_000),
                            4 => UserOp::sys(Sysno::Write, &[1, 1024]),
                            5 => UserOp::sys(Sysno::Close, &[0]),
                            _ => UserOp::Exit(0),
                        }
                    }))
                }),
            );
            let shell = kernel.register_program(
                "sh",
                Box::new(move || Box::new(SpawnLoop { child: cmd.0, iters: 40, waiting: false })),
            );
            let shell_raw = shell.0;
            let n64 = n as u64;
            kernel.register_program(
                "shells",
                Box::new(move || {
                    let mut spawned = 0u64;
                    let mut reaped = 0u64;
                    Box::new(FnProgram(move |_v: &UserView<'_>| {
                        if spawned < n64 {
                            spawned += 1;
                            UserOp::sys(Sysno::Spawn, &[shell_raw, u64::MAX])
                        } else if reaped < n64 {
                            reaped += 1;
                            UserOp::sys(Sysno::Waitpid, &[])
                        } else {
                            UserOp::Exit(0)
                        }
                    }))
                }),
            )
        }
        Ubench::SyscallOverhead => kernel.register_program(
            "syscall-loop",
            Box::new(|| {
                Box::new(SyscallLoop {
                    iters: 10_000,
                    op: |_| UserOp::sys(Sysno::Getpid, &[]),
                    state: 0,
                    pad_ns: 7_000,
                    padded: false,
                })
            }),
        ),
    };
    // The driver: run the body as a child, then power off.
    let body_raw = body.0;
    kernel.register_program(
        "ubench-driver",
        Box::new(move || {
            let mut stage = 0u32;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                stage += 1;
                match stage {
                    1 => UserOp::sys(Sysno::Spawn, &[body_raw, 1000]),
                    2 => UserOp::sys(Sysno::Waitpid, &[]),
                    3 => UserOp::Emit("ubench-done".into(), String::new()),
                    _ => UserOp::sys(Sysno::Reboot, &[]),
                }
            }))
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_fig7_rows() {
        let suite = Ubench::suite();
        assert_eq!(suite.len(), 12);
        assert!(suite.iter().any(|b| matches!(b, Ubench::FileCopy { bufsize: 1024, .. })));
        assert!(suite.iter().any(|b| matches!(b, Ubench::ShellScripts(8))));
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(
            Ubench::FileCopy { bufsize: 1024, max_blocks: 2000 }.to_string(),
            "File Copy (1024 bufsize, 2000 max blocks)"
        );
        assert_eq!(Ubench::ShellScripts(8).to_string(), "Shell Scripts (8 concurrent)");
    }

    #[test]
    fn classes_partition_sensibly() {
        assert_eq!(Ubench::Dhrystone.class(), "cpu");
        assert_eq!(Ubench::FileCopy { bufsize: 256, max_blocks: 500 }.class(), "disk-io");
        assert_eq!(Ubench::PipeContextSwitch.class(), "context-switch");
        assert_eq!(Ubench::SyscallOverhead.class(), "syscall");
    }

    #[test]
    fn file_copy_alternates_reads_and_writes() {
        let mut fc = FileCopy { bufsize: 1024, blocks_left: 2, stage: 0, reading: true };
        let v = UserView {
            last_ret: 0,
            now: hypertap_hvsim::clock::SimTime::ZERO,
            pid: 2,
            uid: 1000,
            euid: 1000,
            procs: &[],
        };
        assert!(matches!(fc.next_op(&v), UserOp::Syscall(Sysno::Open, _)));
        assert!(matches!(fc.next_op(&v), UserOp::Syscall(Sysno::Read, _)));
        assert!(matches!(fc.next_op(&v), UserOp::Syscall(Sysno::Write, _)));
        assert!(matches!(fc.next_op(&v), UserOp::Syscall(Sysno::Read, _)));
        assert!(matches!(fc.next_op(&v), UserOp::Syscall(Sysno::Write, _)));
        assert!(matches!(fc.next_op(&v), UserOp::Syscall(Sysno::Close, _)));
        assert_eq!(fc.next_op(&v), UserOp::Exit(0));
    }
}
